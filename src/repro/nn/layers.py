"""Layer objects: stateful wrappers around the functional ops.

Each layer knows its parameters, can infer its output shape from an input
shape (so whole networks can be shape-checked without running data), and
exposes ``conv_spec()`` where applicable so the PCNNA analytical models
can consume a network directly.

Every layer is also *batch-native*: ``forward_batch`` pushes a whole
``(B, ...)`` minibatch through the layer in single array operations, and
is guaranteed bit-identical to stacking per-image ``forward`` results.
Layers whose input rank is unambiguous (everything except
:class:`Flatten`) additionally accept a leading batch axis directly in
``forward``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.nn import functional as F
from repro.nn.shapes import ConvLayerSpec, conv_output_side, pool_output_size


class Layer(abc.ABC):
    """Base class for all network layers."""

    name: str = "layer"

    @abc.abstractmethod
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the layer output for ``inputs``."""

    @abc.abstractmethod
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Infer the output shape for a given input shape.

        Raises:
            ValueError: if ``input_shape`` is incompatible with the layer.
        """

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Compute outputs for a minibatch with a leading batch axis.

        The base implementation stacks per-image ``forward`` calls;
        every built-in layer overrides it with a vectorized whole-batch
        implementation that is bit-identical to the stacked loop.
        """
        return np.stack([self.forward(image) for image in inputs])

    def num_parameters(self) -> int:
        """Number of learnable parameters (0 for stateless layers)."""
        return 0

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Conv2D(Layer):
    """Square 2-D convolution layer.

    Args:
        weights: kernel tensor of shape ``(K, C, m, m)``.
        stride: spatial stride.
        padding: zero padding.
        bias: optional per-kernel bias ``(K,)``.
        name: layer label.
    """

    def __init__(
        self,
        weights: np.ndarray,
        stride: int = 1,
        padding: int = 0,
        bias: np.ndarray | None = None,
        name: str = "conv",
    ) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 4 or weights.shape[2] != weights.shape[3]:
            raise ValueError(
                f"weights must be (K, C, m, m) with square kernels, got "
                f"{weights.shape}"
            )
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride!r}")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding!r}")
        self.weights = weights
        self.stride = stride
        self.padding = padding
        self.bias = None if bias is None else np.asarray(bias, dtype=float)
        self.name = name

    @property
    def num_kernels(self) -> int:
        """Number of kernels ``K``."""
        return self.weights.shape[0]

    @property
    def in_channels(self) -> int:
        """Input channel count ``nc``."""
        return self.weights.shape[1]

    @property
    def kernel_size(self) -> int:
        """Kernel side ``m``."""
        return self.weights.shape[2]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs)
        if inputs.ndim == 4:
            return self.forward_batch(inputs)
        return F.conv2d(inputs, self.weights, self.stride, self.padding, self.bias)

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        return F.conv2d_batch(
            inputs, self.weights, self.stride, self.padding, self.bias
        )

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (C={self.in_channels}, H, W), got "
                f"{input_shape}"
            )
        _, height, width = input_shape
        out_h = conv_output_side(height, self.kernel_size, self.padding, self.stride)
        out_w = conv_output_side(width, self.kernel_size, self.padding, self.stride)
        return (self.num_kernels, out_h, out_w)

    def num_parameters(self) -> int:
        count = self.weights.size
        if self.bias is not None:
            count += self.bias.size
        return count

    def conv_spec(self, input_side: int) -> ConvLayerSpec:
        """The paper-notation :class:`ConvLayerSpec` for this layer.

        Args:
            input_side: the square input side ``n`` the layer will see.
        """
        return ConvLayerSpec(
            name=self.name,
            n=input_side,
            m=self.kernel_size,
            nc=self.in_channels,
            num_kernels=self.num_kernels,
            s=self.stride,
            p=self.padding,
        )


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self, name: str = "relu") -> None:
        self.name = name

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return F.relu(inputs)

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        return F.relu(inputs)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class MaxPool2D(Layer):
    """Square max pooling."""

    def __init__(
        self, pool_size: int, stride: int | None = None, name: str = "maxpool"
    ) -> None:
        if pool_size <= 0:
            raise ValueError(f"pool size must be positive, got {pool_size!r}")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride!r}")
        self.name = name

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return F.max_pool2d(inputs, self.pool_size, self.stride)

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        return F.max_pool2d(inputs, self.pool_size, self.stride)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"{self.name}: expected (C, H, W), got {input_shape}")
        channels, height, width = input_shape
        # Same geometry helper as the functional op, so the two cannot
        # diverge in either the out-size math or the error messages.
        out_h = pool_output_size(height, self.pool_size, self.stride)
        out_w = pool_output_size(width, self.pool_size, self.stride)
        return (channels, out_h, out_w)


class LocalResponseNorm(Layer):
    """AlexNet cross-channel local response normalization."""

    def __init__(
        self,
        size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 2.0,
        name: str = "lrn",
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size!r}")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.name = name

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return F.local_response_norm(
            inputs, self.size, self.alpha, self.beta, self.k
        )

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        return F.local_response_norm(
            inputs, self.size, self.alpha, self.beta, self.k
        )

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Flatten(Layer):
    """Reshape any tensor to a vector."""

    def __init__(self, name: str = "flatten") -> None:
        self.name = name

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return inputs.reshape(-1)

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        # The only layer whose input rank is ambiguous: a (C, H, W)
        # tensor could itself be a batch of matrices, so ``forward``
        # cannot auto-detect batching — callers choose explicitly.
        return inputs.reshape(inputs.shape[0], -1)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


class Dense(Layer):
    """Fully-connected layer."""

    def __init__(
        self,
        weights: np.ndarray,
        bias: np.ndarray | None = None,
        name: str = "dense",
    ) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise ValueError(
                f"weights must be (out_features, in_features), got {weights.shape}"
            )
        self.weights = weights
        self.bias = None if bias is None else np.asarray(bias, dtype=float)
        self.name = name

    @property
    def in_features(self) -> int:
        """Input vector length."""
        return self.weights.shape[1]

    @property
    def out_features(self) -> int:
        """Output vector length."""
        return self.weights.shape[0]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return F.linear(inputs, self.weights, self.bias)

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        return F.linear(inputs, self.weights, self.bias)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ValueError(
                f"{self.name}: expected ({self.in_features},), got {input_shape}"
            )
        return (self.out_features,)

    def num_parameters(self) -> int:
        count = self.weights.size
        if self.bias is not None:
            count += self.bias.size
        return count


class Softmax(Layer):
    """Softmax over the last axis."""

    def __init__(self, name: str = "softmax") -> None:
        self.name = name

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return F.softmax(inputs)

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        return F.softmax(inputs)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape
