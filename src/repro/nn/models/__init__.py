"""Reference CNN model builders (random, seeded weights)."""

from repro.nn.models.alexnet import build_alexnet
from repro.nn.models.googlenet import build_googlenet_stem
from repro.nn.models.lenet import build_lenet5
from repro.nn.models.vgg import build_vgg16

__all__ = [
    "build_alexnet",
    "build_googlenet_stem",
    "build_lenet5",
    "build_vgg16",
]
