"""LeNet-5 (LeCun et al. 1998) builder.

A small, fast network used throughout the test suite and examples: its
convolutions are tiny enough that the full photonic functional simulation
can run end-to-end in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax
from repro.nn.network import Network

LENET_INPUT_SIDE = 32
LENET_INPUT_CHANNELS = 1


def build_lenet5(
    num_classes: int = 10, seed: int = 0, weight_sigma: float = 0.1
) -> Network:
    """Build LeNet-5 with seeded-random weights.

    Geometry: 32x32x1 -> conv 6@5x5 -> pool2 -> conv 16@5x5 -> pool2 ->
    conv 120@5x5 -> dense 84 -> dense ``num_classes``.
    """
    rng = np.random.default_rng(seed)

    def conv_weights(k: int, c: int, m: int) -> np.ndarray:
        return rng.normal(0.0, weight_sigma, (k, c, m, m))

    layers = [
        Conv2D(conv_weights(6, LENET_INPUT_CHANNELS, 5), name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(pool_size=2, name="pool1"),
        Conv2D(conv_weights(16, 6, 5), name="conv2"),
        ReLU(name="relu2"),
        MaxPool2D(pool_size=2, name="pool2"),
        Conv2D(conv_weights(120, 16, 5), name="conv3"),
        ReLU(name="relu3"),
        Flatten(name="flatten"),
        Dense(rng.normal(0.0, weight_sigma, (84, 120)), name="fc4"),
        ReLU(name="relu4"),
        Dense(rng.normal(0.0, weight_sigma, (num_classes, 84)), name="fc5"),
        Softmax(name="softmax"),
    ]
    return Network(
        layers,
        input_shape=(LENET_INPUT_CHANNELS, LENET_INPUT_SIDE, LENET_INPUT_SIDE),
        name="lenet5",
    )
