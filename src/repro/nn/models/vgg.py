"""VGG-16 (Simonyan & Zisserman 2014) builder.

VGG is one of the "tens of layers with almost the same range of kernels
per layer" networks the paper cites as motivation; it appears in the
extension benchmarks to show PCNNA's analytics on a deeper CNN.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax
from repro.nn.network import Network

VGG_INPUT_SIDE = 224
VGG_INPUT_CHANNELS = 3

# (block, out_channels, convs in block) for VGG-16's feature extractor.
_VGG16_BLOCKS = [
    (1, 64, 2),
    (2, 128, 2),
    (3, 256, 3),
    (4, 512, 3),
    (5, 512, 3),
]


def _scaled(count: int, scale: float) -> int:
    """Scale a channel count, keeping it at least 1."""
    return max(1, int(round(count * scale)))


def build_vgg16(
    scale: float = 1.0,
    include_classifier: bool = False,
    num_classes: int = 1000,
    seed: int = 0,
    weight_sigma: float = 0.01,
) -> Network:
    """Build VGG-16 with seeded-random weights.

    Args:
        scale: channel-count multiplier in (0, 1].
        include_classifier: append the 4096/4096/1000 dense head.
        num_classes: classifier width.
        seed: RNG seed for weights.
        weight_sigma: Gaussian std-dev of the random weights.

    Raises:
        ValueError: if ``scale`` is outside (0, 1].
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale!r}")
    rng = np.random.default_rng(seed)
    layers = []
    in_channels = VGG_INPUT_CHANNELS
    for block, out_channels, conv_count in _VGG16_BLOCKS:
        out_channels = _scaled(out_channels, scale)
        for index in range(conv_count):
            weights = rng.normal(
                0.0, weight_sigma, (out_channels, in_channels, 3, 3)
            ).astype(np.float32)
            layers.append(
                Conv2D(weights, stride=1, padding=1, name=f"conv{block}_{index + 1}")
            )
            layers.append(ReLU(name=f"relu{block}_{index + 1}"))
            in_channels = out_channels
        layers.append(MaxPool2D(pool_size=2, name=f"pool{block}"))

    if include_classifier:
        feature_side = 7  # 224 halved five times.
        fc_in = in_channels * feature_side * feature_side
        fc1 = _scaled(4096, scale)
        fc2 = _scaled(4096, scale)
        layers.extend(
            [
                Flatten(name="flatten"),
                Dense(
                    rng.normal(0.0, weight_sigma, (fc1, fc_in)).astype(np.float32),
                    name="fc1",
                ),
                ReLU(name="relu_fc1"),
                Dense(
                    rng.normal(0.0, weight_sigma, (fc2, fc1)).astype(np.float32),
                    name="fc2",
                ),
                ReLU(name="relu_fc2"),
                Dense(
                    rng.normal(0.0, weight_sigma, (num_classes, fc2)).astype(
                        np.float32
                    ),
                    name="fc3",
                ),
                Softmax(name="softmax"),
            ]
        )

    return Network(
        layers,
        input_shape=(VGG_INPUT_CHANNELS, VGG_INPUT_SIDE, VGG_INPUT_SIDE),
        name=f"vgg16(scale={scale:g})",
    )
