"""AlexNet (Krizhevsky et al. 2012) with the shapes used by the PCNNA paper.

The paper's worked examples fix the geometry: a 224 x 224 x 3 input,
conv1 with 96 kernels of 11 x 11 x 3, and the standard single-tower
(non-grouped) AlexNet from there — conv2 5x5/256, conv3-5 3x3 with
384/384/256 kernels.  Grouped convolutions are deliberately ignored, as
the paper's own counts (e.g. conv4 Nkernel = 3 * 3 * 384 = 3456) assume
full connectivity.

Weights are seeded-random: PCNNA never evaluates accuracy, only shapes
and timing, and the photonic functional validation needs representative
numerics rather than trained values.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.network import Network

ALEXNET_INPUT_SIDE = 224
ALEXNET_INPUT_CHANNELS = 3


def _scaled(count: int, scale: float) -> int:
    """Scale a channel count, keeping it at least 1."""
    return max(1, int(round(count * scale)))


def build_alexnet(
    scale: float = 1.0,
    include_classifier: bool = True,
    num_classes: int = 1000,
    seed: int = 0,
    weight_sigma: float = 0.01,
) -> Network:
    """Build AlexNet with seeded-random weights.

    Args:
        scale: channel-count multiplier in (0, 1] — lets tests and the
            photonic functional simulation run a faithful-topology model
            at tractable size.  ``scale=1.0`` is the paper's geometry.
        include_classifier: append the flatten/dense/softmax head.
        num_classes: classifier width (only with the classifier head).
        seed: RNG seed for the weights.
        weight_sigma: Gaussian std-dev of the random weights.

    Returns:
        A shape-checked :class:`~repro.nn.network.Network`.

    Raises:
        ValueError: if ``scale`` is outside (0, 1].
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale!r}")
    rng = np.random.default_rng(seed)

    def conv_weights(k: int, c: int, m: int) -> np.ndarray:
        return rng.normal(0.0, weight_sigma, (k, c, m, m)).astype(np.float32)

    c1 = _scaled(96, scale)
    c2 = _scaled(256, scale)
    c3 = _scaled(384, scale)
    c4 = _scaled(384, scale)
    c5 = _scaled(256, scale)

    layers = [
        Conv2D(
            conv_weights(c1, ALEXNET_INPUT_CHANNELS, 11),
            stride=4,
            padding=2,
            name="conv1",
        ),
        ReLU(name="relu1"),
        LocalResponseNorm(name="lrn1"),
        MaxPool2D(pool_size=3, stride=2, name="pool1"),
        Conv2D(conv_weights(c2, c1, 5), stride=1, padding=2, name="conv2"),
        ReLU(name="relu2"),
        LocalResponseNorm(name="lrn2"),
        MaxPool2D(pool_size=3, stride=2, name="pool2"),
        Conv2D(conv_weights(c3, c2, 3), stride=1, padding=1, name="conv3"),
        ReLU(name="relu3"),
        Conv2D(conv_weights(c4, c3, 3), stride=1, padding=1, name="conv4"),
        ReLU(name="relu4"),
        Conv2D(conv_weights(c5, c4, 3), stride=1, padding=1, name="conv5"),
        ReLU(name="relu5"),
        MaxPool2D(pool_size=3, stride=2, name="pool5"),
    ]

    if include_classifier:
        feature_side = 6  # 224 -> 55 -> 27 -> 13 -> 6 through the stack above.
        fc_in = c5 * feature_side * feature_side
        fc1 = _scaled(4096, scale)
        fc2 = _scaled(4096, scale)
        layers.extend(
            [
                Flatten(name="flatten"),
                Dense(
                    rng.normal(0.0, weight_sigma, (fc1, fc_in)).astype(np.float32),
                    name="fc6",
                ),
                ReLU(name="relu6"),
                Dense(
                    rng.normal(0.0, weight_sigma, (fc2, fc1)).astype(np.float32),
                    name="fc7",
                ),
                ReLU(name="relu7"),
                Dense(
                    rng.normal(0.0, weight_sigma, (num_classes, fc2)).astype(
                        np.float32
                    ),
                    name="fc8",
                ),
                Softmax(name="softmax"),
            ]
        )

    return Network(
        layers,
        input_shape=(ALEXNET_INPUT_CHANNELS, ALEXNET_INPUT_SIDE, ALEXNET_INPUT_SIDE),
        name=f"alexnet(scale={scale:g})",
    )
