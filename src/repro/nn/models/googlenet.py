"""GoogLeNet-style (Szegedy et al. 2015) executable stem builder.

:mod:`repro.workloads.googlenet` carries the full 58-conv GoogLeNet in
paper (analytical) notation.  This module provides the *executable*
counterpart for the functional engine: the GoogLeNet stem — conv1
7x7/s2, the conv2 1x1-reduce/3x3 pair, both LRNs and max-pools — plus
one inception-style 1x1-reduce → 3x3 branch, ending in a classifier
head.  On PCNNA's layer-sequential dataflow an inception module's
branches are just further layer requests, so a sequential branch stands
in faithfully for the batched-execution and pipelining studies.

Weights are seeded-random, as everywhere in :mod:`repro.nn.models`:
PCNNA evaluates shapes, timing, and numerics — never accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.network import Network

GOOGLENET_INPUT_SIDE = 224
GOOGLENET_INPUT_CHANNELS = 3


def _scaled(count: int, scale: float) -> int:
    """Scale a channel count, keeping it at least 1."""
    return max(1, int(round(count * scale)))


def build_googlenet_stem(
    scale: float = 1.0,
    include_classifier: bool = True,
    num_classes: int = 1000,
    seed: int = 0,
    weight_sigma: float = 0.05,
) -> Network:
    """Build the GoogLeNet stem + one inception-style branch.

    Args:
        scale: channel-count multiplier in (0, 1] — ``scale=1.0`` is the
            paper geometry; small scales keep the functional photonic
            simulation tractable while preserving the topology.
        include_classifier: append the flatten/dense/softmax head.
        num_classes: classifier width (only with the classifier head).
        seed: RNG seed for the weights.
        weight_sigma: Gaussian std-dev of the random weights.

    Returns:
        A shape-checked :class:`~repro.nn.network.Network`.

    Raises:
        ValueError: if ``scale`` is outside (0, 1].
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale!r}")
    rng = np.random.default_rng(seed)

    def conv_weights(k: int, c: int, m: int) -> np.ndarray:
        return rng.normal(0.0, weight_sigma, (k, c, m, m)).astype(np.float32)

    c1 = _scaled(64, scale)
    c2_reduce = _scaled(64, scale)
    c2 = _scaled(192, scale)
    c3_reduce = _scaled(96, scale)
    c3 = _scaled(128, scale)

    layers = [
        Conv2D(
            conv_weights(c1, GOOGLENET_INPUT_CHANNELS, 7),
            stride=2,
            padding=3,
            name="conv1/7x7",
        ),
        ReLU(name="relu1"),
        MaxPool2D(pool_size=3, stride=2, name="pool1"),
        LocalResponseNorm(name="lrn1"),
        Conv2D(conv_weights(c2_reduce, c1, 1), name="conv2/3x3_reduce"),
        ReLU(name="relu2_reduce"),
        Conv2D(conv_weights(c2, c2_reduce, 3), padding=1, name="conv2/3x3"),
        ReLU(name="relu2"),
        LocalResponseNorm(name="lrn2"),
        MaxPool2D(pool_size=3, stride=2, name="pool2"),
        Conv2D(conv_weights(c3_reduce, c2, 1), name="inception/3x3_reduce"),
        ReLU(name="relu3_reduce"),
        Conv2D(conv_weights(c3, c3_reduce, 3), padding=1, name="inception/3x3"),
        ReLU(name="relu3"),
        MaxPool2D(pool_size=3, stride=2, name="pool3"),
    ]

    if include_classifier:
        feature_side = 13  # 224 -> 112 -> 55 -> 27 -> 13 through the stack.
        layers.extend(
            [
                Flatten(name="flatten"),
                Dense(
                    rng.normal(
                        0.0,
                        weight_sigma,
                        (num_classes, c3 * feature_side * feature_side),
                    ).astype(np.float32),
                    name="classifier",
                ),
                Softmax(name="softmax"),
            ]
        )

    return Network(
        layers,
        input_shape=(
            GOOGLENET_INPUT_CHANNELS,
            GOOGLENET_INPUT_SIDE,
            GOOGLENET_INPUT_SIDE,
        ),
        name=f"googlenet-stem(scale={scale:g})",
    )
