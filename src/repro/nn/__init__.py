"""From-scratch NumPy CNN inference substrate.

Provides the functional ops, layer objects, sequential network container,
im2col machinery, the paper's Table I parameter dataclass, and reference
model builders (AlexNet with the paper's shapes, LeNet-5, VGG-16).
"""

from repro.nn import functional
from repro.nn.im2col import (
    col2im_accumulate,
    fold_batch_outputs,
    im2col,
    im2col_batch,
    im2col_batch_stacked,
    receptive_field_indices,
)
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    Layer,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.models import (
    build_alexnet,
    build_googlenet_stem,
    build_lenet5,
    build_vgg16,
)
from repro.nn.network import LayerActivation, Network
from repro.nn.quantize import (
    QuantizedTensor,
    quantization_error,
    quantize_network_weights,
    quantize_tensor,
)
from repro.nn.shapes import ConvLayerSpec, conv_output_side

__all__ = [
    "functional",
    "col2im_accumulate",
    "fold_batch_outputs",
    "im2col",
    "im2col_batch",
    "im2col_batch_stacked",
    "receptive_field_indices",
    "Conv2D",
    "Dense",
    "Flatten",
    "Layer",
    "LocalResponseNorm",
    "MaxPool2D",
    "ReLU",
    "Softmax",
    "build_alexnet",
    "build_googlenet_stem",
    "build_lenet5",
    "build_vgg16",
    "LayerActivation",
    "Network",
    "QuantizedTensor",
    "quantization_error",
    "quantize_network_weights",
    "quantize_tensor",
    "ConvLayerSpec",
    "conv_output_side",
]
