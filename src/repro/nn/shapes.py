"""Convolution-layer parameters and the paper's shape equations.

:class:`ConvLayerSpec` is the reproduction of Table I of the PCNNA paper:
it carries the parameters ``n`` (input height/width), ``m`` (kernel
height/width), ``p`` (padding), ``s`` (stride), ``nc`` (input channels),
and ``K`` (kernel count), and computes the derived sizes of equations
(1)-(3) and (6):

    Ninput  = n * n * nc                                   (eq. 1)
    Nkernel = m * m * nc                                   (eq. 2)
    Noutput = (floor((n + 2p - m) / s) + 1)^2 * K          (eq. 3)
    Nlocs   = Noutput / K                                  (eq. 6)

The paper assumes square feature maps and kernels; so does this class.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConvLayerSpec:
    """Parameters of one square convolution layer (paper Table I).

    Attributes:
        name: human-readable layer label (e.g. ``"conv1"``).
        n: input feature-map height and width.
        m: kernel height and width.
        nc: number of input channels.
        num_kernels: number of kernels ``K``.
        s: stride step size.
        p: padding size.
    """

    name: str
    n: int
    m: int
    nc: int
    num_kernels: int
    s: int = 1
    p: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"{self.name}: input size must be positive, got {self.n}")
        if self.m <= 0:
            raise ValueError(
                f"{self.name}: kernel size must be positive, got {self.m}"
            )
        if self.nc <= 0:
            raise ValueError(
                f"{self.name}: channel count must be positive, got {self.nc}"
            )
        if self.num_kernels <= 0:
            raise ValueError(
                f"{self.name}: kernel count must be positive, got {self.num_kernels}"
            )
        if self.s <= 0:
            raise ValueError(f"{self.name}: stride must be positive, got {self.s}")
        if self.p < 0:
            raise ValueError(
                f"{self.name}: padding must be non-negative, got {self.p}"
            )
        if self.m > self.n + 2 * self.p:
            raise ValueError(
                f"{self.name}: kernel ({self.m}) larger than padded input "
                f"({self.n + 2 * self.p})"
            )

    # -- paper equations -----------------------------------------------------

    @property
    def n_input(self) -> int:
        """Input feature-map size, eq. (1): ``n * n * nc``."""
        return self.n * self.n * self.nc

    @property
    def n_kernel(self) -> int:
        """Single-kernel size, eq. (2): ``m * m * nc``."""
        return self.m * self.m * self.nc

    @property
    def output_side(self) -> int:
        """Output feature-map side: ``floor((n + 2p - m) / s) + 1``."""
        return (self.n + 2 * self.p - self.m) // self.s + 1

    @property
    def n_output(self) -> int:
        """Output feature-map size, eq. (3): ``output_side^2 * K``."""
        return self.output_side * self.output_side * self.num_kernels

    @property
    def n_locs(self) -> int:
        """Kernel locations over the input, eq. (6): ``Noutput / K``."""
        return self.output_side * self.output_side

    # -- derived workload measures --------------------------------------------

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for the full layer."""
        return self.n_locs * self.n_kernel * self.num_kernels

    @property
    def total_weights(self) -> int:
        """Total kernel weights in the layer: ``K * Nkernel``."""
        return self.num_kernels * self.n_kernel

    @property
    def stride_update_values(self) -> int:
        """New input values per kernel step, paper section V-B: ``nc * m * s``.

        When the kernel slides by ``s`` columns, ``s`` new columns of the
        ``m``-row window enter the receptive field across all channels.
        """
        return self.nc * self.m * self.s

    def output_spec(self, name: str | None = None) -> "ConvLayerSpec":
        """A spec template for a following layer fed by this one's output.

        The follower sees ``output_side`` as ``n`` and ``num_kernels`` as
        ``nc``; kernel geometry must be filled in by the caller via
        :func:`dataclasses.replace`.
        """
        return ConvLayerSpec(
            name=name if name is not None else f"{self.name}-next",
            n=self.output_side,
            m=1,
            nc=self.num_kernels,
            num_kernels=1,
        )

    def describe(self) -> str:
        """One-line summary in the paper's notation."""
        return (
            f"{self.name}: n={self.n} m={self.m} p={self.p} s={self.s} "
            f"nc={self.nc} K={self.num_kernels} | Ninput={self.n_input} "
            f"Nkernel={self.n_kernel} Noutput={self.n_output} Nlocs={self.n_locs}"
        )


def pool_output_size(input_size: int, pool_size: int, stride: int) -> int:
    """Output length of a 1-D pooling sweep: ``floor((n - pool) / stride) + 1``.

    The single source of truth for pooling geometry: both the functional
    :func:`repro.nn.functional.max_pool2d` and the
    :class:`repro.nn.layers.MaxPool2D` shape inference call this helper,
    so their validity checks and error messages cannot diverge.

    Raises:
        ValueError: if sizes are non-positive or the window does not fit.
    """
    if pool_size <= 0:
        raise ValueError(f"pool size must be positive, got {pool_size!r}")
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride!r}")
    if input_size < pool_size:
        raise ValueError(
            f"pool window {pool_size} does not fit input side {input_size}"
        )
    return (input_size - pool_size) // stride + 1


def conv_output_side(n: int, m: int, p: int, s: int) -> int:
    """Output side of a square convolution: ``floor((n + 2p - m) / s) + 1``.

    Raises:
        ValueError: if the geometry is invalid (kernel larger than the
            padded input, or non-positive sizes).
    """
    if n <= 0 or m <= 0 or s <= 0 or p < 0:
        raise ValueError(f"invalid geometry: n={n}, m={m}, p={p}, s={s}")
    if m > n + 2 * p:
        raise ValueError(f"kernel {m} larger than padded input {n + 2 * p}")
    return (n + 2 * p - m) // s + 1
