"""Fixed-point tensor quantization (the paper's 16-bit storage format).

PCNNA stores feature maps and weights as 16-bit values in DRAM/SRAM.
This module provides symmetric per-tensor fixed-point quantization with
explicit scale bookkeeping, so the examples can run whole networks in the
storage format and measure the accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """A fixed-point tensor with its dequantization scale.

    Attributes:
        codes: integer codes, symmetric around 0.
        scale: real value per code step.
        bits: quantizer resolution.
    """

    codes: np.ndarray
    scale: float
    bits: int

    def dequantize(self) -> np.ndarray:
        """Reconstruct the real-valued tensor."""
        return self.codes.astype(float) * self.scale

    @property
    def max_code(self) -> int:
        """Largest representable magnitude code."""
        return (1 << (self.bits - 1)) - 1


def quantize_tensor(values: np.ndarray, bits: int = 16) -> QuantizedTensor:
    """Symmetric per-tensor quantization to ``bits`` signed bits.

    The scale maps the tensor's max magnitude to the top code, so zero is
    represented exactly and the quantizer never clips.

    Raises:
        ValueError: if ``bits`` < 2.
    """
    if bits < 2:
        raise ValueError(f"need at least 2 bits, got {bits!r}")
    array = np.asarray(values, dtype=float)
    max_code = (1 << (bits - 1)) - 1
    peak = float(np.max(np.abs(array))) if array.size else 0.0
    if peak == 0.0:
        scale = 1.0
    else:
        scale = peak / max_code
    codes = np.round(array / scale).astype(np.int32)
    codes = np.clip(codes, -max_code, max_code)
    return QuantizedTensor(codes=codes, scale=scale, bits=bits)


def quantization_error(values: np.ndarray, bits: int = 16) -> float:
    """Max relative error of quantizing ``values`` at ``bits`` bits."""
    array = np.asarray(values, dtype=float)
    quantized = quantize_tensor(array, bits)
    peak = float(np.max(np.abs(array))) if array.size else 1.0
    if peak == 0.0:
        return 0.0
    return float(np.max(np.abs(quantized.dequantize() - array)) / peak)


def quantize_network_weights(network, bits: int = 16) -> float:
    """Quantize every Conv2D/Dense weight in place; returns worst error.

    Args:
        network: a :class:`~repro.nn.network.Network`.
        bits: storage resolution.

    Returns:
        The largest per-tensor relative quantization error observed.
    """
    from repro.nn.layers import Conv2D, Dense

    worst = 0.0
    for layer in network.layers:
        if isinstance(layer, (Conv2D, Dense)):
            error = quantization_error(layer.weights, bits)
            layer.weights = quantize_tensor(layer.weights, bits).dequantize()
            worst = max(worst, error)
    return worst
