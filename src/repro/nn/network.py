"""Sequential network container.

A :class:`Network` is an ordered list of layers with whole-network shape
inference, forward execution (optionally recording every intermediate
feature map), and extraction of the conv-layer specs that the PCNNA
analytical models and scheduler consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Conv2D, Layer
from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class LayerActivation:
    """One recorded forward-pass step.

    Attributes:
        layer_name: the producing layer's name.
        output: the produced tensor.
    """

    layer_name: str
    output: np.ndarray


class Network:
    """An ordered stack of layers applied sequentially.

    Args:
        layers: the layers, first-applied first.
        input_shape: the shape of inputs the network expects; enables
            construction-time shape checking of the whole stack.
        name: network label.

    Raises:
        ValueError: if consecutive layers have incompatible shapes.
    """

    def __init__(
        self,
        layers: list[Layer],
        input_shape: tuple[int, ...],
        name: str = "network",
    ) -> None:
        if not layers:
            raise ValueError("network needs at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name
        self._shapes = self._infer_shapes()

    def _infer_shapes(self) -> list[tuple[int, ...]]:
        """Propagate the input shape through every layer (validates)."""
        shapes = [self.input_shape]
        current = self.input_shape
        for layer in self.layers:
            current = layer.output_shape(current)
            shapes.append(current)
        return shapes

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Shape of the final layer's output."""
        return self._shapes[-1]

    @property
    def layer_shapes(self) -> list[tuple[int, ...]]:
        """Input shape followed by every layer's output shape."""
        return list(self._shapes)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the network on ``inputs`` and return the final output.

        Raises:
            ValueError: if ``inputs`` does not match ``input_shape``.
        """
        if inputs.shape != self.input_shape:
            raise ValueError(
                f"{self.name}: expected input shape {self.input_shape}, got "
                f"{inputs.shape}"
            )
        current = inputs
        for layer in self.layers:
            current = layer.forward(current)
        return current

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Run a whole ``(B, *input_shape)`` minibatch through the network.

        Every layer processes the full batch in single array operations
        (``Layer.forward_batch``); the result is bit-identical to
        stacking per-image :meth:`forward` outputs.

        Raises:
            ValueError: if ``inputs`` is not a batch of ``input_shape``.
        """
        inputs = np.asarray(inputs)
        if inputs.ndim != len(self.input_shape) + 1 or (
            inputs.shape[1:] != self.input_shape
        ):
            raise ValueError(
                f"{self.name}: expected batched input shape "
                f"(B, *{self.input_shape}), got {inputs.shape}"
            )
        current = inputs
        for layer in self.layers:
            current = layer.forward_batch(current)
        return current

    def forward_recorded(self, inputs: np.ndarray) -> list[LayerActivation]:
        """Run the network, recording every layer's output."""
        if inputs.shape != self.input_shape:
            raise ValueError(
                f"{self.name}: expected input shape {self.input_shape}, got "
                f"{inputs.shape}"
            )
        activations: list[LayerActivation] = []
        current = inputs
        for layer in self.layers:
            current = layer.forward(current)
            activations.append(LayerActivation(layer.name, current))
        return activations

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def num_parameters(self) -> int:
        """Total learnable parameters across all layers."""
        return sum(layer.num_parameters() for layer in self.layers)

    def conv_layers(self) -> list[Conv2D]:
        """The convolution layers, in network order."""
        return [layer for layer in self.layers if isinstance(layer, Conv2D)]

    def conv_specs(self) -> list[ConvLayerSpec]:
        """Paper-notation specs for every conv layer, in network order.

        Each spec's ``n`` is derived from the actual feature-map side the
        layer sees at its position in the stack.
        """
        specs = []
        for layer, in_shape in zip(self.layers, self._shapes[:-1]):
            if isinstance(layer, Conv2D):
                if len(in_shape) != 3 or in_shape[1] != in_shape[2]:
                    raise ValueError(
                        f"{layer.name}: conv spec requires a square input, got "
                        f"{in_shape}"
                    )
                specs.append(layer.conv_spec(input_side=in_shape[1]))
        return specs

    def summary(self) -> str:
        """A human-readable multi-line architecture summary."""
        lines = [f"{self.name}: input {self.input_shape}"]
        for layer, out_shape in zip(self.layers, self._shapes[1:]):
            params = layer.num_parameters()
            lines.append(
                f"  {layer.name:<12} -> {str(out_shape):<20} params={params}"
            )
        lines.append(f"  total parameters: {self.num_parameters()}")
        return "\n".join(lines)
