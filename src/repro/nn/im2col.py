"""im2col / col2im transformations.

``im2col`` unrolls every receptive field of a convolution input into one
column of a matrix, turning convolution into a single matrix multiply.
This is both how the reference CNN engine computes convolutions quickly
and how PCNNA's scheduler thinks: each im2col column *is* the receptive
field that gets loaded into the input buffer and broadcast to the weight
banks for one kernel location.

Layout conventions: feature maps are ``(channels, height, width)``;
kernels are ``(num_kernels, channels, kh, kw)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.shapes import conv_output_side


def pad_feature_map(feature_map: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of a ``(C, H, W)`` tensor.

    Raises:
        ValueError: if the tensor is not 3-D or padding is negative.
    """
    if feature_map.ndim != 3:
        raise ValueError(
            f"expected (channels, height, width), got shape {feature_map.shape}"
        )
    if padding < 0:
        raise ValueError(f"padding must be non-negative, got {padding!r}")
    if padding == 0:
        return feature_map
    return np.pad(
        feature_map,
        ((0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )


def receptive_field_indices(
    height: int,
    width: int,
    channels: int,
    kernel_size: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Flat padded-input indices of every receptive field.

    Returns:
        Integer array of shape ``(num_locations, channels * k * k)``; row
        ``i`` lists, in (channel, row, col) order, the flat indices into
        the *padded* ``(C, H + 2p, W + 2p)`` tensor that form receptive
        field ``i`` (locations scan row-major).

    This index map is shared by the reference conv, the photonic
    functional simulation, and the scheduler, guaranteeing all three agree
    on what "receptive field i" means.
    """
    out_h = conv_output_side(height, kernel_size, padding, stride)
    out_w = conv_output_side(width, kernel_size, padding, stride)
    padded_h = height + 2 * padding
    padded_w = width + 2 * padding

    # Flat index of (c, y, x) in the padded tensor is c*ph*pw + y*pw + x.
    channel_offsets = np.arange(channels) * (padded_h * padded_w)
    ky, kx = np.meshgrid(
        np.arange(kernel_size), np.arange(kernel_size), indexing="ij"
    )
    within_field = (
        channel_offsets[:, None, None] + ky[None] * padded_w + kx[None]
    ).reshape(-1)

    oy, ox = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
    location_origins = (oy * stride * padded_w + ox * stride).reshape(-1)

    return location_origins[:, None] + within_field[None, :]


def im2col(
    feature_map: np.ndarray, kernel_size: int, stride: int, padding: int
) -> np.ndarray:
    """Unroll receptive fields into columns.

    Args:
        feature_map: input tensor of shape ``(C, H, W)``.
        kernel_size: square kernel side ``m``.
        stride: stride ``s``.
        padding: zero padding ``p``.

    Returns:
        Array of shape ``(C * m * m, num_locations)`` whose column ``i``
        is receptive field ``i``.
    """
    if feature_map.ndim != 3:
        raise ValueError(
            f"expected (channels, height, width), got shape {feature_map.shape}"
        )
    channels, height, width = feature_map.shape
    if height != width:
        # The paper assumes square maps; the index math below supports
        # rectangles, so we do too.
        pass
    padded = pad_feature_map(feature_map, padding)
    indices = receptive_field_indices(
        height, width, channels, kernel_size, stride, padding
    )
    # Downstream GEMMs are layout-sensitive at the last bit, so the
    # batched engines rely on every image getting the same C-contiguous
    # layout here (fancy indexing alone would inherit the index array's
    # memory order).
    return np.ascontiguousarray(padded.reshape(-1)[indices.T])


def im2col_batch_stacked(
    feature_maps: np.ndarray, kernel_size: int, stride: int, padding: int
) -> np.ndarray:
    """Unroll a minibatch's receptive fields into a stacked column tensor.

    The primary batched gather: image ``b``'s slice ``[b]`` is exactly
    (bit-for-bit, and in the same C-contiguous layout) what
    :func:`im2col` returns for that image, so stacked matrix products
    over the result reproduce per-image GEMMs identically.  Both the
    photonic and the NumPy batched conv engines build on this.

    Args:
        feature_maps: minibatch of shape ``(B, C, H, W)``.

    Returns:
        Array of shape ``(B, C * m * m, num_locations)``.

    Raises:
        ValueError: if the batch is not 4-D or is empty.
    """
    maps = np.asarray(feature_maps)
    if maps.ndim != 4:
        raise ValueError(
            f"expected (batch, channels, height, width), got shape {maps.shape}"
        )
    if maps.shape[0] == 0:
        raise ValueError("batch must contain at least one image")
    batch_size, channels, height, width = maps.shape
    if padding > 0:
        maps = np.pad(
            maps,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    indices = receptive_field_indices(
        height, width, channels, kernel_size, stride, padding
    )
    # Force C-contiguity: mixing the batch slice with the fancy index
    # leaves the batch axis *innermost* in memory (the gather iterates
    # the index subspace outermost), so without the copy every image
    # slice would be strided — a different layout than im2col produces,
    # and downstream GEMMs are layout-sensitive at the last bit.
    return np.ascontiguousarray(
        maps.reshape(batch_size, -1)[:, indices.T]
    )


def im2col_batch(
    feature_maps: np.ndarray, kernel_size: int, stride: int, padding: int
) -> np.ndarray:
    """Unroll the receptive fields of a whole minibatch into one matrix.

    The columns are image-major: the first ``num_locations`` columns
    belong to image 0, the next to image 1, and so on.  This ordering is
    the contract :func:`fold_batch_outputs` inverts.  The hot batched
    engines use :func:`im2col_batch_stacked` directly (same gather, no
    transpose).

    Args:
        feature_maps: minibatch of shape ``(B, C, H, W)``.

    Returns:
        Array of shape ``(C * m * m, B * num_locations)``.

    Raises:
        ValueError: if the batch is not 4-D or is empty.
    """
    stacked = im2col_batch_stacked(feature_maps, kernel_size, stride, padding)
    batch_size, field_size, num_locations = stacked.shape
    return np.ascontiguousarray(stacked.transpose(1, 0, 2)).reshape(
        field_size, batch_size * num_locations
    )


def fold_batch_outputs(
    output_matrix: np.ndarray, batch_size: int, out_h: int, out_w: int
) -> np.ndarray:
    """Fold a ``(K, B * num_locations)`` output matrix back into images.

    Inverts the image-major column ordering of :func:`im2col_batch`.

    Returns:
        Tensor of shape ``(B, K, out_h, out_w)``.
    """
    num_kernels = output_matrix.shape[0]
    return output_matrix.reshape(
        num_kernels, batch_size, out_h, out_w
    ).transpose(1, 0, 2, 3)


def col2im_accumulate(
    columns: np.ndarray,
    input_shape: tuple[int, int, int],
    kernel_size: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add columns back into a feature map (inverse of im2col).

    Overlapping receptive fields accumulate, which is the adjoint of the
    im2col gather; used by tests to verify the index map is a bijection
    over non-overlapping geometries.

    Args:
        columns: array of shape ``(C * m * m, num_locations)``.
        input_shape: the original ``(C, H, W)``.

    Returns:
        Tensor of shape ``(C, H, W)``.
    """
    channels, height, width = input_shape
    indices = receptive_field_indices(
        height, width, channels, kernel_size, stride, padding
    )
    if columns.shape != (indices.shape[1], indices.shape[0]):
        raise ValueError(
            f"columns shape {columns.shape} does not match geometry "
            f"{(indices.shape[1], indices.shape[0])}"
        )
    padded_h = height + 2 * padding
    padded_w = width + 2 * padding
    flat = np.zeros(channels * padded_h * padded_w, dtype=columns.dtype)
    np.add.at(flat, indices.reshape(-1), columns.T.reshape(-1))
    padded = flat.reshape(channels, padded_h, padded_w)
    if padding == 0:
        return padded
    return padded[:, padding:-padding, padding:-padding]
