"""Functional (stateless) neural-network operations, NumPy only.

These are the numerical references the photonic simulation is validated
against.  ``conv2d`` exists in two implementations — a readable direct
loop and an im2col matrix multiply — which are property-tested against
each other; the fast one backs the layer objects.

Layout conventions: feature maps ``(C, H, W)``, kernels
``(K, C, m, m)``, dense weights ``(out_features, in_features)``.

Every electronic op is *batch-native*: the spatial ops accept a single
``(C, H, W)`` map or a ``(B, C, H, W)`` minibatch, ``linear`` accepts a
vector or a ``(B, in_features)`` matrix, and all of them process the
whole batch in vectorized array operations (stride-tricks window views,
no per-window Python loops).  Batched results are bit-identical to
stacking the per-image results: the batch axis only broadcasts, it never
changes any reduction's operand order.
"""

from __future__ import annotations

import numpy as np

from repro.nn.im2col import (
    im2col,
    im2col_batch_stacked,
    pad_feature_map,
)
from repro.nn.shapes import conv_output_side, pool_output_size


def conv2d(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """2-D convolution (cross-correlation) via im2col.

    Args:
        feature_map: input of shape ``(C, H, W)``.
        kernels: weights of shape ``(K, C, m, m)`` with square kernels.
        stride: spatial stride.
        padding: zero padding.
        bias: optional per-kernel bias of shape ``(K,)``.

    Returns:
        Output of shape ``(K, out_side, out_side)``.

    Raises:
        ValueError: on shape mismatches.
    """
    _check_conv_shapes(feature_map, kernels)
    num_kernels, channels, kernel_size, _ = kernels.shape
    _, height, width = feature_map.shape

    columns = im2col(feature_map, kernel_size, stride, padding)
    weight_matrix = kernels.reshape(num_kernels, -1)
    output = weight_matrix @ columns
    if bias is not None:
        if bias.shape != (num_kernels,):
            raise ValueError(
                f"bias must have shape ({num_kernels},), got {bias.shape}"
            )
        output += bias[:, None]

    out_h = conv_output_side(height, kernel_size, padding, stride)
    out_w = conv_output_side(width, kernel_size, padding, stride)
    return output.reshape(num_kernels, out_h, out_w)


def conv2d_batch(
    feature_maps: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Batched 2-D convolution: one im2col gather, one GEMM per image.

    The electronic counterpart of the accelerator's batched photonic
    engine: the im2col columns of all images are gathered in one
    C-contiguous indexing operation, then each image's ``(K, F) @ (F, L)``
    product is issued as the *same 2-D GEMM call* :func:`conv2d` makes —
    so the batched result is *bit-identical* to stacking the per-image
    results (a broadcast batched matmul is not; see the body comment).

    Args:
        feature_maps: minibatch of shape ``(B, C, H, W)``.
        kernels: weights of shape ``(K, C, m, m)`` with square kernels.
        stride: spatial stride.
        padding: zero padding.
        bias: optional per-kernel bias of shape ``(K,)``.

    Returns:
        Output of shape ``(B, K, out_h, out_w)``.

    Raises:
        ValueError: on shape mismatches.
    """
    maps = np.asarray(feature_maps, dtype=float)
    if maps.ndim != 4:
        raise ValueError(
            f"feature maps must be (B, C, H, W), got shape {maps.shape}"
        )
    if maps.shape[0] == 0:
        raise ValueError("batch must contain at least one image")
    _check_conv_shapes(maps[0], kernels)
    num_kernels, _, kernel_size, _ = kernels.shape
    batch_size, _, height, width = maps.shape

    out_h = conv_output_side(height, kernel_size, padding, stride)
    out_w = conv_output_side(width, kernel_size, padding, stride)
    # Per-image 2-D GEMMs over the one-shot gathered column stack.  Each
    # image's product is the *same call* conv2d issues — (K, F) @ (F, L)
    # — so the batched result is bit-identical to stacking per-image
    # results by construction.  A broadcast batched matmul
    # (``weight_matrix[None] @ stacked``) is not: NumPy may route the
    # stacked product through a different kernel than the 2-D case and
    # round the low-order bits differently depending on the batch size.
    # The GEMMs dominate, so the per-image dispatch loop costs nothing.
    stacked = im2col_batch_stacked(maps, kernel_size, stride, padding)
    weight_matrix = kernels.reshape(num_kernels, -1)
    output = np.empty((batch_size, num_kernels, stacked.shape[2]))
    for index in range(batch_size):
        np.matmul(weight_matrix, stacked[index], out=output[index])
    if bias is not None:
        if bias.shape != (num_kernels,):
            raise ValueError(
                f"bias must have shape ({num_kernels},), got {bias.shape}"
            )
        output += bias[None, :, None]
    return output.reshape(batch_size, num_kernels, out_h, out_w)


def conv2d_direct(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """2-D convolution via explicit loops (reference for testing).

    Same contract as :func:`conv2d`; quadratically slower, transparently
    correct.
    """
    _check_conv_shapes(feature_map, kernels)
    num_kernels, channels, kernel_size, _ = kernels.shape
    _, height, width = feature_map.shape
    padded = pad_feature_map(feature_map, padding)

    out_h = conv_output_side(height, kernel_size, padding, stride)
    out_w = conv_output_side(width, kernel_size, padding, stride)
    output = np.zeros((num_kernels, out_h, out_w), dtype=float)
    for k in range(num_kernels):
        for oy in range(out_h):
            for ox in range(out_w):
                window = padded[
                    :,
                    oy * stride : oy * stride + kernel_size,
                    ox * stride : ox * stride + kernel_size,
                ]
                output[k, oy, ox] = float(np.sum(window * kernels[k]))
        if bias is not None:
            output[k] += bias[k]
    return output


def _check_conv_shapes(feature_map: np.ndarray, kernels: np.ndarray) -> None:
    """Validate conv input/kernel tensor shapes."""
    if feature_map.ndim != 3:
        raise ValueError(
            f"feature map must be (C, H, W), got shape {feature_map.shape}"
        )
    if kernels.ndim != 4:
        raise ValueError(
            f"kernels must be (K, C, m, m), got shape {kernels.shape}"
        )
    if kernels.shape[2] != kernels.shape[3]:
        raise ValueError(f"kernels must be square, got {kernels.shape[2:]}")
    if kernels.shape[1] != feature_map.shape[0]:
        raise ValueError(
            f"kernel channels {kernels.shape[1]} != input channels "
            f"{feature_map.shape[0]}"
        )


def relu(values: np.ndarray) -> np.ndarray:
    """Rectified linear unit: ``max(x, 0)`` elementwise (any shape)."""
    return np.maximum(values, 0.0)


def max_pool2d(
    feature_map: np.ndarray, pool_size: int, stride: int | None = None
) -> np.ndarray:
    """Max pooling over non-overlapping or strided square windows.

    Vectorized over every window *and* the optional batch axis: the
    maxima accumulate over the ``pool_size^2`` strided window-offset
    slices of the input — whole-array operations with good locality, no
    per-window Python loop.

    Args:
        feature_map: input of shape ``(C, H, W)`` or a minibatch of
            shape ``(B, C, H, W)``.
        pool_size: pooling window side.
        stride: window step; defaults to ``pool_size``.

    Returns:
        Pooled tensor of shape ``(C, out_h, out_w)`` or
        ``(B, C, out_h, out_w)``, matching the input rank.
    """
    feature_map = np.asarray(feature_map)
    if feature_map.ndim not in (3, 4):
        raise ValueError(
            "feature map must be (C, H, W) or batched (B, C, H, W), got "
            f"shape {feature_map.shape}"
        )
    step = stride if stride is not None else pool_size
    height, width = feature_map.shape[-2:]
    out_h = pool_output_size(height, pool_size, step)
    out_w = pool_output_size(width, pool_size, step)
    h_span = (out_h - 1) * step + 1
    w_span = (out_w - 1) * step + 1
    # Square max pooling is separable: pool the rows, then the columns
    # of the row-pooled result — 2 * pool_size accumulation passes
    # instead of pool_size^2, exact because max is associative.
    rows: np.ndarray | None = None
    for dx in range(pool_size):
        shifted = feature_map[..., :, dx : dx + w_span : step]
        if rows is None:
            rows = shifted.copy()
        else:
            np.maximum(rows, shifted, out=rows)
    result: np.ndarray | None = None
    for dy in range(pool_size):
        shifted = rows[..., dy : dy + h_span : step, :]
        if result is None:
            result = shifted.copy()
        else:
            np.maximum(result, shifted, out=result)
    return result


def local_response_norm(
    feature_map: np.ndarray,
    size: int = 5,
    alpha: float = 1e-4,
    beta: float = 0.75,
    k: float = 2.0,
) -> np.ndarray:
    """AlexNet-style local response normalization across channels.

    ``b_c = a_c / (k + alpha/size * sum_{c'} a_{c'}^2) ** beta`` where the
    sum runs over ``size`` channels centered on ``c``.  Accepts a single
    ``(C, H, W)`` map or a ``(B, C, H, W)`` minibatch; the channel-window
    sums accumulate over the window's channel-offset slices — whole-array
    operations instead of a per-channel Python loop.
    """
    feature_map = np.asarray(feature_map)
    if feature_map.ndim not in (3, 4):
        raise ValueError(
            "feature map must be (C, H, W) or batched (B, C, H, W), got "
            f"shape {feature_map.shape}"
        )
    if size <= 0:
        raise ValueError(f"size must be positive, got {size!r}")
    feature_map = feature_map.astype(float, copy=False)
    squared = feature_map * feature_map
    half = size // 2
    channels = feature_map.shape[-3]

    def channel_slice(array: np.ndarray, lo: int, hi: int) -> np.ndarray:
        slicer = [slice(None)] * array.ndim
        slicer[-3] = slice(lo, hi)
        return array[tuple(slicer)]

    # Accumulate the window's channel-offset slices; out-of-range
    # offsets clamp at the edges, exactly as the per-channel
    # formulation's ``[max(0, c - half):min(C, c + half + 1)]``.
    denom = squared.copy()
    for delta in range(1, half + 1):
        channel_slice(denom, 0, channels - delta)[...] += channel_slice(
            squared, delta, channels
        )
        channel_slice(denom, delta, channels)[...] += channel_slice(
            squared, 0, channels - delta
        )
    # Finish in place: denom -> (k + alpha/size * denom) ** beta.
    denom *= alpha / size
    denom += k
    np.power(denom, beta, out=denom)
    return feature_map / denom


def linear(
    inputs: np.ndarray, weights: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Fully-connected layer: ``W @ x + b``, optionally batched.

    Args:
        inputs: vector of shape ``(in_features,)`` or a minibatch of
            shape ``(B, in_features)``.
        weights: matrix of shape ``(out_features, in_features)``.
        bias: optional vector of shape ``(out_features,)``.

    Returns:
        Vector of shape ``(out_features,)`` or matrix of shape
        ``(B, out_features)``, matching the input rank.  The batched
        result is computed as a stacked per-image product, so it is
        bit-identical to stacking the per-image results.
    """
    inputs = np.asarray(inputs)
    if inputs.ndim not in (1, 2):
        raise ValueError(
            f"inputs must be a vector or (batch, features), got shape "
            f"{inputs.shape}"
        )
    if weights.ndim != 2 or weights.shape[1] != inputs.shape[-1]:
        raise ValueError(
            f"weights {weights.shape} incompatible with inputs {inputs.shape}"
        )
    if bias is not None and bias.shape != (weights.shape[0],):
        raise ValueError(
            f"bias must have shape ({weights.shape[0]},), got {bias.shape}"
        )
    batched = inputs.ndim == 2
    stack = inputs if batched else inputs[None]
    # One matvec per image, single and batched paths issuing the *same*
    # (out, in) @ (in,) call — bit-identical regardless of batch size.
    # A stacked broadcast matmul is not: NumPy may pick a different
    # kernel for the batched product and round differently.
    output = np.empty((stack.shape[0], weights.shape[0]))
    for index in range(stack.shape[0]):
        np.matmul(weights, stack[index], out=output[index])
    if bias is not None:
        output = output + bias
    return output if batched else output[0]


def softmax(values: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis (any leading axes)."""
    shifted = values - values.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
