"""Functional (stateless) neural-network operations, NumPy only.

These are the numerical references the photonic simulation is validated
against.  ``conv2d`` exists in two implementations — a readable direct
loop and an im2col matrix multiply — which are property-tested against
each other; the fast one backs the layer objects.

Layout conventions: feature maps ``(C, H, W)``, kernels
``(K, C, m, m)``, dense weights ``(out_features, in_features)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.im2col import (
    fold_batch_outputs,
    im2col,
    im2col_batch,
    pad_feature_map,
)
from repro.nn.shapes import conv_output_side


def conv2d(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """2-D convolution (cross-correlation) via im2col.

    Args:
        feature_map: input of shape ``(C, H, W)``.
        kernels: weights of shape ``(K, C, m, m)`` with square kernels.
        stride: spatial stride.
        padding: zero padding.
        bias: optional per-kernel bias of shape ``(K,)``.

    Returns:
        Output of shape ``(K, out_side, out_side)``.

    Raises:
        ValueError: on shape mismatches.
    """
    _check_conv_shapes(feature_map, kernels)
    num_kernels, channels, kernel_size, _ = kernels.shape
    _, height, width = feature_map.shape

    columns = im2col(feature_map, kernel_size, stride, padding)
    weight_matrix = kernels.reshape(num_kernels, -1)
    output = weight_matrix @ columns
    if bias is not None:
        if bias.shape != (num_kernels,):
            raise ValueError(
                f"bias must have shape ({num_kernels},), got {bias.shape}"
            )
        output += bias[:, None]

    out_h = conv_output_side(height, kernel_size, padding, stride)
    out_w = conv_output_side(width, kernel_size, padding, stride)
    return output.reshape(num_kernels, out_h, out_w)


def conv2d_batch(
    feature_maps: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Batched 2-D convolution: every image through one matrix multiply.

    The electronic counterpart of the accelerator's batched photonic
    engine: the im2col columns of all images are concatenated into a
    single ``(C * m * m, B * num_locations)`` matrix and multiplied by
    the kernel matrix once, instead of convolving image by image.

    Args:
        feature_maps: minibatch of shape ``(B, C, H, W)``.
        kernels: weights of shape ``(K, C, m, m)`` with square kernels.
        stride: spatial stride.
        padding: zero padding.
        bias: optional per-kernel bias of shape ``(K,)``.

    Returns:
        Output of shape ``(B, K, out_h, out_w)``.

    Raises:
        ValueError: on shape mismatches.
    """
    maps = np.asarray(feature_maps, dtype=float)
    if maps.ndim != 4:
        raise ValueError(
            f"feature maps must be (B, C, H, W), got shape {maps.shape}"
        )
    if maps.shape[0] == 0:
        raise ValueError("batch must contain at least one image")
    _check_conv_shapes(maps[0], kernels)
    num_kernels, _, kernel_size, _ = kernels.shape
    batch_size, _, height, width = maps.shape

    columns = im2col_batch(maps, kernel_size, stride, padding)
    weight_matrix = kernels.reshape(num_kernels, -1)
    output = weight_matrix @ columns
    if bias is not None:
        if bias.shape != (num_kernels,):
            raise ValueError(
                f"bias must have shape ({num_kernels},), got {bias.shape}"
            )
        output += bias[:, None]

    out_h = conv_output_side(height, kernel_size, padding, stride)
    out_w = conv_output_side(width, kernel_size, padding, stride)
    return fold_batch_outputs(output, batch_size, out_h, out_w)


def conv2d_direct(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """2-D convolution via explicit loops (reference for testing).

    Same contract as :func:`conv2d`; quadratically slower, transparently
    correct.
    """
    _check_conv_shapes(feature_map, kernels)
    num_kernels, channels, kernel_size, _ = kernels.shape
    _, height, width = feature_map.shape
    padded = pad_feature_map(feature_map, padding)

    out_h = conv_output_side(height, kernel_size, padding, stride)
    out_w = conv_output_side(width, kernel_size, padding, stride)
    output = np.zeros((num_kernels, out_h, out_w), dtype=float)
    for k in range(num_kernels):
        for oy in range(out_h):
            for ox in range(out_w):
                window = padded[
                    :,
                    oy * stride : oy * stride + kernel_size,
                    ox * stride : ox * stride + kernel_size,
                ]
                output[k, oy, ox] = float(np.sum(window * kernels[k]))
        if bias is not None:
            output[k] += bias[k]
    return output


def _check_conv_shapes(feature_map: np.ndarray, kernels: np.ndarray) -> None:
    """Validate conv input/kernel tensor shapes."""
    if feature_map.ndim != 3:
        raise ValueError(
            f"feature map must be (C, H, W), got shape {feature_map.shape}"
        )
    if kernels.ndim != 4:
        raise ValueError(
            f"kernels must be (K, C, m, m), got shape {kernels.shape}"
        )
    if kernels.shape[2] != kernels.shape[3]:
        raise ValueError(f"kernels must be square, got {kernels.shape[2:]}")
    if kernels.shape[1] != feature_map.shape[0]:
        raise ValueError(
            f"kernel channels {kernels.shape[1]} != input channels "
            f"{feature_map.shape[0]}"
        )


def relu(values: np.ndarray) -> np.ndarray:
    """Rectified linear unit: ``max(x, 0)`` elementwise."""
    return np.maximum(values, 0.0)


def max_pool2d(
    feature_map: np.ndarray, pool_size: int, stride: int | None = None
) -> np.ndarray:
    """Max pooling over non-overlapping or strided square windows.

    Args:
        feature_map: input of shape ``(C, H, W)``.
        pool_size: pooling window side.
        stride: window step; defaults to ``pool_size``.

    Returns:
        Pooled tensor of shape ``(C, out_h, out_w)``.
    """
    if feature_map.ndim != 3:
        raise ValueError(
            f"feature map must be (C, H, W), got shape {feature_map.shape}"
        )
    if pool_size <= 0:
        raise ValueError(f"pool size must be positive, got {pool_size!r}")
    step = stride if stride is not None else pool_size
    if step <= 0:
        raise ValueError(f"stride must be positive, got {step!r}")
    channels, height, width = feature_map.shape
    out_h = (height - pool_size) // step + 1
    out_w = (width - pool_size) // step + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"pool window {pool_size} does not fit input {height}x{width}"
        )
    output = np.empty((channels, out_h, out_w), dtype=feature_map.dtype)
    for oy in range(out_h):
        for ox in range(out_w):
            window = feature_map[
                :, oy * step : oy * step + pool_size, ox * step : ox * step + pool_size
            ]
            output[:, oy, ox] = window.max(axis=(1, 2))
    return output


def local_response_norm(
    feature_map: np.ndarray,
    size: int = 5,
    alpha: float = 1e-4,
    beta: float = 0.75,
    k: float = 2.0,
) -> np.ndarray:
    """AlexNet-style local response normalization across channels.

    ``b_c = a_c / (k + alpha/size * sum_{c'} a_{c'}^2) ** beta`` where the
    sum runs over ``size`` channels centered on ``c``.
    """
    if feature_map.ndim != 3:
        raise ValueError(
            f"feature map must be (C, H, W), got shape {feature_map.shape}"
        )
    if size <= 0:
        raise ValueError(f"size must be positive, got {size!r}")
    channels = feature_map.shape[0]
    squared = feature_map.astype(float) ** 2
    half = size // 2
    denom = np.empty_like(squared)
    for c in range(channels):
        lo = max(0, c - half)
        hi = min(channels, c + half + 1)
        denom[c] = squared[lo:hi].sum(axis=0)
    return feature_map / (k + (alpha / size) * denom) ** beta


def linear(
    inputs: np.ndarray, weights: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Fully-connected layer: ``W @ x + b``.

    Args:
        inputs: vector of shape ``(in_features,)``.
        weights: matrix of shape ``(out_features, in_features)``.
        bias: optional vector of shape ``(out_features,)``.
    """
    if inputs.ndim != 1:
        raise ValueError(f"inputs must be a vector, got shape {inputs.shape}")
    if weights.ndim != 2 or weights.shape[1] != inputs.shape[0]:
        raise ValueError(
            f"weights {weights.shape} incompatible with inputs {inputs.shape}"
        )
    output = weights @ inputs
    if bias is not None:
        if bias.shape != (weights.shape[0],):
            raise ValueError(
                f"bias must have shape ({weights.shape[0]},), got {bias.shape}"
            )
        output = output + bias
    return output


def softmax(values: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis."""
    shifted = values - values.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
