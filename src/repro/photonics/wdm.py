"""Wavelength-division multiplexing (WDM) channel grid.

Broadcast-and-weight places every neuron output on its own wavelength; all
wavelengths share one waveguide.  This module models the channel grid
itself: channel frequencies, spacing, and the crosstalk a bank of
Lorentzian rings imposes between channels (each ring mostly drops its own
channel but also drops a small amount of every neighbour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.constants import (
    C_BAND_CENTER_HZ,
    DWDM_100GHZ_SPACING_HZ,
    frequency_to_wavelength,
)


@dataclass(frozen=True)
class WdmGrid:
    """A uniform WDM channel grid.

    Attributes:
        num_channels: number of wavelength channels.
        spacing_hz: frequency spacing between adjacent channels.
        center_frequency_hz: frequency of the middle of the grid.
    """

    num_channels: int
    spacing_hz: float = DWDM_100GHZ_SPACING_HZ
    center_frequency_hz: float = C_BAND_CENTER_HZ

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError(
                f"grid needs at least one channel, got {self.num_channels!r}"
            )
        if self.spacing_hz <= 0:
            raise ValueError(f"spacing must be positive, got {self.spacing_hz!r}")
        if self.center_frequency_hz <= 0:
            raise ValueError(
                f"center frequency must be positive, got {self.center_frequency_hz!r}"
            )

    @property
    def frequencies_hz(self) -> np.ndarray:
        """Channel frequencies (Hz), ascending, centered on the grid center."""
        offsets = np.arange(self.num_channels, dtype=float)
        offsets -= (self.num_channels - 1) / 2.0
        return self.center_frequency_hz + offsets * self.spacing_hz

    @property
    def wavelengths_m(self) -> np.ndarray:
        """Channel vacuum wavelengths (m), matching ``frequencies_hz`` order."""
        return np.array(
            [frequency_to_wavelength(f) for f in self.frequencies_hz], dtype=float
        )

    @property
    def span_hz(self) -> float:
        """Total occupied frequency span (Hz)."""
        return (self.num_channels - 1) * self.spacing_hz

    def frequency_of(self, channel: int) -> float:
        """Frequency of a single channel index.

        Raises:
            IndexError: if ``channel`` is out of range.
        """
        if not 0 <= channel < self.num_channels:
            raise IndexError(
                f"channel {channel} out of range [0, {self.num_channels})"
            )
        return float(self.frequencies_hz[channel])

    def fits_within_fsr(self, free_spectral_range_hz: float) -> bool:
        """Whether the whole grid fits inside one ring free spectral range.

        If it does not, a ring tuned to one channel would also resonate at
        aliased channels one FSR away, corrupting the weighting.
        """
        return self.span_hz < free_spectral_range_hz


def channel_count_limit(
    free_spectral_range_hz: float, spacing_hz: float = DWDM_100GHZ_SPACING_HZ
) -> int:
    """Largest channel count whose grid span fits inside one FSR.

    This is the WDM scalability limit of a single weight bank; the PCNNA
    mapping layer uses it to decide when a layer's receptive field must be
    split over multiple banks.

    Raises:
        ValueError: if either argument is not strictly positive.
    """
    if free_spectral_range_hz <= 0:
        raise ValueError(
            f"free spectral range must be positive, got {free_spectral_range_hz!r}"
        )
    if spacing_hz <= 0:
        raise ValueError(f"spacing must be positive, got {spacing_hz!r}")
    # span = (n - 1) * spacing < FSR  =>  n < FSR / spacing + 1.
    limit = int(np.floor(free_spectral_range_hz / spacing_hz + 1.0))
    if (limit - 1) * spacing_hz >= free_spectral_range_hz:
        limit -= 1
    return max(limit, 1)
