"""Composable noise / non-ideality configuration for the photonic substrate.

Every non-ideality in the simulation is gated by a :class:`NoiseConfig` so
the same code path can run in two modes:

* **ideal** (the default) — every device is exact; the photonic MAC equals
  the floating-point dot product bit-for-bit up to float rounding.  This is
  the mode used to validate functional equivalence with the NumPy CNN.
* **noisy** — shot noise, thermal noise, laser RIN, ring-tuning error and
  inter-channel crosstalk are injected, for the robustness ablations.

A shared :class:`numpy.random.Generator` keeps noisy runs reproducible.
Because that generator is *stateful*, two identical noisy computations on
the same config consume different slices of the stream; engines that
need call-level reproducibility take a :meth:`NoiseConfig.fork` — a fresh
config whose generator restarts from the configured seed — once per
call, so identical calls draw identical noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np


@dataclass
class NoiseConfig:
    """Switches and magnitudes for photonic non-idealities.

    Attributes:
        enabled: master switch; when ``False`` every device is ideal no
            matter what the individual magnitudes say.
        shot_noise: include photodiode shot noise.
        thermal_noise: include receiver thermal (Johnson) noise.
        relative_intensity_noise_db_per_hz: laser RIN spectral density in
            dB/Hz; ``None`` disables RIN even when ``enabled``.
        ring_tuning_sigma: standard deviation of multiplicative weight
            error from imperfect ring tuning (e.g. 0.005 = 0.5 %).
        crosstalk: include inter-channel Lorentzian crosstalk in weight
            banks (deterministic, not random, but still a non-ideality).
        seed: seed for the shared random generator.
    """

    enabled: bool = False
    shot_noise: bool = True
    thermal_noise: bool = True
    relative_intensity_noise_db_per_hz: float | None = None
    ring_tuning_sigma: float = 0.0
    crosstalk: bool = False
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.ring_tuning_sigma < 0:
            raise ValueError(
                f"tuning sigma must be non-negative, got {self.ring_tuning_sigma!r}"
            )
        self._rng = np.random.default_rng(self.seed)

    @property
    def rng(self) -> np.random.Generator:
        """The shared random generator used by all noisy devices."""
        return self._rng

    def reseed(self, seed: int) -> None:
        """Reset the random generator to a fresh seed."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def fork(self, key: int | None = None) -> "NoiseConfig":
        """A copy of this config with a freshly-seeded generator.

        The copy shares every switch and magnitude but owns its own
        :class:`numpy.random.Generator`, restarted deterministically:
        from ``seed`` itself (``key=None``) or from ``(seed, key)`` when
        distinct reproducible streams are needed.  The parent config's
        stream is left untouched.  This is the per-call reseed path used
        by :class:`repro.core.accelerator.PhotonicConvolution`, making
        two identical noisy calls produce identical results.
        """
        forked = replace(self)
        if key is not None:
            forked._rng = np.random.default_rng([self.seed, key])
        return forked

    @property
    def shot_noise_active(self) -> bool:
        """Whether shot noise should be injected."""
        return self.enabled and self.shot_noise

    @property
    def thermal_noise_active(self) -> bool:
        """Whether thermal noise should be injected."""
        return self.enabled and self.thermal_noise

    @property
    def rin_active(self) -> bool:
        """Whether laser relative-intensity noise should be injected."""
        return self.enabled and self.relative_intensity_noise_db_per_hz is not None

    @property
    def tuning_error_active(self) -> bool:
        """Whether ring-tuning weight error should be injected."""
        return self.enabled and self.ring_tuning_sigma > 0.0

    @property
    def crosstalk_active(self) -> bool:
        """Whether inter-channel crosstalk should be modeled."""
        return self.enabled and self.crosstalk


IDEAL = NoiseConfig(enabled=False)
"""A shared ideal (noise-free) configuration."""


def ideal() -> NoiseConfig:
    """Return a fresh ideal configuration (all non-idealities off)."""
    return NoiseConfig(enabled=False)


def realistic(seed: int = 0) -> NoiseConfig:
    """Return a configuration with typical magnitudes for every effect.

    Magnitudes follow common silicon-photonics numbers: -140 dB/Hz RIN,
    0.5 % ring-tuning error, crosstalk on.
    """
    return NoiseConfig(
        enabled=True,
        shot_noise=True,
        thermal_noise=True,
        relative_intensity_noise_db_per_hz=-140.0,
        ring_tuning_sigma=0.005,
        crosstalk=True,
        seed=seed,
    )
