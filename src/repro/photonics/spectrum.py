"""Spectral analysis of weight banks.

Utilities to sample a bank's aggregate transfer function across optical
frequency — the simulation analogue of sweeping a tunable laser across
the bank and recording the drop/through power.  Used by tests to verify
line shapes and channel isolation, and by users to inspect a programmed
bank the way a lab would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.weight_bank import WeightBank


@dataclass(frozen=True)
class BankSpectrum:
    """A sampled weight-bank spectrum.

    Attributes:
        frequencies_hz: sample frequencies, ascending.
        drop: aggregate drop-bus power fraction at each frequency.
        through: surviving through-bus power fraction at each frequency.
    """

    frequencies_hz: np.ndarray
    drop: np.ndarray
    through: np.ndarray

    def isolation_db(self, channel_a: int, channel_b: int, grid) -> float:
        """Channel isolation: ring A's drop at its own channel vs at B's.

        Args:
            channel_a: index of the ring/channel under test.
            channel_b: index of the interfering channel.
            grid: the bank's :class:`~repro.photonics.wdm.WdmGrid`.

        Returns:
            Isolation in dB (positive = good isolation).
        """
        from repro.photonics.constants import linear_to_db

        own = self._drop_at(grid.frequency_of(channel_a))
        other = self._drop_at(grid.frequency_of(channel_b))
        if other <= 0.0:
            return float("inf")
        return linear_to_db(own / other)

    def _drop_at(self, frequency_hz: float) -> float:
        """Drop fraction at the sample nearest ``frequency_hz``."""
        index = int(np.argmin(np.abs(self.frequencies_hz - frequency_hz)))
        return float(self.drop[index])


# repro: allow[API002] closed-form Lorentzian transfer sweep: pure
# function of the bank's tuning state, nothing stochastic to seed
def sweep_bank_spectrum(
    bank: WeightBank,
    span_factor: float = 1.5,
    num_points: int = 2001,
) -> BankSpectrum:
    """Sample the bank's aggregate drop/through spectrum.

    The sweep covers the WDM grid span (widened by ``span_factor``) and
    honours the serial bus ordering: at each frequency, light passes the
    rings in order, each tapping its Lorentzian drop fraction from what
    remains.

    Args:
        bank: the (already programmed) weight bank.
        span_factor: sweep width relative to the grid span.
        num_points: number of frequency samples.

    Raises:
        ValueError: on a non-positive span or point count.
    """
    if span_factor <= 0:
        raise ValueError(f"span factor must be positive, got {span_factor!r}")
    if num_points < 2:
        raise ValueError(f"need at least 2 points, got {num_points!r}")

    grid = bank.grid
    center = grid.center_frequency_hz
    half_span = max(grid.span_hz, grid.spacing_hz) * span_factor / 2.0
    frequencies = np.linspace(center - half_span, center + half_span, num_points)

    drop = np.zeros(num_points)
    remaining = np.ones(num_points)
    for ring in bank.rings:
        ring_drop = np.asarray(ring.drop_transmission(frequencies), dtype=float)
        drop += remaining * ring_drop
        remaining *= 1.0 - ring_drop
    return BankSpectrum(frequencies_hz=frequencies, drop=drop, through=remaining)


def channel_isolation_db(bank: WeightBank, quality_factor_hint: str = "") -> float:
    """Worst-case adjacent-channel isolation of a fully-on bank (dB).

    Programs every ring to weight +1 (full drop), sweeps the spectrum,
    and reports the worst ratio between a channel's own drop and the
    leakage from its nearest neighbour's ring.
    """
    import numpy as np

    from repro.photonics.constants import linear_to_db

    grid = bank.grid
    bank.set_weights(np.ones(bank.num_rings))
    worst = float("inf")
    for index, ring in enumerate(bank.rings):
        own = float(ring.drop_transmission(grid.frequency_of(index)))
        for neighbour in (index - 1, index + 1):
            if 0 <= neighbour < bank.num_rings:
                leak = float(
                    ring.drop_transmission(grid.frequency_of(neighbour))
                )
                if leak > 0:
                    worst = min(worst, linear_to_db(own / leak))
    return worst
