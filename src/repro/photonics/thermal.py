"""Thermal effects on microring weight banks.

Microrings are tuned thermally, and heat does not stay put: each ring's
heater warms its neighbours (thermal crosstalk), and ambient temperature
drift moves every resonance together (~10 GHz/K for silicon rings).
This module models both effects as resonance perturbations that can be
applied to a :class:`~repro.photonics.weight_bank.WeightBank`, plus the
standard mitigation — measuring the drifted weights and re-calibrating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.weight_bank import WeightBank

SILICON_THERMAL_SHIFT_HZ_PER_K = 10e9
"""Resonance shift of a silicon microring per kelvin (~0.08 nm/K)."""


@dataclass(frozen=True)
class ThermalModel:
    """Thermal environment of a weight bank.

    Attributes:
        crosstalk_coupling: fraction of one ring's heater detuning that
            leaks to its nearest neighbour (decays geometrically with
            distance).
        ambient_drift_k: uniform temperature offset from the calibration
            point (K).
        shift_hz_per_k: resonance sensitivity to temperature.
    """

    crosstalk_coupling: float = 0.05
    ambient_drift_k: float = 0.0
    shift_hz_per_k: float = SILICON_THERMAL_SHIFT_HZ_PER_K

    def __post_init__(self) -> None:
        if not 0.0 <= self.crosstalk_coupling < 1.0:
            raise ValueError(
                f"coupling must be in [0, 1), got {self.crosstalk_coupling!r}"
            )
        if self.shift_hz_per_k <= 0:
            raise ValueError(
                f"thermal sensitivity must be positive, got {self.shift_hz_per_k!r}"
            )

    def crosstalk_matrix(self, num_rings: int) -> np.ndarray:
        """Heater-coupling matrix: entry (i, j) is ring j's leak onto i.

        Diagonal is 1 (a heater fully tunes its own ring); off-diagonals
        decay geometrically with ring distance.

        Raises:
            ValueError: if ``num_rings`` is not an integer >= 1 (a float
                count used to build a silently mis-sized matrix via
                ``np.arange`` truncation).
        """
        if isinstance(num_rings, bool) or not isinstance(
            num_rings, (int, np.integer)
        ):
            raise ValueError(
                f"ring count must be an integer >= 1, got {num_rings!r}"
            )
        if num_rings < 1:
            raise ValueError(f"need at least one ring, got {num_rings!r}")
        indices = np.arange(num_rings)
        distance = np.abs(indices[:, None] - indices[None, :])
        return self.crosstalk_coupling**distance

    def apply(self, bank: WeightBank) -> None:
        """Perturb the bank's ring detunings with both thermal effects.

        The commanded detunings are mixed through the crosstalk matrix,
        then the uniform ambient shift is added to every resonance.
        """
        commanded = np.array([ring.detuning_hz for ring in bank.rings])
        mixed = self.crosstalk_matrix(bank.num_rings) @ commanded
        ambient = self.ambient_drift_k * self.shift_hz_per_k
        for ring, detuning in zip(bank.rings, mixed):
            ring.detuning_hz = float(detuning + ambient)


def thermal_weight_error(
    bank: WeightBank, model: ThermalModel, target_weights: np.ndarray
) -> float:
    """Worst-case weight error a thermal environment inflicts on a bank.

    Programs the bank open-loop, applies the thermal model, and measures
    the effective-weight deviation.  Crosstalk must be enabled in the
    bank's noise config for detuning shifts to matter at other channels;
    with ideal (per-channel) banks only the ring's own channel moves, so
    the error comes from the drop-fraction change at its own resonance.

    Returns:
        ``max |effective - target|`` after the perturbation.
    """
    bank.set_weights(np.asarray(target_weights, dtype=float))
    model.apply(bank)
    # After the thermal perturbation the banks' cached drop fractions are
    # stale; recompute the effective weights from the physical rings.
    frequencies = bank.grid.frequencies_hz
    drops = np.array(
        [
            float(ring.drop_transmission(frequency))
            for ring, frequency in zip(bank.rings, frequencies)
        ]
    )
    effective = 2.0 * drops - 1.0
    return float(np.max(np.abs(effective - np.asarray(target_weights))))
