"""Time-dependent drift and fault state on microring weight banks.

:mod:`repro.photonics.thermal` models a *static* thermal environment and
:mod:`repro.photonics.calibration` the feedback loop that compensates it.
Degraded-mode serving needs the piece between them: a weight bank whose
physical condition *changes over simulated time* — ambient temperature
ramps detune every ring together, heater-crosstalk excursions mix the
commanded detunings, individual rings die (heater open-circuit, parked
far off resonance) or stick (heater frozen at its last command), and the
TIA behind the balanced photodiode pair loses gain as it ages.

Two layers are provided:

* :class:`DriftingWeightBank` — a real :class:`~repro.photonics
  .weight_bank.WeightBank` wrapped with a mutable :class:`BankCondition`.
  The wrapper exposes the same probe surface calibration uses
  (``num_rings`` / ``set_weights`` / ``effective_weights``), so
  :func:`~repro.photonics.calibration.calibrate_bank` runs *unchanged*
  against the degraded bank: the closed loop measures the drifted
  balanced-detection readout and re-commands around it, exactly the
  online-recalibration move deployed systems make.  Dead rings cannot be
  re-commanded and stuck rings hold their frozen command, so calibration
  converges only as far as physics allows — the residual is the honest
  post-recalibration accuracy bound.
* :func:`drift_transfer` — the same commanded-weight → effective-weight
  map as a closed-form vectorized function, applied to whole weight
  tensors at once.  The serving engine uses it to replay a degraded
  schedule on the executable network and measure golden-output
  divergence per batch (see :mod:`repro.core.faults`).

Both layers share one physical model: a commanded weight ``w`` becomes a
drop target ``(1 + w) / 2``, the inverse Lorentzian yields a non-negative
detuning, ambient drift *adds* to that detuning (thermal tuners shift one
way, which is why drift beyond the command headroom cannot be fully
recalibrated away), and the balanced readout is scaled by the TIA gain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.calibration import CalibrationResult, calibrate_bank
from repro.photonics.microring import (
    MicroringDesign,
    detunings_for_drop,
    drop_transmission_profile,
)
from repro.photonics.noise import NoiseConfig
from repro.photonics.thermal import SILICON_THERMAL_SHIFT_HZ_PER_K, ThermalModel
from repro.photonics.wdm import WdmGrid
from repro.photonics.weight_bank import _MAX_DETUNING_LINEWIDTHS, WeightBank

DEFAULT_PROBE_RINGS = 8
"""Rings in the canonical per-core accuracy-probe bank."""

DEFAULT_PROBE_QUALITY_FACTOR = 20_000.0
"""Loaded Q of the probe rings (narrow enough that K-scale drift bites)."""

_PARKED_DETUNING_LINEWIDTHS = _MAX_DETUNING_LINEWIDTHS
"""Where a dead ring's resonance is parked, in linewidths (drop ~ 0) —
the weight banks' own zero-drop parking convention, shared so dead-ring
readouts here agree with bank physics."""


def default_probe_targets(num_rings: int = DEFAULT_PROBE_RINGS) -> np.ndarray:
    """The canonical probe weight vector: a signed ramp across the bank.

    Mixed signs exercise both Lorentzian flanks; the positive-weight
    rings (small detuning, little command headroom) are the ones ambient
    drift degrades first, so the max error over this vector is a
    conservative per-core accuracy proxy.

    Raises:
        ValueError: if ``num_rings`` is below one.
    """
    if num_rings < 1:
        raise ValueError(f"need at least one probe ring, got {num_rings!r}")
    if num_rings == 1:
        return np.array([0.75])
    return np.linspace(-0.75, 0.75, num_rings)


@dataclass(frozen=True)
class BankCondition:
    """The physical condition of a drifting bank at one simulated instant.

    Attributes:
        ambient_k: accumulated ambient temperature offset from the
            calibration point (K); shifts every resonance together.
        crosstalk_coupling: heater coupling to nearest neighbours
            (excursions raise it above the design baseline).
        dead_rings: indices of rings parked far off resonance (their
            effective weight is pinned near ``-tia_gain``).
        stuck_rings: indices of rings whose heater is frozen — they hold
            the command they had when they stuck and ignore later ones.
        tia_gain: multiplicative gain of the TIA behind the balanced
            photodiode pair (droops below 1 as the receiver ages).
    """

    ambient_k: float = 0.0
    crosstalk_coupling: float = 0.0
    dead_rings: tuple[int, ...] = ()
    stuck_rings: tuple[int, ...] = ()
    tia_gain: float = 1.0

    def __post_init__(self) -> None:
        if self.ambient_k < 0.0 or not np.isfinite(self.ambient_k):
            raise ValueError(
                f"ambient drift must be finite and >= 0, got {self.ambient_k!r}"
            )
        if not 0.0 <= self.crosstalk_coupling < 1.0:
            raise ValueError(
                f"coupling must be in [0, 1), got {self.crosstalk_coupling!r}"
            )
        if not 0.0 <= self.tia_gain <= 1.0:
            raise ValueError(
                f"TIA gain must be in [0, 1], got {self.tia_gain!r}"
            )

    @property
    def ambient_shift_hz(self) -> float:
        """The uniform resonance shift the ambient offset causes."""
        return self.ambient_k * SILICON_THERMAL_SHIFT_HZ_PER_K

    @property
    def pristine(self) -> bool:
        """Whether this condition perturbs nothing at all."""
        return (
            self.ambient_k == 0.0
            and self.crosstalk_coupling == 0.0
            and not self.dead_rings
            and not self.stuck_rings
            and self.tia_gain == 1.0
        )


class DriftingWeightBank:
    """A weight bank whose physical condition degrades over time.

    The wrapper owns a crosstalk-aware :class:`WeightBank` (so the
    balanced-detection readout reflects real Lorentzian physics, not the
    calibrated lookup) and re-derives the full perturbation from scratch
    on every command or condition change: commanded weights are written
    to the rings, the thermal model mixes and shifts the detunings, dead
    rings are parked and stuck rings restored.  Nothing compounds across
    calls, so the state is a pure function of (command, condition) and
    every measurement is bit-reproducible.

    The probe surface (``num_rings`` / ``set_weights`` /
    ``effective_weights``) matches :class:`WeightBank`, which is what
    lets :func:`~repro.photonics.calibration.calibrate_bank` drive the
    degraded bank directly.

    Args:
        targets: the weight vector the bank is supposed to realize.
        num_rings: bank size (defaults to the target length).
        design: ring design; defaults to a Q=20k probe ring.
        seed: seed for the bank's (deterministic-crosstalk) noise config.
    """

    def __init__(
        self,
        targets: np.ndarray | None = None,
        num_rings: int | None = None,
        design: MicroringDesign | None = None,
        seed: int = 0,
    ) -> None:
        if targets is None:
            targets = default_probe_targets(
                num_rings if num_rings is not None else DEFAULT_PROBE_RINGS
            )
        self.targets = np.asarray(targets, dtype=float)
        if self.targets.ndim != 1 or self.targets.size == 0:
            raise ValueError(
                f"need a non-empty 1-D target vector, got shape "
                f"{self.targets.shape}"
            )
        if num_rings is not None and num_rings != self.targets.size:
            raise ValueError(
                f"{num_rings} rings cannot realize {self.targets.size} targets"
            )
        self.design = (
            design
            if design is not None
            else MicroringDesign(quality_factor=DEFAULT_PROBE_QUALITY_FACTOR)
        )
        # Crosstalk on (deterministic Lorentzian physics), random effects
        # off: the probe must be exactly reproducible under a fixed seed.
        noise = NoiseConfig(
            enabled=True,
            shot_noise=False,
            thermal_noise=False,
            crosstalk=True,
            seed=seed,
        )
        self.bank = WeightBank(WdmGrid(self.targets.size), self.design, noise)
        self.condition = BankCondition()
        self._commanded = self.targets.copy()
        self._stuck_commands: dict[int, float] = {}
        self._retune()

    @property
    def num_rings(self) -> int:
        """Rings in the bank (the probe surface calibration reads)."""
        return self.bank.num_rings

    @property
    def commanded(self) -> np.ndarray:
        """The last honoured command vector (copy)."""
        return self._commanded.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        """Command the bank, honouring frozen (stuck) rings.

        Stuck rings keep the command they had when they stuck no matter
        what is asked — that is what a frozen heater does — so the
        calibration loop sees its correction silently not taken there.

        Raises:
            ValueError: on a malformed or out-of-range command vector
                (same contract as :meth:`WeightBank.set_weights`).
        """
        asked = np.asarray(weights, dtype=float)
        if asked.shape != (self.num_rings,):
            raise ValueError(
                f"expected {self.num_rings} weights, got shape {asked.shape}"
            )
        honoured = asked.copy()
        for ring, frozen in self._stuck_commands.items():
            honoured[ring] = frozen
        self.bank.set_weights(honoured)  # validates range
        self._commanded = honoured
        self._retune(skip_command=True)

    def effective_weights(self) -> np.ndarray:
        """The balanced-detection readout under the current condition.

        This is the photodiode-level measurement: per-channel ``drop -
        through`` through the real (drifted) Lorentzian bank, scaled by
        the TIA gain.
        """
        return self.condition.tia_gain * self.bank.effective_weights()

    def set_condition(self, condition: BankCondition) -> None:
        """Move the bank to a new physical condition and re-derive state.

        Rings newly listed as stuck freeze at their *current* command;
        rings that leave the stuck list thaw and accept commands again.
        """
        previous = self.condition
        self.condition = condition
        if condition.stuck_rings != previous.stuck_rings:
            # Key by the wrapped index (dead rings wrap the same way in
            # _retune), so out-of-range schedule indices stay valid when
            # set_weights applies the frozen commands.
            kept: dict[int, float] = {}
            for ring in condition.stuck_rings:
                index = ring % self.num_rings
                kept[index] = self._stuck_commands.get(
                    index, float(self._commanded[index])
                )
            self._stuck_commands = kept
        self._retune()

    def _retune(self, skip_command: bool = False) -> None:
        """Recompute every detuning from (command, condition)."""
        if not skip_command:
            self.bank.set_weights(self._commanded)
        condition = self.condition
        if condition.ambient_k > 0.0 or condition.crosstalk_coupling > 0.0:
            ThermalModel(
                crosstalk_coupling=condition.crosstalk_coupling,
                ambient_drift_k=condition.ambient_k,
            ).apply(self.bank)
        for ring_index in condition.dead_rings:
            ring = self.bank.rings[ring_index % self.num_rings]
            ring.detuning_hz = _PARKED_DETUNING_LINEWIDTHS * ring.linewidth_hz

    def weight_error(self) -> float:
        """Max |readout - target| — the per-bank accuracy proxy."""
        return float(
            np.max(np.abs(self.effective_weights() - self.targets))
        )

    def recalibrate(
        self,
        max_iterations: int = 20,
        tolerance: float = 1e-6,
        gain: float = 1.0,
    ) -> CalibrationResult:
        """Run the closed calibration loop against the degraded bank.

        :func:`~repro.photonics.calibration.calibrate_bank` measures the
        drifted readout and iterates the command; ambient drift within
        the command headroom is compensated, dead and stuck rings are
        not, and the returned residual is the honest remaining error.
        """
        return calibrate_bank(
            self,
            self.targets,
            max_iterations=max_iterations,
            tolerance=tolerance,
            gain=gain,
        )


def drift_transfer(
    weights: np.ndarray,
    ambient_shift_hz: float,
    tia_gain: float = 1.0,
    design: MicroringDesign | None = None,
    channel_hz: float | None = None,
) -> np.ndarray:
    """Commanded-weight → effective-weight map under drift, vectorized.

    The closed-form single-ring counterpart of
    :class:`DriftingWeightBank` (own-channel response only — the serving
    engine uses it to perturb whole conv-kernel tensors at once when
    replaying a degraded schedule): each commanded weight ``w`` in
    ``[-1, 1]`` is inverted to its non-negative detuning, the uniform
    ambient shift is added, and the drifted Lorentzian drop response is
    read back through a TIA of gain ``tia_gain``.

    Args:
        weights: commanded weights, any shape, each in ``[-1, 1]``.
        ambient_shift_hz: uniform resonance shift (>= 0; thermal tuners
            and drift push the same way, so the shift always adds).
        tia_gain: readout gain in ``[0, 1]``.
        design: ring design (defaults to the probe design).
        channel_hz: carrier frequency setting the linewidth; defaults to
            the center of a single-channel default grid.

    Returns:
        Effective weights, same shape as ``weights``, each in
        ``[-tia_gain, tia_gain]``.

    Raises:
        ValueError: on out-of-range weights, a negative or non-finite
            shift, or a TIA gain outside ``[0, 1]``.
    """
    commanded = np.asarray(weights, dtype=float)
    if np.any(np.abs(commanded) > 1.0 + 1e-12):
        raise ValueError("commanded weights must lie in [-1, 1]")
    if ambient_shift_hz < 0.0 or not np.isfinite(ambient_shift_hz):
        raise ValueError(
            f"ambient shift must be finite and >= 0, got {ambient_shift_hz!r}"
        )
    if not 0.0 <= tia_gain <= 1.0:
        raise ValueError(f"TIA gain must be in [0, 1], got {tia_gain!r}")
    chosen = (
        design
        if design is not None
        else MicroringDesign(quality_factor=DEFAULT_PROBE_QUALITY_FACTOR)
    )
    carrier = channel_hz if channel_hz is not None else WdmGrid(1).frequency_of(0)
    linewidth = chosen.linewidth_hz(carrier)
    peak = chosen.peak_drop_transmission
    drops = np.minimum((1.0 + np.clip(commanded, -1.0, 1.0)) / 2.0 * peak, peak)
    detunings = detunings_for_drop(
        drops, linewidth, peak, _PARKED_DETUNING_LINEWIDTHS
    )
    drifted_drop = drop_transmission_profile(
        0.0, detunings + ambient_shift_hz, linewidth, peak
    )
    return tia_gain * (2.0 * np.asarray(drifted_drop, dtype=float) - 1.0)


__all__ = [
    "DEFAULT_PROBE_RINGS",
    "DEFAULT_PROBE_QUALITY_FACTOR",
    "BankCondition",
    "DriftingWeightBank",
    "default_probe_targets",
    "drift_transfer",
]
