"""Optical link-budget and SNR analysis for a broadcast-and-weight link.

An analog photonic MAC's precision is set by its signal-to-noise ratio.
This module builds the full budget for one PCNNA link — laser, modulator,
broadcast splitter, bus loss, bank, balanced receiver — and converts the
resulting SNR into an *effective number of bits* (ENOB):

    ENOB = (log2(SNR) - log2(3/2)) / 2          (ADC convention)

which is the natural point of comparison with the paper's 16-bit
electronic datapath.  The analysis exposes PCNNA's real scalability
limit: splitting one broadcast over K banks divides the per-detector
signal by K while the receiver noise floor stays fixed, so ENOB falls by
half a bit per doubling of K.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.photonics.constants import db_to_linear
from repro.photonics.laser import LaserSpec
from repro.photonics.photodiode import PhotodiodeSpec
from repro.photonics.waveguide import Waveguide


@dataclass(frozen=True)
class LinkBudget:
    """One broadcast-and-weight link's power and noise budget.

    Attributes:
        num_channels: WDM channels (receptive-field size).
        num_banks: weight banks sharing the broadcast (kernel count K).
        laser: per-channel source parameters.
        photodiode: receiver parameters.
        bus: waveguide between source and banks.
        modulator_loss_db: modulator insertion loss.
        excess_loss_db: additional lumped losses (couplers, bends).
    """

    num_channels: int
    num_banks: int = 1
    laser: LaserSpec = LaserSpec()
    photodiode: PhotodiodeSpec = PhotodiodeSpec()
    bus: Waveguide = Waveguide(length_m=0.0)
    modulator_loss_db: float = 3.0
    excess_loss_db: float = 1.0

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError(
                f"need at least one channel, got {self.num_channels!r}"
            )
        if self.num_banks <= 0:
            raise ValueError(f"need at least one bank, got {self.num_banks!r}")
        if self.modulator_loss_db < 0 or self.excess_loss_db < 0:
            raise ValueError("losses must be non-negative")

    # -- power budget --------------------------------------------------------

    @property
    def path_transmission(self) -> float:
        """Source-to-detector power transmission for one channel."""
        lumped = 1.0 / db_to_linear(self.modulator_loss_db + self.excess_loss_db)
        split = 1.0 / self.num_banks
        return lumped * self.bus.transmission * split

    @property
    def per_channel_power_at_detector_w(self) -> float:
        """Optical power one fully-on channel delivers to one detector."""
        return self.laser.power_w * self.path_transmission

    @property
    def total_power_at_detector_w(self) -> float:
        """Worst-case (all channels fully on) power on one detector."""
        return self.num_channels * self.per_channel_power_at_detector_w

    @property
    def signal_current_a(self) -> float:
        """Full-scale balanced signal current (A).

        Full scale is all channels at weight +1 and input 1 — the largest
        dot product the link can represent.
        """
        return (
            self.photodiode.responsivity_a_per_w * self.total_power_at_detector_w
        )

    # -- noise budget -------------------------------------------------------

    @property
    def noise_current_a(self) -> float:
        """RMS receiver noise current (A): shot at full scale + thermal.

        A balanced pair doubles the thermal contribution (two diodes) and
        the shot noise follows the total incident power.
        """
        shot = self.photodiode.shot_noise_sigma_a(self.signal_current_a)
        thermal = self.photodiode.thermal_noise_sigma_a()
        return math.sqrt(shot**2 + 2.0 * thermal**2)

    @property
    def snr(self) -> float:
        """Full-scale signal-to-noise power ratio."""
        noise = self.noise_current_a
        if noise == 0.0:
            return math.inf
        return (self.signal_current_a / noise) ** 2

    @property
    def snr_db(self) -> float:
        """SNR in decibels."""
        return 10.0 * math.log10(self.snr)

    @property
    def effective_bits(self) -> float:
        """Effective number of bits of one analog MAC (ENOB)."""
        return (self.snr_db - 1.76) / 6.02

    def scaled_to_banks(self, num_banks: int) -> "LinkBudget":
        """The same link budget with a different bank count."""
        from dataclasses import replace

        return replace(self, num_banks=num_banks)


def max_banks_for_bits(
    budget: LinkBudget, required_bits: float, max_banks: int = 1 << 20
) -> int:
    """Largest K for which the link still delivers ``required_bits`` ENOB.

    The answer is the scalability limit of one broadcast: beyond it the
    layer must be split over multiple sources.

    Raises:
        ValueError: if even a single bank cannot meet the requirement.
    """
    if budget.scaled_to_banks(1).effective_bits < required_bits:
        raise ValueError(
            f"even one bank delivers only "
            f"{budget.scaled_to_banks(1).effective_bits:.2f} bits < "
            f"{required_bits}"
        )
    low, high = 1, max_banks
    while low < high:
        mid = (low + high + 1) // 2
        if budget.scaled_to_banks(mid).effective_bits >= required_bits:
            low = mid
        else:
            high = mid - 1
    return low
