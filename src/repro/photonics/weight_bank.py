"""MRR weight bank: the multiply stage of broadcast-and-weight.

A weight bank is a row of add-drop microrings on a bus waveguide, one ring
per WDM channel.  Ring ``k`` is tuned so that a fraction ``d_k`` of its
channel's power exits at the drop port and the remaining ``1 - d_k`` at
the through port.  Routing all drop ports to one photodiode and all
through ports to another, the balanced photocurrent for channel powers
``P_k`` is

    I = R * sum_k P_k * (d_k - (1 - d_k)) = R * sum_k P_k * (2 d_k - 1)

so choosing ``d_k = (1 + w_k) / 2`` realizes an arbitrary signed weight
``w_k`` in [-1, +1]: the bank physically computes ``R * sum_k P_k w_k``,
a multiply-and-accumulate (Tait et al. 2017; PCNNA section III).

Two fidelity levels are implemented:

* **ideal** — each ring affects only its own channel and the drop
  fraction equals the calibrated target exactly.  The bank output is the
  exact dot product.
* **physical** (``noise.crosstalk_active`` or tuning error) — drop
  fractions come from the Lorentzian line shape of every ring evaluated
  at every channel, with the bus cascade ordering taken into account, so
  inter-channel crosstalk and miscalibration perturb the result.

The transfer path is array-first: calibration inverts the Lorentzian for
the whole bank in one vectorized evaluation, the physical-mode response
is a single ``(rings, channels)`` line-shape matrix with a cumulative
bus cascade, and :meth:`WeightBank.apply` weights a single ``(channels,)``
wave or a batched ``(batch, channels)`` stack of waves alike.
"""

from __future__ import annotations

import numpy as np

from repro.photonics.microring import (
    Microring,
    MicroringDesign,
    detunings_for_drop,
    drop_transmission_profile,
)
from repro.photonics.noise import NoiseConfig, ideal
from repro.photonics.wdm import WdmGrid

_MAX_DETUNING_LINEWIDTHS = 1e4
"""Detuning cap (in linewidths) used to realize a ~zero drop fraction."""


class WeightBank:
    """A bank of tunable microrings realizing a signed weight vector.

    Args:
        grid: WDM grid; one ring is instantiated per channel.
        design: shared microring design parameters.
        noise: non-ideality configuration.

    Attributes:
        rings: the per-channel :class:`Microring` instances, in bus order
            (channel 0 is encountered first on the bus).
    """

    def __init__(
        self,
        grid: WdmGrid,
        design: MicroringDesign | None = None,
        noise: NoiseConfig | None = None,
    ) -> None:
        self.grid = grid
        self.design = design if design is not None else MicroringDesign()
        self.noise = noise if noise is not None else ideal()
        self.rings = [
            Microring(frequency, self.design) for frequency in grid.frequencies_hz
        ]
        self._weights = np.zeros(grid.num_channels, dtype=float)
        self._drop_fractions = np.full(grid.num_channels, 0.5, dtype=float)

    # -- configuration -------------------------------------------------------

    @property
    def num_rings(self) -> int:
        """Number of rings (== number of WDM channels) in the bank."""
        return self.grid.num_channels

    @property
    def weights(self) -> np.ndarray:
        """The most recently programmed weight vector (copy)."""
        return self._weights.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        """Program the bank to realize ``weights`` (each in [-1, +1]).

        Calibration inverts the ideal per-ring map ``d = (1 + w) / 2``; any
        active tuning error perturbs the realized drop fractions, and
        crosstalk (if enabled) further perturbs the applied weighting.

        Raises:
            ValueError: if the vector length mismatches the bank or any
                weight falls outside [-1, 1].
        """
        array = np.asarray(weights, dtype=float)
        if array.shape != (self.num_rings,):
            raise ValueError(
                f"expected {self.num_rings} weights, got shape {array.shape}"
            )
        if np.any(np.abs(array) > 1.0 + 1e-12):
            bad = array[np.abs(array) > 1.0 + 1e-12]
            raise ValueError(f"weights must lie in [-1, 1]; out-of-range: {bad[:5]!r}")
        array = np.clip(array, -1.0, 1.0)
        self._weights = array.copy()

        drops = (1.0 + array) / 2.0
        if self.noise.tuning_error_active:
            jitter = self.noise.rng.normal(
                0.0, self.noise.ring_tuning_sigma, self.num_rings
            )
            drops = np.clip(drops + jitter, 0.0, 1.0)
        self._drop_fractions = drops
        self._apply_detunings(drops)

    @property
    def _linewidths_hz(self) -> np.ndarray:
        """Per-ring FWHM linewidths at each ring's own channel (Hz)."""
        return self.grid.frequencies_hz / self.design.quality_factor

    def _apply_detunings(self, drop_fractions: np.ndarray) -> None:
        """Tune each physical ring to realize its target drop fraction.

        The detunings for the whole bank are computed in one vectorized
        inverse-Lorentzian evaluation, then written onto the ring objects.
        """
        peak = self.design.peak_drop_transmission
        targets = np.minimum(np.asarray(drop_fractions, dtype=float) * peak, peak)
        detunings = detunings_for_drop(
            targets, self._linewidths_hz, peak, _MAX_DETUNING_LINEWIDTHS
        )
        for ring, detuning in zip(self.rings, detunings):
            ring.detuning_hz = detuning

    # -- transfer ------------------------------------------------------------

    def transmission_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-channel aggregate (drop, through) power fractions.

        In ideal mode ring ``k`` interacts only with channel ``k``.  In
        physical mode every ring's Lorentzian is evaluated at every channel
        and the serial bus ordering is honoured: channel ``k`` reaching ring
        ``j`` has already been attenuated by the through response of rings
        ``0..j-1``.

        Returns:
            ``(drop, through)`` arrays of shape ``(num_channels,)`` with
            ``0 <= drop, through`` and ``drop + through <= 1``.
        """
        if not self.noise.crosstalk_active:
            drop = self._drop_fractions.copy()
            return drop, 1.0 - drop

        frequencies = self.grid.frequencies_hz
        resonances = np.array([ring.resonance_hz for ring in self.rings])
        # Every ring's Lorentzian at every channel, one (rings, channels)
        # evaluation; row j is ring j's drop response across the grid.
        ring_drop = drop_transmission_profile(
            frequencies[None, :],
            resonances[:, None],
            self._linewidths_hz[:, None],
            self.design.peak_drop_transmission,
        )
        ring_through = 1.0 - ring_drop
        # Serial bus cascade: channel power reaching ring j has passed the
        # through ports of rings 0..j-1 — a cumulative product down rows.
        remaining_before = np.cumprod(
            np.vstack([np.ones((1, self.num_rings)), ring_through[:-1]]), axis=0
        )
        drop = (remaining_before * ring_drop).sum(axis=0)
        remaining = remaining_before[-1] * ring_through[-1]
        return drop, remaining

    def apply(self, input_powers_w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Weight WDM power vectors.

        Args:
            input_powers_w: per-channel optical powers entering the bus —
                a single ``(channels,)`` vector or a batched
                ``(..., channels)`` stack, one MAC wave per leading
                element (the aggregate ring transfer applies identically
                to every wave, since the weights are held between waves).

        Returns:
            ``(drop_powers, through_powers)`` per channel, in watts, with
            the same shape as the input.

        Raises:
            ValueError: on shape mismatch or negative input power.
        """
        powers = np.asarray(input_powers_w, dtype=float)
        if powers.ndim == 0 or powers.shape[-1] != self.num_rings:
            raise ValueError(
                f"expected {self.num_rings} channel powers on the last "
                f"axis, got shape {powers.shape}"
            )
        if np.any(powers < 0):
            raise ValueError("optical power cannot be negative")
        drop, through = self.transmission_matrix()
        return powers * drop, powers * through

    def effective_weights(self) -> np.ndarray:
        """The weights the bank actually applies, including non-idealities.

        Computed as ``drop - through`` per channel, which is what balanced
        detection measures for unit input power.
        """
        drop, through = self.transmission_matrix()
        return drop - through

    def __repr__(self) -> str:
        return (
            f"WeightBank(rings={self.num_rings}, "
            f"crosstalk={self.noise.crosstalk_active})"
        )
