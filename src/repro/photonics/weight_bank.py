"""MRR weight bank: the multiply stage of broadcast-and-weight.

A weight bank is a row of add-drop microrings on a bus waveguide, one ring
per WDM channel.  Ring ``k`` is tuned so that a fraction ``d_k`` of its
channel's power exits at the drop port and the remaining ``1 - d_k`` at
the through port.  Routing all drop ports to one photodiode and all
through ports to another, the balanced photocurrent for channel powers
``P_k`` is

    I = R * sum_k P_k * (d_k - (1 - d_k)) = R * sum_k P_k * (2 d_k - 1)

so choosing ``d_k = (1 + w_k) / 2`` realizes an arbitrary signed weight
``w_k`` in [-1, +1]: the bank physically computes ``R * sum_k P_k w_k``,
a multiply-and-accumulate (Tait et al. 2017; PCNNA section III).

Two fidelity levels are implemented:

* **ideal** — each ring affects only its own channel and the drop
  fraction equals the calibrated target exactly.  The bank output is the
  exact dot product.
* **physical** (``noise.crosstalk_active`` or tuning error) — drop
  fractions come from the Lorentzian line shape of every ring evaluated
  at every channel, with the bus cascade ordering taken into account, so
  inter-channel crosstalk and miscalibration perturb the result.
"""

from __future__ import annotations

import numpy as np

from repro.photonics.microring import Microring, MicroringDesign
from repro.photonics.noise import NoiseConfig, ideal
from repro.photonics.wdm import WdmGrid

_MAX_DETUNING_LINEWIDTHS = 1e4
"""Detuning cap (in linewidths) used to realize a ~zero drop fraction."""


class WeightBank:
    """A bank of tunable microrings realizing a signed weight vector.

    Args:
        grid: WDM grid; one ring is instantiated per channel.
        design: shared microring design parameters.
        noise: non-ideality configuration.

    Attributes:
        rings: the per-channel :class:`Microring` instances, in bus order
            (channel 0 is encountered first on the bus).
    """

    def __init__(
        self,
        grid: WdmGrid,
        design: MicroringDesign | None = None,
        noise: NoiseConfig | None = None,
    ) -> None:
        self.grid = grid
        self.design = design if design is not None else MicroringDesign()
        self.noise = noise if noise is not None else ideal()
        self.rings = [
            Microring(frequency, self.design) for frequency in grid.frequencies_hz
        ]
        self._weights = np.zeros(grid.num_channels, dtype=float)
        self._drop_fractions = np.full(grid.num_channels, 0.5, dtype=float)

    # -- configuration -------------------------------------------------------

    @property
    def num_rings(self) -> int:
        """Number of rings (== number of WDM channels) in the bank."""
        return self.grid.num_channels

    @property
    def weights(self) -> np.ndarray:
        """The most recently programmed weight vector (copy)."""
        return self._weights.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        """Program the bank to realize ``weights`` (each in [-1, +1]).

        Calibration inverts the ideal per-ring map ``d = (1 + w) / 2``; any
        active tuning error perturbs the realized drop fractions, and
        crosstalk (if enabled) further perturbs the applied weighting.

        Raises:
            ValueError: if the vector length mismatches the bank or any
                weight falls outside [-1, 1].
        """
        array = np.asarray(weights, dtype=float)
        if array.shape != (self.num_rings,):
            raise ValueError(
                f"expected {self.num_rings} weights, got shape {array.shape}"
            )
        if np.any(np.abs(array) > 1.0 + 1e-12):
            bad = array[np.abs(array) > 1.0 + 1e-12]
            raise ValueError(f"weights must lie in [-1, 1]; out-of-range: {bad[:5]!r}")
        array = np.clip(array, -1.0, 1.0)
        self._weights = array.copy()

        drops = (1.0 + array) / 2.0
        if self.noise.tuning_error_active:
            jitter = self.noise.rng.normal(
                0.0, self.noise.ring_tuning_sigma, self.num_rings
            )
            drops = np.clip(drops + jitter, 0.0, 1.0)
        self._drop_fractions = drops
        self._apply_detunings(drops)

    def _apply_detunings(self, drop_fractions: np.ndarray) -> None:
        """Tune each physical ring to realize its target drop fraction."""
        for ring, target in zip(self.rings, drop_fractions):
            peak = ring.design.peak_drop_transmission
            achievable = min(float(target) * peak, peak)
            if achievable <= 0.0:
                ring.detuning_hz = _MAX_DETUNING_LINEWIDTHS * ring.linewidth_hz
            else:
                ring.detuning_hz = ring.detuning_for_drop(achievable)

    # -- transfer ------------------------------------------------------------

    def transmission_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-channel aggregate (drop, through) power fractions.

        In ideal mode ring ``k`` interacts only with channel ``k``.  In
        physical mode every ring's Lorentzian is evaluated at every channel
        and the serial bus ordering is honoured: channel ``k`` reaching ring
        ``j`` has already been attenuated by the through response of rings
        ``0..j-1``.

        Returns:
            ``(drop, through)`` arrays of shape ``(num_channels,)`` with
            ``0 <= drop, through`` and ``drop + through <= 1``.
        """
        if not self.noise.crosstalk_active:
            drop = self._drop_fractions.copy()
            return drop, 1.0 - drop

        frequencies = self.grid.frequencies_hz
        num = self.num_rings
        drop = np.zeros(num, dtype=float)
        remaining = np.ones(num, dtype=float)
        for ring in self.rings:
            ring_drop = np.asarray(ring.drop_transmission(frequencies), dtype=float)
            ring_through = 1.0 - ring_drop
            drop += remaining * ring_drop
            remaining *= ring_through
        return drop, remaining

    def apply(self, input_powers_w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Weight a WDM power vector.

        Args:
            input_powers_w: per-channel optical powers entering the bus.

        Returns:
            ``(drop_powers, through_powers)`` per channel, in watts.

        Raises:
            ValueError: on shape mismatch or negative input power.
        """
        powers = np.asarray(input_powers_w, dtype=float)
        if powers.shape != (self.num_rings,):
            raise ValueError(
                f"expected {self.num_rings} channel powers, got shape {powers.shape}"
            )
        if np.any(powers < 0):
            raise ValueError("optical power cannot be negative")
        drop, through = self.transmission_matrix()
        return powers * drop, powers * through

    def effective_weights(self) -> np.ndarray:
        """The weights the bank actually applies, including non-idealities.

        Computed as ``drop - through`` per channel, which is what balanced
        detection measures for unit input power.
        """
        drop, through = self.transmission_matrix()
        return drop - through

    def __repr__(self) -> str:
        return (
            f"WeightBank(rings={self.num_rings}, "
            f"crosstalk={self.noise.crosstalk_active})"
        )
