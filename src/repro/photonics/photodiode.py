"""Photodiode and balanced-photodetector models.

The photodiode is the summation device of broadcast-and-weight: every
wavelength incident on it contributes to one aggregate photocurrent, which
*is* the accumulate of the multiply-and-accumulate.  A balanced pair of
photodiodes (one fed by the drop ports, one by the through ports) produces
a signed output, which is how MRR weight banks realize weights in
[-1, +1] (Tait et al. 2017).

Noise model (active only when the :class:`NoiseConfig` enables it):

* shot noise:     sigma_i^2 = 2 q I B
* thermal noise:  sigma_i^2 = 4 k T B / R_load

Detection is array-first: ``detect`` accepts a per-channel power vector
``(channels,)`` (returning a float, the original scalar contract) or a
batch ``(batch, channels)`` / ``(..., channels)`` stack (returning one
photocurrent per leading element), with noise sampled independently per
batch element.  The batched path performs the identical per-element
arithmetic, so ideal-mode results are bit-equal to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.constants import (
    BOLTZMANN_CONSTANT,
    DEFAULT_RESPONSIVITY_A_PER_W,
    DEFAULT_TIA_BANDWIDTH_HZ,
    DEFAULT_TIA_GAIN_OHM,
    ELEMENTARY_CHARGE,
    ROOM_TEMPERATURE_K,
)
from repro.photonics.noise import NoiseConfig, ideal


@dataclass(frozen=True)
class PhotodiodeSpec:
    """Static photodiode + receiver parameters.

    Attributes:
        responsivity_a_per_w: photocurrent per optical watt (A/W).
        bandwidth_hz: receiver electrical bandwidth (Hz).
        load_resistance_ohm: load / TIA input resistance for thermal noise.
        dark_current_a: dark current (A), added to shot-noise current.
        tia_gain_ohm: transimpedance gain converting current to voltage.
        temperature_k: receiver temperature for thermal noise.
    """

    responsivity_a_per_w: float = DEFAULT_RESPONSIVITY_A_PER_W
    bandwidth_hz: float = DEFAULT_TIA_BANDWIDTH_HZ
    load_resistance_ohm: float = 50.0
    dark_current_a: float = 1e-9
    tia_gain_ohm: float = DEFAULT_TIA_GAIN_OHM
    temperature_k: float = ROOM_TEMPERATURE_K

    def __post_init__(self) -> None:
        if self.responsivity_a_per_w <= 0:
            raise ValueError(
                f"responsivity must be positive, got {self.responsivity_a_per_w!r}"
            )
        if self.bandwidth_hz <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_hz!r}")
        if self.load_resistance_ohm <= 0:
            raise ValueError(
                f"load resistance must be positive, got {self.load_resistance_ohm!r}"
            )
        if self.dark_current_a < 0:
            raise ValueError(
                f"dark current must be non-negative, got {self.dark_current_a!r}"
            )

    def shot_noise_sigma_a(
        self, photocurrent_a: np.ndarray | float
    ) -> np.ndarray | float:
        """RMS shot-noise current (A) at given mean photocurrents.

        Accepts a scalar (returns a float) or an array of mean currents
        (returns the per-element sigmas).
        """
        mean = np.abs(np.asarray(photocurrent_a, dtype=float)) + self.dark_current_a
        sigma = np.sqrt(2.0 * ELEMENTARY_CHARGE * mean * self.bandwidth_hz)
        if sigma.ndim == 0:
            return float(sigma)
        return sigma

    def thermal_noise_sigma_a(self) -> float:
        """RMS thermal (Johnson) noise current (A)."""
        return float(
            np.sqrt(
                4.0
                * BOLTZMANN_CONSTANT
                * self.temperature_k
                * self.bandwidth_hz
                / self.load_resistance_ohm
            )
        )


class Photodiode:
    """A single photodiode that sums all incident wavelengths.

    The WDM channels are mutually incoherent (distinct wavelengths), so
    their powers add: ``I = R * sum(P_k)`` — the physical accumulate.
    """

    def __init__(
        self,
        spec: PhotodiodeSpec | None = None,
        noise: NoiseConfig | None = None,
    ) -> None:
        self.spec = spec if spec is not None else PhotodiodeSpec()
        self.noise = noise if noise is not None else ideal()

    def detect(self, powers_w: np.ndarray) -> np.ndarray | float:
        """Convert per-channel optical power vectors to photocurrents (A).

        Args:
            powers_w: non-negative optical powers per wavelength; either a
                single ``(channels,)`` vector or a ``(..., channels)``
                batch (channels on the last axis).

        Returns:
            Photocurrent in amperes (noise included when enabled): a float
            for a single vector, an array of leading-shape currents for a
            batch.

        Raises:
            ValueError: if any incident power is negative.
        """
        powers = np.asarray(powers_w, dtype=float)
        if np.any(powers < 0):
            raise ValueError("optical power cannot be negative")
        if powers.ndim <= 1:
            current = self.spec.responsivity_a_per_w * float(powers.sum())
            return self._add_noise(current)
        # Batched: one summation per leading element.  The per-row pairwise
        # reduction over the contiguous last axis performs the same float
        # additions as the 1-D sum above, keeping ideal mode bit-equal.
        currents = self.spec.responsivity_a_per_w * np.ascontiguousarray(
            powers
        ).sum(axis=-1)
        return self._add_noise(currents)

    def _add_noise(self, current_a: np.ndarray | float) -> np.ndarray | float:
        """Apply shot and thermal noise to mean currents (scalar or array)."""
        noisy = current_a
        if self.noise.shot_noise_active:
            sigma = self.spec.shot_noise_sigma_a(current_a)
            noisy = noisy + self.noise.rng.normal(0.0, sigma)
        if self.noise.thermal_noise_active:
            sigma = self.spec.thermal_noise_sigma_a()
            noisy = noisy + self.noise.rng.normal(
                0.0, sigma, size=np.shape(current_a)
            )
        if np.ndim(noisy) == 0:
            return float(noisy)
        return noisy

    def to_voltage(self, current_a: float) -> float:
        """Convert photocurrent to the TIA output voltage (V)."""
        return current_a * self.spec.tia_gain_ohm


class BalancedPhotodetector:
    """Two photodiodes subtracted: signed summation for weight banks.

    The drop-port light of every ring lands on the positive diode and the
    through-port light on the negative diode, so a ring passing fraction
    ``d`` to drop and ``1 - d`` to through contributes ``P * (2d - 1)`` to
    the balanced current — a weight in [-1, +1].
    """

    def __init__(
        self,
        spec: PhotodiodeSpec | None = None,
        noise: NoiseConfig | None = None,
    ) -> None:
        self.spec = spec if spec is not None else PhotodiodeSpec()
        self.positive = Photodiode(self.spec, noise)
        self.negative = Photodiode(self.spec, noise)

    @property
    def noise(self) -> NoiseConfig:
        """Noise configuration shared by both diodes."""
        return self.positive.noise

    def detect(
        self, drop_powers_w: np.ndarray, through_powers_w: np.ndarray
    ) -> np.ndarray | float:
        """Balanced photocurrent: I(drop) - I(through), in amperes.

        Accepts ``(channels,)`` vectors (returns a float) or batched
        ``(..., channels)`` stacks (returns one balanced current per
        leading element).
        """
        return self.positive.detect(drop_powers_w) - self.negative.detect(
            through_powers_w
        )

    def to_voltage(self, current_a: float) -> float:
        """Convert balanced current to the TIA output voltage (V)."""
        return current_a * self.spec.tia_gain_ohm
