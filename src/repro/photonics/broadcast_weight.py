"""Broadcast-and-weight networks: photonic MAC units and layers.

This module assembles the device models into the Fig. 1 protocol of the
PCNNA paper:

1. each input value is encoded onto a dedicated wavelength (laser + MZM);
2. the bundled WDM signal is broadcast on a waveguide to every destination
   weight bank (a splitter when there are several banks);
3. each bank weights every wavelength with its microrings;
4. a balanced photodiode per bank sums the weighted wavelengths into a
   photocurrent — completing one multiply-and-accumulate per bank.

:class:`PhotonicMacUnit` is a single bank + detector (one dot product);
:class:`BroadcastAndWeightLayer` is K banks sharing one broadcast bus (one
matrix-vector product, i.e. K kernels applied to one receptive field in
parallel — exactly the PCNNA inner loop).

Both expose a batched entry point (``compute_batch``) that pushes a whole
``(waves, channels)`` stack of MAC waves — e.g. every kernel location of
every image in a minibatch — through the substrate with a handful of
array operations per bank instead of a Python loop per wave.  In ideal
mode the batched path performs the identical per-element arithmetic as
wave-by-wave :meth:`~BroadcastAndWeightLayer.compute`, so the two are
bit-equal; in noisy mode RIN / shot / thermal samples are drawn
independently per wave, preserving the statistics.
"""

from __future__ import annotations

import numpy as np

from repro.photonics.laser import LaserBank, LaserSpec
from repro.photonics.microring import MicroringDesign
from repro.photonics.modulator import MachZehnderModulator, ModulatorSpec
from repro.photonics.noise import NoiseConfig, ideal
from repro.photonics.photodiode import BalancedPhotodetector, PhotodiodeSpec
from repro.photonics.waveguide import Splitter, Waveguide
from repro.photonics.wdm import WdmGrid


class PhotonicMacUnit:
    """One weight bank + balanced detector: a signed dot product in light.

    Args:
        num_inputs: length of the dot product (== WDM channel count).
        grid: optional explicit WDM grid; defaults to a 100 GHz grid.
        ring_design: microring design shared by the bank.
        laser_spec: per-channel laser parameters.
        modulator_spec: MZM parameters.
        photodiode_spec: detector parameters.
        noise: non-ideality configuration shared by every device.
        bus: optional waveguide between modulators and the bank.
    """

    def __init__(
        self,
        num_inputs: int,
        grid: WdmGrid | None = None,
        ring_design: MicroringDesign | None = None,
        laser_spec: LaserSpec | None = None,
        modulator_spec: ModulatorSpec | None = None,
        photodiode_spec: PhotodiodeSpec | None = None,
        noise: NoiseConfig | None = None,
        bus: Waveguide | None = None,
    ) -> None:
        if num_inputs <= 0:
            raise ValueError(f"num_inputs must be positive, got {num_inputs!r}")
        self.noise = noise if noise is not None else ideal()
        self.grid = grid if grid is not None else WdmGrid(num_channels=num_inputs)
        if self.grid.num_channels != num_inputs:
            raise ValueError(
                f"grid has {self.grid.num_channels} channels but num_inputs is "
                f"{num_inputs}"
            )
        self.lasers = LaserBank(self.grid, laser_spec, self.noise)
        self.modulator = MachZehnderModulator(modulator_spec)
        self.bus = bus if bus is not None else Waveguide(length_m=0.0)
        # Import here is unnecessary; WeightBank is a sibling module.
        from repro.photonics.weight_bank import WeightBank

        self.bank = WeightBank(self.grid, ring_design, self.noise)
        self.detector = BalancedPhotodetector(photodiode_spec, self.noise)

    @property
    def num_inputs(self) -> int:
        """Dot-product length."""
        return self.grid.num_channels

    @property
    def calibration_scale(self) -> float:
        """Photocurrent produced per unit (x * w) term, in amperes.

        Dividing the balanced current by this scale recovers the
        dimensionless dot product.
        """
        return (
            self.detector.spec.responsivity_a_per_w
            * self.lasers.spec.power_w
            * self.bus.transmission
        )

    def set_weights(self, weights: np.ndarray) -> None:
        """Program the weight vector (each entry in [-1, 1])."""
        self.bank.set_weights(weights)

    def compute(self, inputs: np.ndarray) -> float:
        """Run one optical MAC: returns an estimate of ``dot(inputs, w)``.

        Args:
            inputs: normalized input vector, entries in [0, 1].

        Returns:
            The recovered dot product (exact in ideal mode).
        """
        powers = self.lasers.emit(self.detector.spec.bandwidth_hz)
        powers = powers * self.modulator.encode(inputs)
        powers = self.bus.propagate(powers)
        drop, through = self.bank.apply(powers)
        current = self.detector.detect(drop, through)
        return current / self.calibration_scale

    def compute_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Run a stack of optical MACs in one vectorized pass.

        Args:
            inputs: normalized input vectors of shape
                ``(waves, num_inputs)``, entries in [0, 1].

        Returns:
            Array of shape ``(waves,)`` estimating ``inputs @ w``.

        Raises:
            ValueError: if the trailing axis mismatches the unit.
        """
        batch = np.ascontiguousarray(np.atleast_2d(np.asarray(inputs, dtype=float)))
        if batch.ndim != 2 or batch.shape[-1] != self.num_inputs:
            raise ValueError(
                f"expected (waves, {self.num_inputs}) inputs, got shape "
                f"{np.asarray(inputs).shape}"
            )
        powers = self.lasers.emit(
            self.detector.spec.bandwidth_hz, batch_size=batch.shape[0]
        )
        powers = powers * self.modulator.encode(batch)
        powers = self.bus.propagate(powers)
        drop, through = self.bank.apply(powers)
        currents = self.detector.detect(drop, through)
        return np.atleast_1d(currents) / self.calibration_scale

    def dot(self, inputs: np.ndarray, weights: np.ndarray) -> float:
        """Convenience: program ``weights`` then compute one MAC."""
        self.set_weights(weights)
        return self.compute(inputs)


class BroadcastAndWeightLayer:
    """K weight banks on one broadcast bus: a photonic matrix-vector product.

    This is the PCNNA optical core: one receptive field is broadcast once
    and K kernel banks weight it simultaneously, so all K outputs emerge
    within a single fast-clock cycle regardless of K (paper section IV).

    Args:
        num_inputs: receptive-field size (WDM channel count).
        num_outputs: number of kernels / banks operating in parallel.
        noise: shared non-ideality configuration.
        Other args mirror :class:`PhotonicMacUnit`.
    """

    def __init__(
        self,
        num_inputs: int,
        num_outputs: int,
        grid: WdmGrid | None = None,
        ring_design: MicroringDesign | None = None,
        laser_spec: LaserSpec | None = None,
        modulator_spec: ModulatorSpec | None = None,
        photodiode_spec: PhotodiodeSpec | None = None,
        noise: NoiseConfig | None = None,
    ) -> None:
        if num_inputs <= 0:
            raise ValueError(f"num_inputs must be positive, got {num_inputs!r}")
        if num_outputs <= 0:
            raise ValueError(f"num_outputs must be positive, got {num_outputs!r}")
        self.noise = noise if noise is not None else ideal()
        self.grid = grid if grid is not None else WdmGrid(num_channels=num_inputs)
        if self.grid.num_channels != num_inputs:
            raise ValueError(
                f"grid has {self.grid.num_channels} channels but num_inputs is "
                f"{num_inputs}"
            )
        self.num_outputs = num_outputs
        self.lasers = LaserBank(self.grid, laser_spec, self.noise)
        self.modulator = MachZehnderModulator(modulator_spec)
        self.splitter = Splitter(num_outputs)

        from repro.photonics.weight_bank import WeightBank

        self.banks = [
            WeightBank(self.grid, ring_design, self.noise)
            for _ in range(num_outputs)
        ]
        self.detectors = [
            BalancedPhotodetector(photodiode_spec, self.noise)
            for _ in range(num_outputs)
        ]

    @property
    def num_inputs(self) -> int:
        """Receptive-field size."""
        return self.grid.num_channels

    @property
    def total_rings(self) -> int:
        """Total microrings across all banks (K * Nkernel for one layer)."""
        return sum(bank.num_rings for bank in self.banks)

    @property
    def calibration_scale(self) -> float:
        """Balanced current per unit (x * w) term at each detector (A)."""
        detector = self.detectors[0]
        return (
            detector.spec.responsivity_a_per_w
            * self.lasers.spec.power_w
            * self.splitter.per_output_transmission
        )

    def set_weight_matrix(self, matrix: np.ndarray) -> None:
        """Program all banks from a ``(num_outputs, num_inputs)`` matrix.

        Raises:
            ValueError: on shape mismatch or out-of-range weights.
        """
        weights = np.asarray(matrix, dtype=float)
        expected = (self.num_outputs, self.num_inputs)
        if weights.shape != expected:
            raise ValueError(
                f"expected weight matrix of shape {expected}, got {weights.shape}"
            )
        for bank, row in zip(self.banks, weights):
            bank.set_weights(row)

    def compute(self, inputs: np.ndarray) -> np.ndarray:
        """Broadcast ``inputs`` once and return all K weighted sums.

        Args:
            inputs: normalized receptive field, entries in [0, 1].

        Returns:
            Array of shape ``(num_outputs,)`` estimating ``W @ inputs``.
        """
        powers = self.lasers.emit()
        powers = powers * self.modulator.encode(inputs)
        branches = self.splitter.split(powers)
        scale = self.calibration_scale
        outputs = np.empty(self.num_outputs, dtype=float)
        for index, (bank, detector, branch) in enumerate(
            zip(self.banks, self.detectors, branches)
        ):
            drop, through = bank.apply(branch)
            outputs[index] = detector.detect(drop, through) / scale
        return outputs

    def compute_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Broadcast a whole stack of MAC waves through the layer at once.

        This is the vectorized engine behind batched photonic
        convolution: every row of ``inputs`` is one receptive field (from
        any kernel location of any image in a minibatch), and each weight
        bank processes the entire stack with a few array operations —
        elementwise weighting plus one summation per wave — instead of a
        Python loop per wave.

        Args:
            inputs: normalized receptive fields of shape
                ``(waves, num_inputs)``, entries in [0, 1].

        Returns:
            Array of shape ``(waves, num_outputs)`` estimating
            ``inputs @ W.T``.

        Raises:
            ValueError: if the trailing axis mismatches the layer.
        """
        batch = np.ascontiguousarray(np.atleast_2d(np.asarray(inputs, dtype=float)))
        if batch.ndim != 2 or batch.shape[-1] != self.num_inputs:
            raise ValueError(
                f"expected (waves, {self.num_inputs}) inputs, got shape "
                f"{np.asarray(inputs).shape}"
            )
        num_waves = batch.shape[0]
        powers = self.lasers.emit(batch_size=num_waves)
        powers = powers * self.modulator.encode(batch)
        # The splitter delivers the same attenuated copy to every bank.
        branch = powers * self.splitter.per_output_transmission
        scale = self.calibration_scale
        outputs = np.empty((num_waves, self.num_outputs), dtype=float)
        for index, (bank, detector) in enumerate(
            zip(self.banks, self.detectors)
        ):
            drop, through = bank.apply(branch)
            outputs[:, index] = detector.detect(drop, through) / scale
        return outputs

    def matvec(self, inputs: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Convenience: program ``matrix`` then compute ``matrix @ inputs``."""
        self.set_weight_matrix(matrix)
        return self.compute(inputs)
