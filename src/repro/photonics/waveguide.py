"""Waveguide and passive-component loss models.

The broadcast bus of a broadcast-and-weight network is a waveguide that
every weight bank taps.  This module models propagation loss, lumped
insertion losses, and power splitters, all as scalar power-transmission
factors that multiply the WDM power vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.constants import DEFAULT_WAVEGUIDE_LOSS_DB_PER_CM, db_to_linear


@dataclass(frozen=True)
class Waveguide:
    """A straight waveguide segment.

    Attributes:
        length_m: physical length (m).
        loss_db_per_cm: propagation loss (dB/cm).
    """

    length_m: float
    loss_db_per_cm: float = DEFAULT_WAVEGUIDE_LOSS_DB_PER_CM

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise ValueError(f"length must be non-negative, got {self.length_m!r}")
        if self.loss_db_per_cm < 0:
            raise ValueError(
                f"loss must be non-negative, got {self.loss_db_per_cm!r}"
            )

    @property
    def loss_db(self) -> float:
        """Total propagation loss over the segment (dB)."""
        return self.loss_db_per_cm * (self.length_m * 100.0)

    @property
    def transmission(self) -> float:
        """Power transmission factor of the segment, in (0, 1]."""
        return 1.0 / db_to_linear(self.loss_db)

    def propagate(self, powers: np.ndarray) -> np.ndarray:
        """Attenuate a per-channel power vector through the segment."""
        return np.asarray(powers, dtype=float) * self.transmission


@dataclass(frozen=True)
class Splitter:
    """An ideal 1-to-N power splitter with optional excess loss.

    Attributes:
        num_outputs: number of output ports.
        excess_loss_db: loss beyond the fundamental 1/N split.
    """

    num_outputs: int
    excess_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.num_outputs <= 0:
            raise ValueError(
                f"splitter needs at least one output, got {self.num_outputs!r}"
            )
        if self.excess_loss_db < 0:
            raise ValueError(
                f"excess loss must be non-negative, got {self.excess_loss_db!r}"
            )

    @property
    def per_output_transmission(self) -> float:
        """Fraction of input power delivered to each output port."""
        return (1.0 / self.num_outputs) / db_to_linear(self.excess_loss_db)

    def split(self, powers: np.ndarray) -> list[np.ndarray]:
        """Split a power vector into ``num_outputs`` attenuated copies."""
        share = self.per_output_transmission
        base = np.asarray(powers, dtype=float)
        return [base * share for _ in range(self.num_outputs)]


def cascade_transmission(*stages: float) -> float:
    """Multiply a chain of power-transmission factors.

    Raises:
        ValueError: if any stage is outside [0, 1].
    """
    total = 1.0
    for stage in stages:
        if not 0.0 <= stage <= 1.0:
            raise ValueError(f"transmission must be in [0, 1], got {stage!r}")
        total *= stage
    return total
