"""Microring resonator (MRR) device model.

A microring resonator is a circular waveguide evanescently coupled to one
(all-pass) or two (add-drop) bus waveguides.  Near a resonance the
through-port transmission dips and the drop-port transmission peaks, both
with a Lorentzian line shape.  Tuning the ring's resonance relative to a
fixed laser wavelength changes how much of that wavelength is transmitted
— this is the "weighting" mechanism of broadcast-and-weight photonic
neural networks (Tait et al. 2017) that PCNNA builds on.

The model implemented here is the standard coupled-mode-theory Lorentzian:

    T_drop(delta)    = T_peak / (1 + (2 * delta / FWHM)**2)
    T_through(delta) = 1 - (1 - T_min) / (1 + (2 * delta / FWHM)**2)

where ``delta`` is the detuning between the optical carrier and the ring
resonance, ``FWHM = f_res / Q`` is the linewidth, ``T_peak`` is the peak
drop-port transmission and ``T_min`` the minimum through-port transmission
(limited by the extinction ratio).  The inverse maps (transmission ->
detuning) are closed-form, which is what makes weight calibration exact.

Both the forward and inverse transfer functions exist in two forms: the
object-oriented :class:`Microring` (one physical ring) and array-first
module functions (:func:`lorentzian_lineshape`,
:func:`drop_transmission_profile`, :func:`detunings_for_drop`) that
evaluate whole banks of rings — arbitrary ``(rings,)`` / ``(rings,
channels)`` / ``(batch, channels)`` arrays — in a single NumPy expression.
The vectorized execution engine is built on the array forms; the scalar
class delegates to them so the two can never drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.photonics.constants import (
    DEFAULT_EFFECTIVE_INDEX,
    DEFAULT_GROUP_INDEX,
    DEFAULT_QUALITY_FACTOR,
    DEFAULT_RING_FOOTPRINT_M,
    DEFAULT_RING_RADIUS_M,
    SPEED_OF_LIGHT,
    wavelength_to_frequency,
)


def lorentzian_lineshape(
    carrier_hz: np.ndarray | float,
    resonance_hz: np.ndarray | float,
    linewidth_hz: np.ndarray | float,
) -> np.ndarray:
    """Unit-peak Lorentzian response, broadcast over any array shapes.

    Args:
        carrier_hz: optical carrier frequencies (any broadcastable shape).
        resonance_hz: ring resonance frequencies.
        linewidth_hz: FWHM linewidths.

    Returns:
        ``1 / (1 + (2 * (carrier - resonance) / FWHM)**2)`` elementwise.
    """
    delta = np.asarray(carrier_hz, dtype=float) - np.asarray(
        resonance_hz, dtype=float
    )
    half_width = 0.5 * np.asarray(linewidth_hz, dtype=float)
    return 1.0 / (1.0 + (delta / half_width) ** 2)


def drop_transmission_profile(
    carrier_hz: np.ndarray | float,
    resonance_hz: np.ndarray | float,
    linewidth_hz: np.ndarray | float,
    peak_drop_transmission: float = 1.0,
) -> np.ndarray:
    """Drop-port power transmission for banks of rings, vectorized.

    All frequency arguments broadcast together, so one call can evaluate
    e.g. every ring of a bank at every WDM channel (``(rings, 1)`` against
    ``(channels,)``) or a ``(batch, channels)`` carrier grid at once.
    """
    return peak_drop_transmission * lorentzian_lineshape(
        carrier_hz, resonance_hz, linewidth_hz
    )


def through_transmission_profile(
    carrier_hz: np.ndarray | float,
    resonance_hz: np.ndarray | float,
    linewidth_hz: np.ndarray | float,
    min_through_transmission: float = 0.0,
) -> np.ndarray:
    """Through-port power transmission for banks of rings, vectorized."""
    depth = 1.0 - min_through_transmission
    return 1.0 - depth * lorentzian_lineshape(
        carrier_hz, resonance_hz, linewidth_hz
    )


def detunings_for_drop(
    transmissions: np.ndarray,
    linewidth_hz: np.ndarray | float,
    peak_drop_transmission: float = 1.0,
    max_detuning_linewidths: float = 1e4,
) -> np.ndarray:
    """Vectorized inverse Lorentzian: detunings realizing drop fractions.

    The whole-bank counterpart of :meth:`Microring.detuning_for_drop`:
    inverts ``T = T_peak / (1 + (2 delta / FWHM)**2)`` elementwise.
    Targets at (or numerically below) zero transmission are mapped to a
    large-but-finite parking detuning of ``max_detuning_linewidths``
    linewidths, the same convention weight banks use to realize a ~zero
    drop fraction.

    Args:
        transmissions: target drop transmissions in ``[0, T_peak]``.
        linewidth_hz: FWHM linewidths (broadcastable to the targets).
        peak_drop_transmission: on-resonance drop transmission.
        max_detuning_linewidths: parking detuning for zero targets.

    Returns:
        Non-negative detunings, same shape as the broadcast inputs.

    Raises:
        ValueError: if any target exceeds the peak transmission.
    """
    targets = np.asarray(transmissions, dtype=float)
    if np.any(targets > peak_drop_transmission + 1e-12):
        raise ValueError(
            f"drop transmission cannot exceed the peak "
            f"{peak_drop_transmission}; got max {targets.max()!r}"
        )
    linewidths = np.broadcast_to(
        np.asarray(linewidth_hz, dtype=float), targets.shape
    )
    half_widths = 0.5 * linewidths
    parked = targets <= 0.0
    safe = np.where(parked, peak_drop_transmission, targets)
    detunings = half_widths * np.sqrt(
        np.maximum(peak_drop_transmission / safe - 1.0, 0.0)
    )
    return np.where(parked, max_detuning_linewidths * linewidths, detunings)


@dataclass(frozen=True)
class MicroringDesign:
    """Static design parameters of a microring resonator.

    Attributes:
        radius_m: ring radius in meters.
        quality_factor: loaded quality factor (resonance f / linewidth).
        group_index: waveguide group index (sets the free spectral range).
        effective_index: waveguide effective index.
        peak_drop_transmission: drop-port transmission exactly on resonance.
        min_through_transmission: through-port transmission on resonance
            (1 / extinction ratio); 0 means infinite extinction.
        footprint_m: side of the square layout area reserved per ring.
        max_detuning_hz: largest resonance shift the tuner can apply.  A
            thermal tuner can typically shift by about one free spectral
            range; the default is set from the FSR at construction sites
            that need it.
    """

    radius_m: float = DEFAULT_RING_RADIUS_M
    quality_factor: float = DEFAULT_QUALITY_FACTOR
    group_index: float = DEFAULT_GROUP_INDEX
    effective_index: float = DEFAULT_EFFECTIVE_INDEX
    peak_drop_transmission: float = 1.0
    min_through_transmission: float = 0.0
    footprint_m: float = DEFAULT_RING_FOOTPRINT_M

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError(f"ring radius must be positive, got {self.radius_m!r}")
        if self.quality_factor <= 0:
            raise ValueError(
                f"quality factor must be positive, got {self.quality_factor!r}"
            )
        if not 0.0 < self.peak_drop_transmission <= 1.0:
            raise ValueError(
                "peak drop transmission must be in (0, 1], got "
                f"{self.peak_drop_transmission!r}"
            )
        if not 0.0 <= self.min_through_transmission < 1.0:
            raise ValueError(
                "min through transmission must be in [0, 1), got "
                f"{self.min_through_transmission!r}"
            )
        if self.footprint_m <= 0:
            raise ValueError(f"footprint must be positive, got {self.footprint_m!r}")

    @property
    def circumference_m(self) -> float:
        """Ring circumference (m)."""
        return 2.0 * math.pi * self.radius_m

    @property
    def footprint_area_m2(self) -> float:
        """Layout area reserved for one ring (m^2)."""
        return self.footprint_m * self.footprint_m

    def free_spectral_range_hz(self) -> float:
        """Free spectral range in frequency (Hz): FSR = c / (n_g * L)."""
        return SPEED_OF_LIGHT / (self.group_index * self.circumference_m)

    def linewidth_hz(self, resonance_hz: float) -> float:
        """Full-width-at-half-maximum linewidth (Hz) at a given resonance."""
        if resonance_hz <= 0:
            raise ValueError(f"resonance must be positive, got {resonance_hz!r}")
        return resonance_hz / self.quality_factor

    def finesse(self, resonance_hz: float) -> float:
        """Finesse = FSR / linewidth; how many channels fit between modes."""
        return self.free_spectral_range_hz() / self.linewidth_hz(resonance_hz)


class Microring:
    """A tunable microring resonator bound to a target wavelength channel.

    The ring is built to resonate at ``target_frequency_hz`` when untuned;
    applying a detuning moves the resonance away from the carrier, which
    lowers the drop-port transmission (and raises the through-port one).

    The class exposes both the forward transfer functions and the inverse
    (transmission -> required detuning) used for weight calibration.
    """

    def __init__(
        self,
        target_frequency_hz: float,
        design: MicroringDesign | None = None,
    ) -> None:
        if target_frequency_hz <= 0:
            raise ValueError(
                f"target frequency must be positive, got {target_frequency_hz!r}"
            )
        self.design = design if design is not None else MicroringDesign()
        self.target_frequency_hz = float(target_frequency_hz)
        self._detuning_hz = 0.0

    # -- tuning ------------------------------------------------------------

    @property
    def detuning_hz(self) -> float:
        """Current resonance offset from the target carrier (Hz)."""
        return self._detuning_hz

    @detuning_hz.setter
    def detuning_hz(self, value: float) -> None:
        self._detuning_hz = float(value)

    @property
    def resonance_hz(self) -> float:
        """Current resonance frequency (Hz)."""
        return self.target_frequency_hz + self._detuning_hz

    @property
    def linewidth_hz(self) -> float:
        """FWHM linewidth at the target channel (Hz)."""
        return self.design.linewidth_hz(self.target_frequency_hz)

    # -- forward transfer --------------------------------------------------

    def _lorentzian(self, carrier_hz: np.ndarray | float) -> np.ndarray | float:
        """Unit-peak Lorentzian of the detuning between carrier and resonance."""
        return lorentzian_lineshape(carrier_hz, self.resonance_hz, self.linewidth_hz)

    def drop_transmission(self, carrier_hz: np.ndarray | float) -> np.ndarray | float:
        """Power transmission from input port to drop port at ``carrier_hz``."""
        return drop_transmission_profile(
            carrier_hz,
            self.resonance_hz,
            self.linewidth_hz,
            self.design.peak_drop_transmission,
        )

    def through_transmission(
        self, carrier_hz: np.ndarray | float
    ) -> np.ndarray | float:
        """Power transmission from input port to through port at ``carrier_hz``."""
        return through_transmission_profile(
            carrier_hz,
            self.resonance_hz,
            self.linewidth_hz,
            self.design.min_through_transmission,
        )

    def drop_at_target(self) -> float:
        """Drop-port transmission at the ring's own target channel."""
        return float(self.drop_transmission(self.target_frequency_hz))

    def through_at_target(self) -> float:
        """Through-port transmission at the ring's own target channel."""
        return float(self.through_transmission(self.target_frequency_hz))

    # -- inverse transfer (calibration) --------------------------------------

    def detuning_for_drop(self, transmission: float) -> float:
        """Detuning that yields ``transmission`` at the drop port (>= 0 branch).

        Inverts the Lorentzian: delta = (FWHM/2) * sqrt(T_peak/T - 1).

        Raises:
            ValueError: if the transmission is outside (0, T_peak].
        """
        peak = self.design.peak_drop_transmission
        if not 0.0 < transmission <= peak:
            raise ValueError(
                f"drop transmission must be in (0, {peak}], got {transmission!r}"
            )
        half_width = 0.5 * self.linewidth_hz
        return half_width * math.sqrt(peak / transmission - 1.0)

    def detuning_for_through(self, transmission: float) -> float:
        """Detuning that yields ``transmission`` at the through port.

        Raises:
            ValueError: if the transmission is outside [T_min, 1).
        """
        t_min = self.design.min_through_transmission
        if not t_min <= transmission < 1.0:
            raise ValueError(
                f"through transmission must be in [{t_min}, 1), got {transmission!r}"
            )
        depth = 1.0 - t_min
        lorentzian = (1.0 - transmission) / depth
        half_width = 0.5 * self.linewidth_hz
        return half_width * math.sqrt(1.0 / lorentzian - 1.0)

    def set_drop_transmission(self, transmission: float) -> None:
        """Tune the ring so its drop port transmits ``transmission``."""
        self.detuning_hz = self.detuning_for_drop(transmission)

    def __repr__(self) -> str:
        return (
            f"Microring(target={self.target_frequency_hz / 1e12:.4f} THz, "
            f"Q={self.design.quality_factor:g}, "
            f"detuning={self._detuning_hz / 1e9:.3f} GHz)"
        )


def rings_area_m2(num_rings: int, design: MicroringDesign | None = None) -> float:
    """Total layout area of ``num_rings`` rings at the design footprint (m^2).

    This is the area model the paper uses for its "2.2 mm^2" example:
    rings * (25 um)^2.

    Raises:
        ValueError: if ``num_rings`` is negative.
    """
    if num_rings < 0:
        raise ValueError(f"number of rings must be non-negative, got {num_rings!r}")
    chosen = design if design is not None else MicroringDesign()
    return num_rings * chosen.footprint_area_m2
