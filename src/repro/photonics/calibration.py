"""Closed-loop weight-bank calibration.

Real MRR weight banks are not programmed open-loop: inter-channel
crosstalk and tuning error make the *effective* weight vector differ from
the commanded one, so deployed systems measure the realized weights and
iterate (Tait et al. describe exactly this feedback calibration).  This
module implements that loop on the simulated bank:

1. command the current estimate;
2. measure the effective weights (what balanced detection would report
   for unit per-channel power);
3. correct the command by the residual error;
4. repeat until converged or out of iterations.

Crosstalk is a contraction here (each ring's leakage onto neighbours is
well below unity), so the loop converges linearly; the benchmarks
quantify how many iterations buy how many digits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.weight_bank import WeightBank


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a closed-loop bank calibration.

    Attributes:
        converged: whether the residual dropped below the tolerance.
        iterations: feedback iterations performed.
        residual: final max |effective - target| error.
        initial_residual: the open-loop error before feedback.
        commanded: the final commanded weight vector.
    """

    converged: bool
    iterations: int
    residual: float
    initial_residual: float
    commanded: np.ndarray

    @property
    def improvement(self) -> float:
        """Open-loop error divided by closed-loop error (>= 1 on success)."""
        if self.residual == 0.0:
            return np.inf
        return self.initial_residual / self.residual


def measure_effective_weights(bank: WeightBank) -> np.ndarray:
    """Measure what the bank actually applies (unit-power probe).

    This is the simulation analogue of the hardware calibration probe:
    inject equal power on every channel and read the balanced outputs.
    """
    return bank.effective_weights()


def calibrate_bank(
    bank: WeightBank,
    target_weights: np.ndarray,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
    gain: float = 1.0,
) -> CalibrationResult:
    """Iteratively tune ``bank`` until it realizes ``target_weights``.

    Args:
        bank: the weight bank to calibrate (mutated in place).
        target_weights: desired effective weights, each in [-1, 1].
        max_iterations: feedback iterations before giving up.
        tolerance: stop when max |effective - target| falls below this.
        gain: feedback gain in (0, 1]; 1.0 applies the full residual.

    Returns:
        A :class:`CalibrationResult`.

    Raises:
        ValueError: on a malformed target vector or gain.
    """
    target = np.asarray(target_weights, dtype=float)
    if target.shape != (bank.num_rings,):
        raise ValueError(
            f"expected {bank.num_rings} targets, got shape {target.shape}"
        )
    if np.any(np.abs(target) > 1.0):
        raise ValueError("target weights must lie in [-1, 1]")
    if not 0.0 < gain <= 1.0:
        raise ValueError(f"gain must be in (0, 1], got {gain!r}")

    commanded = target.copy()
    bank.set_weights(commanded)
    initial_residual = float(
        np.max(np.abs(measure_effective_weights(bank) - target))
    )
    residual = initial_residual

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        effective = measure_effective_weights(bank)
        error = effective - target
        residual = float(np.max(np.abs(error)))
        if residual <= tolerance:
            return CalibrationResult(
                converged=True,
                iterations=iterations - 1,
                residual=residual,
                initial_residual=initial_residual,
                commanded=commanded.copy(),
            )
        commanded = np.clip(commanded - gain * error, -1.0, 1.0)
        bank.set_weights(commanded)

    effective = measure_effective_weights(bank)
    residual = float(np.max(np.abs(effective - target)))
    return CalibrationResult(
        converged=residual <= tolerance,
        iterations=iterations,
        residual=residual,
        initial_residual=initial_residual,
        commanded=commanded.copy(),
    )
