"""Laser diode bank / WDM optical source.

Each broadcast-and-weight input value is carried by a dedicated laser
wavelength.  A :class:`LaserBank` owns one laser per channel of a
:class:`~repro.photonics.wdm.WdmGrid` and produces the per-channel optical
power vector that enters the modulators.  Laser relative-intensity noise
(RIN) is modeled as a multiplicative Gaussian perturbation with variance
``10**(RIN/10) * B`` over the receiver bandwidth ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.constants import DEFAULT_LASER_POWER_W, db_to_linear
from repro.photonics.noise import NoiseConfig, ideal
from repro.photonics.wdm import WdmGrid


@dataclass(frozen=True)
class LaserSpec:
    """Static parameters of one laser diode.

    Attributes:
        power_w: emitted optical power (W).
        wall_plug_efficiency: optical output power / electrical input power.
        threshold_current_a: lasing threshold current (A), for power models.
    """

    power_w: float = DEFAULT_LASER_POWER_W
    wall_plug_efficiency: float = 0.1
    threshold_current_a: float = 5e-3

    def __post_init__(self) -> None:
        if self.power_w <= 0:
            raise ValueError(f"laser power must be positive, got {self.power_w!r}")
        if not 0 < self.wall_plug_efficiency <= 1:
            raise ValueError(
                "wall-plug efficiency must be in (0, 1], got "
                f"{self.wall_plug_efficiency!r}"
            )

    @property
    def electrical_power_w(self) -> float:
        """Electrical power drawn to emit ``power_w`` of light (W)."""
        return self.power_w / self.wall_plug_efficiency


class LaserBank:
    """One laser diode per WDM channel.

    Args:
        grid: the WDM grid the lasers sit on.
        spec: per-laser parameters (shared by all lasers in the bank).
        noise: noise configuration; only RIN applies to lasers.
    """

    def __init__(
        self,
        grid: WdmGrid,
        spec: LaserSpec | None = None,
        noise: NoiseConfig | None = None,
    ) -> None:
        self.grid = grid
        self.spec = spec if spec is not None else LaserSpec()
        self.noise = noise if noise is not None else ideal()

    @property
    def num_channels(self) -> int:
        """Number of lasers in the bank."""
        return self.grid.num_channels

    def emit(
        self,
        receiver_bandwidth_hz: float = 5e9,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Emit per-channel optical power vectors (W).

        Args:
            receiver_bandwidth_hz: bandwidth over which RIN integrates;
                only used when RIN is active.
            batch_size: when given, emit one independent power vector per
                MAC wave of a batch — RIN is sampled per (wave, channel).

        Returns:
            Array of shape ``(num_channels,)``, or
            ``(batch_size, num_channels)`` when ``batch_size`` is given,
            of non-negative powers.

        Raises:
            ValueError: if ``batch_size`` is given but not positive.
        """
        if batch_size is None:
            shape: tuple[int, ...] = (self.num_channels,)
        elif batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size!r}")
        else:
            shape = (batch_size, self.num_channels)
        powers = np.full(shape, self.spec.power_w, dtype=float)
        if self.noise.rin_active:
            rin_db = self.noise.relative_intensity_noise_db_per_hz
            variance = db_to_linear(rin_db) * receiver_bandwidth_hz
            sigma = np.sqrt(variance)
            powers *= 1.0 + self.noise.rng.normal(0.0, sigma, shape)
            np.clip(powers, 0.0, None, out=powers)
        return powers

    def total_electrical_power_w(self) -> float:
        """Total electrical power drawn by the bank (W)."""
        return self.num_channels * self.spec.electrical_power_w

    def total_optical_power_w(self) -> float:
        """Total emitted optical power (W), noise-free nominal value."""
        return self.num_channels * self.spec.power_w
