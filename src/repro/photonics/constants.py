"""Physical constants and default device parameters for the photonic substrate.

All values are in SI units unless the name says otherwise.  The device
defaults follow the sources cited by the PCNNA paper:

* microring geometry and footprint from Tait et al., "Neuromorphic photonic
  networks using silicon photonic weight banks", Sci. Rep. 7, 7430 (2017)
  (25 um x 25 um ring footprint, C-band operation);
* photodiode speed from Fossum & Hondongwa (2014) (tens of GHz at 0 bias);
* the 5 GHz fast-clock domain from the PCNNA paper itself.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Fundamental physical constants.
# ---------------------------------------------------------------------------

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum (m/s)."""

PLANCK_CONSTANT = 6.626_070_15e-34
"""Planck constant (J*s)."""

ELEMENTARY_CHARGE = 1.602_176_634e-19
"""Elementary charge (C)."""

BOLTZMANN_CONSTANT = 1.380_649e-23
"""Boltzmann constant (J/K)."""

ROOM_TEMPERATURE_K = 300.0
"""Default ambient temperature (K)."""

# ---------------------------------------------------------------------------
# C-band WDM defaults (the band used by silicon-photonic weight banks).
# ---------------------------------------------------------------------------

C_BAND_CENTER_M = 1.550e-6
"""Center wavelength of the C band (m)."""

C_BAND_CENTER_HZ = SPEED_OF_LIGHT / C_BAND_CENTER_M
"""Center frequency of the C band (Hz), roughly 193.4 THz."""

DWDM_100GHZ_SPACING_HZ = 100e9
"""ITU dense-WDM channel spacing used as the default grid (Hz)."""

# ---------------------------------------------------------------------------
# Microring defaults (Tait et al. 2017-class devices).
# ---------------------------------------------------------------------------

DEFAULT_RING_RADIUS_M = 10e-6
"""Default microring radius (m)."""

DEFAULT_RING_FOOTPRINT_M = 25e-6
"""Side of the square footprint reserved per ring (m); paper uses 25 um."""

DEFAULT_QUALITY_FACTOR = 8_000.0
"""Default loaded quality factor of a weighting ring."""

DEFAULT_GROUP_INDEX = 4.2
"""Group index of a silicon strip waveguide near 1550 nm."""

DEFAULT_EFFECTIVE_INDEX = 2.4
"""Effective index of a silicon strip waveguide near 1550 nm."""

# ---------------------------------------------------------------------------
# Link-budget defaults.
# ---------------------------------------------------------------------------

DEFAULT_LASER_POWER_W = 1e-3
"""Per-channel laser power (W); 0 dBm, a typical on-chip budget."""

DEFAULT_WAVEGUIDE_LOSS_DB_PER_CM = 2.0
"""Silicon strip waveguide propagation loss (dB/cm)."""

DEFAULT_RESPONSIVITY_A_PER_W = 1.0
"""Photodiode responsivity (A/W) near 1550 nm."""

DEFAULT_TIA_BANDWIDTH_HZ = 10e9
"""Transimpedance-amplifier bandwidth (Hz); > the 5 GHz fast clock."""

DEFAULT_TIA_GAIN_OHM = 5_000.0
"""Transimpedance gain (ohm)."""


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio expressed in dB to a linear ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value_linear: float) -> float:
    """Convert a linear power ratio to dB.

    Raises:
        ValueError: if ``value_linear`` is not strictly positive.
    """
    if value_linear <= 0.0:
        raise ValueError(f"dB of a non-positive ratio is undefined: {value_linear!r}")
    import math

    return 10.0 * math.log10(value_linear)


def dbm_to_watts(power_dbm: float) -> float:
    """Convert optical power in dBm to watts."""
    return 1e-3 * db_to_linear(power_dbm)


def watts_to_dbm(power_w: float) -> float:
    """Convert optical power in watts to dBm.

    Raises:
        ValueError: if ``power_w`` is not strictly positive.
    """
    return linear_to_db(power_w / 1e-3)


def wavelength_to_frequency(wavelength_m: float) -> float:
    """Convert a vacuum wavelength (m) to frequency (Hz).

    Raises:
        ValueError: if ``wavelength_m`` is not strictly positive.
    """
    if wavelength_m <= 0.0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m!r}")
    return SPEED_OF_LIGHT / wavelength_m


def frequency_to_wavelength(frequency_hz: float) -> float:
    """Convert a frequency (Hz) to vacuum wavelength (m).

    Raises:
        ValueError: if ``frequency_hz`` is not strictly positive.
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return SPEED_OF_LIGHT / frequency_hz


def photon_energy(wavelength_m: float) -> float:
    """Energy of a single photon at the given vacuum wavelength (J)."""
    return PLANCK_CONSTANT * wavelength_to_frequency(wavelength_m)
