"""Mach-Zehnder modulator (MZM) model.

In PCNNA the analog voltages from the input DACs modulate the laser beams
with Mach-Zehnder modulators before the light enters the MRR weight banks.
An MZM's raw power transfer is the raised cosine

    T(v) = 0.5 * (1 + cos(pi * v / V_pi + phi_bias))

which is nonlinear in the drive voltage.  Practical analog links
pre-distort the drive so the *encoded value* maps linearly onto optical
power; :class:`MachZehnderModulator` exposes both the raw transfer and the
linearized ``encode`` used by the accelerator, with finite extinction
ratio as the non-ideality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.photonics.constants import db_to_linear


@dataclass(frozen=True)
class ModulatorSpec:
    """Static MZM parameters.

    Attributes:
        v_pi: half-wave voltage (V) — drive swing from full-on to full-off.
        extinction_ratio_db: ratio of maximum to minimum transmission, in
            dB; finite values leak light in the "off" state.
        bandwidth_hz: electro-optic 3-dB bandwidth; PCNNA assumes MZMs are
            "usually faster than the 5 GHz clock".
        insertion_loss_db: on-state excess loss.
    """

    v_pi: float = 2.0
    extinction_ratio_db: float = math.inf
    bandwidth_hz: float = 25e9
    insertion_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.v_pi <= 0:
            raise ValueError(f"V_pi must be positive, got {self.v_pi!r}")
        if self.extinction_ratio_db <= 0:
            raise ValueError(
                f"extinction ratio must be positive dB, got {self.extinction_ratio_db!r}"
            )
        if self.bandwidth_hz <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_hz!r}")
        if self.insertion_loss_db < 0:
            raise ValueError(
                f"insertion loss must be non-negative, got {self.insertion_loss_db!r}"
            )

    @property
    def min_transmission(self) -> float:
        """Off-state transmission floor set by the extinction ratio."""
        if math.isinf(self.extinction_ratio_db):
            return 0.0
        return 1.0 / db_to_linear(self.extinction_ratio_db)

    @property
    def insertion_transmission(self) -> float:
        """On-state transmission after insertion loss."""
        return 1.0 / db_to_linear(self.insertion_loss_db)


class MachZehnderModulator:
    """An MZM that encodes values in [0, 1] onto optical power.

    The linearized encoder maps value ``x`` to transmission
    ``T_min + (1 - T_min) * x`` (then applies insertion loss), so with an
    infinite extinction ratio and zero loss the mapping is exactly ``x``.
    """

    def __init__(self, spec: ModulatorSpec | None = None) -> None:
        self.spec = spec if spec is not None else ModulatorSpec()

    def raw_transfer(self, voltage: np.ndarray | float) -> np.ndarray | float:
        """Raised-cosine power transfer at drive ``voltage`` (quadrature bias)."""
        phase = math.pi * np.asarray(voltage, dtype=float) / self.spec.v_pi
        return 0.5 * (1.0 + np.cos(phase))

    def encode(self, values: np.ndarray | float) -> np.ndarray:
        """Encode normalized values in [0, 1] onto power transmission.

        Args:
            values: scalar or array of values, each in [0, 1].

        Returns:
            Per-value transmission factors in [0, 1].

        Raises:
            ValueError: if any value falls outside [0, 1] beyond a small
                numerical tolerance.
        """
        array = np.atleast_1d(np.asarray(values, dtype=float))
        if np.any(array < -1e-12) or np.any(array > 1.0 + 1e-12):
            bad = array[(array < -1e-12) | (array > 1.0 + 1e-12)]
            raise ValueError(
                f"MZM encode expects values in [0, 1]; out-of-range: {bad[:5]!r}"
            )
        clipped = np.clip(array, 0.0, 1.0)
        floor = self.spec.min_transmission
        transmission = floor + (1.0 - floor) * clipped
        return transmission * self.spec.insertion_transmission

    def drive_voltage_for(self, value: float) -> float:
        """Pre-distorted drive voltage that realizes encoded value ``value``.

        Inverts the raised cosine for the target transmission; used when a
        caller wants the electrical waveform rather than the optical result.

        Raises:
            ValueError: if ``value`` is outside [0, 1].
        """
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"value must be in [0, 1], got {value!r}")
        floor = self.spec.min_transmission
        transmission = floor + (1.0 - floor) * value
        transmission = min(max(transmission, 0.0), 1.0)
        return self.spec.v_pi / math.pi * math.acos(2.0 * transmission - 1.0)
