"""Photonic device substrate for the PCNNA reproduction.

Implements the silicon-photonic components the paper's design rests on:
microring resonators and weight banks (Tait et al. 2017), WDM sources and
grids, Mach-Zehnder modulators, waveguides, photodiodes, and the
broadcast-and-weight protocol that composes them into photonic
multiply-and-accumulate units.
"""

from repro.photonics.broadcast_weight import (
    BroadcastAndWeightLayer,
    PhotonicMacUnit,
)
from repro.photonics.calibration import (
    CalibrationResult,
    calibrate_bank,
    measure_effective_weights,
)
from repro.photonics.drift import (
    BankCondition,
    DriftingWeightBank,
    default_probe_targets,
    drift_transfer,
)
from repro.photonics.laser import LaserBank, LaserSpec
from repro.photonics.link_budget import LinkBudget, max_banks_for_bits
from repro.photonics.microring import (
    Microring,
    MicroringDesign,
    detunings_for_drop,
    drop_transmission_profile,
    lorentzian_lineshape,
    rings_area_m2,
    through_transmission_profile,
)
from repro.photonics.modulator import MachZehnderModulator, ModulatorSpec
from repro.photonics.noise import IDEAL, NoiseConfig, ideal, realistic
from repro.photonics.photodiode import (
    BalancedPhotodetector,
    Photodiode,
    PhotodiodeSpec,
)
from repro.photonics.spectrum import (
    BankSpectrum,
    channel_isolation_db,
    sweep_bank_spectrum,
)
from repro.photonics.thermal import (
    ThermalModel,
    thermal_weight_error,
)
from repro.photonics.waveguide import Splitter, Waveguide, cascade_transmission
from repro.photonics.wdm import WdmGrid, channel_count_limit
from repro.photonics.weight_bank import WeightBank

__all__ = [
    "BroadcastAndWeightLayer",
    "PhotonicMacUnit",
    "CalibrationResult",
    "calibrate_bank",
    "measure_effective_weights",
    "BankCondition",
    "DriftingWeightBank",
    "default_probe_targets",
    "drift_transfer",
    "LaserBank",
    "LaserSpec",
    "LinkBudget",
    "max_banks_for_bits",
    "BankSpectrum",
    "channel_isolation_db",
    "sweep_bank_spectrum",
    "ThermalModel",
    "thermal_weight_error",
    "Microring",
    "MicroringDesign",
    "rings_area_m2",
    "detunings_for_drop",
    "drop_transmission_profile",
    "lorentzian_lineshape",
    "through_transmission_profile",
    "MachZehnderModulator",
    "ModulatorSpec",
    "IDEAL",
    "NoiseConfig",
    "ideal",
    "realistic",
    "BalancedPhotodetector",
    "Photodiode",
    "PhotodiodeSpec",
    "Splitter",
    "Waveguide",
    "cascade_transmission",
    "WdmGrid",
    "channel_count_limit",
    "WeightBank",
]
