"""Planet-scale fleet serving: regional cluster pools behind one router.

The cluster runtime (:mod:`repro.core.cluster`) answers "how do N
models share *one* pool".  A planet-scale deployment runs many such
pools — heterogeneous regional clusters, each with its own core count
and fault exposure — behind a global front door (ROADMAP open item 2).
This module builds that front door as a *layered* composition over the
existing substrate rather than a new coupled event loop:

* each :class:`RegionSpec` names one regional pool (core count, local
  routing, elastic policy, fault schedule, recalibration);
* a :class:`GlobalRoutingPolicy` assigns every offered request a
  serving region — ``geo-affinity`` serves at home unless the home
  region is down, ``least-loaded`` picks the region with the smallest
  fluid backlog, ``latency-weighted`` adds the inter-region RTT penalty
  to the backlog — with deterministic tie-breaking (RTT, then region
  order);
* cross-region **failover** derives from each region's pool-level
  :class:`~repro.core.faults.FaultSchedule`: any event at or above the
  policy's ``failover_threshold`` marks the region degraded for its
  active span (permanently for dead/stuck rings), new arrivals divert
  to the best survivor, and requests already routed to the region drain
  there on its degraded cores;
* an optional :class:`FleetAutoscaler` watches per-epoch SLO burn
  (offered load over active capacity) and commissions or drains whole
  pools, with commissioning paying a warm-up delay;
* each region that receives work then runs a *real*
  :class:`~repro.core.cluster.ClusterSimulator` over its merged
  arrival trace, so regional runs inherit every cluster-layer contract
  (admission conservation, fault state machines, the vectorized fast
  path), and completions are mapped back to their origin regions with
  the return-leg RTT added.

The load-bearing correctness contract is differential, in the
PR-3/4/5/6 tradition: a **single-region, zero-RTT, fault-free fleet
run is bit-identical to a plain cluster run** — the router assigns
every request home with no penalty, the merged trace *is* the offered
trace, and the one regional run receives exactly the arguments
:func:`~repro.core.cluster.simulate_cluster_serving` would, so batch
plans and latency streams match bit for bit
(``tests/test_fleet.py::TestFleetDifferential`` pins it, and the
fleet benchmark asserts it on every run).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.cluster import (
    ClusterReport,
    ClusterSimulator,
    ClusterTenant,
    ElasticReallocation,
    RoutingPolicy,
    allocate_pool,
)
from repro.core.config import PCNNAConfig
from repro.core.faults import FaultSchedule, RecalibrationPolicy
from repro.core.simkernel import validate_arrival_trace, validate_kernel_mode
from repro.core.traffic import PipelineServiceModel

# Contract marker checked by `python -m repro.lint` (BIT001): the
# single-region zero-RTT fault-free fleet run is pinned bit-identical
# to the plain cluster run, so every float fold here must state its
# order contract.
__bit_identity__ = True

FLEET_ROUTING_KINDS: tuple[str, ...] = (
    "geo-affinity",
    "least-loaded",
    "latency-weighted",
)
"""Routing disciplines a :class:`GlobalRoutingPolicy` may carry."""

_PERMANENT_FAULT_KINDS = ("dead_rings", "stuck_rings")
"""Fault kinds whose degradation never reverts (faults.py semantics)."""


@dataclass(frozen=True)
class RegionSpec:
    """One regional cluster pool behind the global router.

    Attributes:
        name: unique region label used in reports and RTT addressing.
        pool_size: physical cores in the region's pool (each region
            must be able to host every tenant — one core each).
        routing: the region's *local* pool arbitration policy
            (weighted-fair by default, as in the cluster layer).
        elastic: the region's elastic core-reallocation policy.
        schedule: pool-level fault schedule over the region's physical
            cores; besides degrading the regional run it drives
            fleet-level failover (see
            :attr:`GlobalRoutingPolicy.failover_threshold`).
        recalibration: online recalibration policy for degraded cores.
    """

    name: str
    pool_size: int
    routing: RoutingPolicy | None = None
    elastic: ElasticReallocation | None = None
    schedule: FaultSchedule | None = None
    recalibration: RecalibrationPolicy | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region needs a non-empty name")
        if self.pool_size < 1:
            raise ValueError(
                f"{self.name}: pool size must be >= 1, got "
                f"{self.pool_size!r}"
            )


@dataclass(frozen=True)
class GlobalRoutingPolicy:
    """How the fleet assigns offered requests to serving regions.

    ``geo-affinity`` serves every request in its home region unless
    that region is unavailable (drained by the autoscaler or degraded
    past the failover threshold) at the arrival instant; diverted
    requests go to the available survivor with the lowest home RTT.
    ``least-loaded`` routes each request to the available region with
    the smallest fluid backlog (offered work over estimated capacity).
    ``latency-weighted`` adds the home→candidate RTT to the backlog
    before comparing, trading queueing delay against network delay.
    Every tie breaks deterministically by (home RTT, region order).

    Attributes:
        kind: one of :data:`FLEET_ROUTING_KINDS`.
        failover_threshold: a fault event whose magnitude reaches this
            value marks its region degraded for the event's active
            span (permanently for dead/stuck rings); the router stops
            sending *new* arrivals there while requests already routed
            drain on the degraded cores.
    """

    kind: str = "geo-affinity"
    failover_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FLEET_ROUTING_KINDS:
            raise ValueError(
                f"unknown fleet routing kind {self.kind!r}; have "
                f"{FLEET_ROUTING_KINDS}"
            )
        if self.failover_threshold <= 0.0 or not np.isfinite(
            self.failover_threshold
        ):
            raise ValueError(
                f"failover threshold must be finite and > 0, got "
                f"{self.failover_threshold!r}"
            )

    @classmethod
    def geo_affinity(cls, failover_threshold: float = 0.5) -> (
        "GlobalRoutingPolicy"
    ):
        """Serve at home, divert only when the home region is down."""
        return cls(
            kind="geo-affinity", failover_threshold=failover_threshold
        )

    @classmethod
    def least_loaded(cls, failover_threshold: float = 0.5) -> (
        "GlobalRoutingPolicy"
    ):
        """Route to the region with the smallest fluid backlog."""
        return cls(
            kind="least-loaded", failover_threshold=failover_threshold
        )

    @classmethod
    def latency_weighted(cls, failover_threshold: float = 0.5) -> (
        "GlobalRoutingPolicy"
    ):
        """Route on backlog plus the inter-region RTT penalty."""
        return cls(
            kind="latency-weighted",
            failover_threshold=failover_threshold,
        )


@dataclass(frozen=True)
class FleetAutoscaler:
    """SLO-burn-driven pool commissioning and draining.

    At the end of every epoch the autoscaler computes the **burn**: the
    epoch's offered requests divided by what the serving regions could
    have completed (the sum of their estimated capacities times the
    epoch length).  Burn above ``burn_up`` commissions the
    lowest-index idle region, which starts serving after ``warmup_s``;
    burn below ``burn_down`` drains the highest-index active region —
    it stops receiving *new* arrivals at the epoch boundary and serves
    what it already owns to completion.  The active pool count stays in
    ``[min_pools, max_pools]``; the fleet starts with the first
    ``min_pools`` regions active.

    Attributes:
        epoch_s: burn-evaluation period on the simulated clock.
        burn_up: burn threshold above which a pool is commissioned.
        burn_down: burn threshold below which a pool is drained.
        warmup_s: delay between commissioning and first service.
        min_pools: the fleet never drains below this many pools.
        max_pools: the fleet never commissions above this many pools
            (``None`` allows every region).
    """

    epoch_s: float
    burn_up: float = 1.0
    burn_down: float = 0.25
    warmup_s: float = 0.0
    min_pools: int = 1
    max_pools: int | None = None

    def __post_init__(self) -> None:
        if self.epoch_s <= 0.0 or not np.isfinite(self.epoch_s):
            raise ValueError(
                f"epoch must be finite and > 0, got {self.epoch_s!r}"
            )
        if self.burn_down <= 0.0 or not np.isfinite(self.burn_down):
            raise ValueError(
                f"burn-down threshold must be finite and > 0, got "
                f"{self.burn_down!r}"
            )
        if self.burn_up <= self.burn_down or not np.isfinite(self.burn_up):
            raise ValueError(
                f"burn-up threshold must be finite and above burn-down "
                f"({self.burn_down!r}), got {self.burn_up!r}"
            )
        if self.warmup_s < 0.0 or not np.isfinite(self.warmup_s):
            raise ValueError(
                f"warm-up must be finite and >= 0, got {self.warmup_s!r}"
            )
        if self.min_pools < 1:
            raise ValueError(
                f"min pools must be >= 1, got {self.min_pools!r}"
            )
        if self.max_pools is not None and self.max_pools < self.min_pools:
            raise ValueError(
                f"autoscaling bounds inverted: min_pools "
                f"{self.min_pools!r} > max_pools {self.max_pools!r}"
            )


@dataclass(frozen=True)
class AutoscaleRecord:
    """One pool commissioning or draining decision.

    Attributes:
        time_s: epoch boundary the decision was taken at.
        region: the commissioned/drained region's name.
        action: ``"commission"`` or ``"drain"``.
        burn: the epoch burn that triggered the decision.
        active_after: committed pool count after the decision
            (commissioned-but-warming pools included).
    """

    time_s: float
    region: str
    action: str
    burn: float
    active_after: int


@dataclass(frozen=True)
class FailoverRecord:
    """One region degradation window, as the router saw it.

    Attributes:
        region: the degraded region's name.
        onset_s: when the triggering fault event began.
        until_s: when the degradation window ends (``inf`` for
            permanent ring faults).
        survivor: region the first diverted request went to, or
            ``None`` if nothing diverted during the window.
        rerouted: home requests diverted away during the window.
        failover_latency_s: first diverted request's home-side
            completion minus the onset — how long the first failed-over
            request took to come back; ``NaN`` if nothing diverted
            (or nothing diverted was served).
    """

    region: str
    onset_s: float
    until_s: float
    survivor: str | None
    rerouted: int
    failover_latency_s: float


@dataclass(frozen=True)
class FleetTenantTrace:
    """One (home region, tenant) offered stream and its fleet outcome.

    Arrays are aligned with ``offered_arrival_s`` (the home-side
    arrival order): ``server_region[i]`` is the index of the region
    that served (or shed) request ``i``, ``served[i]`` says whether it
    completed, and ``latency_s[i]`` is its end-to-end home-side latency
    — server queueing plus both RTT legs — or ``NaN`` where shed.

    Attributes:
        home_region: the stream's home region name.
        home_index: the home region's index (what ``server_region``
            compares against).
        tenant: the tenant's name.
        offered_arrival_s: home-side offered arrival times.
        server_region: per-request serving region index.
        served: per-request completion mask.
        latency_s: per-request end-to-end latency (``NaN`` where shed).
    """

    home_region: str
    home_index: int
    tenant: str
    offered_arrival_s: np.ndarray
    server_region: np.ndarray
    served: np.ndarray
    latency_s: np.ndarray

    @property
    def num_offered(self) -> int:
        """Requests the stream offered."""
        return int(self.offered_arrival_s.size)

    @property
    def num_served(self) -> int:
        """Requests that completed somewhere in the fleet."""
        return int(np.count_nonzero(self.served))

    @property
    def num_shed(self) -> int:
        """Requests dropped by regional admission control."""
        return self.num_offered - self.num_served

    @property
    def num_remote(self) -> int:
        """Requests served (or shed) away from the home region."""
        return int(
            np.count_nonzero(self.server_region != self.home_index)
        )


@dataclass(frozen=True)
class RegionOutcome:
    """Everything one region did during a fleet run.

    Attributes:
        name: the region's name.
        pool_size: physical cores in the region's pool.
        report: the region's full
            :class:`~repro.core.cluster.ClusterReport`, or ``None`` if
            the router sent it no work.
        routed_in: requests the router assigned to the region.
        remote_in: of those, requests whose home is another region.
        latency_s: end-to-end latencies of the requests the region
            served, in (tenant order, regional arrival order).
    """

    name: str
    pool_size: int
    report: ClusterReport | None
    routed_in: int
    remote_in: int
    latency_s: np.ndarray

    @property
    def num_served(self) -> int:
        """Requests the region completed."""
        return int(self.latency_s.size)

    @property
    def num_shed(self) -> int:
        """Requests the region's admission control dropped."""
        return self.routed_in - self.num_served

    def latency_percentile_s(self, percentile: float) -> float:
        """An end-to-end latency percentile over the region's serves.

        Raises:
            ValueError: if the region served nothing — percentiles of
                an empty stream are undefined.
        """
        if self.latency_s.size == 0:
            raise ValueError(
                f"region {self.name!r} served no requests — latency "
                f"percentiles are undefined on an empty stream"
            )
        return float(np.percentile(self.latency_s, percentile))

    @property
    def p50_s(self) -> float:
        """Median end-to-end latency at this region."""
        return self.latency_percentile_s(50.0)

    @property
    def p95_s(self) -> float:
        """95th-percentile end-to-end latency at this region."""
        return self.latency_percentile_s(95.0)

    @property
    def p99_s(self) -> float:
        """99th-percentile end-to-end latency at this region."""
        return self.latency_percentile_s(99.0)


@dataclass(frozen=True)
class FleetReport:
    """Everything measured over one fleet run.

    Attributes:
        routing: the global routing policy the run used.
        rtt_s: the validated inter-region round-trip-time matrix.
        regions: per-region outcomes, in region order.
        traces: per-(home region, tenant) streams, region-major.
        failovers: every fault-driven degradation window, in order.
        autoscale_events: every commissioning/draining decision.
        region_capacity_rps: the per-region capacity estimates the
            router and autoscaler used (fixed tenant-order fold).
    """

    routing: GlobalRoutingPolicy
    rtt_s: np.ndarray
    regions: tuple[RegionOutcome, ...]
    traces: tuple[FleetTenantTrace, ...]
    failovers: tuple[FailoverRecord, ...]
    autoscale_events: tuple[AutoscaleRecord, ...]
    region_capacity_rps: tuple[float, ...]

    def region(self, name: str) -> RegionOutcome:
        """The named region's outcome.

        Raises:
            KeyError: on an unknown region name.
        """
        for outcome in self.regions:
            if outcome.name == name:
                return outcome
        raise KeyError(
            f"unknown region {name!r}; have "
            f"{tuple(outcome.name for outcome in self.regions)}"
        )

    def trace(self, home_region: str, tenant: str) -> FleetTenantTrace:
        """The named (home region, tenant) stream.

        Raises:
            KeyError: on an unknown (home region, tenant) pair.
        """
        for trace in self.traces:
            if trace.home_region == home_region and trace.tenant == tenant:
                return trace
        raise KeyError(
            f"no stream for region {home_region!r} tenant {tenant!r}"
        )

    @property
    def num_offered(self) -> int:
        """Requests offered across the whole fleet."""
        # repro: allow[BIT001] integer count, exact in any order
        return sum(trace.num_offered for trace in self.traces)

    @property
    def num_served(self) -> int:
        """Requests served across the whole fleet."""
        # repro: allow[BIT001] integer count, exact in any order
        return sum(trace.num_served for trace in self.traces)

    @property
    def num_shed(self) -> int:
        """Requests shed across the whole fleet."""
        # repro: allow[BIT001] integer count, exact in any order
        return sum(trace.num_shed for trace in self.traces)

    @property
    def num_remote(self) -> int:
        """Requests routed away from their home region."""
        # repro: allow[BIT001] integer count, exact in any order
        return sum(trace.num_remote for trace in self.traces)

    @property
    def latencies_s(self) -> np.ndarray:
        """Every served request's end-to-end latency, region-major."""
        parts = [
            outcome.latency_s
            for outcome in self.regions
            if outcome.latency_s.size
        ]
        if not parts:
            return np.array([])
        return np.concatenate(parts)

    def latency_percentile_s(self, percentile: float) -> float:
        """A global end-to-end latency percentile.

        Raises:
            ValueError: if the fleet served nothing.
        """
        latencies = self.latencies_s
        if latencies.size == 0:
            raise ValueError(
                "fleet served no requests — latency percentiles are "
                "undefined on an empty stream"
            )
        return float(np.percentile(latencies, percentile))

    @property
    def p50_s(self) -> float:
        """Global median end-to-end latency."""
        return self.latency_percentile_s(50.0)

    @property
    def p95_s(self) -> float:
        """Global 95th-percentile end-to-end latency."""
        return self.latency_percentile_s(95.0)

    @property
    def p99_s(self) -> float:
        """Global 99th-percentile end-to-end latency."""
        return self.latency_percentile_s(99.0)

    @property
    def failover_time_s(self) -> float:
        """Slowest first-failed-over-request recovery, ``NaN`` if none.

        The fleet-level "how long were diverted users without service"
        headline: the maximum finite ``failover_latency_s`` across
        degradation windows.
        """
        finite = [
            record.failover_latency_s
            for record in self.failovers
            if math.isfinite(record.failover_latency_s)
        ]
        if not finite:
            return math.nan
        return max(finite)

    @property
    def placement_efficiency(self) -> float:
        """How well served load tracked capacity, in ``[0, 1]``.

        One minus half the L1 distance between the per-region served
        shares and capacity shares: ``1.0`` means every region served
        exactly its capacity share of the fleet's completed load,
        lower values mean replicas sat idle while others queued.
        """
        served = np.array(
            [float(outcome.num_served) for outcome in self.regions]
        )
        capacity = np.array(self.region_capacity_rps)
        # repro: allow[BIT001] reporting-only summary over the fixed
        # region order; never compared bit-exactly
        total_served = float(served.sum())
        # repro: allow[BIT001] reporting-only summary over the fixed
        # region order; never compared bit-exactly
        total_capacity = float(capacity.sum())
        if total_served == 0.0 or total_capacity == 0.0:
            return math.nan
        gap = np.abs(served / total_served - capacity / total_capacity)
        # repro: allow[BIT001] reporting-only summary over the fixed
        # region order; never compared bit-exactly
        return float(1.0 - 0.5 * gap.sum())

    def describe(self) -> str:
        """A fleet summary: global header plus every region's line."""
        shed = self.num_shed
        lines = [
            f"fleet [{self.routing.kind}] over {len(self.regions)} "
            f"regions: {self.num_served}/{self.num_offered} served "
            f"({shed} shed, {self.num_remote} remote), "
            f"{len(self.failovers)} failovers, "
            f"{len(self.autoscale_events)} autoscale events"
        ]
        for outcome in self.regions:
            if outcome.num_served:
                tail = f"p99 {outcome.p99_s * 1e6:.0f}us"
            else:
                tail = "idle"
            lines.append(
                f"  {outcome.name} [{outcome.pool_size} cores]: "
                f"routed {outcome.routed_in} "
                f"({outcome.remote_in} remote), served "
                f"{outcome.num_served}, shed {outcome.num_shed} | {tail}"
            )
        return "\n".join(lines)


def estimate_region_capacity_rps(
    tenants: Sequence[ClusterTenant],
    region: RegionSpec,
    config: PCNNAConfig | None = None,
) -> float:
    """A region's stationary serving-capacity estimate (requests/s).

    Allocates the region's pool over the full tenant set exactly as its
    cluster run would and sums each tenant's pipeline capacity at its
    policy's batch size — the fluid-model rate the router's backlog
    ledger and the autoscaler's burn computation both use.  Also the
    up-front "pool can host the tenants" validation
    (:func:`~repro.core.cluster.allocate_pool` raises otherwise).

    Raises:
        ValueError: if the region's pool cannot host the tenant set.
    """
    allocations, _ = allocate_pool(tenants, region.pool_size, region.routing)
    # repro: allow[BIT001] strict left fold over the fixed tenant
    # order; feeds routing/autoscale decisions, not pinned streams
    return sum(
        PipelineServiceModel.from_specs(
            list(tenant.specs), len(cores), config
        ).capacity_rps(tenant.policy.max_batch)
        for tenant, cores in zip(tenants, allocations)
    )


def uniform_rtt(num_regions: int, rtt_s: float) -> np.ndarray:
    """An RTT matrix with one uniform inter-region round trip.

    Raises:
        ValueError: on a non-positive region count or a negative or
            non-finite RTT.
    """
    if num_regions < 1:
        raise ValueError(f"need >= 1 region, got {num_regions!r}")
    if rtt_s < 0.0 or not np.isfinite(rtt_s):
        raise ValueError(
            f"RTT must be finite and >= 0, got {rtt_s!r}"
        )
    matrix = np.full((num_regions, num_regions), float(rtt_s))
    np.fill_diagonal(matrix, 0.0)
    return matrix


def validate_rtt_matrix(
    rtt_s: np.ndarray | None, num_regions: int
) -> np.ndarray:
    """Validate and normalize an inter-region RTT matrix.

    ``None`` means a zero-RTT fleet (the differential-pin shape).
    Entries are round-trip seconds; the router charges half on the
    inbound leg and half on the response.

    Raises:
        ValueError: on a non-square shape, a shape not matching the
            region count, non-finite or negative entries, or a nonzero
            diagonal.
    """
    if rtt_s is None:
        return np.zeros((num_regions, num_regions))
    matrix = np.asarray(rtt_s, dtype=float)
    if matrix.shape != (num_regions, num_regions):
        raise ValueError(
            f"RTT matrix must be square over the {num_regions} regions, "
            f"got shape {matrix.shape!r}"
        )
    if not np.all(np.isfinite(matrix)):
        raise ValueError("RTT matrix entries must be finite")
    if np.any(matrix < 0.0):
        raise ValueError(
            f"RTT matrix entries must be >= 0, got minimum "
            f"{float(matrix.min())!r}"
        )
    diagonal = np.diagonal(matrix)
    if np.any(diagonal != 0.0):
        raise ValueError(
            f"RTT matrix diagonal (a region to itself) must be zero, "
            f"got {tuple(float(d) for d in diagonal)!r}"
        )
    return matrix


def _merge_windows(
    windows: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Merge overlapping/adjacent half-open ``[start, end)`` windows."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _subtract_windows(
    base: list[tuple[float, float]], cut: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Remove merged ``cut`` windows from merged ``base`` windows."""
    result: list[tuple[float, float]] = []
    for start, end in base:
        cursor = start
        for cut_start, cut_end in cut:
            if cut_end <= cursor or cut_start >= end:
                continue
            if cut_start > cursor:
                result.append((cursor, cut_start))
            cursor = max(cursor, cut_end)
            if cursor >= end:
                break
        if cursor < end:
            result.append((cursor, end))
    return result


def _window_bounds(windows: list[tuple[float, float]]) -> np.ndarray:
    """Flatten merged windows into a sorted boundary array."""
    bounds = np.empty(2 * len(windows))
    for i, (start, end) in enumerate(windows):
        bounds[2 * i] = start
        bounds[2 * i + 1] = end
    return bounds


def _inside_mask(bounds: np.ndarray | None, times: np.ndarray) -> np.ndarray:
    """Whether each time falls inside any ``[start, end)`` window.

    ``None`` bounds mean "always inside" (the fast path for a region
    with no autoscaler and no outages).
    """
    if bounds is None:
        return np.ones(times.shape, dtype=bool)
    return (np.searchsorted(bounds, times, side="right") % 2).astype(bool)


def _inside_at(bounds: np.ndarray | None, time_s: float) -> bool:
    """Scalar version of :func:`_inside_mask`."""
    if bounds is None:
        return True
    return bisect.bisect_right(bounds, time_s) % 2 == 1


class FleetRuntime:
    """N regional cluster pools behind one global router.

    Composes the fleet in layers on the shared simulated clock: the
    autoscaler pre-pass fixes each region's active windows, the fault
    schedules fix each region's degradation windows, the global router
    assigns every offered request a serving region (charging half the
    RTT inbound), each receiving region serves its merged trace on a
    real :class:`~repro.core.cluster.ClusterSimulator`, and completions
    map back to their origin streams with the return RTT leg added.

    Args:
        tenants: the globally replicated tenant set — every region can
            serve every tenant (unique names).
        regions: the regional pools, in preference order (unique
            names; each pool must host every tenant).
        rtt_s: inter-region round-trip-time matrix; ``None`` means
            zero RTT everywhere.
        routing: global routing policy (geo-affinity by default).
        autoscaler: SLO-burn pool autoscaler; ``None`` keeps every
            region active for the whole run.
        config: hardware configuration for the regional runs.
        mode: kernel execution mode handed to every regional cluster
            run (``"auto"`` lets feedback-free regions vectorize).

    Raises:
        ValueError: on an empty tenant or region set, duplicate tenant
            or region names, an invalid RTT matrix, an autoscaler whose
            bounds exceed the region count, a region pool too small for
            the tenant set, or an unknown mode.
    """

    def __init__(
        self,
        tenants: Sequence[ClusterTenant],
        regions: Sequence[RegionSpec],
        rtt_s: np.ndarray | None = None,
        routing: GlobalRoutingPolicy | None = None,
        autoscaler: FleetAutoscaler | None = None,
        config: PCNNAConfig | None = None,
        mode: str = "auto",
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        tenant_names = [tenant.name for tenant in tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ValueError(
                f"tenant names must be unique, got {tenant_names!r}"
            )
        if not regions:
            raise ValueError("need at least one region")
        region_names = [region.name for region in regions]
        if len(set(region_names)) != len(region_names):
            raise ValueError(
                f"region names must be unique, got {region_names!r}"
            )
        validate_kernel_mode(mode)
        self.tenants = tuple(tenants)
        self.regions = tuple(regions)
        self.rtt_s = validate_rtt_matrix(rtt_s, len(regions))
        self.routing = (
            routing if routing is not None else GlobalRoutingPolicy()
        )
        self.autoscaler = autoscaler
        if autoscaler is not None:
            if autoscaler.min_pools > len(regions):
                raise ValueError(
                    f"autoscaler min_pools {autoscaler.min_pools!r} "
                    f"exceeds the {len(regions)} regions"
                )
        self.config = config
        self.mode = mode
        self._capacity_rps = tuple(
            estimate_region_capacity_rps(self.tenants, region, config)
            for region in regions
        )

    def _outage_windows(
        self, region: RegionSpec
    ) -> list[tuple[float, float]]:
        """Fault-driven degradation windows for one region."""
        if region.schedule is None:
            return []
        windows = []
        for event in region.schedule.events:
            if event.magnitude < self.routing.failover_threshold:
                continue
            if event.kind in _PERMANENT_FAULT_KINDS:
                windows.append((event.onset_s, math.inf))
            else:
                windows.append(
                    (event.onset_s, event.onset_s + event.duration_s)
                )
        return _merge_windows(windows)

    def _autoscale_timeline(
        self, offered: dict[tuple[int, str], np.ndarray]
    ) -> tuple[list[list[tuple[float, float]]], list[AutoscaleRecord]]:
        """Per-region active windows plus the decision log."""
        num_regions = len(self.regions)
        auto = self.autoscaler
        if auto is None:
            return [[(0.0, math.inf)] for _ in self.regions], []
        max_pools = (
            num_regions if auto.max_pools is None else
            min(auto.max_pools, num_regions)
        )
        active = [index < auto.min_pools for index in range(num_regions)]
        act_from = [0.0 if flag else math.nan for flag in active]
        windows: list[list[tuple[float, float]]] = [
            [] for _ in self.regions
        ]
        events: list[AutoscaleRecord] = []
        all_times = np.concatenate(list(offered.values()))
        horizon = float(all_times.max())
        num_epochs = int(math.ceil(horizon / auto.epoch_s))
        edges = np.arange(num_epochs + 1) * auto.epoch_s
        counts, _ = np.histogram(all_times, bins=edges)
        for epoch in range(num_epochs):
            start = float(edges[epoch])
            end = float(edges[epoch + 1])
            # repro: allow[BIT001] strict left fold over the fixed
            # region order; feeds scale decisions, not pinned streams
            capacity = sum(
                self._capacity_rps[index]
                for index in range(num_regions)
                if active[index] and act_from[index] <= start
            )
            offered_count = int(counts[epoch])
            if capacity > 0.0:
                burn = offered_count / (capacity * auto.epoch_s)
            else:
                burn = math.inf if offered_count else 0.0
            # repro: allow[BIT001] integer count, exact in any order
            num_active = sum(active)
            if burn > auto.burn_up and num_active < max_pools:
                index = active.index(False)
                active[index] = True
                act_from[index] = end + auto.warmup_s
                events.append(
                    AutoscaleRecord(
                        time_s=end,
                        region=self.regions[index].name,
                        action="commission",
                        burn=burn,
                        active_after=num_active + 1,
                    )
                )
            elif burn < auto.burn_down and num_active > auto.min_pools:
                index = num_regions - 1 - active[::-1].index(True)
                active[index] = False
                if end > act_from[index]:
                    windows[index].append((act_from[index], end))
                act_from[index] = math.nan
                events.append(
                    AutoscaleRecord(
                        time_s=end,
                        region=self.regions[index].name,
                        action="drain",
                        burn=burn,
                        active_after=num_active - 1,
                    )
                )
        for index in range(num_regions):
            if active[index]:
                windows[index].append((act_from[index], math.inf))
        return [_merge_windows(w) for w in windows], events

    def _availability(
        self,
        active: list[list[tuple[float, float]]],
        outages: list[list[tuple[float, float]]],
    ) -> list[np.ndarray | None]:
        """Per-region availability boundary arrays (``None`` = always)."""
        bounds: list[np.ndarray | None] = []
        for index in range(len(self.regions)):
            if active[index] == [(0.0, math.inf)] and not outages[index]:
                bounds.append(None)
                continue
            available = _subtract_windows(active[index], outages[index])
            bounds.append(_window_bounds(available))
        return bounds

    def _route_geo_affinity(
        self,
        offered: dict[tuple[int, str], np.ndarray],
        avail: list[np.ndarray | None],
    ) -> dict[tuple[int, str], np.ndarray]:
        """Home-unless-down routing, vectorized per stream."""
        num_regions = len(self.regions)
        server: dict[tuple[int, str], np.ndarray] = {}
        for (home, tenant_name), times in offered.items():
            assignment = np.full(times.size, home, dtype=np.int64)
            need = np.flatnonzero(~_inside_mask(avail[home], times))
            if need.size:
                order = sorted(
                    (self.rtt_s[home, index], index)
                    for index in range(num_regions)
                    if index != home
                )
                for _, index in order:
                    if need.size == 0:
                        break
                    takes = _inside_mask(avail[index], times[need])
                    assignment[need[takes]] = index
                    need = need[~takes]
                # Streams with no available region anywhere stay home:
                # the degraded home drains them on its faulted cores.
            server[(home, tenant_name)] = assignment
        return server

    def _route_load_aware(
        self,
        offered: dict[tuple[int, str], np.ndarray],
        avail: list[np.ndarray | None],
    ) -> dict[tuple[int, str], np.ndarray]:
        """Least-loaded / latency-weighted greedy routing.

        Walks the globally time-sorted offered stream (ties broken by
        home region, tenant, then request index — all deterministic)
        keeping a per-region fluid ledger: each routed request extends
        its region's backlog by one mean service quantum.
        """
        num_regions = len(self.regions)
        latency_weighted = self.routing.kind == "latency-weighted"
        keys = list(offered)
        times = np.concatenate([offered[key] for key in keys])
        stream = np.concatenate(
            [np.full(offered[key].size, pos) for pos, key in enumerate(keys)]
        )
        index_in = np.concatenate(
            [np.arange(offered[key].size) for key in keys]
        )
        order = np.lexsort((index_in, stream, times))
        quantum = [1.0 / rate for rate in self._capacity_rps]
        busy_until = [0.0] * num_regions
        server = {
            key: np.empty(offered[key].size, dtype=np.int64) for key in keys
        }
        for position in order:
            time_s = float(times[position])
            home = keys[stream[position]][0]
            best = None
            best_key = None
            for index in range(num_regions):
                if not _inside_at(avail[index], time_s):
                    continue
                backlog = max(busy_until[index] - time_s, 0.0)
                rtt = float(self.rtt_s[home, index])
                score = backlog + rtt if latency_weighted else backlog
                key = (score, rtt, index)
                if best_key is None or key < best_key:
                    best_key = key
                    best = index
            if best is None:
                best = home  # nothing available: drain at home
            server[keys[stream[position]]][index_in[position]] = best
            busy_until[best] = (
                max(busy_until[best], time_s) + quantum[best]
            )
        return server

    def run(
        self, arrival_s: Mapping[str, Mapping[str, np.ndarray]]
    ) -> FleetReport:
        """Serve every region's offered streams to completion.

        Args:
            arrival_s: per-region, per-tenant sorted offered arrival
                traces — outer keys must cover every region exactly;
                inner keys are any subset of the tenant names (a
                standby region may offer nothing).

        Raises:
            ValueError: on unknown/missing region keys, unknown tenant
                keys, an invalid trace, or a fleet offering zero
                requests.
        """
        region_names = [region.name for region in self.regions]
        if set(arrival_s) != set(region_names):
            raise ValueError(
                f"need one arrival mapping per region "
                f"{sorted(region_names)}, got {sorted(arrival_s)}"
            )
        tenant_names = {tenant.name for tenant in self.tenants}
        offered: dict[tuple[int, str], np.ndarray] = {}
        for home, name in enumerate(region_names):
            for tenant_name, trace in arrival_s[name].items():
                if tenant_name not in tenant_names:
                    raise ValueError(
                        f"region {name!r} offers unknown tenant "
                        f"{tenant_name!r}; have {sorted(tenant_names)}"
                    )
                offered[(home, tenant_name)] = validate_arrival_trace(trace)
        if not offered:
            raise ValueError(
                "fleet offered no requests — every region's arrival "
                "mapping is empty"
            )

        active, autoscale_events = self._autoscale_timeline(offered)
        outages = [
            self._outage_windows(region) for region in self.regions
        ]
        avail = self._availability(active, outages)
        if self.routing.kind == "geo-affinity":
            server = self._route_geo_affinity(offered, avail)
        else:
            server = self._route_load_aware(offered, avail)

        served_mask = {
            key: np.zeros(times.size, dtype=bool)
            for key, times in offered.items()
        }
        latency = {
            key: np.full(times.size, math.nan)
            for key, times in offered.items()
        }
        half_rtt = 0.5 * self.rtt_s
        outcomes: list[RegionOutcome] = []
        for index, region in enumerate(self.regions):
            outcomes.append(
                self._run_region(
                    index,
                    region,
                    offered,
                    server,
                    half_rtt,
                    served_mask,
                    latency,
                )
            )

        traces: list[FleetTenantTrace] = []
        for home, name in enumerate(region_names):
            for tenant in self.tenants:
                key = (home, tenant.name)
                if key not in offered:
                    continue
                traces.append(
                    FleetTenantTrace(
                        home_region=name,
                        home_index=home,
                        tenant=tenant.name,
                        offered_arrival_s=offered[key],
                        server_region=server[key],
                        served=served_mask[key],
                        latency_s=latency[key],
                    )
                )

        failovers = self._failover_records(
            offered, server, served_mask, latency, outages
        )
        return FleetReport(
            routing=self.routing,
            rtt_s=self.rtt_s,
            regions=tuple(outcomes),
            traces=tuple(traces),
            failovers=tuple(failovers),
            autoscale_events=tuple(autoscale_events),
            region_capacity_rps=self._capacity_rps,
        )

    def _run_region(
        self,
        index: int,
        region: RegionSpec,
        offered: dict[tuple[int, str], np.ndarray],
        server: dict[tuple[int, str], np.ndarray],
        half_rtt: np.ndarray,
        served_mask: dict[tuple[int, str], np.ndarray],
        latency: dict[tuple[int, str], np.ndarray],
    ) -> RegionOutcome:
        """Serve one region's merged traces and back-map the outcomes."""
        num_regions = len(self.regions)
        merged: dict[str, np.ndarray] = {}
        origin_home: dict[str, np.ndarray] = {}
        origin_index: dict[str, np.ndarray] = {}
        home_times: dict[str, np.ndarray] = {}
        for tenant in self.tenants:
            parts_t, parts_x, parts_h, parts_i = [], [], [], []
            for home in range(num_regions):
                key = (home, tenant.name)
                if key not in offered:
                    continue
                routed = np.flatnonzero(server[key] == index)
                if routed.size == 0:
                    continue
                raw = offered[key][routed]
                if home == index:
                    parts_t.append(raw)
                else:
                    parts_t.append(raw + half_rtt[home, index])
                parts_x.append(raw)
                parts_h.append(np.full(routed.size, home, dtype=np.int64))
                parts_i.append(routed)
            if not parts_t:
                continue
            if len(parts_t) == 1:
                merged[tenant.name] = parts_t[0]
                home_times[tenant.name] = parts_x[0]
                origin_home[tenant.name] = parts_h[0]
                origin_index[tenant.name] = parts_i[0]
            else:
                times = np.concatenate(parts_t)
                homes = np.concatenate(parts_h)
                indices = np.concatenate(parts_i)
                order = np.lexsort((indices, homes, times))
                merged[tenant.name] = times[order]
                home_times[tenant.name] = np.concatenate(parts_x)[order]
                origin_home[tenant.name] = homes[order]
                origin_index[tenant.name] = indices[order]
        if not merged:
            return RegionOutcome(
                name=region.name,
                pool_size=region.pool_size,
                report=None,
                routed_in=0,
                remote_in=0,
                latency_s=np.array([]),
            )
        subset = tuple(
            tenant for tenant in self.tenants if tenant.name in merged
        )
        simulator = ClusterSimulator(
            subset,
            region.pool_size,
            routing=region.routing,
            elastic=region.elastic,
            schedule=region.schedule,
            recalibration=region.recalibration,
            config=self.config,
            mode=self.mode,
        )
        report = simulator.run(merged)
        latency_parts: list[np.ndarray] = []
        routed_in = 0
        remote_in = 0
        for tenant in subset:
            tenant_report = report.tenant(tenant.name)
            times = merged[tenant.name]
            homes = origin_home[tenant.name]
            indices = origin_index[tenant.name]
            routed_in += int(times.size)
            remote_in += int(np.count_nonzero(homes != index))
            admitted = tenant_report.arrival_s
            shed = tenant_report.shed_arrival_s
            if shed.size == 0:
                mask = np.ones(times.size, dtype=bool)
                admitted_pos = np.arange(times.size)
            else:
                mask = np.zeros(times.size, dtype=bool)
                admitted_pos = np.full(times.size, -1)
                at = 0
                for position in range(times.size):
                    # Admissions and sheds are both ordered
                    # subsequences of the merged trace; equal-time
                    # requests resolve admitted-first (deterministic,
                    # and exact whenever arrival times are distinct).
                    if (
                        at < admitted.size
                        and admitted[at] == times[position]
                    ):
                        mask[position] = True
                        admitted_pos[position] = at
                        at += 1
            served_positions = np.flatnonzero(mask)
            stream_latency = np.full(times.size, math.nan)
            if served_positions.size:
                completion = tenant_report.completion_s[
                    admitted_pos[served_positions]
                ]
                stream_latency[served_positions] = (
                    completion
                    - home_times[tenant.name][served_positions]
                    + half_rtt[homes[served_positions], index]
                )
            latency_parts.append(stream_latency[served_positions])
            for home in range(num_regions):
                from_home = homes == home
                if not np.any(from_home):
                    continue
                key = (home, tenant.name)
                served_mask[key][indices[from_home]] = mask[from_home]
                latency[key][indices[from_home]] = stream_latency[from_home]
        region_latency = (
            np.concatenate(latency_parts) if latency_parts else np.array([])
        )
        return RegionOutcome(
            name=region.name,
            pool_size=region.pool_size,
            report=report,
            routed_in=routed_in,
            remote_in=remote_in,
            latency_s=region_latency,
        )

    def _failover_records(
        self,
        offered: dict[tuple[int, str], np.ndarray],
        server: dict[tuple[int, str], np.ndarray],
        served_mask: dict[tuple[int, str], np.ndarray],
        latency: dict[tuple[int, str], np.ndarray],
        outages: list[list[tuple[float, float]]],
    ) -> list[FailoverRecord]:
        """One record per fault-driven degradation window."""
        records: list[FailoverRecord] = []
        for index, region in enumerate(self.regions):
            for onset, until in outages[index]:
                first_time = math.inf
                first_server: int | None = None
                rerouted = 0
                first_completion = math.inf
                for position, tenant in enumerate(self.tenants):
                    key = (index, tenant.name)
                    if key not in offered:
                        continue
                    times = offered[key]
                    diverted = np.flatnonzero(
                        (times >= onset)
                        & (times < until)
                        & (server[key] != index)
                    )
                    if diverted.size == 0:
                        continue
                    rerouted += int(diverted.size)
                    lead = diverted[0]
                    # Tenants iterate in fixed order; the earliest
                    # diverted arrival wins, ties by tenant position.
                    if float(times[lead]) < first_time:
                        first_time = float(times[lead])
                        first_server = int(server[key][lead])
                    done = diverted[served_mask[key][diverted]]
                    if done.size:
                        completions = times[done] + latency[key][done]
                        first_completion = min(
                            first_completion, float(completions.min())
                        )
                survivor = (
                    self.regions[first_server].name
                    if first_server is not None
                    else None
                )
                records.append(
                    FailoverRecord(
                        region=region.name,
                        onset_s=onset,
                        until_s=until,
                        survivor=survivor,
                        rerouted=rerouted,
                        failover_latency_s=(
                            first_completion - onset
                            if math.isfinite(first_completion)
                            else math.nan
                        ),
                    )
                )
        return records


def simulate_fleet_serving(
    tenants: Sequence[ClusterTenant],
    regions: Sequence[RegionSpec],
    arrival_s: Mapping[str, Mapping[str, np.ndarray]],
    rtt_s: np.ndarray | None = None,
    routing: GlobalRoutingPolicy | None = None,
    autoscaler: FleetAutoscaler | None = None,
    config: PCNNAConfig | None = None,
    mode: str = "auto",
) -> FleetReport:
    """One-call multi-region fleet simulation.

    The fleet sibling of
    :func:`~repro.core.cluster.simulate_cluster_serving`: builds the
    :class:`FleetRuntime` and serves every region's offered streams.

    Raises:
        ValueError: on an invalid tenant/region set, RTT matrix,
            autoscaler, mode, or trace.
    """
    runtime = FleetRuntime(
        tenants,
        regions,
        rtt_s=rtt_s,
        routing=routing,
        autoscaler=autoscaler,
        config=config,
        mode=mode,
    )
    return runtime.run(arrival_s)


__all__ = [
    "FLEET_ROUTING_KINDS",
    "AutoscaleRecord",
    "FailoverRecord",
    "FleetAutoscaler",
    "FleetReport",
    "FleetRuntime",
    "FleetTenantTrace",
    "GlobalRoutingPolicy",
    "RegionOutcome",
    "RegionSpec",
    "estimate_region_capacity_rps",
    "simulate_fleet_serving",
    "uniform_rtt",
    "validate_rtt_matrix",
]
