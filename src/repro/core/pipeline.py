"""Discrete-event simulation of the four-stage PCNNA pipeline.

:mod:`repro.core.timing` approximates a double-buffered pipeline by
charging each location the *maximum* of its stage times.  That is exact
for an ideally balanced pipeline but an approximation when stage times
vary location to location (row starts, first fill).  This module runs
the real thing: a discrete-event simulation where each location is a job
flowing through

    fetch -> convert -> compute -> digitize

with each stage a single-server queue (one buffer of depth 1 between
stages — the paper's Input/Output buffers).  The classic recurrence for
a linear pipeline with unit buffers is

    finish[s][i] = max(finish[s-1][i],      # job arrived from upstream
                       finish[s][i-1])      # server free
                   + service[s][i]

and the layer time is the last job's exit from the last stage.  Tests
verify the closed-form `timing.py` model brackets this exact result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import PCNNAConfig
from repro.core.scheduler import LayerSchedule
from repro.nn.shapes import ConvLayerSpec

STAGE_NAMES = ("fetch", "convert", "compute", "digitize")


@dataclass(frozen=True)
class PipelineResult:
    """Discrete-event pipeline simulation outcome.

    Attributes:
        spec: the simulated layer.
        makespan_s: time the last output leaves the last stage.
        stage_busy_s: total busy time per stage, in STAGE_NAMES order.
        stage_utilization: busy time / makespan per stage.
        critical_stage: the busiest stage's name.
    """

    spec: ConvLayerSpec
    makespan_s: float
    stage_busy_s: tuple[float, float, float, float]

    @property
    def stage_utilization(self) -> tuple[float, ...]:
        """Per-stage busy fraction of the makespan."""
        return tuple(busy / self.makespan_s for busy in self.stage_busy_s)

    @property
    def critical_stage(self) -> str:
        """Name of the stage with the largest total busy time."""
        index = int(np.argmax(self.stage_busy_s))
        return STAGE_NAMES[index]


def stage_service_times(
    spec: ConvLayerSpec,
    config: PCNNAConfig | None = None,
    include_adc: bool = True,
) -> np.ndarray:
    """Per-location service times for the four stages.

    Returns:
        Array of shape ``(4, Nlocs)`` in STAGE_NAMES order, using the
        same component models as :mod:`repro.core.timing` (SRAM-aware
        first-touch DRAM fetching, round-robin DAC/ADC scheduling).
    """
    cfg = config if config is not None else PCNNAConfig()
    schedule = LayerSchedule(spec)
    num_locations = schedule.num_locations
    value_bytes = cfg.value_bytes

    sram_fits = schedule.working_set_values() <= cfg.sram.capacity_words
    first_touch = schedule.first_touch_counts()
    new_counts = schedule.new_value_counts()
    fetched = first_touch if sram_fits else new_counts

    fetch = fetched.astype(float) * value_bytes / cfg.dram.bandwidth_bytes_per_s
    per_dac = np.ceil(new_counts / cfg.num_input_dacs)
    convert = per_dac / cfg.input_dac.sample_rate_hz
    compute = np.full(num_locations, cfg.fast_clock_period_s)

    if cfg.max_parallel_kernels is None:
        kernels = spec.num_kernels
    else:
        kernels = min(spec.num_kernels, cfg.max_parallel_kernels)
    if include_adc:
        per_adc = -(-kernels // cfg.num_adcs)
        digitize = np.full(num_locations, per_adc / cfg.adc.sample_rate_hz)
    else:
        digitize = np.zeros(num_locations)

    return np.stack([fetch, convert, compute, digitize])


# repro: allow[API002] closed-form cycle-level model: every input is a
# layer spec and a config constant, nothing stochastic to seed
def simulate_pipeline(
    spec: ConvLayerSpec,
    config: PCNNAConfig | None = None,
    include_adc: bool = True,
) -> PipelineResult:
    """Run the exact discrete-event pipeline for one layer.

    Returns:
        The :class:`PipelineResult` with the true makespan.
    """
    service = stage_service_times(spec, config, include_adc)
    num_stages, num_jobs = service.shape

    finish = np.zeros((num_stages, num_jobs))
    for job in range(num_jobs):
        upstream_done = 0.0
        for stage in range(num_stages):
            server_free = finish[stage, job - 1] if job > 0 else 0.0
            start = max(upstream_done, server_free)
            finish[stage, job] = start + service[stage, job]
            upstream_done = finish[stage, job]

    makespan = float(finish[-1, -1])
    busy = tuple(float(service[stage].sum()) for stage in range(num_stages))
    return PipelineResult(spec=spec, makespan_s=makespan, stage_busy_s=busy)


def max_approximation_error(
    spec: ConvLayerSpec,
    config: PCNNAConfig | None = None,
    include_adc: bool = True,
) -> float:
    """Relative error of the timing.py max() model vs the exact makespan.

    Positive values mean the closed-form model over-estimates (it always
    should: summing per-location maxima plus a fill bound is an upper
    bound on the true makespan).
    """
    from repro.core.timing import simulate_layer

    exact = simulate_pipeline(spec, config, include_adc).makespan_s
    approx = simulate_layer(spec, config, include_adc).pipelined_time_s
    return (approx - exact) / exact
