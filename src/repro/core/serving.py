"""Executable pipelined minibatch serving over multiple PCNNA cores.

:mod:`repro.core.multicore` models the inter-layer pipeline the paper
alludes to *analytically*: contiguous layer slices per core, steady-state
throughput set by the slowest slice.  This module turns that model into
an executable scenario: :func:`run_network_pipelined` splits a real
:class:`~repro.nn.network.Network` across simulated cores with the same
:func:`~repro.core.multicore.balanced_partition`, then streams a whole
minibatch stage by stage through the *functional* photonic engine —
conv layers on the optical core, everything else on the batch-native
electronic side.

Stage assignment: the partition splits the network's conv layers (the
photonic work that defines a core); each electronic layer rides with the
nearest preceding conv's core, and any head layers before the first conv
run on core 0.  Executing the stages sequentially is functionally
identical to a single-core run — pipelining changes *when* each image
reaches a core, never *what* the core computes — so the outputs are
bit-identical to :meth:`~repro.core.accelerator.PCNNA.run_network` while
the per-core service times quantify the steady-state pipeline rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.accelerator import PCNNA
from repro.core.config import PCNNAConfig
from repro.core.multicore import (
    PipelinePartition,
    balanced_partition,
    validate_num_cores,
)
from repro.nn.layers import Conv2D
from repro.nn.network import Network


@dataclass(frozen=True)
class PipelineStage:
    """One core's slice of the network, with its execution record.

    Attributes:
        core_index: position of the core in the pipeline.
        layer_start: index of the stage's first layer in the network.
        layer_end: one past the stage's last layer index.
        layer_names: names of the layers the core owns, in order.
        service_time_s: analytical per-image service time of the core
            (the sum of its conv layers' DAC-bound times).
        wall_time_s: measured wall-clock time this stage took to process
            the whole minibatch in this run.
    """

    core_index: int
    layer_start: int
    layer_end: int
    layer_names: tuple[str, ...]
    service_time_s: float
    wall_time_s: float


@dataclass(frozen=True)
class PipelinedRunResult:
    """Outputs and throughput report of one pipelined minibatch run.

    Attributes:
        outputs: the network outputs for the minibatch (bit-identical to
            a single-core :meth:`~repro.core.accelerator.PCNNA.run_network`).
        stages: per-core execution records, in pipeline order.
        partition: the underlying analytical layer partition.
        batch_size: number of images in the minibatch.
    """

    outputs: np.ndarray
    stages: tuple[PipelineStage, ...]
    partition: PipelinePartition
    batch_size: int

    @property
    def num_cores(self) -> int:
        """Cores in the pipeline."""
        return len(self.stages)

    @property
    def bottleneck_s(self) -> float:
        """The slowest core's analytical service time (the pipeline
        initiation interval)."""
        return self.partition.bottleneck_s

    @property
    def images_per_s(self) -> float:
        """Analytical steady-state throughput: one image completes per
        bottleneck interval once the pipeline is full."""
        return self.partition.images_per_s

    @property
    def single_image_latency_s(self) -> float:
        """Analytical latency of one image traversing every core."""
        return self.partition.single_image_latency_s

    def describe(self) -> str:
        """A human-readable per-core summary table."""
        lines = [
            f"pipeline over {self.num_cores} cores, batch={self.batch_size}: "
            f"{self.images_per_s:,.0f} img/s steady-state "
            f"(bottleneck {self.bottleneck_s:.3g} s)"
        ]
        for stage in self.stages:
            lines.append(
                f"  core {stage.core_index}: "
                f"{'+'.join(stage.layer_names)} | "
                f"service {stage.service_time_s:.3g} s/img"
            )
        return "\n".join(lines)


def stage_layer_slices(
    network: Network,
    num_cores: int,
    config: PCNNAConfig | None = None,
    clamp_cores: bool = False,
) -> tuple[PipelinePartition, tuple[tuple[int, int], ...]]:
    """Partition a network's layers into contiguous per-core slices.

    The conv layers are split with
    :func:`~repro.core.multicore.balanced_partition` (minimizing the
    bottleneck core's DAC-bound time); every non-conv layer is assigned
    to the core of the nearest preceding conv layer.

    Args:
        network: the network to split.
        num_cores: pipeline width; validated up front against the
            number of conv layers.
        config: hardware configuration for the partitioning weights.
        clamp_cores: shrink an oversized ``num_cores`` to the conv-layer
            count instead of raising.

    Returns:
        The analytical partition over the conv layers, and per-core
        ``(start, end)`` index ranges into ``network.layers``.

    Raises:
        ValueError: if the network has no conv layers, or ``num_cores``
            is not an integer in ``[1, number of conv layers]`` (with
            ``clamp_cores`` off).
    """
    specs = network.conv_specs()
    if not specs:
        raise ValueError(
            f"{network.name}: no conv layers to pipeline over cores"
        )
    num_cores = validate_num_cores(num_cores, len(specs), clamp=clamp_cores)
    partition = balanced_partition(specs, num_cores, config)
    conv_indices = [
        index
        for index, layer in enumerate(network.layers)
        if isinstance(layer, Conv2D)
    ]
    starts = [0] + [
        conv_indices[conv_start] for conv_start, _ in partition.slices[1:]
    ]
    ends = starts[1:] + [len(network.layers)]
    return partition, tuple(zip(starts, ends))


def run_network_pipelined(
    network: Network,
    inputs: np.ndarray,
    num_cores: int,
    config: PCNNAConfig | None = None,
    accelerator: PCNNA | None = None,
    clamp_cores: bool = False,
) -> PipelinedRunResult:
    """Run a minibatch through a network pipelined over PCNNA cores.

    Each core owns a contiguous slice of layers (see
    :func:`stage_layer_slices`) and pushes the whole minibatch through
    its slice — conv layers on the functional photonic engine, the rest
    on the batch-native electronic path — before handing the batch to
    the next core, exactly as a weight-stationary pipelined deployment
    would stream it.

    Args:
        network: the CNN to execute.
        inputs: a ``(B, *network.input_shape)`` minibatch, or one input
            of ``network.input_shape``.
        num_cores: cores in the pipeline, between 1 and the number of
            conv layers (validated up front).
        config: hardware configuration for both execution and the
            analytical partitioning (defaults to the paper's).
        accelerator: optional pre-built :class:`PCNNA` to execute on;
            overrides ``config`` for execution.
        clamp_cores: shrink an oversized ``num_cores`` to the conv-layer
            count instead of raising.

    Returns:
        A :class:`PipelinedRunResult` with the outputs (bit-identical to
        the single-core run in ideal mode) and the per-core throughput
        report.

    Raises:
        ValueError: on shape mismatches, an empty minibatch, or invalid
            core counts.
    """
    engine = accelerator if accelerator is not None else PCNNA(config)
    if config is None:
        # Partition and report with the hardware that actually executes.
        config = engine.config
    partition, slices = stage_layer_slices(
        network, num_cores, config, clamp_cores=clamp_cores
    )

    inputs = np.asarray(inputs, dtype=float)
    batched = inputs.ndim == len(network.input_shape) + 1
    if batched and inputs.shape[0] == 0:
        raise ValueError(
            f"{network.name}: minibatch must contain at least one image, "
            f"got shape {inputs.shape}"
        )
    batch_size = inputs.shape[0] if batched else 1

    current = inputs
    stages = []
    for core_index, (start, end) in enumerate(slices):
        stage_net = Network(
            network.layers[start:end],
            input_shape=network.layer_shapes[start],
            name=f"{network.name}/core{core_index}",
        )
        # repro: allow[DET002] wall_time_s is an observability field on
        # the real-engine run (how long the numpy compute itself took);
        # it never feeds the simulated clock or any pinned result
        began = time.perf_counter()
        current = engine.run_network(stage_net, current)
        # repro: allow[DET002] see above: diagnostic only
        wall_time_s = time.perf_counter() - began
        stages.append(
            PipelineStage(
                core_index=core_index,
                layer_start=start,
                layer_end=end,
                layer_names=tuple(
                    layer.name for layer in network.layers[start:end]
                ),
                service_time_s=partition.core_times_s[core_index],
                wall_time_s=wall_time_s,
            )
        )
    return PipelinedRunResult(
        outputs=current,
        stages=tuple(stages),
        partition=partition,
        batch_size=batch_size,
    )
