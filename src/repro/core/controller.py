"""Layer-sequencing controller: the Fig. 4 control path as a state machine.

The paper's architecture diagram implies a controller that, per layer:
loads kernel weights from DRAM into the Kernel Weights Buffer, programs
the MRR banks, then streams receptive fields through the Input Buffer /
cache / DACs while draining results through the ADC and Output Buffer.
:class:`LayerController` executes that sequence against the real buffer
and memory models, emitting a timestamped event trace that the tests use
to verify ordering invariants (weights before inputs, every location
produced exactly once, buffers never over/underflow).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.config import PCNNAConfig
from repro.core.scheduler import LayerSchedule
from repro.electronics.buffers import InputBuffer, KernelWeightsBuffer, OutputBuffer
from repro.electronics.dram import Dram
from repro.nn.shapes import ConvLayerSpec


class Phase(enum.Enum):
    """Controller phases, in execution order."""

    IDLE = "idle"
    LOAD_WEIGHTS = "load-weights"
    PROGRAM_BANKS = "program-banks"
    STREAM_LOCATIONS = "stream-locations"
    DRAIN_OUTPUTS = "drain-outputs"
    DONE = "done"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped controller event.

    Attributes:
        time_s: simulation time of the event.
        phase: controller phase the event belongs to.
        action: short event name (e.g. ``"mac-wave"``).
        detail: free-form payload (location index, byte count, ...).
    """

    time_s: float
    phase: Phase
    action: str
    detail: int = 0


@dataclass
class ControllerReport:
    """Result of running one layer through the controller.

    Attributes:
        spec: the executed layer.
        events: the full ordered event trace.
        finish_time_s: timestamp of the final event.
        locations_executed: MAC waves issued.
        outputs_written: result values written back to DRAM.
    """

    spec: ConvLayerSpec
    events: list[TraceEvent] = field(default_factory=list)
    finish_time_s: float = 0.0
    locations_executed: int = 0
    outputs_written: int = 0

    def events_in_phase(self, phase: Phase) -> list[TraceEvent]:
        """All events belonging to one phase."""
        return [event for event in self.events if event.phase == phase]


class LayerController:
    """Sequences one convolution layer through the PCNNA pipeline.

    The controller is deliberately *serial* (each phase completes before
    the next): it models the control flow, not peak performance — the
    pipelined timing lives in :mod:`repro.core.timing`.  Buffer pressure
    is handled by draining the output buffer to DRAM whenever it fills.

    Args:
        config: hardware configuration.
        input_buffer_capacity: Input Buffer slots (values).
        output_buffer_capacity: Output Buffer slots (values).
    """

    def __init__(
        self,
        config: PCNNAConfig | None = None,
        input_buffer_capacity: int = 4096,
        output_buffer_capacity: int = 4096,
    ) -> None:
        self.config = config if config is not None else PCNNAConfig()
        self.input_buffer_capacity = input_buffer_capacity
        self.output_buffer_capacity = output_buffer_capacity

    def run_layer(self, spec: ConvLayerSpec) -> ControllerReport:
        """Execute one layer; returns the event trace and counters."""
        cfg = self.config
        dram = Dram(cfg.dram)
        weights_buffer = KernelWeightsBuffer(capacity=max(spec.total_weights, 1))
        input_buffer = InputBuffer(capacity=self.input_buffer_capacity)
        output_buffer = OutputBuffer(capacity=self.output_buffer_capacity)
        schedule = LayerSchedule(spec)
        report = ControllerReport(spec=spec)
        clock = 0.0

        def log(phase: Phase, action: str, detail: int = 0) -> None:
            report.events.append(TraceEvent(clock, phase, action, detail))

        # -- load weights ----------------------------------------------------
        log(Phase.LOAD_WEIGHTS, "begin")
        weight_bytes = spec.total_weights * cfg.value_bytes
        clock += dram.read(weight_bytes)
        weights_buffer.push_many([None] * spec.total_weights)
        log(Phase.LOAD_WEIGHTS, "weights-buffered", spec.total_weights)

        # -- program banks ----------------------------------------------------
        drained = len(weights_buffer.drain())
        clock += drained / (cfg.num_weight_dacs * cfg.weight_dac.sample_rate_hz)
        log(Phase.PROGRAM_BANKS, "banks-programmed", drained)

        # -- stream locations ---------------------------------------------
        kernels = spec.num_kernels
        if cfg.max_parallel_kernels is not None:
            kernels = min(kernels, cfg.max_parallel_kernels)
        for step in schedule.steps():
            if step.new_values > input_buffer.free_space:
                # The buffer refills as the core consumes; model as a drain.
                input_buffer.clear()
            input_buffer.push_many([None] * step.new_values)
            clock += dram.stream_read(step.new_values * cfg.value_bytes)
            clock += step.new_values / (
                cfg.num_input_dacs * cfg.input_dac.sample_rate_hz
            )
            clock += cfg.fast_clock_period_s
            log(Phase.STREAM_LOCATIONS, "mac-wave", step.index)
            report.locations_executed += 1

            if kernels > output_buffer.free_space:
                flushed = len(output_buffer.drain())
                clock += dram.write(flushed * cfg.value_bytes)
                report.outputs_written += flushed
                log(Phase.DRAIN_OUTPUTS, "flush", flushed)
            output_buffer.push_many([None] * kernels)

        # -- final drain -----------------------------------------------------
        flushed = len(output_buffer.drain())
        if flushed:
            clock += dram.write(flushed * cfg.value_bytes)
            report.outputs_written += flushed
            log(Phase.DRAIN_OUTPUTS, "flush", flushed)

        log(Phase.DONE, "layer-complete")
        report.finish_time_s = clock
        return report
