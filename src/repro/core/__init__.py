"""PCNNA core: the paper's contribution.

Analytical framework (ring counts, area, execution time — paper section
V), MRR-bank mapping with receptive-field filtering (section IV, Fig. 2),
the receptive-field dataflow scheduler, the cycle-level timing simulator,
the functional photonic convolution engine, and power/area roll-ups.
"""

from repro.core.accelerator import (
    PCNNA,
    ConvScaling,
    LayerReport,
    PhotonicConvolution,
)
from repro.core.analytical import (
    LayerAnalysis,
    analyze_layer,
    analyze_network,
    bank_area_mm2,
    dac_updates_per_location,
    full_system_time_s,
    microrings_filtered,
    microrings_unfiltered,
    network_totals,
    optical_core_time_s,
    per_location_adc_time_s,
    per_location_dac_time_s,
    ring_savings_factor,
    rings_per_kernel_bank,
    speedup,
    weight_load_time_s,
)
from repro.core.area import AreaReport, estimate_layer_area, network_max_area_mm2
from repro.core.batching import (
    BatchTiming,
    layer_batch_time_s,
    network_batch_timing,
    network_batch_timing_simulated,
    weight_stationary_crossover,
)
from repro.core.config import PAPER_CONFIG, PCNNAConfig, paper_assumptions
from repro.core.controller import (
    ControllerReport,
    LayerController,
    Phase,
    TraceEvent,
)
from repro.core.mapping import (
    Fig2RingCounts,
    KernelBankMapping,
    LayerMapping,
    fig2_ring_counts,
    map_layer,
)
from repro.core.multicore import (
    PipelinePartition,
    balanced_partition,
    contiguous_partition,
    pipeline_speedup,
    validate_num_cores,
)
from repro.core.pipeline import (
    PipelineResult,
    max_approximation_error,
    simulate_pipeline,
    stage_service_times,
)
from repro.core.power import (
    PowerReport,
    estimate_layer_power,
    estimate_network_energy_j,
)
from repro.core.pruning import (
    SparseMappingReport,
    prune_kernels,
    pruned_conv_error,
    sparse_mapping_report,
    threshold_for_sparsity,
)
from repro.core.scheduler import LayerSchedule, LocationStep, dram_traffic_bytes
from repro.core.serving import (
    PipelinedRunResult,
    PipelineStage,
    run_network_pipelined,
    stage_layer_slices,
)
from repro.core.traffic import (
    BatchingPolicy,
    BatchRecord,
    PipelineServiceModel,
    ServingReport,
    ServingSimulator,
    replay_on_engine,
    simulate_serving,
)
from repro.core.timing import (
    BatchLayerTimingResult,
    LayerTimingResult,
    StageBreakdown,
    simulate_layer,
    simulate_layer_batch,
    simulate_network,
)
from repro.core.validation import (
    EquivalenceReport,
    assert_functionally_equivalent,
    compare_photonic_reference,
)

__all__ = [
    "PCNNA",
    "ConvScaling",
    "LayerReport",
    "PhotonicConvolution",
    "LayerAnalysis",
    "analyze_layer",
    "analyze_network",
    "bank_area_mm2",
    "dac_updates_per_location",
    "full_system_time_s",
    "microrings_filtered",
    "microrings_unfiltered",
    "network_totals",
    "optical_core_time_s",
    "per_location_adc_time_s",
    "per_location_dac_time_s",
    "ring_savings_factor",
    "rings_per_kernel_bank",
    "speedup",
    "weight_load_time_s",
    "AreaReport",
    "estimate_layer_area",
    "network_max_area_mm2",
    "BatchTiming",
    "layer_batch_time_s",
    "network_batch_timing",
    "network_batch_timing_simulated",
    "weight_stationary_crossover",
    "PAPER_CONFIG",
    "PCNNAConfig",
    "paper_assumptions",
    "ControllerReport",
    "LayerController",
    "Phase",
    "TraceEvent",
    "Fig2RingCounts",
    "KernelBankMapping",
    "LayerMapping",
    "fig2_ring_counts",
    "map_layer",
    "PipelinePartition",
    "balanced_partition",
    "contiguous_partition",
    "pipeline_speedup",
    "validate_num_cores",
    "SparseMappingReport",
    "prune_kernels",
    "pruned_conv_error",
    "sparse_mapping_report",
    "threshold_for_sparsity",
    "PipelineResult",
    "max_approximation_error",
    "simulate_pipeline",
    "stage_service_times",
    "PowerReport",
    "estimate_layer_power",
    "estimate_network_energy_j",
    "LayerSchedule",
    "LocationStep",
    "dram_traffic_bytes",
    "PipelinedRunResult",
    "PipelineStage",
    "run_network_pipelined",
    "stage_layer_slices",
    "BatchingPolicy",
    "BatchRecord",
    "PipelineServiceModel",
    "ServingReport",
    "ServingSimulator",
    "replay_on_engine",
    "simulate_serving",
    "BatchLayerTimingResult",
    "LayerTimingResult",
    "StageBreakdown",
    "simulate_layer",
    "simulate_layer_batch",
    "simulate_network",
    "EquivalenceReport",
    "assert_functionally_equivalent",
    "compare_photonic_reference",
]
