"""Receptive-field dataflow scheduler (paper section IV).

PCNNA processes a layer as a sequence of kernel *locations*: for each
location the receptive field is staged in the input buffer/cache, one
optical MAC wave computes all K kernel outputs in parallel, and the
results are written back.  Between consecutive locations only the values
that *enter* the window need to be fetched — the stride-reuse property
the paper uses to bound front-end bandwidth at ``nc * m * s`` values per
step.

:class:`LayerSchedule` walks the locations in raster order and reports,
for every step, exactly which padded-input indices are newly required and
which leave the working set.  The cycle-level timing simulator, the DRAM
traffic accounting, and the SRAM working-set checks all consume this one
schedule, so they cannot disagree about the dataflow.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.nn.im2col import receptive_field_indices
from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class LocationStep:
    """One kernel location in the schedule.

    Attributes:
        index: location index in raster order (0 .. Nlocs-1).
        row: output row of this location.
        col: output column of this location.
        new_values: count of receptive-field values not present at the
            previous location (the DAC/DRAM load for this step).
        retired_values: count of values that left the window.
        working_set: receptive-field size (always ``Nkernel``).
        is_row_start: whether this location begins a new output row.
    """

    index: int
    row: int
    col: int
    new_values: int
    retired_values: int
    working_set: int
    is_row_start: bool


class LayerSchedule:
    """The raster-order location schedule of one conv layer.

    Args:
        spec: layer geometry.

    The schedule is computed lazily per step from the shared
    :func:`~repro.nn.im2col.receptive_field_indices` map, so it is exact
    for any stride/padding combination, including row wrap-around where
    the paper's ``nc * m * s`` steady-state bound does not apply.
    """

    def __init__(self, spec: ConvLayerSpec) -> None:
        self.spec = spec
        self._indices = receptive_field_indices(
            height=spec.n,
            width=spec.n,
            channels=spec.nc,
            kernel_size=spec.m,
            stride=spec.s,
            padding=spec.p,
        )
        if self._indices.shape[0] != spec.n_locs:
            raise AssertionError(
                f"schedule disagrees with eq. 6: {self._indices.shape[0]} != "
                f"{spec.n_locs}"
            )

    @property
    def num_locations(self) -> int:
        """Total kernel locations (``Nlocs``)."""
        return self.spec.n_locs

    def indices_for(self, location: int) -> np.ndarray:
        """Padded-input flat indices of one location's receptive field.

        Raises:
            IndexError: if ``location`` is out of range.
        """
        if not 0 <= location < self.num_locations:
            raise IndexError(
                f"location {location} out of range [0, {self.num_locations})"
            )
        return self._indices[location]

    def steps(self) -> Iterator[LocationStep]:
        """Yield every location step with its new/retired value counts."""
        out_side = self.spec.output_side
        previous: set[int] = set()
        for location in range(self.num_locations):
            current = set(self._indices[location].tolist())
            new_values = len(current - previous)
            retired = len(previous - current)
            row, col = divmod(location, out_side)
            yield LocationStep(
                index=location,
                row=row,
                col=col,
                new_values=new_values,
                retired_values=retired,
                working_set=len(current),
                is_row_start=(col == 0),
            )
            previous = current

    def new_value_counts(self) -> np.ndarray:
        """Array of ``new_values`` per location (length ``Nlocs``)."""
        return np.array([step.new_values for step in self.steps()], dtype=np.int64)

    def first_touch_counts(self) -> np.ndarray:
        """Per-location counts of values touched for the first time.

        A value enters the sliding window at up to ``m / s`` different
        locations, but only its *first* appearance requires a DRAM fetch
        when the SRAM cache can hold the live working set (the ``m``-row
        band of the padded input).  Subsequent appearances hit in SRAM.

        Returns:
            Array of length ``Nlocs``; entry ``i`` is the number of
            padded-input values whose first window membership is at
            location ``i``.  Sums to the number of distinct values the
            layer ever touches.
        """
        flat = self._indices.reshape(-1)
        first_flat_positions = np.unique(flat, return_index=True)[1]
        first_locations = first_flat_positions // self._indices.shape[1]
        counts = np.bincount(first_locations, minlength=self.num_locations)
        return counts.astype(np.int64)

    def working_set_values(self) -> int:
        """Live SRAM working set: the ``m``-row band of the padded input.

        While the window walks one output row, every value in the ``m``
        input rows it covers is still live (it will be reused by later
        columns); capacity below this forces re-fetching.
        """
        padded_side = self.spec.n + 2 * self.spec.p
        return self.spec.nc * self.spec.m * padded_side

    def total_values_loaded(self) -> int:
        """Total values fetched over the layer (sum of new values).

        Thanks to stride reuse this is far below ``Nlocs * Nkernel``; with
        stride >= m (no overlap) it approaches the padded-input coverage.
        """
        return int(self.new_value_counts().sum())

    def steady_state_bound(self) -> int:
        """The paper's per-step bound ``nc * m * s`` (section V-B).

        Holds for every step except row starts (which refill up to the
        full window) — asserted by the test suite.
        """
        return self.spec.stride_update_values


def dram_traffic_bytes(
    spec: ConvLayerSpec, value_bytes: int = 2
) -> dict[str, int]:
    """Layer DRAM traffic under the Fig. 4 dataflow (bytes).

    Reads: every newly-required input value (stride reuse respected) plus
    the kernel weights once.  Writes: the full output feature map.

    Args:
        spec: layer geometry.
        value_bytes: bytes per stored value (paper: 16-bit = 2).

    Returns:
        Mapping with ``input_read``, ``weight_read``, ``output_write``
        and ``total`` byte counts.
    """
    if value_bytes <= 0:
        raise ValueError(f"value width must be positive, got {value_bytes!r}")
    schedule = LayerSchedule(spec)
    input_read = schedule.total_values_loaded() * value_bytes
    weight_read = spec.total_weights * value_bytes
    output_write = spec.n_output * value_bytes
    return {
        "input_read": input_read,
        "weight_read": weight_read,
        "output_write": output_write,
        "total": input_read + weight_read + output_write,
    }
