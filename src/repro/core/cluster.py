"""Multi-tenant cluster serving over a shared photonic core pool.

The single-model simulators answer "how does *one* network serve *its*
traffic".  A production deployment co-serves many models: an
interactive LeNet next to a batch AlexNet next to a GoogLeNet stem,
all drawing cores from one heterogeneous pool.  This module builds that
runtime on the unified event-loop kernel (:mod:`repro.core.simkernel`):

* each :class:`ClusterTenant` owns a request queue, a batching policy,
  and a contiguous sub-pipeline of physical pool cores; its dispatches
  are planned and booked with the *exact* kernel arithmetic
  (:func:`~repro.core.simkernel.plan_dispatch` /
  :func:`~repro.core.simkernel.execute_dispatch`), so a single-tenant
  zero-fault cluster run is bit-identical to the PR 3
  :class:`~repro.core.traffic.ServingSimulator`;
* a :class:`RoutingPolicy` arbitrates the pool — ``weighted_fair``
  allocates cores proportionally to tenant weights and *guarantees*
  each tenant its share (the minority tenant keeps its cores while a
  10x-load neighbour saturates the pool), ``priority`` lets
  high-priority tenants strip low-priority ones down to one core;
* admission control sheds load: a tenant's ``queue_cap`` bounds its
  queue, and a request arriving to a full queue is dropped and counted
  (``served + shed = offered``, the conservation law the hypothesis
  suite pins);
* an :class:`ElasticReallocation` policy moves cores between tenants at
  dispatch instants when queue pressure diverges, draining the affected
  pipelines on the shared clock and re-partitioning each tenant's
  layers over its new width;
* an optional :class:`~repro.core.faults.FaultSchedule` degrades the
  *physical pool cores* — each carries the same
  :class:`~repro.core.faults.CoreHealthState` drift state machine as
  the degraded simulator, advanced at the owning tenant's dispatch
  instants, with recalibration downtime paid into that tenant's clock;
* :func:`replay_tenant_on_engine` re-executes any tenant's simulated
  batches on the real batched photonic engine at the per-batch pipeline
  widths elastic reallocation left behind — bit-identical to running
  every request alone in ideal mode.

Everything is a pure function of its inputs: a fixed seed and tenant
mix yields bit-identical reports on every run.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.config import PCNNAConfig
from repro.core.faults import (
    CoreHealthState,
    FaultSchedule,
    RecalibrationPolicy,
    RecalibrationRecord,
)
from repro.core.simkernel import (
    BatchingPolicy,
    BatchTable,
    DispatchContext,
    execute_dispatch,
    pipeline_completions,
    plan_batches,
    plan_dispatch,
    validate_arrival_trace,
    validate_kernel_mode,
)
from repro.core.traffic import (
    PipelineServiceModel,
    ServingReport,
    replay_batches,
    validate_replay_inputs,
)
from repro.nn.network import Network
from repro.nn.shapes import ConvLayerSpec

# Contract markers checked by `python -m repro.lint` (BIT001/PERF001):
# a single-tenant zero-fault cluster run is pinned bit-identical to the
# plain simulator, and _TenantLane is the per-tenant hot-path state the
# cluster event loop advances on every dispatch.
__bit_identity__ = True
__hot_path__ = ("_TenantLane",)

ROUTING_KINDS: tuple[str, ...] = ("weighted-fair", "priority")
"""Routing disciplines a :class:`RoutingPolicy` may carry."""


@dataclass(frozen=True)
class ClusterTenant:
    """One co-served model with its queue, policy, and pool entitlement.

    Attributes:
        name: unique tenant label used in reports and routing.
        specs: the tenant network's conv layers (the photonic work that
            defines its pipeline).
        policy: the tenant's batching policy.
        weight: weighted-fair share of the pool (> 0).
        priority: priority-routing rank (higher wins).
        queue_cap: admission-control bound on the tenant's queue;
            ``None`` admits everything.  A cap below the policy's
            ``max_batch`` also caps the batch size — a queue that can
            never hold a full batch must not wait for one.
    """

    name: str
    specs: tuple[ConvLayerSpec, ...]
    policy: BatchingPolicy
    weight: float = 1.0
    priority: int = 0
    queue_cap: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a non-empty name")
        if not self.specs:
            raise ValueError(
                f"{self.name}: need at least one conv layer to serve"
            )
        if self.weight <= 0.0 or not np.isfinite(self.weight):
            raise ValueError(
                f"{self.name}: weight must be finite and > 0, got "
                f"{self.weight!r}"
            )
        if self.queue_cap is not None and self.queue_cap < 1:
            raise ValueError(
                f"{self.name}: queue cap must be >= 1, got "
                f"{self.queue_cap!r}"
            )

    @classmethod
    def from_network(
        cls,
        name: str,
        network: Network,
        policy: BatchingPolicy,
        weight: float = 1.0,
        priority: int = 0,
        queue_cap: int | None = None,
    ) -> "ClusterTenant":
        """Build a tenant from an executable network's conv layers."""
        return cls(
            name=name,
            specs=tuple(network.conv_specs()),
            policy=policy,
            weight=weight,
            priority=priority,
            queue_cap=queue_cap,
        )

    @property
    def max_useful_cores(self) -> int:
        """Cores beyond this are wasted on the tenant (one per layer)."""
        return len(self.specs)


@dataclass(frozen=True)
class RoutingPolicy:
    """How the cluster arbitrates the shared pool between tenants.

    ``weighted-fair`` allocates cores in proportion to tenant weights
    and *guarantees* each tenant its initial share: elastic reallocation
    may only move a tenant's surplus, so a minority tenant's cores can
    never be stripped by a noisy neighbour.  ``priority`` guarantees
    only one core per tenant, hands the rest of the pool out in
    descending priority order at allocation, and prefers
    higher-priority tenants when ordering simultaneous dispatches and
    when choosing which pressured tenant grows at a reallocation
    (elastic moves may strip lower-priority tenants down to one core).
    Under weighted-fair, simultaneous dispatches order by
    least-served-per-weight instead.

    Attributes:
        kind: one of :data:`ROUTING_KINDS`.
    """

    kind: str = "weighted-fair"

    def __post_init__(self) -> None:
        if self.kind not in ROUTING_KINDS:
            raise ValueError(
                f"unknown routing kind {self.kind!r}; have {ROUTING_KINDS}"
            )

    @classmethod
    def weighted_fair(cls) -> "RoutingPolicy":
        """Proportional-share routing with guaranteed allocations."""
        return cls(kind="weighted-fair")

    @classmethod
    def priority(cls) -> "RoutingPolicy":
        """Strict-priority routing (floor of one core per tenant)."""
        return cls(kind="priority")


@dataclass(frozen=True)
class ElasticReallocation:
    """When does a core move between tenants?

    Evaluated after every dispatch: if some tenant's queue pressure
    (queued requests per allocated core) exceeds ``pressure_ratio``
    times the least-pressured donor's — and the pressured tenant has at
    least ``min_queue`` requests waiting — one core moves.  Moves drain
    both pipelines (layers are re-partitioned over the new widths), so
    the thresholds exist to stop thrash; free pool cores are handed out
    without a donor.

    Attributes:
        pressure_ratio: minimum recipient/donor pressure ratio.
        min_queue: minimum queued requests before a tenant may grow.
    """

    pressure_ratio: float = 4.0
    min_queue: int = 16

    def __post_init__(self) -> None:
        if self.pressure_ratio < 1.0 or not np.isfinite(self.pressure_ratio):
            raise ValueError(
                f"pressure ratio must be finite and >= 1, got "
                f"{self.pressure_ratio!r}"
            )
        if self.min_queue < 1:
            raise ValueError(
                f"min queue must be >= 1, got {self.min_queue!r}"
            )


@dataclass(frozen=True)
class ReallocationRecord:
    """One elastic core move, as the event loop saw it.

    Attributes:
        time_s: dispatch instant the reallocator reacted at.
        core: physical pool core that moved.
        from_tenant: donor tenant, or ``None`` for a free pool core.
        to_tenant: recipient tenant.
        donor_cores_after: donor width after the move (0 for the pool).
        recipient_cores_after: recipient width after the move.
    """

    time_s: float
    core: int
    from_tenant: str | None
    to_tenant: str
    donor_cores_after: int
    recipient_cores_after: int


@dataclass(frozen=True)
class TenantServingReport(ServingReport):
    """A :class:`~repro.core.traffic.ServingReport` for one tenant.

    The inherited per-request arrays cover the *served* (admitted)
    requests; the offered and shed traces make the conservation law
    checkable: ``num_requests + num_shed == num_offered``.

    Attributes:
        tenant: the tenant's name.
        offered_arrival_s: the tenant's full offered arrival trace.
        shed_arrival_s: arrival times of requests dropped by admission
            control, in arrival order.
        batch_num_cores: per-batch pipeline width (changes at elastic
            reallocations) — the input to
            :func:`replay_tenant_on_engine`.
        accuracy_proxy: per-batch worst measured weight error over the
            tenant's cores (all zeros when the cluster ran fault-free).
    """

    tenant: str
    offered_arrival_s: np.ndarray
    shed_arrival_s: np.ndarray
    batch_num_cores: np.ndarray
    accuracy_proxy: np.ndarray

    @property
    def num_offered(self) -> int:
        """Requests the tenant's trace offered."""
        return int(self.offered_arrival_s.size)

    @property
    def num_shed(self) -> int:
        """Requests dropped by admission control."""
        return int(self.shed_arrival_s.size)

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered load shed."""
        return self.num_shed / self.num_offered

    def describe(self) -> str:
        """The base summary block plus the tenant's admission line."""
        return "\n".join(
            [
                f"[{self.tenant}] " + super().describe(),
                f"  offered {self.num_offered}, served {self.num_requests}, "
                f"shed {self.num_shed} ({self.shed_fraction:.1%})",
            ]
        )


@dataclass(frozen=True)
class ClusterReport:
    """Everything measured over one multi-tenant cluster run.

    Attributes:
        pool_size: physical cores in the shared pool.
        routing: the routing policy's kind.
        tenants: per-tenant serving reports, in tenant order.
        reallocations: every elastic core move, in order.
        schedule_name: the fault schedule, or ``None`` if fault-free.
        recalibration_name: the recalibration policy, or ``None``.
        core_downtime_s: per-pool-core recalibration downtime.
        final_core_errors: per-pool-core weight error at the end
            (all zeros when fault-free).
        recalibrations: every recalibration attempt, in order.
    """

    pool_size: int
    routing: str
    tenants: tuple[TenantServingReport, ...]
    reallocations: tuple[ReallocationRecord, ...]
    schedule_name: str | None
    recalibration_name: str | None
    core_downtime_s: tuple[float, ...]
    final_core_errors: tuple[float, ...]
    recalibrations: tuple[RecalibrationRecord, ...]

    def tenant(self, name: str) -> TenantServingReport:
        """The named tenant's report.

        Raises:
            KeyError: on an unknown tenant name.
        """
        for report in self.tenants:
            if report.tenant == name:
                return report
        raise KeyError(
            f"unknown tenant {name!r}; have "
            f"{tuple(report.tenant for report in self.tenants)}"
        )

    @property
    def num_offered(self) -> int:
        """Requests offered across every tenant."""
        # repro: allow[BIT001] integer count, exact in any order
        return sum(report.num_offered for report in self.tenants)

    @property
    def num_served(self) -> int:
        """Requests served across every tenant."""
        # repro: allow[BIT001] integer count, exact in any order
        return sum(report.num_requests for report in self.tenants)

    @property
    def num_shed(self) -> int:
        """Requests shed across every tenant."""
        # repro: allow[BIT001] integer count, exact in any order
        return sum(report.num_shed for report in self.tenants)

    @property
    def makespan_s(self) -> float:
        """Earliest arrival to latest completion across tenants."""
        start = min(float(r.arrival_s[0]) for r in self.tenants)
        end = max(float(r.completion_s.max()) for r in self.tenants)
        return end - start

    @property
    def pool_core_busy_s(self) -> tuple[float, ...]:
        """Per-pool-core busy time summed over the tenants."""
        busy = np.zeros(self.pool_size)
        for report in self.tenants:
            busy += np.asarray(report.core_busy_s)
        return tuple(float(b) for b in busy)

    @property
    def pool_utilization(self) -> tuple[float, ...]:
        """Per-pool-core busy fraction of the cluster makespan."""
        span = self.makespan_s
        return tuple(busy / span for busy in self.pool_core_busy_s)

    def describe(self) -> str:
        """A cluster summary: pool header plus every tenant's block."""
        util = ", ".join(f"{u:.0%}" for u in self.pool_utilization)
        lines = [
            f"cluster [{self.routing}] over {self.pool_size} cores: "
            f"{self.num_served}/{self.num_offered} served "
            f"({self.num_shed} shed), {len(self.reallocations)} "
            f"reallocations | pool utilization {util}"
        ]
        lines.extend(report.describe() for report in self.tenants)
        return "\n".join(lines)


class _TenantLane:
    """One tenant's queue + pipeline inside the cluster event loop.

    Wraps a kernel :class:`DispatchContext` whose stage→core map points
    at *physical pool cores* and whose busy ledger spans the whole pool
    (so per-tenant per-core attribution survives reallocations), plus
    the admission-control queue: raw arrivals are judged in order, and
    an arrival that finds ``queue_cap`` *uncompleted* requests already
    in the system (queued or in flight in the pipeline) is shed.
    Capping system occupancy rather than just the scheduler queue is
    what bounds an admitted request's latency: whichever core is the
    pipeline bottleneck, at most ``queue_cap`` requests are ever ahead
    of an admitted one.

    Admissions are judged against the system state at the arrival
    instant.  A lane's batch completions are monotone in dispatch
    order, so an arrival at or before the batch being committed can be
    judged exactly; later arrivals are admitted early only when the
    judgment cannot flip (occupancy only shrinks as batches complete)
    and otherwise wait, unjudged, for the commit that decides them.
    """

    __slots__ = (
        "index",
        "spec",
        "config",
        "raw",
        "n",
        "cap",
        "admission",
        "_burn",
        "policy",
        "ctx",
        "initial_width",
        "admitted_times",
        "admitted",
        "ptr",
        "shed",
        "widths",
        "proxies",
        "served",
        "released",
        "_completion_times",
        "_cum_completed",
    )

    def __init__(
        self,
        index: int,
        spec: ClusterTenant,
        arrivals: np.ndarray,
        phys_cores: list[int],
        pool_size: int,
        config: PCNNAConfig | None,
        admission=None,
    ) -> None:
        self.index = index
        self.spec = spec
        self.config = config
        self.raw = arrivals
        self.n = int(arrivals.size)
        # An admission controller (repro.core.adaptive.BurnRateAdmission)
        # owns the occupancy cap when supplied; its disabled setting with
        # the tenant's own cap is decision-identical to the static path.
        self.admission = admission
        self.cap = (
            admission.queue_cap if admission is not None else spec.queue_cap
        )
        self._burn = (
            admission if admission is not None and admission.enabled else None
        )
        self.policy = (
            spec.policy if self.cap is None else spec.policy.capped(self.cap)
        )
        model = PipelineServiceModel.from_specs(
            list(spec.specs), len(phys_cores), config
        )
        self.ctx = DispatchContext(model, self.policy, arrivals)
        self.ctx.stage_to_core = list(phys_cores)
        self.ctx.core_busy = [0.0] * pool_size
        self.initial_width = len(phys_cores)
        # The admitted queue: arrival times of every admitted request,
        # filled in arrival order.  With no cap the whole trace is
        # admitted up front, so dispatch planning sees the exact array
        # the plain simulator would (the bit-identity the differential
        # test pins).
        self.admitted_times = np.empty(self.n)
        self.admitted = 0
        self.ptr = 0
        if self.cap is None and self._burn is None:
            self.admitted_times[:] = arrivals
            self.admitted = self.n
            self.ptr = self.n
        self.shed: list[float] = []
        self.widths: list[int] = []
        self.proxies: list[float] = []
        self.served = 0
        self.released = False
        # Completion history for admission judgments: batch completion
        # times (monotone within a lane) and the running count of
        # requests completed by each batch.
        self._completion_times: list[float] = []
        self._cum_completed: list[int] = []

    @property
    def phys(self) -> list[int]:
        """Physical pool cores behind the tenant's pipeline stages."""
        return self.ctx.stage_to_core

    @property
    def width(self) -> int:
        """Current pipeline width."""
        return self.ctx.model.num_cores

    def _admit(self) -> None:
        self.admitted_times[self.admitted] = self.raw[self.ptr]
        self.admitted += 1
        self.ptr += 1

    def _occupancy(self, time_s: float) -> int:
        """Uncompleted admitted requests at ``time_s``.

        Counts every admitted request minus those in batches completed
        strictly before ``time_s``.  Judged arrivals are always the
        next raw arrival, so every admitted request arrived at or
        before ``time_s`` by construction.
        """
        done = bisect.bisect_left(self._completion_times, time_s)
        completed = self._cum_completed[done - 1] if done else 0
        return self.admitted - completed

    def _recent_latencies(self, time_s: float) -> np.ndarray:
        """Latencies of the burn window's completions before ``time_s``.

        Only batches sealed before the judgment instant are visible —
        the information an online admission controller actually has.
        Pure read: the subtraction never feeds kernel state.
        """
        done = bisect.bisect_left(self._completion_times, time_s)
        completed = self._cum_completed[done - 1] if done else 0
        start = max(completed - self._burn.window, 0)
        return (
            self.ctx.completion_s[start:completed]
            - self.admitted_times[start:completed]
        )

    def _admits(self, time_s: float) -> bool:
        """Judge one arrival: occupancy cap first, then SLO burn rate.

        With no admission controller (or a disabled one) this is the
        static occupancy test with the identical short-circuit, which
        keeps the cap-only path bit-identical.
        """
        if self.cap is not None and self._occupancy(time_s) >= self.cap:
            return False
        if self._burn is None:
            return True
        return not self._burn.sheds(
            self._burn.burn_rate(self._recent_latencies(time_s))
        )

    def plan(self) -> tuple[float, int] | None:
        """Seal the tenant's next batch, or ``None`` if it is done.

        Ingests raw arrivals first.  With the queue empty every batch
        of the lane is already committed, so each judgment (admit or
        shed) is exact; with requests queued, arrivals are *admitted*
        early whenever the occupancy bound already passes (completions
        still to come can only lower occupancy, never flip an admit)
        and otherwise left unjudged for :meth:`commit` to decide.
        """
        ctx = self.ctx
        head = ctx.head
        while head >= self.admitted and self.ptr < self.n:
            # Empty queue: all completions are known, judge exactly.
            if self._admits(self.raw[self.ptr]):
                self._admit()
            else:
                self.shed.append(float(self.raw[self.ptr]))
                self.ptr += 1
        if head >= self.admitted:
            return None  # every request judged and served
        if self.cap is not None and self._burn is None:
            # Early occupancy admits are safe (completions only lower
            # occupancy); burn judgments can flip as batches seal, so
            # with a burn controller every arrival waits for the commit
            # (or the queue-empty loop above) that judges it exactly.
            while self.ptr < self.n and self._admits(self.raw[self.ptr]):
                self._admit()
        return plan_dispatch(
            self.admitted_times[: self.admitted],
            head,
            self.policy,
            ctx.core_free[0],
        )

    def queue_depth(self, time_s: float) -> int:
        """Admitted-but-uncompleted requests at ``time_s``.

        The queue-pressure signal the elastic reallocator watches:
        arrivals up to ``time_s`` minus completions before it, i.e.
        requests waiting for dispatch *plus* requests backed up inside
        the pipeline (where the real backlog sits whenever an interior
        core is the bottleneck).
        """
        arrived = int(
            np.searchsorted(
                self.admitted_times[: self.admitted], time_s, side="right"
            )
        )
        done = bisect.bisect_left(self._completion_times, time_s)
        completed = self._cum_completed[done - 1] if done else 0
        return max(arrived - completed, 0)

    def commit(self, dispatch: float, size: int) -> None:
        """Book the planned batch and judge the arrivals up to it.

        Every batch that completes before the dispatch instant is
        already committed, so arrivals at or before it are judged
        *exactly*: admitted if the system occupancy at their instant is
        below the cap, shed otherwise (the count admission control
        reports).  Arrivals admitted here join the queue for the next
        batch — the committed batch's size was sealed at planning time.
        """
        while self.ptr < self.n and self.raw[self.ptr] <= dispatch:
            if self._admits(self.raw[self.ptr]):
                self._admit()
            else:
                self.shed.append(float(self.raw[self.ptr]))
                self.ptr += 1
        batch = execute_dispatch(self.ctx, dispatch, size)
        self._completion_times.append(batch.completion_s)
        previous = self._cum_completed[-1] if self._cum_completed else 0
        self._cum_completed.append(previous + size)
        self.widths.append(self.width)
        self.served += size

    def release_cores(self) -> list[tuple[int, float]]:
        """Hand the lane's cores back once its trace is fully served.

        Returns ``(core, frees_at)`` pairs: a reclaimed core is usable
        elsewhere only after it drains the lane's final batch.
        """
        self.released = True
        return [
            (core, self.ctx.core_free[stage])
            for stage, core in enumerate(self.phys)
        ]

    def resize(
        self, new_phys: list[int], joining_free_s: float = 0.0
    ) -> None:
        """Re-partition the tenant's layers over a new core set.

        The current pipeline drains first (the new partition needs its
        weights re-programmed on every stage), and a core joining from
        elsewhere is not usable before it frees up there.
        """
        drain = max(max(self.ctx.core_free), joining_free_s)
        self.ctx.model = PipelineServiceModel.from_specs(
            list(self.spec.specs), len(new_phys), self.config
        )
        self.ctx.stage_to_core = list(new_phys)
        self.ctx.core_free = [drain] * len(new_phys)

    def report(self) -> TenantServingReport:
        """The tenant's final serving report."""
        ctx = self.ctx
        served = self.admitted
        return TenantServingReport(
            policy=self.policy,
            num_cores=self.initial_width,
            arrival_s=self.admitted_times[:served].copy(),
            dispatch_s=ctx.dispatch_s[:served],
            completion_s=ctx.completion_s[:served],
            batches=tuple(ctx.batches),
            core_busy_s=tuple(ctx.core_busy),
            tenant=self.spec.name,
            offered_arrival_s=self.raw,
            shed_arrival_s=np.array(self.shed),
            batch_num_cores=np.array(self.widths, dtype=int),
            accuracy_proxy=np.array(self.proxies),
        )


def allocate_pool(
    tenants: Sequence[ClusterTenant],
    pool_size: int,
    routing: RoutingPolicy | None = None,
) -> tuple[list[list[int]], list[int]]:
    """Split the pool into per-tenant core lists plus a free list.

    Every tenant gets one core.  Under weighted-fair routing (the
    default) the remaining cores go one at a time to the tenant with
    the largest weighted deficit (its fair share minus what it holds);
    under priority routing they go to tenants in descending priority
    order, each filled to its useful maximum before the next rank sees
    a core.  Tenants never exceed one core per conv layer.
    Deterministic: ties break by tenant order.

    Returns:
        Per-tenant physical core id lists (contiguous ranges, in tenant
        order) and the leftover free core ids.

    Raises:
        ValueError: if the pool cannot give every tenant a core.
    """
    if pool_size < len(tenants):
        raise ValueError(
            f"pool of {pool_size} cores cannot host {len(tenants)} tenants "
            f"(need >= 1 core each)"
        )
    counts = [1] * len(tenants)
    remaining = pool_size - len(tenants)
    if routing is not None and routing.kind == "priority":
        ranked = sorted(
            range(len(tenants)),
            key=lambda i: (-tenants[i].priority, i),
        )
        for index in ranked:
            take = min(
                remaining, tenants[index].max_useful_cores - counts[index]
            )
            counts[index] += take
            remaining -= take
    else:
        # repro: allow[BIT001] strict left fold over the fixed tenant
        # order; shares derived from it feed integer core counts only
        total_weight = sum(tenant.weight for tenant in tenants)
        shares = [
            tenant.weight / total_weight * pool_size for tenant in tenants
        ]
        while remaining > 0:
            deficits = [
                (shares[i] - counts[i], -i)
                for i, tenant in enumerate(tenants)
                if counts[i] < tenant.max_useful_cores
            ]
            if not deficits:
                break
            _, neg_index = max(deficits)
            counts[-neg_index] += 1
            remaining -= 1
    allocations: list[list[int]] = []
    next_core = 0
    for count in counts:
        allocations.append(list(range(next_core, next_core + count)))
        next_core += count
    return allocations, list(range(next_core, pool_size))


def _plan_admitted(
    raw: np.ndarray, policy: BatchingPolicy, model, cap: int
) -> (
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, tuple]
    | None
):
    """Vectorized occupancy-cap admission walk for one frozen lane.

    Reproduces the reference lane's admission decisions as array ops.
    The decision rule (see :class:`_TenantLane`): arrival ``i`` at time
    ``t_i`` is admitted iff the lane's system occupancy — admissions
    among arrivals ``< i`` minus requests in batches completed strictly
    before ``t_i`` — is below ``cap``.  With a *fixed* batch plan the
    running admission count ``a`` obeys ``a_i = a_{i-1} + [a_{i-1} <
    u_i]`` with ``u_i = completed_i + cap`` nondecreasing, which has the
    closed form ``a_i = min(i + 1, i + min_{j<=i}(u_j - j))`` — one
    ``np.minimum.accumulate``, all-integer, hence exact.

    The batch plan itself depends on the admitted set, so the walk is
    the speculate/verify/repair shape of the kernel's max-plus scans,
    one level up: *speculate* an admitted set (initially everything),
    plan its batches and completions vectorized, *verify* by re-running
    the closed-form walk against those completions, and *repair* by
    iterating until the admitted set reproduces itself.  Batches that
    complete before ``t_i`` only ever contain arrivals judged before
    ``i`` (requests join batches at or before dispatch, and dispatch
    precedes completion), so each pass extends the prefix on which the
    speculated decisions match the reference lane's by at least one
    arrival: the loop reaches the unique fixed point in at most
    ``n + 1`` passes, and the fixed point *is* the reference decision
    sequence.

    The decisions are only half the contract: the reference seals each
    batch against the queue *visible* at planning time, so the fixed
    point is handed to :func:`_verify_admission_plan`, which replays
    that visibility schedule batch by batch.  Near-universally the plan
    verifies (an arrival must fail its early judgment and then be
    admitted at the very next commit for visibility to bite); when it
    does not, the caller falls back to the exact scalar lane.

    Returns:
        ``(mask, heads, sizes, disp, completion, stage_busy)``: the
        admitted mask over ``raw`` plus the converged batch plan,
        per-batch completions, and per-stage busy ledger — or ``None``
        when the verification walk rejects the plan.
    """
    n = raw.size
    idx = np.arange(n, dtype=np.int64)
    mask = np.ones(n, dtype=bool)
    for _ in range(n + 2):
        heads, sizes, disp = plan_batches(raw[mask], policy, model)
        completion, stage_busy = pipeline_completions(sizes, disp, model)
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        # completed[i]: requests in batches done strictly before t_i
        # (completions are strictly increasing within a lane).
        completed = bounds[np.searchsorted(completion, raw, side="left")]
        admitted = np.minimum(
            idx + 1, idx + np.minimum.accumulate(completed + cap - idx)
        )
        new_mask = np.diff(admitted, prepend=0) == 1
        if np.array_equal(new_mask, mask):
            if _verify_admission_plan(
                raw, mask, policy, model, cap, sizes, disp, completion
            ):
                return mask, heads, sizes, disp, completion, stage_busy
            return None
        mask = new_mask
    raise AssertionError(
        "admission walk failed to converge — unreachable: the correct "
        "decision prefix grows every pass"
    )


def _verify_admission_plan(
    raw: np.ndarray,
    mask: np.ndarray,
    policy: BatchingPolicy,
    model,
    cap: int,
    sizes: np.ndarray,
    disp: np.ndarray,
    completion: np.ndarray,
) -> bool:
    """Replay the reference lane's *visibility* rules against a plan.

    The fixed point of :func:`_plan_admitted` reproduces the reference
    lane's admission decisions, but the reference seals each batch
    against the queue *visible at planning time*: an arrival that fails
    the early-occupancy test stays invisible to that seal even when the
    commit that follows admits it, so batch formation can differ from
    :func:`~repro.core.simkernel.plan_batches` over the final admitted
    set (smaller sealed batches under tight caps).  This walk replays
    the reference's judgment schedule — per batch, the phase-B frontier
    (everything at or before the previous dispatch is judged exactly at
    commit), the queue-empty drain, and the early-admit chain judged
    against *committed-only* completions — and re-seals each batch with
    :func:`~repro.core.simkernel.plan_dispatch` on exactly the visible
    prefix.  O(batches) plan calls; every comparison is exact.

    Returns ``True`` iff the speculated plan is the reference run —
    judgments that are exact in the reference (drain, phase B) match
    the fixed-point mask by construction, early admits imply final
    admits (completions only lower occupancy), and a matching sealed
    ``(dispatch, size)`` per batch pins the rest by induction.  A
    ``False`` sends the lane to the scalar reference loop.

    Cost discipline: the frontier replay is one monotone pointer sweep
    (the early-admit test collapses to a precomputed per-arrival
    threshold batch ``kmin``), and the expensive re-seal is skipped
    whenever the sealed batch provably cannot see the invisible suffix
    — :func:`~repro.core.simkernel.plan_dispatch` reads the queue only
    at ``head``, at ``head + max_batch - 1``, and at arrivals up to the
    dispatch instant, so ``head + max_batch`` visible admits plus a
    next-unjudged arrival after the dispatch pin the seal to the final
    plan's batch with no call at all.  Only congested batches (queue at
    the cap around the seal) pay a ``plan_dispatch``.
    """
    n = int(raw.size)
    nb = int(sizes.size)
    # adm_before[j]: admitted among arrivals < j — the reference lane's
    # running admission count whenever the walk is still consistent.
    adm_before_np = np.concatenate(([0], np.cumsum(mask)))
    total = int(adm_before_np[-1])
    cum_np = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    # Early-admit threshold: arrival j passes the committed-only
    # occupancy test at batch k iff the first k batches completed at
    # least ``adm_before[j] - cap + 1`` requests before t_j, i.e. iff
    # k >= kmin[j].  A final shed never passes (occupancy only grows
    # toward the seal), so it carries an unreachable sentinel — the
    # chain below stops on it, exactly like the reference's early loop.
    need = adm_before_np[:-1] - cap + 1
    kmin_np = np.searchsorted(cum_np, np.maximum(need, 0), side="left")
    kmin_np = np.where(mask, kmin_np, nb + 1)
    # Phase-B frontier per batch: commit k judges every arrival at or
    # before its dispatch exactly; exact judgments equal the fixed
    # point.
    pb_np = np.searchsorted(raw, disp, side="right")
    admitted_idx = np.flatnonzero(mask)
    admitted_times = raw[mask]
    busy0 = (
        model.weight_load_s[0]
        + np.arange(policy.max_batch + 1) * model.conv_time_s[0]
    )
    max_batch = policy.max_batch
    heads_np = cum_np[:-1]
    # Tier 1 — all-array screen on a provable *lower bound* of the
    # visible frontier (the skip condition is monotone in visibility:
    # if a seal is blind to everything past a smaller frontier, it is
    # blind past the true, larger one).  The bound: phase B of the
    # previous commit, plus the batch head itself (sealed ⇒ admitted),
    # plus — when nothing is shed, so the thresholds are sorted — the
    # early-admit chain from the start of the trace.
    pb_prev = np.concatenate(([0], pb_np[: nb - 1])) if nb else pb_np[:0]
    frontier = np.maximum(pb_prev, admitted_idx[heads_np] + 1)
    if total == n and nb:
        frontier = np.maximum(
            frontier,
            np.searchsorted(kmin_np, np.arange(nb), side="right"),
        )
    visible_np = adm_before_np[frontier]
    raw_at = np.where(
        frontier < n, raw[np.minimum(frontier, n - 1)], np.inf
    )
    if np.all(
        (visible_np == total)
        | ((heads_np + max_batch <= visible_np) & (disp < raw_at))
    ):
        return True
    # Tier 2 — exact frontier replay.  Scalar-access hot loop: plain
    # lists index several times faster than numpy scalars.
    adm_before = adm_before_np.tolist()
    cum = cum_np.tolist()
    kmin = kmin_np.tolist()
    pb = pb_np.tolist()
    raw_l = raw.tolist()
    disp_l = disp.tolist()
    sizes_l = sizes.tolist()
    adm_idx = admitted_idx.tolist()
    judged = 0
    for k in range(nb):
        if k and pb[k - 1] > judged:
            judged = pb[k - 1]
        head = cum[k]
        visible = adm_before[judged]
        if visible < head:
            return False  # served more than admitted — already diverged
        if visible == head:
            # Queue-empty drain: exact shed judgments through to the
            # next admitted arrival, which the reference admits before
            # planning.
            judged = adm_idx[head] + 1
        while judged < n and kmin[judged] <= k:
            judged += 1
        visible = adm_before[judged]
        if visible == total:
            # The whole admitted array is visible, and visibility only
            # grows: every remaining seal runs over the full array,
            # which is plan_batches' own fold — guaranteed match.
            return True
        if head + max_batch <= visible and disp_l[k] < raw_l[judged]:
            continue  # seal provably blind to the invisible suffix
        dispatch, size = plan_dispatch(
            admitted_times[:visible],
            head,
            policy,
            0.0 if k == 0 else disp_l[k - 1] + float(busy0[sizes_l[k - 1]]),
        )
        if dispatch != disp_l[k] or size != sizes_l[k]:
            return False
    return True


class ClusterSimulator:
    """N models co-served on a shared core pool, on the unified kernel.

    One global event loop: every tenant lane plans its next dispatch
    with the kernel's :func:`~repro.core.simkernel.plan_dispatch`, the
    earliest dispatch commits (simultaneous dispatches ordered by the
    routing policy), admission control sheds what the committed batch
    shut out, fault state machines advance on the owning tenant's
    clock, and the elastic reallocator may move a core before the next
    round of planning.

    Args:
        tenants: the co-served models (unique names).
        pool_size: physical cores in the shared pool (>= one per
            tenant).
        routing: pool arbitration policy (weighted-fair by default).
        elastic: elastic core reallocation policy; ``None`` freezes the
            initial allocation.  Accepts the static
            :class:`ElasticReallocation` or an adaptive
            :class:`~repro.core.adaptive.PressureController` (anything
            with a ``thresholds(peak_pressure)`` method).
        schedule: fault schedule over the *physical pool cores*;
            ``None`` keeps the pool pristine.
        recalibration: online recalibration policy for degraded cores —
            the static :class:`~repro.core.faults.RecalibrationPolicy`
            or an adaptive
            :class:`~repro.core.adaptive.AdaptiveRecalibration`
            (anything with a ``decider()`` factory and a ``base``
            policy).
        admission: per-tenant admission controllers
            (:class:`~repro.core.adaptive.BurnRateAdmission`), keyed by
            tenant name; a tenant without an entry keeps its static
            ``queue_cap``.  A controller owns its tenant's occupancy
            cap (its ``queue_cap`` field replaces the tenant's).
        config: hardware configuration for partitioning and service
            times.
        probe_rings: rings in each pool core's accuracy-probe bank.
        mode: kernel execution mode.  ``"auto"`` (the default) runs the
            vectorized lane-decomposition fast path whenever the
            allocation is frozen — no fault schedule, no elastic
            reallocation, no *enabled* burn-rate admission controller
            (static occupancy caps are fine) — and the global event
            loop otherwise.  ``"vectorized"`` demands that shape
            (``run`` raises otherwise); ``"reference"`` always runs
            the global loop.  Both paths are bit-identical.

    Raises:
        ValueError: on an empty or duplicated tenant set, a bad pool
            size, an unknown ``mode``, or an admission key that names
            no tenant.
    """

    def __init__(
        self,
        tenants: Sequence[ClusterTenant],
        pool_size: int,
        routing: RoutingPolicy | None = None,
        elastic: ElasticReallocation | None = None,
        schedule: FaultSchedule | None = None,
        recalibration: RecalibrationPolicy | None = None,
        config: PCNNAConfig | None = None,
        probe_rings: int = 8,
        mode: str = "auto",
        admission: Mapping[str, object] | None = None,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names!r}")
        validate_kernel_mode(mode)
        self.admission = dict(admission) if admission else {}
        unknown = set(self.admission) - set(names)
        if unknown:
            raise ValueError(
                f"admission keys {sorted(unknown)} name no tenant; have "
                f"{names!r}"
            )
        self.tenants = tuple(tenants)
        self.pool_size = pool_size
        self.routing = routing if routing is not None else RoutingPolicy()
        self.elastic = elastic
        self.schedule = schedule
        self.recalibration = recalibration
        self.config = config
        self.probe_rings = probe_rings
        self.mode = mode
        self._allocations, self._free = allocate_pool(
            tenants, pool_size, self.routing
        )

    @property
    def _vectorizable(self) -> bool:
        """Whether the run decomposes into independent frozen lanes.

        With no fault schedule and no elastic reallocation the core
        allocation is frozen, so tenant lanes share no state: each lane
        plans, sheds, and books exactly as if it ran alone, and the
        global loop's tie-ordering has no arithmetic effect.  Static
        occupancy caps (a tenant's ``queue_cap``, or a *disabled*
        burn-rate controller's) are per-lane too.  Only an *enabled*
        burn-rate controller breaks the decomposition — its judgments
        read completion latencies mid-run and can flip as batches seal.
        """
        return (
            self.schedule is None
            and self.elastic is None
            and not any(
                controller.enabled
                for controller in self.admission.values()
            )
        )

    def _tie_key(self, lane: _TenantLane) -> tuple:
        """Routing preference for simultaneous dispatches (lower wins)."""
        if self.routing.kind == "priority":
            return (-lane.spec.priority, lane.index)
        return (lane.served / lane.spec.weight, lane.index)

    def _floor(self, lane: _TenantLane) -> int:
        """Cores the routing policy guarantees the tenant keeps."""
        if self.routing.kind == "weighted-fair":
            return lane.initial_width
        return 1

    def _rebalance(
        self,
        now: float,
        lanes: list[_TenantLane],
        free: list[tuple[int, float]],
        records: list[ReallocationRecord],
    ) -> None:
        """Move at most one core toward the most-pressured tenant."""
        assert self.elastic is not None
        active = [lane for lane in lanes if not lane.released]
        pressures = {
            lane.index: lane.queue_depth(now) / lane.width for lane in active
        }
        # An adaptive controller (duck-typed on `thresholds`) derives
        # the barriers from the worst observed pressure; the static
        # policy's constants pass through untouched.
        thresholds = getattr(self.elastic, "thresholds", None)
        if thresholds is None:
            ratio = self.elastic.pressure_ratio
            min_queue = self.elastic.min_queue
        else:
            peak = max(pressures.values(), default=0.0)
            ratio, min_queue = thresholds(peak)
        growable = [
            lane
            for lane in active
            if lane.width < lane.spec.max_useful_cores
            and lane.queue_depth(now) >= min_queue
        ]
        if not growable:
            return
        recipient = min(
            growable,
            key=lambda lane: (-pressures[lane.index], self._tie_key(lane)),
        )
        if free:
            core, free_at = free.pop(0)
            recipient.resize(recipient.phys + [core], free_at)
            records.append(
                ReallocationRecord(
                    time_s=now,
                    core=core,
                    from_tenant=None,
                    to_tenant=recipient.spec.name,
                    donor_cores_after=0,
                    recipient_cores_after=recipient.width,
                )
            )
            return
        donors = [
            lane
            for lane in active
            if lane is not recipient and lane.width > self._floor(lane)
        ]
        if not donors:
            return
        donor = min(
            donors, key=lambda lane: (pressures[lane.index], lane.index)
        )
        if pressures[recipient.index] < (
            ratio * max(pressures[donor.index], 1.0)
        ):
            return
        core = donor.phys[-1]
        core_free_at = donor.ctx.core_free[-1]
        donor.resize(donor.phys[:-1])
        recipient.resize(recipient.phys + [core], core_free_at)
        records.append(
            ReallocationRecord(
                time_s=now,
                core=core,
                from_tenant=donor.spec.name,
                to_tenant=recipient.spec.name,
                donor_cores_after=donor.width,
                recipient_cores_after=recipient.width,
            )
        )

    def run(self, arrival_s: Mapping[str, np.ndarray]) -> ClusterReport:
        """Serve every tenant's trace to completion.

        Args:
            arrival_s: per-tenant sorted arrival traces, keyed by
                tenant name (every tenant needs one).

        Raises:
            ValueError: on missing/unknown trace keys or a bad trace.
        """
        names = {tenant.name for tenant in self.tenants}
        if set(arrival_s) != names:
            raise ValueError(
                f"need one arrival trace per tenant {sorted(names)}, got "
                f"{sorted(arrival_s)}"
            )
        if self.mode == "vectorized" and not self._vectorizable:
            raise ValueError(
                "vectorized mode needs a frozen-allocation cluster — no "
                "fault schedule, no elastic reallocation, no enabled "
                "burn-rate admission controller; those runs have "
                "mid-loop feedback; use mode='reference' (or 'auto')"
            )
        if self.mode != "reference" and self._vectorizable:
            return self._run_vectorized(arrival_s)
        lanes = [
            _TenantLane(
                index,
                tenant,
                validate_arrival_trace(arrival_s[tenant.name]),
                self._allocations[index],
                self.pool_size,
                self.config,
                admission=self.admission.get(tenant.name),
            )
            for index, tenant in enumerate(self.tenants)
        ]
        free: list[tuple[int, float]] = [(core, 0.0) for core in self._free]
        health: dict[int, CoreHealthState] = {}
        if self.schedule is not None:
            health = {
                core: CoreHealthState(core, self.schedule, self.probe_rings)
                for core in range(self.pool_size)
            }
        downtime = [0.0] * self.pool_size
        recalibrations: list[RecalibrationRecord] = []
        reallocations: list[ReallocationRecord] = []
        # An adaptive recalibration policy (duck-typed on `decider`)
        # gets one fresh decision engine per run.
        decider = (
            self.recalibration.decider()
            if self.recalibration is not None
            and hasattr(self.recalibration, "decider")
            else None
        )
        last_dispatch = 0.0

        while True:
            candidates = []
            for lane in lanes:
                if lane.released:
                    continue
                plan = lane.plan()
                if plan is not None:
                    candidates.append((plan, lane))
                elif self.elastic is not None:
                    # A finished tenant's cores go back to the pool for
                    # the reallocator to hand to pressured neighbours.
                    free.extend(lane.release_cores())
            if not candidates:
                break
            (dispatch, size), lane = min(
                candidates,
                key=lambda item: (item[0][0], self._tie_key(item[1])),
            )
            last_dispatch = max(last_dispatch, dispatch)
            if health:
                self._degrade(
                    lane, dispatch, health, downtime, recalibrations, decider
                )
            lane.commit(dispatch, size)
            lane.proxies.append(
                max(health[core].error for core in lane.phys)
                if health
                else 0.0
            )
            if self.elastic is not None and (
                len(lanes) > 1 or free
            ):
                self._rebalance(dispatch, lanes, free, reallocations)

        for state in health.values():
            state.advance_to(last_dispatch)
        return ClusterReport(
            pool_size=self.pool_size,
            routing=self.routing.kind,
            tenants=tuple(lane.report() for lane in lanes),
            reallocations=tuple(reallocations),
            schedule_name=(
                None if self.schedule is None else self.schedule.name
            ),
            recalibration_name=(
                None if self.recalibration is None else self.recalibration.name
            ),
            core_downtime_s=tuple(downtime),
            final_core_errors=tuple(
                health[core].error if health else 0.0
                for core in range(self.pool_size)
            ),
            recalibrations=tuple(recalibrations),
        )

    def _serve_lane_vectorized(
        self, index: int, tenant: ClusterTenant, trace: np.ndarray
    ) -> TenantServingReport:
        """One frozen tenant lane on the vectorized kernel.

        A pluginless :func:`~repro.core.simkernel.plan_batches` /
        :func:`~repro.core.simkernel.pipeline_completions` run — with
        the :func:`_plan_admitted` walk in front when the lane carries
        an occupancy cap — re-badged as a tenant report: busy time
        lands on the tenant's *physical* pool cores and the per-batch
        width/proxy columns are constant, exactly what the global loop
        records for a frozen lane, bit for bit.
        """
        phys = self._allocations[index]
        controller = self.admission.get(tenant.name)
        cap = (
            controller.queue_cap
            if controller is not None
            else tenant.queue_cap
        )
        policy = tenant.policy if cap is None else tenant.policy.capped(cap)
        model = PipelineServiceModel.from_specs(
            list(tenant.specs), len(phys), self.config
        )
        if cap is None:
            admitted = trace.copy()
            shed = np.array([])
            heads, sizes, disp = plan_batches(trace, policy, model)
            completion, stage_busy = pipeline_completions(
                sizes, disp, model
            )
        else:
            plan = _plan_admitted(trace, policy, model, cap)
            if plan is None:
                # The sealed-visibility walk rejected the speculation
                # (an early-shed arrival re-admitted at the very next
                # commit shrank a reference batch): serve this one lane
                # on the exact scalar loop instead.
                return self._serve_lane_reference(index, tenant, trace)
            mask, heads, sizes, disp, completion, stage_busy = plan
            admitted = trace[mask]
            shed = trace[~mask]
        pool_busy = [0.0] * self.pool_size
        for stage, core in enumerate(phys):
            pool_busy[core] = stage_busy[stage]
        num_batches = int(heads.size)
        return TenantServingReport(
            policy=policy,
            num_cores=len(phys),
            arrival_s=admitted,
            dispatch_s=np.repeat(disp, sizes),
            completion_s=np.repeat(completion, sizes),
            batches=BatchTable(heads, sizes, disp, completion),
            core_busy_s=tuple(pool_busy),
            tenant=tenant.name,
            offered_arrival_s=trace,
            shed_arrival_s=shed,
            batch_num_cores=np.full(num_batches, len(phys), dtype=int),
            accuracy_proxy=np.zeros(num_batches),
        )

    def _serve_lane_reference(
        self, index: int, tenant: ClusterTenant, trace: np.ndarray
    ) -> TenantServingReport:
        """Exact scalar fallback for one lane of the fast path.

        A frozen lane shares no state with its neighbours, so driving
        its :class:`_TenantLane` plan/commit loop in isolation is the
        global event loop restricted to this tenant — bit for bit,
        including the zero accuracy proxy a pristine pool records.
        """
        lane = _TenantLane(
            index,
            tenant,
            trace,
            self._allocations[index],
            self.pool_size,
            self.config,
            admission=self.admission.get(tenant.name),
        )
        while True:
            plan = lane.plan()
            if plan is None:
                break
            dispatch, size = plan
            lane.commit(dispatch, size)
            lane.proxies.append(0.0)
        return lane.report()

    def _run_vectorized(
        self, arrival_s: Mapping[str, np.ndarray]
    ) -> ClusterReport:
        """Serve a frozen-allocation cluster on the fast path.

        Lane decomposition: with the allocation frozen and no fault
        state, a K-tenant run is exactly K independent single-lane runs
        — each one vectorized — merged in tenant order into the same
        :class:`ClusterReport` the global event loop would emit.
        """
        reports = tuple(
            self._serve_lane_vectorized(
                index,
                tenant,
                validate_arrival_trace(arrival_s[tenant.name]),
            )
            for index, tenant in enumerate(self.tenants)
        )
        return ClusterReport(
            pool_size=self.pool_size,
            routing=self.routing.kind,
            tenants=reports,
            reallocations=(),
            schedule_name=None,
            recalibration_name=(
                None if self.recalibration is None else self.recalibration.name
            ),
            core_downtime_s=(0.0,) * self.pool_size,
            final_core_errors=(0.0,) * self.pool_size,
            recalibrations=(),
        )

    def _degrade(
        self,
        lane: _TenantLane,
        dispatch: float,
        health: dict[int, CoreHealthState],
        downtime: list[float],
        recalibrations: list[RecalibrationRecord],
        decider=None,
    ) -> None:
        """Advance the lane's physical cores and pay recalibration.

        The trigger is the static threshold test, or — when an adaptive
        policy supplied a ``decider`` — the EWMA controller's decision;
        either way the calibration loop and the downtime arithmetic are
        identical, which keeps the frozen controller bit-identical.
        """
        for core in lane.phys:
            health[core].advance_to(dispatch)
        if self.recalibration is None:
            return
        base = self.recalibration if decider is None else self.recalibration.base
        for stage, core in enumerate(lane.phys):
            state = health[core]
            if decider is None:
                fire = state.should_recalibrate(base)
            else:
                fire = decider.decide(
                    state,
                    dispatch,
                    downtime[core],
                    queued=(
                        lane.queue_depth(dispatch)
                        if decider.controller.pressure_hold is not None
                        else None
                    ),
                )
            if not fire:
                continue
            result = state.recalibrate(base)
            cost = base.downtime_s(result.iterations)
            lane.ctx.core_free[stage] = (
                max(lane.ctx.core_free[stage], dispatch) + cost
            )
            downtime[core] += cost
            recalibrations.append(
                RecalibrationRecord(
                    time_s=dispatch,
                    core=core,
                    iterations=result.iterations,
                    residual=state.error,
                    downtime_s=cost,
                    restored=state.error <= base.error_threshold,
                )
            )


def simulate_cluster_serving(
    tenants: Sequence[ClusterTenant],
    arrival_s: Mapping[str, np.ndarray],
    pool_size: int,
    routing: RoutingPolicy | None = None,
    elastic: ElasticReallocation | None = None,
    schedule: FaultSchedule | None = None,
    recalibration: RecalibrationPolicy | None = None,
    config: PCNNAConfig | None = None,
    mode: str = "auto",
    admission: Mapping[str, object] | None = None,
) -> ClusterReport:
    """One-call multi-tenant cluster simulation.

    The cluster sibling of :func:`~repro.core.traffic.simulate_serving`
    and :func:`~repro.core.faults.simulate_degraded_serving`: builds the
    :class:`ClusterSimulator` and serves every tenant's trace.  The
    ``elastic``, ``recalibration``, and ``admission`` arguments accept
    the adaptive controllers of :mod:`repro.core.adaptive` alongside
    the static policies.

    Raises:
        ValueError: on an invalid tenant set, pool size, mode, or trace.
    """
    simulator = ClusterSimulator(
        tenants,
        pool_size,
        routing=routing,
        elastic=elastic,
        schedule=schedule,
        recalibration=recalibration,
        config=config,
        mode=mode,
        admission=admission,
    )
    return simulator.run(arrival_s)


def replay_tenant_on_engine(
    network: Network,
    report: TenantServingReport,
    inputs: np.ndarray,
    config: PCNNAConfig | None = None,
) -> np.ndarray:
    """Execute one tenant's simulated batches on the real engine.

    Each batch the cluster formed for the tenant is dispatched as one
    minibatch to the pipelined runner at the width *that batch* actually
    saw (elastic reallocation changes it mid-run), and each request's
    output is scattered back to its slot — in ideal mode bit-identical
    to running every served request alone, and for a single-tenant
    zero-fault cluster bit-identical to
    :func:`~repro.core.traffic.replay_on_engine`.

    Args:
        network: the tenant's network.
        report: the tenant's report from a cluster run.
        inputs: per-*served*-request inputs, shape
            ``(report.num_requests, *network.input_shape)``.
        config: hardware configuration for execution.

    Raises:
        ValueError: if ``inputs`` does not cover the served requests.
    """
    inputs = validate_replay_inputs(network, report, inputs)
    return replay_batches(
        network, report.batches, report.batch_num_cores, inputs, config
    )


__all__ = [
    "ROUTING_KINDS",
    "ClusterReport",
    "ClusterSimulator",
    "ClusterTenant",
    "ElasticReallocation",
    "ReallocationRecord",
    "RoutingPolicy",
    "TenantServingReport",
    "allocate_pool",
    "replay_tenant_on_engine",
    "simulate_cluster_serving",
]
