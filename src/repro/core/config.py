"""PCNNA system configuration.

:class:`PCNNAConfig` gathers every hardware parameter of the paper's
design (section IV-V) with the paper's values as defaults:

* fast clock 5 GHz, one optical MAC wave per fast cycle;
* 10 input DACs + 1 kernel-weight DAC, 16 b / 6 GSa/s each;
* 2.8 GSa/s output ADC;
* 128 kb / 7 ns / 0.443 mm^2 SRAM cache;
* 25 um x 25 um microring footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.electronics.clock import PCNNA_FAST_CLOCK_HZ, PCNNA_MAIN_CLOCK_HZ
from repro.electronics.converters import (
    PCNNA_INPUT_DAC,
    PCNNA_OUTPUT_ADC,
    PCNNA_WEIGHT_DAC,
    ConverterSpec,
)
from repro.electronics.dram import DramSpec
from repro.electronics.sram import SramSpec
from repro.photonics.microring import MicroringDesign
from repro.photonics.noise import NoiseConfig, ideal


@dataclass(frozen=True)
class PCNNAConfig:
    """Full hardware configuration of a PCNNA instance.

    Attributes:
        fast_clock_hz: optical-core clock (paper: 5 GHz); one receptive-
            field MAC wave completes per fast cycle.
        main_clock_hz: external-interface clock.
        num_input_dacs: parallel input DACs (paper: 10).
        num_weight_dacs: parallel kernel-weight DACs (paper: 1).
        num_adcs: parallel output ADCs (paper implies 1).
        input_dac: input DAC converter spec (16 b, 6 GSa/s).
        weight_dac: kernel-weight DAC spec.
        adc: output ADC spec (2.8 GSa/s).
        sram: receptive-field cache spec (128 kb, 7 ns).
        dram: off-chip memory spec.
        ring_design: microring design (footprint sets the area model).
        noise: photonic non-ideality configuration.
        value_bits: word width of feature-map/weight values in memory.
        max_parallel_kernels: weight banks physically instantiated; a
            layer with more kernels is processed in ceil(K / banks)
            sequential passes.  ``None`` means "as many as the largest
            layer needs" (the paper's idealization).
    """

    fast_clock_hz: float = PCNNA_FAST_CLOCK_HZ
    main_clock_hz: float = PCNNA_MAIN_CLOCK_HZ
    num_input_dacs: int = 10
    num_weight_dacs: int = 1
    num_adcs: int = 1
    input_dac: ConverterSpec = PCNNA_INPUT_DAC
    weight_dac: ConverterSpec = PCNNA_WEIGHT_DAC
    adc: ConverterSpec = PCNNA_OUTPUT_ADC
    sram: SramSpec = field(default_factory=SramSpec)
    dram: DramSpec = field(default_factory=DramSpec)
    ring_design: MicroringDesign = field(default_factory=MicroringDesign)
    noise: NoiseConfig = field(default_factory=ideal)
    value_bits: int = 16
    max_parallel_kernels: int | None = None

    def __post_init__(self) -> None:
        if self.fast_clock_hz <= 0:
            raise ValueError(
                f"fast clock must be positive, got {self.fast_clock_hz!r}"
            )
        if self.main_clock_hz <= 0:
            raise ValueError(
                f"main clock must be positive, got {self.main_clock_hz!r}"
            )
        if self.num_input_dacs <= 0:
            raise ValueError(
                f"need at least one input DAC, got {self.num_input_dacs!r}"
            )
        if self.num_weight_dacs <= 0:
            raise ValueError(
                f"need at least one weight DAC, got {self.num_weight_dacs!r}"
            )
        if self.num_adcs <= 0:
            raise ValueError(f"need at least one ADC, got {self.num_adcs!r}")
        if self.value_bits <= 0:
            raise ValueError(
                f"value width must be positive bits, got {self.value_bits!r}"
            )
        if self.max_parallel_kernels is not None and self.max_parallel_kernels <= 0:
            raise ValueError(
                "max_parallel_kernels must be positive or None, got "
                f"{self.max_parallel_kernels!r}"
            )

    @property
    def fast_clock_period_s(self) -> float:
        """Period of one fast-clock cycle (s)."""
        return 1.0 / self.fast_clock_hz

    @property
    def value_bytes(self) -> int:
        """Bytes per stored value (rounded up)."""
        return (self.value_bits + 7) // 8

    def with_noise(self, noise: NoiseConfig) -> "PCNNAConfig":
        """A copy of this config with a different noise configuration."""
        return replace(self, noise=noise)

    def with_dacs(self, num_input_dacs: int) -> "PCNNAConfig":
        """A copy of this config with a different input-DAC count."""
        return replace(self, num_input_dacs=num_input_dacs)

    def with_fast_clock(self, fast_clock_hz: float) -> "PCNNAConfig":
        """A copy of this config with a different fast clock."""
        return replace(self, fast_clock_hz=fast_clock_hz)


PAPER_CONFIG = PCNNAConfig()
"""The paper's exact configuration (all defaults)."""


def paper_assumptions() -> PCNNAConfig:
    """The paper's *implicit* timing assumptions, made explicit.

    The paper declares the input DAC the full-system bottleneck, which
    presumes off-chip memory always keeps up.  This preset raises the
    DRAM bandwidth far above any per-location demand so the cycle-level
    simulator reproduces the paper's DAC-bound regime; the default
    :data:`PAPER_CONFIG` keeps a realistic DDR3 channel, under which the
    simulator shows the system is actually memory-bound (an extension
    finding recorded in EXPERIMENTS.md).
    """
    return replace(PCNNAConfig(), dram=DramSpec(bandwidth_bytes_per_s=1e15))
