"""Request-level serving simulation with dynamic batching.

The pipelined minibatch runner (:mod:`repro.core.serving`) answers "how
fast is one pre-formed minibatch".  Serving real traffic is a different
question: requests arrive one at a time over a long horizon, queue while
the accelerator is busy, and care about *their own* enqueue-to-completion
latency, not the batch's.  This module closes that loop with a
discrete-event simulator:

* arrival traces come from :mod:`repro.workloads.traffic` (Poisson,
  bursty MMPP, diurnal ramp — all seeded and reproducible);
* a :class:`BatchingPolicy` decides when the queue head stops waiting
  for batch-mates (``max_batch`` / ``max_wait_s``, the knobs of every
  production inference server);
* service times come from :class:`PipelineServiceModel`, the same
  per-core decomposition the executable runner uses: each dispatched
  batch walks the cores in pipeline order, and a core is busy for its
  slice's weight-programming time plus ``batch * conv`` time.  Weight
  loads are paid *per dispatch* — exactly what
  :func:`~repro.core.serving.run_network_pipelined` does when it
  programs the banks for every minibatch — which is why batching moves
  throughput at all: a batch of 32 pays the multi-hundred-microsecond
  weight load once instead of 32 times.  The weight-stationary
  steady state of :mod:`repro.core.multicore` is the ``max_batch →
  inf`` limit of this model.
* consecutive batches overlap across cores (core 0 accepts the next
  batch while core 1 still drains the previous one), so the simulator
  reproduces both the pipeline-fill latency and the steady-state
  bottleneck rate of the analytical model.

The simulated clock is decoupled from wall time and every input is
seeded, so a fixed seed yields bit-identical percentile latencies on
every run.  :func:`replay_on_engine` re-executes a simulated schedule's
batches on the *real* batched photonic engine, proving the schedule is
servable: outputs are bit-identical to running every request alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.analytical import weight_load_time_s
from repro.core.config import PCNNAConfig
from repro.core.multicore import (
    PipelinePartition,
    balanced_partition,
    validate_num_cores,
)
from repro.core.serving import run_network_pipelined
from repro.nn.network import Network
from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class BatchingPolicy:
    """When does the queue head stop waiting for batch-mates?

    The scheduler forms a batch at the moment the pipeline's first core
    is free, taking every queued request up to ``max_batch``; if fewer
    are queued, the head is allowed to wait up to ``max_wait_s`` after
    its arrival for more to show up.  ``max_wait_s = 0`` dispatches
    whatever is queued immediately (latency-greedy); ``max_wait_s =
    inf`` holds out for a full batch (throughput-greedy, the fixed-size
    policy; the end of the trace flushes a final partial batch).

    Attributes:
        name: label used in reports and sweep tables.
        max_batch: largest batch the scheduler may form.
        max_wait_s: longest the queue head may wait for batch-mates
            after its arrival.
    """

    name: str
    max_batch: int
    max_wait_s: float

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(
                f"{self.name}: max batch must be >= 1, got {self.max_batch!r}"
            )
        if self.max_wait_s < 0.0 or math.isnan(self.max_wait_s):
            raise ValueError(
                f"{self.name}: max wait must be >= 0, got {self.max_wait_s!r}"
            )

    @classmethod
    def fifo(cls) -> "BatchingPolicy":
        """Batch-free baseline: every request is dispatched alone."""
        return cls(name="fifo-1", max_batch=1, max_wait_s=0.0)

    @classmethod
    def dynamic(cls, max_batch: int, max_wait_s: float) -> "BatchingPolicy":
        """Production dynamic batching: size cap plus wait-time cap."""
        return cls(
            name=f"dynamic-{max_batch}@{max_wait_s:.3g}s",
            max_batch=max_batch,
            max_wait_s=max_wait_s,
        )

    @classmethod
    def fixed(cls, batch: int) -> "BatchingPolicy":
        """Hold out for a full ``batch`` no matter how long it takes."""
        return cls(name=f"fixed-{batch}", max_batch=batch, max_wait_s=math.inf)


@dataclass(frozen=True)
class PipelineServiceModel:
    """Per-core service times of a batch dispatched to the pipeline.

    A dispatched batch of ``B`` requests occupies core ``k`` for
    ``weight_load_s[k] + B * conv_time_s[k]`` and is handed to the next
    core whole, matching :func:`~repro.core.serving.run_network_pipelined`
    stage-by-stage execution.

    Attributes:
        partition: the balanced conv-layer partition the cores implement.
        weight_load_s: per-core weight-programming time, paid once per
            dispatched batch.
        conv_time_s: per-core per-image conv time (the partition's
            core times).
    """

    partition: PipelinePartition
    weight_load_s: tuple[float, ...]
    conv_time_s: tuple[float, ...]

    @classmethod
    def from_specs(
        cls,
        specs: list[ConvLayerSpec],
        num_cores: int,
        config: PCNNAConfig | None = None,
        clamp_cores: bool = False,
    ) -> "PipelineServiceModel":
        """Build the model from conv-layer specs.

        Args:
            specs: the network's conv layers, in order.
            num_cores: pipeline cores; validated against ``len(specs)``.
            config: hardware configuration (defaults to the paper's).
            clamp_cores: clamp an oversized ``num_cores`` to
                ``len(specs)`` instead of raising.

        Raises:
            ValueError: if ``specs`` is empty or ``num_cores`` is
                invalid (and not clamped).
        """
        if not specs:
            raise ValueError("need at least one conv layer to serve")
        cores = validate_num_cores(num_cores, len(specs), clamp=clamp_cores)
        cfg = config if config is not None else PCNNAConfig()
        partition = balanced_partition(specs, cores, cfg)
        weight_loads = tuple(
            sum(weight_load_time_s(spec, cfg) for spec in specs[start:end])
            for start, end in partition.slices
        )
        return cls(
            partition=partition,
            weight_load_s=weight_loads,
            conv_time_s=partition.core_times_s,
        )

    @classmethod
    def from_network(
        cls,
        network: Network,
        num_cores: int,
        config: PCNNAConfig | None = None,
        clamp_cores: bool = False,
    ) -> "PipelineServiceModel":
        """Build the model from an executable network's conv layers."""
        return cls.from_specs(
            network.conv_specs(), num_cores, config, clamp_cores
        )

    @property
    def num_cores(self) -> int:
        """Cores in the pipeline."""
        return len(self.conv_time_s)

    def core_busy_s(self, core: int, batch: int) -> float:
        """Time one dispatched batch occupies ``core``."""
        return self.weight_load_s[core] + batch * self.conv_time_s[core]

    def batch_makespan_s(self, batch: int) -> float:
        """Time one batch takes from dispatch to completion (all cores,
        no contention from other batches)."""
        return sum(self.core_busy_s(core, batch) for core in range(self.num_cores))

    def capacity_rps(self, batch: int) -> float:
        """Steady-state throughput when every dispatch carries ``batch``
        requests: the bottleneck core limits the dispatch rate."""
        slowest = max(
            self.core_busy_s(core, batch) for core in range(self.num_cores)
        )
        return batch / slowest

    @property
    def stationary_capacity_rps(self) -> float:
        """The weight-stationary limit (``batch -> inf``): one image per
        bottleneck conv interval, :mod:`repro.core.multicore`'s rate."""
        return self.partition.images_per_s


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch of the simulated schedule.

    Attributes:
        index: dispatch order.
        first_request: index of the batch's first request (requests are
            batched in arrival order, so the batch covers
            ``[first_request, first_request + size)``).
        size: number of requests in the batch.
        dispatch_s: when the scheduler released the batch to core 0.
        completion_s: when the last core finished the batch.
    """

    index: int
    first_request: int
    size: int
    dispatch_s: float
    completion_s: float


@dataclass(frozen=True)
class ServingReport:
    """Everything measured over one simulated serving run.

    Attributes:
        policy: the batching policy that produced the schedule.
        num_cores: pipeline width.
        arrival_s: per-request arrival times (the input trace).
        dispatch_s: per-request batch-dispatch times.
        completion_s: per-request completion times.
        batches: the dispatched batches, in order.
        core_busy_s: per-core total busy time.
    """

    policy: BatchingPolicy
    num_cores: int
    arrival_s: np.ndarray
    dispatch_s: np.ndarray
    completion_s: np.ndarray
    batches: tuple[BatchRecord, ...]
    core_busy_s: tuple[float, ...]

    @property
    def num_requests(self) -> int:
        """Requests served."""
        return int(self.arrival_s.size)

    @property
    def latencies_s(self) -> np.ndarray:
        """Per-request enqueue-to-completion latency."""
        return self.completion_s - self.arrival_s

    def latency_percentile_s(self, percentile: float) -> float:
        """A latency percentile (linear interpolation, deterministic)."""
        return float(np.percentile(self.latencies_s, percentile))

    @property
    def p50_s(self) -> float:
        """Median latency."""
        return self.latency_percentile_s(50.0)

    @property
    def p95_s(self) -> float:
        """95th-percentile latency."""
        return self.latency_percentile_s(95.0)

    @property
    def p99_s(self) -> float:
        """99th-percentile latency."""
        return self.latency_percentile_s(99.0)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        return float(self.completion_s.max() - self.arrival_s[0])

    @property
    def throughput_rps(self) -> float:
        """Completed requests per simulated second over the makespan."""
        return self.num_requests / self.makespan_s

    @property
    def mean_batch_size(self) -> float:
        """Average dispatched batch size."""
        return self.num_requests / len(self.batches)

    @property
    def core_utilization(self) -> tuple[float, ...]:
        """Per-core busy fraction of the makespan."""
        span = self.makespan_s
        return tuple(busy / span for busy in self.core_busy_s)

    @cached_property
    def _queue_depth_profile(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted event times and the queue depth after each event.

        Arrivals sort ahead of the dispatch that consumes them at time
        ties (a request arriving exactly at a dispatch instant is
        eligible for that batch).  Cached: every depth metric reads it.
        """
        times = np.concatenate(
            [self.arrival_s, [batch.dispatch_s for batch in self.batches]]
        )
        deltas = np.concatenate(
            [
                np.ones(self.num_requests),
                [-float(batch.size) for batch in self.batches],
            ]
        )
        order = np.argsort(times, kind="stable")
        return times[order], np.cumsum(deltas[order])

    @property
    def max_queue_depth(self) -> int:
        """Largest number of requests simultaneously waiting."""
        _, depth = self._queue_depth_profile
        return int(depth.max())

    @property
    def mean_queue_depth(self) -> float:
        """Time-weighted mean queue depth over the event horizon."""
        times, depth = self._queue_depth_profile
        spans = np.diff(times)
        total = times[-1] - times[0]
        if total <= 0.0:
            return 0.0
        return float((depth[:-1] * spans).sum() / total)

    def describe(self) -> str:
        """A one-run summary block."""
        util = ", ".join(f"{u:.0%}" for u in self.core_utilization)
        return "\n".join(
            [
                f"{self.policy.name} over {self.num_cores} cores: "
                f"{self.num_requests} requests in {len(self.batches)} "
                f"batches (mean {self.mean_batch_size:.1f})",
                f"  throughput {self.throughput_rps:,.0f} req/s | "
                f"latency p50 {self.p50_s * 1e6:.1f} us, "
                f"p95 {self.p95_s * 1e6:.1f} us, "
                f"p99 {self.p99_s * 1e6:.1f} us",
                f"  queue depth mean {self.mean_queue_depth:.1f}, "
                f"max {self.max_queue_depth} | core utilization {util}",
            ]
        )


def validate_arrival_trace(arrival_s: np.ndarray) -> np.ndarray:
    """Validate and normalize a request arrival trace.

    Shared by every simulator front door (including the fault-injection
    engine in :mod:`repro.core.faults`), so a bad trace fails with the
    same message everywhere.

    Raises:
        ValueError: on an empty, non-1-D, or unsorted trace.
    """
    arrivals = np.asarray(arrival_s, dtype=float)
    if arrivals.ndim != 1 or arrivals.size == 0:
        raise ValueError(
            f"need a non-empty 1-D arrival trace, got shape "
            f"{arrivals.shape}"
        )
    if np.any(np.diff(arrivals) < 0.0):
        raise ValueError("arrival times must be sorted ascending")
    return arrivals


def validate_replay_inputs(
    network: Network, report: ServingReport, inputs: np.ndarray
) -> np.ndarray:
    """Validate per-request inputs against a simulated report.

    Shared by every engine-replay front door (including the degraded
    replay in :mod:`repro.core.faults`).

    Raises:
        ValueError: if ``inputs`` does not cover the report's requests.
    """
    inputs = np.asarray(inputs, dtype=float)
    expected = (report.num_requests, *network.input_shape)
    if inputs.shape != expected:
        raise ValueError(
            f"need one input per simulated request, expected {expected}, "
            f"got {inputs.shape}"
        )
    return inputs


def plan_dispatch(
    arrivals: np.ndarray,
    head: int,
    policy: BatchingPolicy,
    core0_free_s: float,
) -> tuple[float, int]:
    """When does the queue head's batch dispatch, and how big is it?

    The batch is sealed at the latest of: the head's arrival, core 0
    freeing up, and the policy trigger (batch full or head's wait budget
    exhausted).  This single function is the scheduler's entire batching
    decision; the fault-aware simulator shares it verbatim, which is
    what makes a zero-magnitude fault run *bit-identical* to the
    fault-free simulator — both plan every dispatch with the exact same
    float arithmetic.

    Returns:
        ``(dispatch_s, size)`` for the batch starting at ``head``.
    """
    earliest = max(arrivals[head], core0_free_s)
    full_index = head + policy.max_batch - 1
    fills_at = (
        arrivals[full_index] if full_index < arrivals.size else math.inf
    )
    deadline = arrivals[head] + policy.max_wait_s
    dispatch = max(earliest, min(deadline, fills_at))
    if math.isinf(dispatch):
        # Fixed-size tail: the batch can never fill and the head may
        # wait forever, so flush everything left as one final partial
        # batch once the last request has arrived.
        dispatch = max(core0_free_s, arrivals[-1])
    queued = int(np.searchsorted(arrivals, dispatch, side="right") - head)
    size = max(1, min(policy.max_batch, queued))
    return dispatch, size


class ServingSimulator:
    """Discrete-event closed loop: queue -> batcher -> core pipeline.

    Args:
        model: the per-core service-time model.
        policy: the batching policy.
    """

    def __init__(
        self, model: PipelineServiceModel, policy: BatchingPolicy
    ) -> None:
        self.model = model
        self.policy = policy

    def run(self, arrival_s: np.ndarray) -> ServingReport:
        """Serve a trace of arrival times to completion.

        Args:
            arrival_s: sorted request arrival times.

        Returns:
            The :class:`ServingReport` with per-request records.

        Raises:
            ValueError: on an empty or unsorted trace.
        """
        arrivals = validate_arrival_trace(arrival_s)

        model = self.model
        policy = self.policy
        num_requests = arrivals.size
        num_cores = model.num_cores
        core_free = [0.0] * num_cores
        core_busy = [0.0] * num_cores
        dispatch_s = np.empty(num_requests)
        completion_s = np.empty(num_requests)
        batches: list[BatchRecord] = []

        head = 0
        while head < num_requests:
            dispatch, size = plan_dispatch(arrivals, head, policy, core_free[0])

            start = dispatch
            for core in range(num_cores):
                begun = max(start, core_free[core])
                busy = model.core_busy_s(core, size)
                start = begun + busy
                core_free[core] = start
                core_busy[core] += busy
            batch = BatchRecord(
                index=len(batches),
                first_request=head,
                size=size,
                dispatch_s=dispatch,
                completion_s=start,
            )
            batches.append(batch)
            dispatch_s[head : head + size] = dispatch
            completion_s[head : head + size] = start
            head += size

        return ServingReport(
            policy=policy,
            num_cores=num_cores,
            arrival_s=arrivals,
            dispatch_s=dispatch_s,
            completion_s=completion_s,
            batches=tuple(batches),
            core_busy_s=tuple(core_busy),
        )


def simulate_serving(
    network: Network,
    arrival_s: np.ndarray,
    policy: BatchingPolicy,
    num_cores: int,
    config: PCNNAConfig | None = None,
    clamp_cores: bool = False,
) -> ServingReport:
    """One-call serving simulation for an executable network.

    Builds the :class:`PipelineServiceModel` from the network's conv
    layers and runs the trace through a :class:`ServingSimulator`.

    Raises:
        ValueError: on a conv-free network, invalid ``num_cores``, or a
            bad trace.
    """
    model = PipelineServiceModel.from_network(
        network, num_cores, config, clamp_cores
    )
    return ServingSimulator(model, policy).run(arrival_s)


def replay_on_engine(
    network: Network,
    report: ServingReport,
    inputs: np.ndarray,
    config: PCNNAConfig | None = None,
) -> np.ndarray:
    """Execute a simulated schedule's batches on the real engine.

    Every batch the simulator formed is dispatched as one minibatch to
    :func:`~repro.core.serving.run_network_pipelined` with the report's
    core count, and each request's output is scattered back to its slot
    — the end-to-end proof that the simulated schedule is servable and
    that batching never changes anyone's answer (in ideal mode the
    outputs are bit-identical to running every request alone).

    Args:
        network: the served network.
        report: a simulation result over ``inputs.shape[0]`` requests.
        inputs: per-request inputs, shape ``(num_requests,
            *network.input_shape)``.
        config: hardware configuration for execution.

    Returns:
        Per-request outputs, shape ``(num_requests, *output_shape)``.

    Raises:
        ValueError: if ``inputs`` does not cover the report's requests.
    """
    inputs = validate_replay_inputs(network, report, inputs)
    outputs: np.ndarray | None = None
    for batch in report.batches:
        stop = batch.first_request + batch.size
        result = run_network_pipelined(
            network,
            inputs[batch.first_request : stop],
            report.num_cores,
            config,
        )
        if outputs is None:
            outputs = np.empty(
                (report.num_requests, *result.outputs.shape[1:])
            )
        outputs[batch.first_request : stop] = result.outputs
    assert outputs is not None  # the report always has >= 1 batch
    return outputs
