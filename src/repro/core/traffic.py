"""Request-level serving simulation with dynamic batching.

The pipelined minibatch runner (:mod:`repro.core.serving`) answers "how
fast is one pre-formed minibatch".  Serving real traffic is a different
question: requests arrive one at a time over a long horizon, queue while
the accelerator is busy, and care about *their own* enqueue-to-completion
latency, not the batch's.  This module closes that loop with a
discrete-event simulator:

* arrival traces come from :mod:`repro.workloads.traffic` (Poisson,
  bursty MMPP, diurnal ramp — all seeded and reproducible);
* a :class:`BatchingPolicy` decides when the queue head stops waiting
  for batch-mates (``max_batch`` / ``max_wait_s``, the knobs of every
  production inference server);
* service times come from :class:`PipelineServiceModel`, the same
  per-core decomposition the executable runner uses: each dispatched
  batch walks the cores in pipeline order, and a core is busy for its
  slice's weight-programming time plus ``batch * conv`` time.  Weight
  loads are paid *per dispatch* — exactly what
  :func:`~repro.core.serving.run_network_pipelined` does when it
  programs the banks for every minibatch — which is why batching moves
  throughput at all: a batch of 32 pays the multi-hundred-microsecond
  weight load once instead of 32 times.  The weight-stationary
  steady state of :mod:`repro.core.multicore` is the ``max_batch →
  inf`` limit of this model.
* consecutive batches overlap across cores (core 0 accepts the next
  batch while core 1 still drains the previous one), so the simulator
  reproduces both the pipeline-fill latency and the steady-state
  bottleneck rate of the analytical model.

The event loop itself lives in :mod:`repro.core.simkernel` — the
unified kernel the fault engine (:mod:`repro.core.faults`) and the
multi-tenant cluster runtime (:mod:`repro.core.cluster`) share.
:class:`ServingSimulator` is the kernel with no plugins; this module
re-exports the kernel's front-door types (:class:`BatchingPolicy`,
:class:`BatchRecord`, :func:`plan_dispatch`,
:func:`validate_arrival_trace`) so the historical API is unchanged.

The simulated clock is decoupled from wall time and every input is
seeded, so a fixed seed yields bit-identical percentile latencies on
every run.  :func:`replay_on_engine` re-executes a simulated schedule's
batches on the *real* batched photonic engine, proving the schedule is
servable: outputs are bit-identical to running every request alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.core.analytical import weight_load_time_s
from repro.core.config import PCNNAConfig
from repro.core.multicore import (
    PipelinePartition,
    balanced_partition,
    validate_num_cores,
)
from repro.core.serving import run_network_pipelined
from repro.core.simkernel import (
    KERNEL_MODES,
    BatchingPolicy,
    BatchRecord,
    BatchTable,
    EventLoopKernel,
    plan_dispatch,
    validate_arrival_trace,
    validate_kernel_mode,
)
from repro.nn.network import Network
from repro.nn.shapes import ConvLayerSpec

# Contract marker checked by `python -m repro.lint` (BIT001): this
# module's reports are pinned byte-identical by golden fixtures, so
# every float fold below must state its order contract.
__bit_identity__ = True


@dataclass(frozen=True)
class PipelineServiceModel:
    """Per-core service times of a batch dispatched to the pipeline.

    A dispatched batch of ``B`` requests occupies core ``k`` for
    ``weight_load_s[k] + B * conv_time_s[k]`` and is handed to the next
    core whole, matching :func:`~repro.core.serving.run_network_pipelined`
    stage-by-stage execution.

    Attributes:
        partition: the balanced conv-layer partition the cores implement.
        weight_load_s: per-core weight-programming time, paid once per
            dispatched batch.
        conv_time_s: per-core per-image conv time (the partition's
            core times).
    """

    partition: PipelinePartition
    weight_load_s: tuple[float, ...]
    conv_time_s: tuple[float, ...]

    @classmethod
    def from_specs(
        cls,
        specs: list[ConvLayerSpec],
        num_cores: int,
        config: PCNNAConfig | None = None,
        clamp_cores: bool = False,
    ) -> "PipelineServiceModel":
        """Build the model from conv-layer specs.

        Args:
            specs: the network's conv layers, in order.
            num_cores: pipeline cores; validated against ``len(specs)``.
            config: hardware configuration (defaults to the paper's).
            clamp_cores: clamp an oversized ``num_cores`` to
                ``len(specs)`` instead of raising.

        Raises:
            ValueError: if ``specs`` is empty or ``num_cores`` is
                invalid (and not clamped).
        """
        if not specs:
            raise ValueError("need at least one conv layer to serve")
        cores = validate_num_cores(num_cores, len(specs), clamp=clamp_cores)
        cfg = config if config is not None else PCNNAConfig()
        partition = balanced_partition(specs, cores, cfg)
        weight_loads = tuple(
            # repro: allow[BIT001] builtin sum is a strict left fold and
            # the slice order is the network's fixed layer order
            sum(weight_load_time_s(spec, cfg) for spec in specs[start:end])
            for start, end in partition.slices
        )
        return cls(
            partition=partition,
            weight_load_s=weight_loads,
            conv_time_s=partition.core_times_s,
        )

    @classmethod
    def from_network(
        cls,
        network: Network,
        num_cores: int,
        config: PCNNAConfig | None = None,
        clamp_cores: bool = False,
    ) -> "PipelineServiceModel":
        """Build the model from an executable network's conv layers."""
        return cls.from_specs(
            network.conv_specs(), num_cores, config, clamp_cores
        )

    @property
    def num_cores(self) -> int:
        """Cores in the pipeline."""
        return len(self.conv_time_s)

    def core_busy_s(self, core: int, batch: int) -> float:
        """Time one dispatched batch occupies ``core``."""
        return self.weight_load_s[core] + batch * self.conv_time_s[core]

    def batch_makespan_s(self, batch: int) -> float:
        """Time one batch takes from dispatch to completion (all cores,
        no contention from other batches)."""
        # repro: allow[BIT001] strict left fold over the fixed core order
        return sum(self.core_busy_s(core, batch) for core in range(self.num_cores))

    def capacity_rps(self, batch: int) -> float:
        """Steady-state throughput when every dispatch carries ``batch``
        requests: the bottleneck core limits the dispatch rate."""
        slowest = max(
            self.core_busy_s(core, batch) for core in range(self.num_cores)
        )
        return batch / slowest

    @property
    def stationary_capacity_rps(self) -> float:
        """The weight-stationary limit (``batch -> inf``): one image per
        bottleneck conv interval, :mod:`repro.core.multicore`'s rate."""
        return self.partition.images_per_s


@dataclass(frozen=True)
class ServingReport:
    """Everything measured over one simulated serving run.

    Attributes:
        policy: the batching policy that produced the schedule.
        num_cores: pipeline width.
        arrival_s: per-request arrival times (the input trace).
        dispatch_s: per-request batch-dispatch times.
        completion_s: per-request completion times.
        batches: the dispatched batches, in order — a plain tuple from
            the reference kernel, a
            :class:`~repro.core.simkernel.BatchTable` from the
            vectorized kernel (same records either way).
        core_busy_s: per-core total busy time.
    """

    policy: BatchingPolicy
    num_cores: int
    arrival_s: np.ndarray
    dispatch_s: np.ndarray
    completion_s: np.ndarray
    batches: Sequence[BatchRecord]
    core_busy_s: tuple[float, ...]

    @property
    def num_requests(self) -> int:
        """Requests served."""
        return int(self.arrival_s.size)

    @property
    def latencies_s(self) -> np.ndarray:
        """Per-request enqueue-to-completion latency."""
        return self.completion_s - self.arrival_s

    def latency_percentile_s(self, percentile: float) -> float:
        """A latency percentile (linear interpolation, deterministic).

        Raises:
            ValueError: if the report covers no requests — a percentile
                of an empty trace is undefined, and numpy's nan-and-
                RuntimeWarning path would silently poison downstream
                tables.
        """
        if self.arrival_s.size == 0:
            raise ValueError(
                f"{self.policy.name}: no requests in the trace — latency "
                f"percentiles are undefined on an empty report"
            )
        return float(np.percentile(self.latencies_s, percentile))

    @property
    def p50_s(self) -> float:
        """Median latency."""
        return self.latency_percentile_s(50.0)

    @property
    def p95_s(self) -> float:
        """95th-percentile latency."""
        return self.latency_percentile_s(95.0)

    @property
    def p99_s(self) -> float:
        """99th-percentile latency."""
        return self.latency_percentile_s(99.0)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        return float(self.completion_s.max() - self.arrival_s[0])

    @property
    def throughput_rps(self) -> float:
        """Completed requests per simulated second over the makespan."""
        return self.num_requests / self.makespan_s

    @property
    def mean_batch_size(self) -> float:
        """Average dispatched batch size."""
        return self.num_requests / len(self.batches)

    @property
    def core_utilization(self) -> tuple[float, ...]:
        """Per-core busy fraction of the makespan."""
        span = self.makespan_s
        return tuple(busy / span for busy in self.core_busy_s)

    @cached_property
    def _queue_depth_profile(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted event times and the queue depth after each event.

        Arrivals sort ahead of the dispatch that consumes them at time
        ties (a request arriving exactly at a dispatch instant is
        eligible for that batch).  Cached: every depth metric reads it.
        """
        if isinstance(self.batches, BatchTable):
            batch_dispatch = self.batches.dispatch_s
            batch_size = self.batches.size.astype(float)
        else:
            batch_dispatch = [batch.dispatch_s for batch in self.batches]
            batch_size = [float(batch.size) for batch in self.batches]
        times = np.concatenate([self.arrival_s, batch_dispatch])
        deltas = np.concatenate(
            [np.ones(self.num_requests), np.negative(batch_size)]
        )
        order = np.argsort(times, kind="stable")
        return times[order], np.cumsum(deltas[order])

    @property
    def max_queue_depth(self) -> int:
        """Largest number of requests simultaneously waiting."""
        _, depth = self._queue_depth_profile
        return int(depth.max())

    @property
    def mean_queue_depth(self) -> float:
        """Time-weighted mean queue depth over the event horizon."""
        times, depth = self._queue_depth_profile
        spans = np.diff(times)
        total = times[-1] - times[0]
        if total <= 0.0:
            return 0.0
        # repro: allow[BIT001] report statistic computed by this same
        # ndarray fold in both kernel modes; not part of the per-event
        # float recipe the modes must replay
        return float((depth[:-1] * spans).sum() / total)

    def describe(self) -> str:
        """A one-run summary block."""
        util = ", ".join(f"{u:.0%}" for u in self.core_utilization)
        return "\n".join(
            [
                f"{self.policy.name} over {self.num_cores} cores: "
                f"{self.num_requests} requests in {len(self.batches)} "
                f"batches (mean {self.mean_batch_size:.1f})",
                f"  throughput {self.throughput_rps:,.0f} req/s | "
                f"latency p50 {self.p50_s * 1e6:.1f} us, "
                f"p95 {self.p95_s * 1e6:.1f} us, "
                f"p99 {self.p99_s * 1e6:.1f} us",
                f"  queue depth mean {self.mean_queue_depth:.1f}, "
                f"max {self.max_queue_depth} | core utilization {util}",
            ]
        )


def validate_replay_inputs(
    network: Network, report: ServingReport, inputs: np.ndarray
) -> np.ndarray:
    """Validate per-request inputs against a simulated report.

    Shared by every engine-replay front door (including the degraded
    replay in :mod:`repro.core.faults`).

    Raises:
        ValueError: if ``inputs`` does not cover the report's requests.
    """
    inputs = np.asarray(inputs, dtype=float)
    expected = (report.num_requests, *network.input_shape)
    if inputs.shape != expected:
        raise ValueError(
            f"need one input per simulated request, expected {expected}, "
            f"got {inputs.shape}"
        )
    return inputs


class ServingSimulator:
    """Discrete-event closed loop: queue -> batcher -> core pipeline.

    A thin facade over the unified event-loop kernel
    (:class:`~repro.core.simkernel.EventLoopKernel`) with no plugins
    attached — the kernel extraction changed no numbers, so reports are
    bit-identical to the pre-kernel simulator.

    Args:
        model: the per-core service-time model.
        policy: the batching policy.
        mode: kernel execution mode, one of
            :data:`~repro.core.simkernel.KERNEL_MODES`.  The default
            ``"auto"`` resolves to the vectorized hot path (no plugins
            here); ``"reference"`` forces the per-event loop.  Both are
            bit-identical.
    """

    def __init__(
        self,
        model: PipelineServiceModel,
        policy: BatchingPolicy,
        mode: str = "auto",
    ) -> None:
        self.mode = validate_kernel_mode(mode)
        self.model = model
        self.policy = policy

    def run(self, arrival_s: np.ndarray) -> ServingReport:
        """Serve a trace of arrival times to completion.

        Args:
            arrival_s: sorted request arrival times.

        Returns:
            The :class:`ServingReport` with per-request records.

        Raises:
            ValueError: on an empty or unsorted trace.
        """
        run = EventLoopKernel(
            self.model, self.policy, mode=self.mode
        ).run(arrival_s)
        return ServingReport(
            policy=self.policy,
            num_cores=run.initial_num_cores,
            arrival_s=run.arrival_s,
            dispatch_s=run.dispatch_s,
            completion_s=run.completion_s,
            batches=run.batches,
            core_busy_s=run.core_busy_s,
        )


def simulate_serving(
    network: Network,
    arrival_s: np.ndarray,
    policy: BatchingPolicy,
    num_cores: int,
    config: PCNNAConfig | None = None,
    clamp_cores: bool = False,
    mode: str = "auto",
) -> ServingReport:
    """One-call serving simulation for an executable network.

    Builds the :class:`PipelineServiceModel` from the network's conv
    layers and runs the trace through a :class:`ServingSimulator`.

    Raises:
        ValueError: on a conv-free network, invalid ``num_cores``, a
            bad trace, or an unknown ``mode``.
    """
    model = PipelineServiceModel.from_network(
        network, num_cores, config, clamp_cores
    )
    return ServingSimulator(model, policy, mode=mode).run(arrival_s)


def replay_on_engine(
    network: Network,
    report: ServingReport,
    inputs: np.ndarray,
    config: PCNNAConfig | None = None,
) -> np.ndarray:
    """Execute a simulated schedule's batches on the real engine.

    Every batch the simulator formed is dispatched as one minibatch to
    :func:`~repro.core.serving.run_network_pipelined` with the report's
    core count, and each request's output is scattered back to its slot
    — the end-to-end proof that the simulated schedule is servable and
    that batching never changes anyone's answer (in ideal mode the
    outputs are bit-identical to running every request alone).

    Args:
        network: the served network.
        report: a simulation result over ``inputs.shape[0]`` requests.
        inputs: per-request inputs, shape ``(num_requests,
            *network.input_shape)``.
        config: hardware configuration for execution.

    Returns:
        Per-request outputs, shape ``(num_requests, *output_shape)``.

    Raises:
        ValueError: if ``inputs`` does not cover the report's requests.
    """
    inputs = validate_replay_inputs(network, report, inputs)
    widths = [report.num_cores] * len(report.batches)
    return replay_batches(network, report.batches, widths, inputs, config)


def replay_batches(
    network: Network,
    batches: Sequence[BatchRecord],
    num_cores: Sequence[int],
    inputs: np.ndarray,
    config: PCNNAConfig | None = None,
) -> np.ndarray:
    """Execute a sequence of simulated batches on the real engine.

    The shared engine-replay core: each batch is dispatched as one
    minibatch to :func:`~repro.core.serving.run_network_pipelined` at
    the pipeline width *that batch* saw, and each request's output is
    scattered back to its slot.  :func:`replay_on_engine` uses a
    constant width; the cluster runtime's per-tenant replay
    (:func:`~repro.core.cluster.replay_tenant_on_engine`) feeds the
    per-batch widths left by elastic core reallocation.

    Args:
        network: the served network.
        batches: the simulated batches, covering ``inputs`` contiguously.
        num_cores: per-batch pipeline width (same length as ``batches``).
        inputs: per-request inputs, shape ``(num_requests,
            *network.input_shape)``.
        config: hardware configuration for execution.

    Returns:
        Per-request outputs, shape ``(num_requests, *output_shape)``.

    Raises:
        ValueError: if ``num_cores`` does not cover every batch — a
            silent zip truncation would leave uninitialized rows in
            the output.
    """
    if len(num_cores) != len(batches):
        raise ValueError(
            f"need one pipeline width per batch, got {len(num_cores)} "
            f"widths for {len(batches)} batches"
        )
    outputs: np.ndarray | None = None
    for batch, width in zip(batches, num_cores):
        stop = batch.first_request + batch.size
        result = run_network_pipelined(
            network,
            inputs[batch.first_request : stop],
            int(width),
            config,
        )
        if outputs is None:
            outputs = np.empty((inputs.shape[0], *result.outputs.shape[1:]))
        outputs[batch.first_request : stop] = result.outputs
    assert outputs is not None  # a report always has >= 1 batch
    return outputs


# The serving surface plus the kernel re-exports that predate
# core/simkernel.py; API001 checks each re-export against the source
# module's own __all__, so this list cannot drift from simkernel's.
__all__ = [
    "KERNEL_MODES",
    "BatchingPolicy",
    "BatchRecord",
    "BatchTable",
    "EventLoopKernel",
    "PipelineServiceModel",
    "ServingReport",
    "ServingSimulator",
    "plan_dispatch",
    "replay_batches",
    "replay_on_engine",
    "simulate_serving",
    "validate_arrival_trace",
    "validate_replay_inputs",
]
