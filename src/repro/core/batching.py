"""Batching and throughput models (extension beyond the paper).

The paper evaluates single-image latency and notes that kernel weights
"do not change" over a layer — which means the once-per-layer weight
load (hundreds of microseconds, far larger than the per-image conv time)
amortizes over a batch.  This module quantifies that:

* :func:`layer_batch_time_s` — weight load once + per-image conv time;
* :func:`network_batch_timing` — batch timing from the paper's
  closed-form layer times, with layer-sequential execution (the paper's
  virtual-layer reuse);
* :func:`network_batch_timing_simulated` — the same composition built
  on the cycle-level simulator of :mod:`repro.core.timing` instead of
  the closed form, matching the batched functional engine's execution
  model (weights programmed once per layer, the whole batch streamed
  through);
* :func:`weight_stationary_crossover` — the batch size at which weight
  loading stops dominating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical import full_system_time_s, weight_load_time_s
from repro.core.config import PCNNAConfig
from repro.core.timing import simulate_layer
from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class BatchTiming:
    """Batched execution summary for one network.

    Attributes:
        batch_size: images per batch.
        total_time_s: end-to-end batch time (weight loads + convs).
        weight_load_s: total once-per-layer weight-load time.
        conv_time_s: total convolution time across the batch.
        per_image_s: amortized latency per image.
        images_per_s: throughput.
    """

    batch_size: int
    total_time_s: float
    weight_load_s: float
    conv_time_s: float

    @property
    def per_image_s(self) -> float:
        """Amortized per-image latency (s)."""
        return self.total_time_s / self.batch_size

    @property
    def images_per_s(self) -> float:
        """Sustained throughput (images/s)."""
        return self.batch_size / self.total_time_s

    @property
    def weight_load_fraction(self) -> float:
        """Fraction of the batch time spent loading weights."""
        return self.weight_load_s / self.total_time_s


def layer_batch_time_s(
    spec: ConvLayerSpec,
    batch_size: int,
    config: PCNNAConfig | None = None,
) -> float:
    """Time to run one layer over a batch: one weight load + B convs.

    Raises:
        ValueError: if ``batch_size`` is not positive.
    """
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size!r}")
    cfg = config if config is not None else PCNNAConfig()
    return weight_load_time_s(spec, cfg) + batch_size * full_system_time_s(
        spec, cfg
    )


def network_batch_timing(
    specs: list[ConvLayerSpec],
    batch_size: int,
    config: PCNNAConfig | None = None,
) -> BatchTiming:
    """Batched timing for a layer-sequential network execution.

    PCNNA reuses one physical layer (paper section IV), so layers run
    sequentially: load conv-i weights, stream the whole batch through
    conv-i, move on.  Intermediate feature maps stage in DRAM between
    layers exactly as in the single-image flow.
    """
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size!r}")
    cfg = config if config is not None else PCNNAConfig()
    weight_load = sum(weight_load_time_s(spec, cfg) for spec in specs)
    conv = batch_size * sum(full_system_time_s(spec, cfg) for spec in specs)
    return BatchTiming(
        batch_size=batch_size,
        total_time_s=weight_load + conv,
        weight_load_s=weight_load,
        conv_time_s=conv,
    )


def network_batch_timing_simulated(
    specs: list[ConvLayerSpec],
    batch_size: int,
    config: PCNNAConfig | None = None,
    include_adc: bool = True,
) -> BatchTiming:
    """Batched network timing from the cycle-level simulator.

    Identical layer-sequential weight-stationary composition as
    :func:`network_batch_timing`, but each layer's conv and weight-load
    times come from :func:`repro.core.timing.simulate_layer` (which
    models DRAM refills, DAC/ADC serialization, and pipeline fill the
    closed form ignores).

    Raises:
        ValueError: if ``batch_size`` is not positive.
    """
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size!r}")
    cfg = config if config is not None else PCNNAConfig()
    results = [simulate_layer(spec, cfg, include_adc) for spec in specs]
    weight_load = sum(result.weight_load_time_s for result in results)
    conv = batch_size * sum(result.pipelined_time_s for result in results)
    return BatchTiming(
        batch_size=batch_size,
        total_time_s=weight_load + conv,
        weight_load_s=weight_load,
        conv_time_s=conv,
    )


def weight_stationary_crossover(
    specs: list[ConvLayerSpec], config: PCNNAConfig | None = None
) -> int:
    """Batch size at which conv time first exceeds weight-load time.

    Below this, the accelerator is weight-load-bound (an effect the paper
    does not account for because it reports conv time only); above it,
    the paper's numbers describe the sustained behaviour.
    """
    cfg = config if config is not None else PCNNAConfig()
    weight_load = sum(weight_load_time_s(spec, cfg) for spec in specs)
    per_image = sum(full_system_time_s(spec, cfg) for spec in specs)
    if per_image <= 0:
        raise ValueError("per-image conv time must be positive")
    crossover = int(weight_load / per_image) + 1
    return max(crossover, 1)
