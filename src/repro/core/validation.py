"""Functional-equivalence validation: photonic vs. NumPy reference.

These helpers quantify how closely the photonic convolution tracks the
floating-point reference under a given hardware configuration — the
workhorse of the noise-robustness example and of the test suite's
exactness checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accelerator import PhotonicConvolution
from repro.core.config import PCNNAConfig
from repro.nn import functional as F


@dataclass(frozen=True)
class EquivalenceReport:
    """Error statistics between photonic and reference convolution.

    Attributes:
        max_abs_error: worst-case absolute output error.
        max_rel_error: worst-case error relative to the reference's
            largest output magnitude.
        rms_error: root-mean-square output error.
        reference_scale: the reference's largest output magnitude.
    """

    max_abs_error: float
    max_rel_error: float
    rms_error: float
    reference_scale: float

    def within(self, rel_tolerance: float) -> bool:
        """Whether the worst relative error is inside ``rel_tolerance``."""
        return self.max_rel_error <= rel_tolerance


def compare_photonic_reference(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    config: PCNNAConfig | None = None,
    method: str = "auto",
    quantize: bool = False,
) -> EquivalenceReport:
    """Run both engines on the same convolution and report the error.

    Args:
        feature_map: input of shape ``(C, H, W)``.
        kernels: weights of shape ``(K, C, m, m)``.
        stride: spatial stride.
        padding: zero padding.
        config: hardware configuration for the photonic engine.
        method: photonic execution method (see
            :class:`~repro.core.accelerator.PhotonicConvolution`).
        quantize: apply DAC/ADC quantization in the photonic engine.

    Returns:
        The :class:`EquivalenceReport`.
    """
    cfg = config if config is not None else PCNNAConfig()
    engine = PhotonicConvolution(cfg, method=method, quantize=quantize)
    photonic = engine.convolve(feature_map, kernels, stride, padding)
    reference = F.conv2d(
        np.asarray(feature_map, dtype=float),
        np.asarray(kernels, dtype=float),
        stride,
        padding,
    )
    error = photonic - reference
    scale = float(np.max(np.abs(reference)))
    if scale == 0.0:
        scale = 1.0
    return EquivalenceReport(
        max_abs_error=float(np.max(np.abs(error))),
        max_rel_error=float(np.max(np.abs(error)) / scale),
        rms_error=float(np.sqrt(np.mean(error**2))),
        reference_scale=scale,
    )


def assert_functionally_equivalent(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    config: PCNNAConfig | None = None,
    rel_tolerance: float = 1e-9,
) -> EquivalenceReport:
    """Raise if the photonic conv deviates beyond ``rel_tolerance``.

    Returns:
        The report, for further inspection.

    Raises:
        AssertionError: if the relative error exceeds the tolerance.
    """
    report = compare_photonic_reference(
        feature_map, kernels, stride, padding, config
    )
    if not report.within(rel_tolerance):
        raise AssertionError(
            f"photonic convolution deviates: max relative error "
            f"{report.max_rel_error:.3e} > {rel_tolerance:.3e}"
        )
    return report
