"""The unified discrete-event serving kernel.

PR 3 built a request-level serving simulator (:mod:`repro.core.traffic`)
and PR 4 forked its event loop to add hardware degradation
(:mod:`repro.core.faults`).  Every further serving scenario — and the
multi-tenant cluster runtime in :mod:`repro.core.cluster` — would have
been a third copy of the same loop, so this module extracts the loop
once:

* :func:`plan_dispatch` — the scheduler's entire batching decision
  (when does the queue head's batch seal, and how big is it);
* :func:`execute_dispatch` — the pipeline walk that books one sealed
  batch onto the cores (the float arithmetic every simulator shares
  verbatim, which is what makes the facades *bit-identical* to their
  pre-kernel selves);
* :class:`EventLoopKernel` — the queue → batcher → pipeline loop with
  :class:`KernelPlugin` hooks at the three points a scenario can differ:
  after a dispatch is planned (``on_dispatch_planned`` — where the fault
  engine advances drift state machines, pays recalibration downtime, and
  re-partitions around failed cores), after a batch completes
  (``on_batch_complete`` — per-batch bookkeeping), and at run start/end.

:class:`~repro.core.traffic.ServingSimulator` is the kernel with no
plugins; :class:`~repro.core.faults.DegradedServingSimulator` is the
kernel plus :class:`~repro.core.faults.FaultPlugin`; the cluster runtime
drives one :class:`DispatchContext` per tenant through the same
:func:`plan_dispatch` / :func:`execute_dispatch` pair.  The simulated
clock is decoupled from wall time and every input is seeded, so a fixed
seed yields bit-identical results on every run.

:class:`BatchingPolicy`, :class:`BatchRecord`, and
:func:`validate_arrival_trace` live here because every front door shares
them; :mod:`repro.core.traffic` re-exports the full historical API.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

# Contract markers checked by `python -m repro.lint` (BIT001/PERF001):
# this module's floats are pinned bit-identical across modes, and the
# listed classes are constructed per batch inside the event loop.
__bit_identity__ = True
__hot_path__ = ("BatchRecord", "BatchTable", "DispatchContext")

KERNEL_MODES: tuple[str, ...] = ("auto", "vectorized", "reference")
"""Execution modes accepted by :class:`EventLoopKernel`.

``"reference"`` is the original per-event Python loop — one
:func:`plan_dispatch` / :func:`execute_dispatch` call per batch.
``"vectorized"`` plans whole batch boundaries and completion clocks as
numpy array ops; it refuses plugins (plugins mutate the pipeline
mid-run, which has no array form).  ``"auto"`` — the default — picks
vectorized when no plugins are attached and reference otherwise.  The
two modes are *bit-identical*: every float the vectorized path emits is
produced by the same sequence of IEEE-754 operations the reference loop
performs (see ``docs/architecture.md``, "Vectorized kernel & reference
mode").
"""


def validate_kernel_mode(mode: str) -> str:
    """Validate a kernel execution mode (shared by every front door).

    The traffic, cluster, and fleet simulators all accept the same
    ``mode`` argument; validating it here keeps the error message (and
    the accepted set) identical everywhere.

    Returns:
        The validated mode, unchanged.

    Raises:
        ValueError: if ``mode`` is not one of :data:`KERNEL_MODES`.
    """
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r}; have {KERNEL_MODES}"
        )
    return mode


@dataclass(frozen=True)
class BatchingPolicy:
    """When does the queue head stop waiting for batch-mates?

    The scheduler forms a batch at the moment the pipeline's first core
    is free, taking every queued request up to ``max_batch``; if fewer
    are queued, the head is allowed to wait up to ``max_wait_s`` after
    its arrival for more to show up.  ``max_wait_s = 0`` dispatches
    whatever is queued immediately (latency-greedy); ``max_wait_s =
    inf`` holds out for a full batch (throughput-greedy, the fixed-size
    policy; the end of the trace flushes a final partial batch).

    Attributes:
        name: label used in reports and sweep tables.
        max_batch: largest batch the scheduler may form.
        max_wait_s: longest the queue head may wait for batch-mates
            after its arrival.
    """

    name: str
    max_batch: int
    max_wait_s: float

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(
                f"{self.name}: max batch must be >= 1, got {self.max_batch!r}"
            )
        if self.max_wait_s < 0.0 or math.isnan(self.max_wait_s):
            raise ValueError(
                f"{self.name}: max wait must be >= 0, got {self.max_wait_s!r}"
            )

    @classmethod
    def fifo(cls) -> "BatchingPolicy":
        """Batch-free baseline: every request is dispatched alone."""
        return cls(name="fifo-1", max_batch=1, max_wait_s=0.0)

    @classmethod
    def dynamic(cls, max_batch: int, max_wait_s: float) -> "BatchingPolicy":
        """Production dynamic batching: size cap plus wait-time cap."""
        return cls(
            name=f"dynamic-{max_batch}@{max_wait_s:.3g}s",
            max_batch=max_batch,
            max_wait_s=max_wait_s,
        )

    @classmethod
    def fixed(cls, batch: int) -> "BatchingPolicy":
        """Hold out for a full ``batch`` no matter how long it takes."""
        return cls(name=f"fixed-{batch}", max_batch=batch, max_wait_s=math.inf)

    def capped(self, cap: int) -> "BatchingPolicy":
        """The same policy with ``max_batch`` clamped to ``cap``.

        Used by admission control: a queue that can never hold more
        than ``cap`` requests can never fill a larger batch, so the
        dispatch planner must not wait for one.  Returns ``self``
        unchanged when the cap is not binding (preserving bit-identical
        planning for uncapped tenants).

        Raises:
            ValueError: if ``cap`` is not positive.
        """
        if cap < 1:
            raise ValueError(f"batch cap must be >= 1, got {cap!r}")
        if cap >= self.max_batch:
            return self
        return BatchingPolicy(
            name=self.name, max_batch=cap, max_wait_s=self.max_wait_s
        )


@dataclass(frozen=True, slots=True)
class BatchRecord:
    """One dispatched batch of the simulated schedule.

    Attributes:
        index: dispatch order.
        first_request: index of the batch's first request (requests are
            batched in arrival order, so the batch covers
            ``[first_request, first_request + size)``).
        size: number of requests in the batch.
        dispatch_s: when the scheduler released the batch to core 0.
        completion_s: when the last core finished the batch.
    """

    index: int
    first_request: int
    size: int
    dispatch_s: float
    completion_s: float


class BatchTable(Sequence):
    """A sequence of :class:`BatchRecord` backed by four parallel arrays.

    The vectorized kernel plans millions of batches as whole arrays;
    materializing a frozen dataclass per batch would cost more than the
    simulation itself.  This table stores the columns and synthesizes
    records on demand, so ``report.batches[i]``, iteration, ``len``, and
    equality against a tuple of :class:`BatchRecord` all behave exactly
    like the reference mode's tuple.

    Attributes:
        first_request: per-batch index of the first request.
        size: per-batch request count.
        dispatch_s: per-batch dispatch time.
        completion_s: per-batch completion time.
    """

    __slots__ = (
        "first_request",
        "size",
        "dispatch_s",
        "completion_s",
        "_records",
    )

    def __init__(
        self,
        first_request: np.ndarray,
        size: np.ndarray,
        dispatch_s: np.ndarray,
        completion_s: np.ndarray,
    ) -> None:
        self.first_request = np.asarray(first_request, dtype=np.int64)
        self.size = np.asarray(size, dtype=np.int64)
        self.dispatch_s = np.asarray(dispatch_s, dtype=float)
        self.completion_s = np.asarray(completion_s, dtype=float)
        self._records: tuple[BatchRecord, ...] | None = None

    def _make(self, i: int) -> BatchRecord:
        return BatchRecord(
            index=i,
            first_request=int(self.first_request[i]),
            size=int(self.size[i]),
            dispatch_s=float(self.dispatch_s[i]),
            completion_s=float(self.completion_s[i]),
        )

    def __len__(self) -> int:
        return int(self.first_request.size)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return tuple(
                self._make(j) for j in range(*i.indices(len(self)))
            )
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"batch index {i!r} out of range for {n}")
        return self._make(i)

    def __iter__(self):
        for i in range(len(self)):
            yield self._make(i)

    @property
    def records(self) -> tuple[BatchRecord, ...]:
        """The table as a plain tuple of records (cached)."""
        if self._records is None:
            self._records = tuple(self)
        return self._records

    def __eq__(self, other) -> bool:
        if isinstance(other, BatchTable):
            return (
                np.array_equal(self.first_request, other.first_request)
                and np.array_equal(self.size, other.size)
                and np.array_equal(self.dispatch_s, other.dispatch_s)
                and np.array_equal(self.completion_s, other.completion_s)
            )
        if isinstance(other, Sequence):
            return self.records == tuple(other)
        return NotImplemented

    __hash__ = None  # mutable arrays inside

    def __repr__(self) -> str:
        return f"BatchTable(num_batches={len(self)})"


def validate_arrival_trace(arrival_s: np.ndarray) -> np.ndarray:
    """Validate and normalize a request arrival trace.

    Shared by every simulator front door (traffic, faults, cluster), so
    a bad trace fails with the same message everywhere.  Zero-length
    traces are rejected up front with their own message: a serving run
    over no requests has no latencies, no batches, and no percentiles,
    so every downstream metric would be undefined.

    Raises:
        ValueError: on an empty, non-1-D, or unsorted trace.
    """
    arrivals = np.asarray(arrival_s, dtype=float)
    if arrivals.size == 0:
        raise ValueError(
            "arrival trace is empty — need at least one request to serve"
        )
    if arrivals.ndim != 1:
        raise ValueError(
            f"need a non-empty 1-D arrival trace, got shape "
            f"{arrivals.shape}"
        )
    if np.any(np.diff(arrivals) < 0.0):
        raise ValueError("arrival times must be sorted ascending")
    return arrivals


@dataclass(frozen=True, slots=True)
class KernelTelemetry:
    """One pipeline's observable state at a dispatch instant.

    The read-only signal surface the adaptive control plane
    (:mod:`repro.core.adaptive`) consumes: queue depth and the per-core
    clocks, snapshotted from a :class:`DispatchContext` without touching
    any of the kernel's mutable state.  Controllers that only *read*
    telemetry cannot perturb the bit-identity pins.

    Attributes:
        time_s: the dispatch instant the snapshot was taken at.
        queued: requests arrived but not yet dispatched (queue depth).
        head: index of the next request to dispatch.
        num_stages: current pipeline width.
        core_free_s: per-stage time the core frees up.
        core_busy_s: per-physical-core accumulated busy time.
    """

    time_s: float
    queued: int
    head: int
    num_stages: int
    core_free_s: tuple[float, ...]
    core_busy_s: tuple[float, ...]


def plan_dispatch(
    arrivals: np.ndarray,
    head: int,
    policy: BatchingPolicy,
    core0_free_s: float,
) -> tuple[float, int]:
    """When does the queue head's batch dispatch, and how big is it?

    The batch is sealed at the latest of: the head's arrival, core 0
    freeing up, and the policy trigger (batch full or head's wait budget
    exhausted).  This single function is the scheduler's entire batching
    decision; every simulator built on the kernel shares it verbatim,
    which is what makes a zero-magnitude fault run — and a single-tenant
    cluster run — *bit-identical* to the plain simulator: all of them
    plan every dispatch with the exact same float arithmetic.

    Tie order is part of the contract: requests sharing an exact arrival
    timestamp are batched in **trace index order** (the order they
    appear in ``arrivals``).  ``searchsorted(..., side="right")`` counts
    every tied arrival as queued, so a batch never splits a tie group
    unless ``max_batch`` forces it — and then it takes the lowest trace
    indices first.  The vectorized planner relies on the trace being
    pre-sorted (it never re-sorts), so both modes see the identical
    stable order; ``tests/test_vectorized_kernel.py`` pins this.

    Returns:
        ``(dispatch_s, size)`` for the batch starting at ``head``.
    """
    earliest = max(arrivals[head], core0_free_s)
    full_index = head + policy.max_batch - 1
    fills_at = (
        arrivals[full_index] if full_index < arrivals.size else math.inf
    )
    deadline = arrivals[head] + policy.max_wait_s
    dispatch = max(earliest, min(deadline, fills_at))
    if math.isinf(dispatch):
        # Fixed-size tail: the batch can never fill and the head may
        # wait forever, so flush everything left as one final partial
        # batch once the last request has arrived.
        dispatch = max(core0_free_s, arrivals[-1])
    queued = int(np.searchsorted(arrivals, dispatch, side="right") - head)
    size = max(1, min(policy.max_batch, queued))
    return dispatch, size


class DispatchContext:
    """Mutable state of one serving pipeline inside the event loop.

    Plugins receive the context at every hook and may mutate the
    pipeline mid-run — push a core's free time forward (recalibration
    downtime), swap the service model and the stage→core map
    (fault-aware repartitioning), or resize the pipeline (elastic
    reallocation in the cluster runtime).

    Attributes:
        arrivals: the (validated) arrival trace being served.
        policy: the batching policy sealing dispatches.
        model: the current per-core service-time model (a
            :class:`~repro.core.traffic.PipelineServiceModel`); plugins
            may replace it.
        stage_to_core: physical core index behind each pipeline stage.
            Starts as the identity map; shrinks when a plugin drains
            cores out of the pipeline.
        core_free: per-*stage* time the core frees up.
        core_busy: per-*physical-core* accumulated busy time (length
            never changes — drained cores keep their history).
        head: index of the next request to dispatch.
        batches: every sealed batch so far, in dispatch order.
        dispatch_s: per-request batch-dispatch times (filled as batches
            seal).
        completion_s: per-request completion times.
        initial_num_cores: pipeline width at the start of the run.
    """

    __slots__ = (
        "arrivals",
        "policy",
        "model",
        "stage_to_core",
        "core_free",
        "core_busy",
        "head",
        "batches",
        "dispatch_s",
        "completion_s",
        "initial_num_cores",
    )

    def __init__(self, model, policy: BatchingPolicy, arrivals: np.ndarray):
        width = model.num_cores
        self.arrivals = arrivals
        self.policy = policy
        self.model = model
        self.stage_to_core = list(range(width))
        self.core_free = [0.0] * width
        self.core_busy = [0.0] * width
        self.head = 0
        self.batches: list[BatchRecord] = []
        self.dispatch_s = np.empty(arrivals.size)
        self.completion_s = np.empty(arrivals.size)
        self.initial_num_cores = width

    @property
    def num_requests(self) -> int:
        """Requests in the trace."""
        return int(self.arrivals.size)

    @property
    def done(self) -> bool:
        """Whether every request has been dispatched."""
        return self.head >= self.arrivals.size

    def telemetry(self, time_s: float) -> KernelTelemetry:
        """Snapshot the pipeline's observable state at ``time_s``.

        Pure read: the snapshot copies the clocks and counts queued
        requests (arrived at or before ``time_s``, not yet dispatched)
        without mutating the context, so plugins may sample telemetry
        at every hook without perturbing the kernel's arithmetic.
        """
        arrived = int(np.searchsorted(self.arrivals, time_s, side="right"))
        return KernelTelemetry(
            time_s=time_s,
            queued=max(arrived - self.head, 0),
            head=self.head,
            num_stages=self.model.num_cores,
            core_free_s=tuple(self.core_free),
            core_busy_s=tuple(self.core_busy),
        )


def execute_dispatch(
    ctx: DispatchContext, dispatch: float, size: int
) -> BatchRecord:
    """Book one sealed batch onto the context's pipeline.

    The batch walks the stages in order; each stage is busy for its
    weight-programming time plus ``size * conv`` time and hands the
    batch to the next stage whole.  Busy time is charged to the
    *physical* core behind each stage, so per-core accounting survives
    repartitions.  This is the exact arithmetic of the pre-kernel
    simulators — the bit-identity the facades and golden fixtures pin.
    """
    model = ctx.model
    core_free = ctx.core_free
    core_busy = ctx.core_busy
    stage_to_core = ctx.stage_to_core
    batches = ctx.batches
    head = ctx.head
    start = dispatch
    for stage in range(model.num_cores):
        begun = max(start, core_free[stage])
        busy = model.core_busy_s(stage, size)
        start = begun + busy
        core_free[stage] = start
        core_busy[stage_to_core[stage]] += busy
    batch = BatchRecord(
        index=len(batches),
        first_request=head,
        size=size,
        dispatch_s=dispatch,
        completion_s=start,
    )
    batches.append(batch)
    stop = head + size
    ctx.dispatch_s[head:stop] = dispatch
    ctx.completion_s[head:stop] = start
    ctx.head = stop
    return batch


# -- vectorized planning & execution --------------------------------------
#
# The vectorized mode replays the reference loop's float arithmetic as
# array ops.  The one non-trivial piece is the max-plus recurrences
# (pipeline hand-off and core-0 back-pressure): float addition is not
# associative, so a closed-form `cumsum` would drift from the scalar
# fold by ulps.  Each scan therefore (1) *speculates* the recurrence's
# reset points from an approximate closed form, (2) folds each segment
# with `np.cumsum` — which numpy evaluates as the exact left-to-right
# fold the scalar loop performs — and (3) verifies the result
# elementwise against the recurrence, repairing any mis-speculated
# stretch with the scalar fold itself.  The verify step makes the output
# exact regardless of speculation quality: a value sequence that
# satisfies the recurrence at every index is, by induction, *the* fold.

# Congested full-batch probe bounds for the dynamic planner: probes
# start narrow and double while the saturated chain holds.
_STREAK_MIN = 16
_STREAK_MAX = 8192


def _segmented_fold(y: np.ndarray, d: np.ndarray, starts: np.ndarray) -> None:
    """Fold ``y[k] = y[k-1] + d[k]`` within each segment, in place.

    ``y[starts]`` already holds each segment's reset value.  Length-1
    and length-2 segments are handled as array ops; longer segments use
    a per-segment ``np.cumsum`` (an exact left fold).
    """
    n = y.size
    bounds = np.append(starts, n)
    lens = np.diff(bounds)
    two = starts[lens == 2]
    if two.size:
        y[two + 1] = y[two] + d[two + 1]
    for s, length in zip(starts[lens > 2].tolist(), lens[lens > 2].tolist()):
        seg = np.empty(length)
        seg[0] = y[s]
        seg[1:] = d[s + 1 : s + length]
        y[s : s + length] = np.cumsum(seg)


def _maxplus_scan(e: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Exact fold of ``y[k] = max(e[k], y[k-1]) + d[k]``, ``y[0] = e[0]+d[0]``.

    This is the pipeline hand-off recurrence: a batch starts on stage
    ``s`` at the later of its arrival from stage ``s-1`` (``e``) and the
    stage freeing up (``y[k-1]``), then holds it for ``d[k]``.  The
    result is bit-identical to the scalar loop.
    """
    n = e.size
    y = np.empty(n)
    if n == 0:
        return y
    # Speculate reset points (where e[k] >= y[k-1]) from the approximate
    # closed form y[k] ~ P[k] + max_j (e[j] - P[j-1]) with P = cumsum(d).
    anchor = e - np.cumsum(d) + d
    resets = anchor >= np.maximum.accumulate(anchor)
    resets[0] = True
    starts = np.flatnonzero(resets)
    y[starts] = e[starts] + d[starts]
    _segmented_fold(y, d, starts)
    # Verify elementwise; repair mis-speculated stretches scalar.
    prev = np.empty(n)
    prev[0] = -math.inf
    prev[1:] = y[:-1]
    bad = np.flatnonzero(y != np.maximum(e, prev) + d)
    while bad.size:
        k = int(bad[0])
        while k < n:
            cur = (
                e[0] + d[0]
                if k == 0
                else max(float(e[k]), float(y[k - 1])) + float(d[k])
            )
            if cur == y[k]:
                break  # downstream already consistent with this value
            y[k] = cur
            k += 1
        bad = bad[bad > k]
    return y


def _maxplus_scan_const(e: np.ndarray, d: float, y0: float) -> np.ndarray:
    """Exact fold of ``y[k] = max(e[k], y[k-1] + d)`` with ``y[0] = y0``.

    This is the core-0 back-pressure recurrence of the fifo and
    fixed-size planners: dispatch at the later of the policy trigger
    (``e``) and core 0 freeing up ``d`` after the previous dispatch.
    ``y0`` is the caller-computed first dispatch (its reference
    arithmetic differs — it compares against the initial free time 0.0,
    not against a previous dispatch).
    """
    n = e.size
    y = np.empty(n)
    if n == 0:
        return y
    anchor = e - np.cumsum(np.full(n, d)) + d
    resets = anchor >= np.maximum.accumulate(anchor)
    resets[0] = True
    starts = np.flatnonzero(resets)
    y[starts] = e[starts]
    y[0] = y0
    _segmented_fold(y, np.full(n, d), starts)
    bad = np.flatnonzero(y[1:] != np.maximum(e[1:], y[:-1] + d)) + 1
    if y[0] != y0:
        bad = np.append(0, bad)
    while bad.size:
        k = int(bad[0])
        while k < n:
            cur = y0 if k == 0 else max(float(e[k]), float(y[k - 1]) + d)
            if cur == y[k]:
                break
            y[k] = cur
            k += 1
        bad = bad[bad > k]
    return y


def _plan_batches_fifo(
    arrivals: np.ndarray, busy0: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch boundaries for any ``max_batch == 1`` policy.

    Every request dispatches alone at ``max(arrival, core-0 free)``.
    """
    n = arrivals.size
    heads = np.arange(n, dtype=np.int64)
    sizes = np.ones(n, dtype=np.int64)
    b1 = float(busy0[1])
    y0 = max(float(arrivals[0]), 0.0)
    disp = _maxplus_scan_const(arrivals, b1, y0)
    return heads, sizes, disp


def _plan_batches_fixed(
    arrivals: np.ndarray, max_batch: int, busy0: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch boundaries for ``max_wait_s == inf`` (fixed-size) policies.

    Every batch is exactly ``max_batch`` wide — it dispatches at the
    later of its fill time and core 0 freeing up, so all of its
    requests have always arrived — except a final partial flush batch.
    """
    n = arrivals.size
    m = max_batch
    num_full = n // m
    tail = n - num_full * m
    num_batches = num_full + (1 if tail else 0)
    heads = np.arange(num_batches, dtype=np.int64) * m
    sizes = np.full(num_batches, m, dtype=np.int64)
    disp = np.empty(num_batches)
    bm = float(busy0[m])
    if num_full:
        fills = arrivals[m - 1 : num_full * m : m]
        y0 = max(max(float(arrivals[0]), 0.0), float(fills[0]))
        disp[:num_full] = _maxplus_scan_const(fills, bm, y0)
    if tail:
        sizes[-1] = tail
        free = disp[num_full - 1] + bm if num_full else 0.0
        disp[-1] = max(float(free), float(arrivals[-1]))
    return heads, sizes, disp


def _plan_batches_dynamic(
    arrivals: np.ndarray, policy: BatchingPolicy, busy0: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch boundaries for finite-wait, ``max_batch >= 2`` policies.

    Dynamic batching has genuine feedback — congestion grows batch
    sizes, which changes core-0 free times, which changes congestion —
    so there is no closed form.  Instead: precompute each head's policy
    trigger time and uncongested batch size as arrays, then walk the
    trace with two accelerated regimes.  While core 0 keeps up
    (``free <= trigger``), every step is a precomputed table lookup.
    While core 0 is the bottleneck *and* batches are full, dispatches
    are a pure ``free += busy`` chain — folded in vectorized streaks of
    up to ``_STREAK_MAX`` batches via ``cumsum`` (the exact left fold).
    """
    n = arrivals.size
    m = policy.max_batch
    # trigger[h]: when head h's batch seals absent back-pressure —
    # min(deadline, fill time), never below the head's own arrival.
    fills = np.full(n, math.inf)
    fillable = max(0, n - (m - 1))
    fills[:fillable] = arrivals[m - 1 :]
    trigger = np.minimum(arrivals + policy.max_wait_s, fills)
    arrived = np.searchsorted(arrivals, trigger, side="right")
    idx = np.arange(n, dtype=np.int64)
    size_u = np.clip(arrived - idx, 1, m)
    free_u = trigger + busy0[size_u]
    next_u = idx + size_u
    bm = float(busy0[m])

    heads = np.empty(n, dtype=np.int64)
    sizes = np.empty(n, dtype=np.int64)
    disp = np.empty(n)
    nb = 0
    h = 0
    free = 0.0
    # Streak probes are speculative: start narrow and double while the
    # chain stays saturated, so a workload that alternates congested
    # and uncongested batches never pays for a wide failed probe.
    probe = _STREAK_MIN
    while h < n:
        trig = float(trigger[h])
        if free <= trig:
            # Uncongested: dispatch at the policy trigger.
            heads[nb] = h
            sizes[nb] = size_u[h]
            disp[nb] = trig
            free = float(free_u[h])
            h = int(next_u[h])
            nb += 1
            continue
        # Congested: core 0 is late, so dispatch the moment it frees.
        queued = int(arrivals.searchsorted(free, side="right")) - h
        size = m if queued >= m else queued
        heads[nb] = h
        sizes[nb] = size
        disp[nb] = free
        free = free + float(busy0[size])
        h += size
        nb += 1
        if size < m:
            continue
        # Saturated: chase the congested full-batch chain in streaks.
        while True:
            span = min(probe, (n - h) // m)
            if span <= 0:
                break
            fv = np.cumsum(np.concatenate(([free], np.full(span - 1, bm))))
            hv = h + m * np.arange(span, dtype=np.int64)
            counts = np.searchsorted(arrivals, fv, side="right")
            valid = (fv >= trigger[hv]) & (counts - hv >= m)
            take = span if valid.all() else int(valid.argmin())
            if take < span:
                probe = _STREAK_MIN
            elif probe < _STREAK_MAX:
                probe *= 2
            if take == 0:
                break
            heads[nb : nb + take] = hv[:take]
            sizes[nb : nb + take] = m
            disp[nb : nb + take] = fv[:take]
            nb += take
            h += take * m
            # fv is the exact fold, so continuing from it keeps the
            # free-time chain bit-identical to `free += bm` steps.
            free = float(fv[take]) if take < span else float(fv[-1]) + bm
            if take < span:
                break
    return heads[:nb], sizes[:nb], disp[:nb]


class KernelPlugin:
    """Hook points a serving scenario can attach to the event loop.

    Subclass and override what the scenario needs; every default is a
    no-op, so the plain kernel and a kernel with a vacuous plugin run
    the identical arithmetic.  Hooks run in plugin order at each point.
    """

    def on_run_start(self, ctx: DispatchContext) -> None:
        """Called once before the first dispatch is planned."""

    def on_dispatch_planned(
        self, ctx: DispatchContext, dispatch_s: float, size: int
    ) -> None:
        """Called after a dispatch is sealed, before it executes.

        The hook where degradation rides the clock: advance substrate
        state to ``dispatch_s``, pay downtime into ``ctx.core_free``,
        or swap ``ctx.model`` / ``ctx.stage_to_core`` to re-partition.
        The sealed ``(dispatch_s, size)`` itself is never revisited —
        matching the pre-kernel simulators, where recalibration delayed
        a batch's *completion*, not its dispatch decision.
        """

    def on_batch_complete(
        self, ctx: DispatchContext, batch: BatchRecord
    ) -> None:
        """Called after a batch is booked onto the pipeline."""

    def on_run_end(self, ctx: DispatchContext) -> None:
        """Called once after the last batch completes."""


@dataclass(frozen=True)
class KernelRun:
    """Everything the kernel measured over one serving run.

    The scenario facades wrap this in their report types
    (:class:`~repro.core.traffic.ServingReport` and subclasses).

    Attributes:
        arrival_s: the served arrival trace.
        dispatch_s: per-request batch-dispatch times.
        completion_s: per-request completion times.
        batches: the dispatched batches, in order — a plain tuple from
            the reference loop, a :class:`BatchTable` from the
            vectorized path (same records either way).
        core_busy_s: per-physical-core total busy time.
        initial_num_cores: pipeline width at the start of the run.
    """

    arrival_s: np.ndarray
    dispatch_s: np.ndarray
    completion_s: np.ndarray
    batches: Sequence[BatchRecord]
    core_busy_s: tuple[float, ...]
    initial_num_cores: int


def plan_batches(
    arrivals: np.ndarray, policy: BatchingPolicy, model
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Plan every batch of a pluginless run as arrays.

    Routes on the policy's *attributes*, not its name: ``max_batch == 1``
    is the fifo recipe whatever the wait budget (a solo head never waits
    for batch-mates), an infinite wait budget is the fixed-size recipe,
    and everything else is dynamic batching.  Returns per-batch
    ``(first_request, size, dispatch_s)`` arrays, bit-identical to the
    reference loop's :func:`plan_dispatch` sequence.
    """
    m = policy.max_batch
    busy0 = model.weight_load_s[0] + np.arange(m + 1) * model.conv_time_s[0]
    if m == 1:
        return _plan_batches_fifo(arrivals, busy0)
    if math.isinf(policy.max_wait_s):
        return _plan_batches_fixed(arrivals, m, busy0)
    return _plan_batches_dynamic(arrivals, policy, busy0)


def pipeline_completions(
    sizes: np.ndarray, disp: np.ndarray, model
) -> tuple[np.ndarray, tuple[float, ...]]:
    """Walk a planned batch stream through every pipeline stage.

    The execution half of the vectorized kernel, usable on its own by
    any caller that already has per-batch ``(size, dispatch)`` arrays
    from :func:`plan_batches` — the cluster fast path runs it once per
    tenant lane.  Stage 0 starts every batch at its dispatch time (the
    planner guarantees dispatch >= core-0 free), so its completions are
    a single elementwise add; each later stage is one exact max-plus
    scan over the batch stream.  Bit-identical to booking the batches
    through :func:`execute_dispatch` one at a time.

    Returns:
        Per-batch final-stage completion times and the per-stage total
        busy time (the kernel's core busy ledger).
    """
    busy = model.weight_load_s[0] + sizes * model.conv_time_s[0]
    completion = disp + busy
    core_busy = [float(np.cumsum(busy)[-1])]
    for stage in range(1, model.num_cores):
        busy = (
            model.weight_load_s[stage]
            + sizes * model.conv_time_s[stage]
        )
        completion = _maxplus_scan(completion, busy)
        core_busy.append(float(np.cumsum(busy)[-1]))
    return completion, tuple(core_busy)


class EventLoopKernel:
    """The seeded discrete-event loop: queue → batcher → core pipeline.

    Args:
        model: the per-core service-time model
            (:class:`~repro.core.traffic.PipelineServiceModel`).
        policy: the batching policy.
        plugins: scenario hooks, run in order at each hook point.
        mode: one of :data:`KERNEL_MODES`.  ``"auto"`` (the default)
            runs vectorized when no plugins are attached and falls back
            to the reference event loop otherwise; the explicit modes
            force one path (``"vectorized"`` with plugins is an error).

    Raises:
        ValueError: on an unknown mode, or ``mode="vectorized"`` with
            plugins attached.
    """

    def __init__(
        self,
        model,
        policy: BatchingPolicy,
        plugins: tuple[KernelPlugin, ...] = (),
        mode: str = "auto",
    ) -> None:
        validate_kernel_mode(mode)
        if mode == "vectorized" and plugins:
            raise ValueError(
                "vectorized mode cannot host plugins — they mutate the "
                "pipeline mid-run; use mode='reference' (or 'auto')"
            )
        self.model = model
        self.policy = policy
        self.plugins = tuple(plugins)
        self.mode = mode

    def run(self, arrival_s: np.ndarray) -> KernelRun:
        """Serve a trace of arrival times to completion.

        Raises:
            ValueError: on an empty or unsorted trace.
        """
        arrivals = validate_arrival_trace(arrival_s)
        if self.mode == "vectorized" or (
            self.mode == "auto" and not self.plugins
        ):
            return self._run_vectorized(arrivals)
        return self._run_reference(arrivals)

    def _run_vectorized(self, arrivals: np.ndarray) -> KernelRun:
        """The array-op hot path: plan all batches, then book them.

        Stage 0 starts every batch at its dispatch time (the planner
        guarantees dispatch >= core-0 free), so its completions are a
        single elementwise add; each later stage is one exact max-plus
        scan over the batch stream.
        """
        model = self.model
        heads, sizes, disp = plan_batches(arrivals, self.policy, model)
        completion, core_busy = pipeline_completions(sizes, disp, model)
        return KernelRun(
            arrival_s=arrivals,
            dispatch_s=np.repeat(disp, sizes),
            completion_s=np.repeat(completion, sizes),
            batches=BatchTable(heads, sizes, disp, completion),
            core_busy_s=core_busy,
            initial_num_cores=model.num_cores,
        )

    def _run_reference(self, arrivals: np.ndarray) -> KernelRun:
        """The original per-event loop (and the only plugin host)."""
        ctx = DispatchContext(self.model, self.policy, arrivals)
        plugins = self.plugins
        num_requests = arrivals.size
        for plugin in plugins:
            plugin.on_run_start(ctx)
        if plugins:
            while ctx.head < num_requests:
                dispatch, size = plan_dispatch(
                    arrivals, ctx.head, ctx.policy, ctx.core_free[0]
                )
                for plugin in plugins:
                    plugin.on_dispatch_planned(ctx, dispatch, size)
                batch = execute_dispatch(ctx, dispatch, size)
                for plugin in plugins:
                    plugin.on_batch_complete(ctx, batch)
        else:
            # Zero-plugin reference run: identical arithmetic to the
            # vectorized path, no per-batch hook dispatch.
            while ctx.head < num_requests:
                dispatch, size = plan_dispatch(
                    arrivals, ctx.head, ctx.policy, ctx.core_free[0]
                )
                execute_dispatch(ctx, dispatch, size)
        for plugin in plugins:
            plugin.on_run_end(ctx)
        return KernelRun(
            arrival_s=arrivals,
            dispatch_s=ctx.dispatch_s,
            completion_s=ctx.completion_s,
            batches=tuple(ctx.batches),
            core_busy_s=tuple(ctx.core_busy),
            initial_num_cores=ctx.initial_num_cores,
        )


__all__ = [
    "KERNEL_MODES",
    "BatchingPolicy",
    "BatchRecord",
    "BatchTable",
    "DispatchContext",
    "EventLoopKernel",
    "KernelPlugin",
    "KernelRun",
    "KernelTelemetry",
    "execute_dispatch",
    "pipeline_completions",
    "plan_batches",
    "plan_dispatch",
    "validate_arrival_trace",
    "validate_kernel_mode",
]
