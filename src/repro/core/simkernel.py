"""The unified discrete-event serving kernel.

PR 3 built a request-level serving simulator (:mod:`repro.core.traffic`)
and PR 4 forked its event loop to add hardware degradation
(:mod:`repro.core.faults`).  Every further serving scenario — and the
multi-tenant cluster runtime in :mod:`repro.core.cluster` — would have
been a third copy of the same loop, so this module extracts the loop
once:

* :func:`plan_dispatch` — the scheduler's entire batching decision
  (when does the queue head's batch seal, and how big is it);
* :func:`execute_dispatch` — the pipeline walk that books one sealed
  batch onto the cores (the float arithmetic every simulator shares
  verbatim, which is what makes the facades *bit-identical* to their
  pre-kernel selves);
* :class:`EventLoopKernel` — the queue → batcher → pipeline loop with
  :class:`KernelPlugin` hooks at the three points a scenario can differ:
  after a dispatch is planned (``on_dispatch_planned`` — where the fault
  engine advances drift state machines, pays recalibration downtime, and
  re-partitions around failed cores), after a batch completes
  (``on_batch_complete`` — per-batch bookkeeping), and at run start/end.

:class:`~repro.core.traffic.ServingSimulator` is the kernel with no
plugins; :class:`~repro.core.faults.DegradedServingSimulator` is the
kernel plus :class:`~repro.core.faults.FaultPlugin`; the cluster runtime
drives one :class:`DispatchContext` per tenant through the same
:func:`plan_dispatch` / :func:`execute_dispatch` pair.  The simulated
clock is decoupled from wall time and every input is seeded, so a fixed
seed yields bit-identical results on every run.

:class:`BatchingPolicy`, :class:`BatchRecord`, and
:func:`validate_arrival_trace` live here because every front door shares
them; :mod:`repro.core.traffic` re-exports the full historical API.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BatchingPolicy:
    """When does the queue head stop waiting for batch-mates?

    The scheduler forms a batch at the moment the pipeline's first core
    is free, taking every queued request up to ``max_batch``; if fewer
    are queued, the head is allowed to wait up to ``max_wait_s`` after
    its arrival for more to show up.  ``max_wait_s = 0`` dispatches
    whatever is queued immediately (latency-greedy); ``max_wait_s =
    inf`` holds out for a full batch (throughput-greedy, the fixed-size
    policy; the end of the trace flushes a final partial batch).

    Attributes:
        name: label used in reports and sweep tables.
        max_batch: largest batch the scheduler may form.
        max_wait_s: longest the queue head may wait for batch-mates
            after its arrival.
    """

    name: str
    max_batch: int
    max_wait_s: float

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(
                f"{self.name}: max batch must be >= 1, got {self.max_batch!r}"
            )
        if self.max_wait_s < 0.0 or math.isnan(self.max_wait_s):
            raise ValueError(
                f"{self.name}: max wait must be >= 0, got {self.max_wait_s!r}"
            )

    @classmethod
    def fifo(cls) -> "BatchingPolicy":
        """Batch-free baseline: every request is dispatched alone."""
        return cls(name="fifo-1", max_batch=1, max_wait_s=0.0)

    @classmethod
    def dynamic(cls, max_batch: int, max_wait_s: float) -> "BatchingPolicy":
        """Production dynamic batching: size cap plus wait-time cap."""
        return cls(
            name=f"dynamic-{max_batch}@{max_wait_s:.3g}s",
            max_batch=max_batch,
            max_wait_s=max_wait_s,
        )

    @classmethod
    def fixed(cls, batch: int) -> "BatchingPolicy":
        """Hold out for a full ``batch`` no matter how long it takes."""
        return cls(name=f"fixed-{batch}", max_batch=batch, max_wait_s=math.inf)

    def capped(self, cap: int) -> "BatchingPolicy":
        """The same policy with ``max_batch`` clamped to ``cap``.

        Used by admission control: a queue that can never hold more
        than ``cap`` requests can never fill a larger batch, so the
        dispatch planner must not wait for one.  Returns ``self``
        unchanged when the cap is not binding (preserving bit-identical
        planning for uncapped tenants).

        Raises:
            ValueError: if ``cap`` is not positive.
        """
        if cap < 1:
            raise ValueError(f"batch cap must be >= 1, got {cap!r}")
        if cap >= self.max_batch:
            return self
        return BatchingPolicy(
            name=self.name, max_batch=cap, max_wait_s=self.max_wait_s
        )


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch of the simulated schedule.

    Attributes:
        index: dispatch order.
        first_request: index of the batch's first request (requests are
            batched in arrival order, so the batch covers
            ``[first_request, first_request + size)``).
        size: number of requests in the batch.
        dispatch_s: when the scheduler released the batch to core 0.
        completion_s: when the last core finished the batch.
    """

    index: int
    first_request: int
    size: int
    dispatch_s: float
    completion_s: float


def validate_arrival_trace(arrival_s: np.ndarray) -> np.ndarray:
    """Validate and normalize a request arrival trace.

    Shared by every simulator front door (traffic, faults, cluster), so
    a bad trace fails with the same message everywhere.  Zero-length
    traces are rejected up front with their own message: a serving run
    over no requests has no latencies, no batches, and no percentiles,
    so every downstream metric would be undefined.

    Raises:
        ValueError: on an empty, non-1-D, or unsorted trace.
    """
    arrivals = np.asarray(arrival_s, dtype=float)
    if arrivals.size == 0:
        raise ValueError(
            "arrival trace is empty — need at least one request to serve"
        )
    if arrivals.ndim != 1:
        raise ValueError(
            f"need a non-empty 1-D arrival trace, got shape "
            f"{arrivals.shape}"
        )
    if np.any(np.diff(arrivals) < 0.0):
        raise ValueError("arrival times must be sorted ascending")
    return arrivals


def plan_dispatch(
    arrivals: np.ndarray,
    head: int,
    policy: BatchingPolicy,
    core0_free_s: float,
) -> tuple[float, int]:
    """When does the queue head's batch dispatch, and how big is it?

    The batch is sealed at the latest of: the head's arrival, core 0
    freeing up, and the policy trigger (batch full or head's wait budget
    exhausted).  This single function is the scheduler's entire batching
    decision; every simulator built on the kernel shares it verbatim,
    which is what makes a zero-magnitude fault run — and a single-tenant
    cluster run — *bit-identical* to the plain simulator: all of them
    plan every dispatch with the exact same float arithmetic.

    Returns:
        ``(dispatch_s, size)`` for the batch starting at ``head``.
    """
    earliest = max(arrivals[head], core0_free_s)
    full_index = head + policy.max_batch - 1
    fills_at = (
        arrivals[full_index] if full_index < arrivals.size else math.inf
    )
    deadline = arrivals[head] + policy.max_wait_s
    dispatch = max(earliest, min(deadline, fills_at))
    if math.isinf(dispatch):
        # Fixed-size tail: the batch can never fill and the head may
        # wait forever, so flush everything left as one final partial
        # batch once the last request has arrived.
        dispatch = max(core0_free_s, arrivals[-1])
    queued = int(np.searchsorted(arrivals, dispatch, side="right") - head)
    size = max(1, min(policy.max_batch, queued))
    return dispatch, size


class DispatchContext:
    """Mutable state of one serving pipeline inside the event loop.

    Plugins receive the context at every hook and may mutate the
    pipeline mid-run — push a core's free time forward (recalibration
    downtime), swap the service model and the stage→core map
    (fault-aware repartitioning), or resize the pipeline (elastic
    reallocation in the cluster runtime).

    Attributes:
        arrivals: the (validated) arrival trace being served.
        policy: the batching policy sealing dispatches.
        model: the current per-core service-time model (a
            :class:`~repro.core.traffic.PipelineServiceModel`); plugins
            may replace it.
        stage_to_core: physical core index behind each pipeline stage.
            Starts as the identity map; shrinks when a plugin drains
            cores out of the pipeline.
        core_free: per-*stage* time the core frees up.
        core_busy: per-*physical-core* accumulated busy time (length
            never changes — drained cores keep their history).
        head: index of the next request to dispatch.
        batches: every sealed batch so far, in dispatch order.
        dispatch_s: per-request batch-dispatch times (filled as batches
            seal).
        completion_s: per-request completion times.
        initial_num_cores: pipeline width at the start of the run.
    """

    __slots__ = (
        "arrivals",
        "policy",
        "model",
        "stage_to_core",
        "core_free",
        "core_busy",
        "head",
        "batches",
        "dispatch_s",
        "completion_s",
        "initial_num_cores",
    )

    def __init__(self, model, policy: BatchingPolicy, arrivals: np.ndarray):
        width = model.num_cores
        self.arrivals = arrivals
        self.policy = policy
        self.model = model
        self.stage_to_core = list(range(width))
        self.core_free = [0.0] * width
        self.core_busy = [0.0] * width
        self.head = 0
        self.batches: list[BatchRecord] = []
        self.dispatch_s = np.empty(arrivals.size)
        self.completion_s = np.empty(arrivals.size)
        self.initial_num_cores = width

    @property
    def num_requests(self) -> int:
        """Requests in the trace."""
        return int(self.arrivals.size)

    @property
    def done(self) -> bool:
        """Whether every request has been dispatched."""
        return self.head >= self.arrivals.size


def execute_dispatch(
    ctx: DispatchContext, dispatch: float, size: int
) -> BatchRecord:
    """Book one sealed batch onto the context's pipeline.

    The batch walks the stages in order; each stage is busy for its
    weight-programming time plus ``size * conv`` time and hands the
    batch to the next stage whole.  Busy time is charged to the
    *physical* core behind each stage, so per-core accounting survives
    repartitions.  This is the exact arithmetic of the pre-kernel
    simulators — the bit-identity the facades and golden fixtures pin.
    """
    model = ctx.model
    core_free = ctx.core_free
    core_busy = ctx.core_busy
    stage_to_core = ctx.stage_to_core
    batches = ctx.batches
    head = ctx.head
    start = dispatch
    for stage in range(model.num_cores):
        begun = max(start, core_free[stage])
        busy = model.core_busy_s(stage, size)
        start = begun + busy
        core_free[stage] = start
        core_busy[stage_to_core[stage]] += busy
    batch = BatchRecord(
        index=len(batches),
        first_request=head,
        size=size,
        dispatch_s=dispatch,
        completion_s=start,
    )
    batches.append(batch)
    stop = head + size
    ctx.dispatch_s[head:stop] = dispatch
    ctx.completion_s[head:stop] = start
    ctx.head = stop
    return batch


class KernelPlugin:
    """Hook points a serving scenario can attach to the event loop.

    Subclass and override what the scenario needs; every default is a
    no-op, so the plain kernel and a kernel with a vacuous plugin run
    the identical arithmetic.  Hooks run in plugin order at each point.
    """

    def on_run_start(self, ctx: DispatchContext) -> None:
        """Called once before the first dispatch is planned."""

    def on_dispatch_planned(
        self, ctx: DispatchContext, dispatch_s: float, size: int
    ) -> None:
        """Called after a dispatch is sealed, before it executes.

        The hook where degradation rides the clock: advance substrate
        state to ``dispatch_s``, pay downtime into ``ctx.core_free``,
        or swap ``ctx.model`` / ``ctx.stage_to_core`` to re-partition.
        The sealed ``(dispatch_s, size)`` itself is never revisited —
        matching the pre-kernel simulators, where recalibration delayed
        a batch's *completion*, not its dispatch decision.
        """

    def on_batch_complete(
        self, ctx: DispatchContext, batch: BatchRecord
    ) -> None:
        """Called after a batch is booked onto the pipeline."""

    def on_run_end(self, ctx: DispatchContext) -> None:
        """Called once after the last batch completes."""


@dataclass(frozen=True)
class KernelRun:
    """Everything the kernel measured over one serving run.

    The scenario facades wrap this in their report types
    (:class:`~repro.core.traffic.ServingReport` and subclasses).

    Attributes:
        arrival_s: the served arrival trace.
        dispatch_s: per-request batch-dispatch times.
        completion_s: per-request completion times.
        batches: the dispatched batches, in order.
        core_busy_s: per-physical-core total busy time.
        initial_num_cores: pipeline width at the start of the run.
    """

    arrival_s: np.ndarray
    dispatch_s: np.ndarray
    completion_s: np.ndarray
    batches: tuple[BatchRecord, ...]
    core_busy_s: tuple[float, ...]
    initial_num_cores: int


class EventLoopKernel:
    """The seeded discrete-event loop: queue → batcher → core pipeline.

    Args:
        model: the per-core service-time model
            (:class:`~repro.core.traffic.PipelineServiceModel`).
        policy: the batching policy.
        plugins: scenario hooks, run in order at each hook point.
    """

    def __init__(
        self,
        model,
        policy: BatchingPolicy,
        plugins: tuple[KernelPlugin, ...] = (),
    ) -> None:
        self.model = model
        self.policy = policy
        self.plugins = tuple(plugins)

    def run(self, arrival_s: np.ndarray) -> KernelRun:
        """Serve a trace of arrival times to completion.

        Raises:
            ValueError: on an empty or unsorted trace.
        """
        arrivals = validate_arrival_trace(arrival_s)
        ctx = DispatchContext(self.model, self.policy, arrivals)
        plugins = self.plugins
        num_requests = arrivals.size
        for plugin in plugins:
            plugin.on_run_start(ctx)
        if plugins:
            while ctx.head < num_requests:
                dispatch, size = plan_dispatch(
                    arrivals, ctx.head, ctx.policy, ctx.core_free[0]
                )
                for plugin in plugins:
                    plugin.on_dispatch_planned(ctx, dispatch, size)
                batch = execute_dispatch(ctx, dispatch, size)
                for plugin in plugins:
                    plugin.on_batch_complete(ctx, batch)
        else:
            # Hot path: the plain simulator and every zero-plugin run.
            # Identical arithmetic, no per-batch hook dispatch.
            while ctx.head < num_requests:
                dispatch, size = plan_dispatch(
                    arrivals, ctx.head, ctx.policy, ctx.core_free[0]
                )
                execute_dispatch(ctx, dispatch, size)
        for plugin in plugins:
            plugin.on_run_end(ctx)
        return KernelRun(
            arrival_s=arrivals,
            dispatch_s=ctx.dispatch_s,
            completion_s=ctx.completion_s,
            batches=tuple(ctx.batches),
            core_busy_s=tuple(ctx.core_busy),
            initial_num_cores=ctx.initial_num_cores,
        )


__all__ = [
    "BatchingPolicy",
    "BatchRecord",
    "DispatchContext",
    "EventLoopKernel",
    "KernelPlugin",
    "KernelRun",
    "execute_dispatch",
    "plan_dispatch",
    "validate_arrival_trace",
]
