"""The paper's analytical framework (PCNNA section V), faithfully encoded.

Ring counts (the Fig. 5 quantities):

    N_rings_unfiltered = Ninput * K * Nkernel          (eq. 4)
    N_rings_filtered   = K * Nkernel                   (eq. 5)

Execution time (the Fig. 6 quantities):

    Nlocs  = ((n + 2p - m) // s + 1)^2                 (eq. 6)
    Tconv  = Nlocs / f_clock                           (eq. 7, optical core)
    n_upd  = (nc * m * s) / N_DAC                      (eq. 8, DAC bound)
    Tfull  = Nlocs * n_upd / f_DAC                     (full system, DAC-bound)

Notes on fidelity:

* Equation (8) divides exactly (the paper reports "~116" for conv4); the
  cycle-level simulator in :mod:`repro.core.timing` instead ceils per-DAC
  work and accounts the first location's full-kernel fill.  Both are
  exposed.
* The paper declares the DAC the full-system bottleneck and does not
  serialize the ADC (digitizing K outputs per location at 2.8 GSa/s would
  otherwise dominate for large K).  ``full_system_time_s`` reproduces the
  paper's model by default; pass ``include_adc_bound=True`` to see the
  ADC-limited variant (an ablation in EXPERIMENTS.md).
* Kernel-weight loading happens once per layer and the paper excludes it
  from Tconv; it is reported separately as ``weight_load_time_s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PCNNAConfig
from repro.nn.shapes import ConvLayerSpec
from repro.photonics.microring import rings_area_m2

M2_TO_MM2 = 1e6
"""Square meters to square millimeters."""


# ---------------------------------------------------------------------------
# Ring counts and area (paper section V-A, Fig. 5).
# ---------------------------------------------------------------------------


def microrings_unfiltered(spec: ConvLayerSpec) -> int:
    """Rings without receptive-field filtering, eq. (4)."""
    return spec.n_input * spec.num_kernels * spec.n_kernel


def microrings_filtered(spec: ConvLayerSpec) -> int:
    """Rings with non-receptive-field values filtered, eq. (5)."""
    return spec.num_kernels * spec.n_kernel


def rings_per_kernel_bank(spec: ConvLayerSpec) -> int:
    """Rings in a single kernel's weight bank: ``Nkernel``.

    This is the number behind the paper's "conv4 ... 3456 microrings ...
    2.2 mm^2" example (see DESIGN.md on the eq. 5 vs. text discrepancy).
    """
    return spec.n_kernel


def ring_savings_factor(spec: ConvLayerSpec) -> float:
    """Unfiltered-to-filtered ring ratio; equals ``Ninput`` exactly.

    For AlexNet conv1 this is 150 528 — the paper's "more than 150k x"
    saving.
    """
    return microrings_unfiltered(spec) / microrings_filtered(spec)


def bank_area_mm2(num_rings: int, config: PCNNAConfig | None = None) -> float:
    """Layout area of ``num_rings`` microrings (mm^2).

    With the default 25 um x 25 um footprint, 3456 rings give 2.16 mm^2 —
    the paper's 2.2 mm^2 example.
    """
    cfg = config if config is not None else PCNNAConfig()
    return rings_area_m2(num_rings, cfg.ring_design) * M2_TO_MM2


# ---------------------------------------------------------------------------
# Execution time (paper section V-B, Fig. 6).
# ---------------------------------------------------------------------------


def optical_core_time_s(spec: ConvLayerSpec, config: PCNNAConfig | None = None) -> float:
    """PCNNA(O): optical-core layer time, eq. (7): ``Nlocs / f_clock``.

    Independent of the kernel count K — the paper's key scaling argument.
    """
    cfg = config if config is not None else PCNNAConfig()
    passes = _kernel_passes(spec, cfg)
    return passes * spec.n_locs / cfg.fast_clock_hz


def dac_updates_per_location(
    spec: ConvLayerSpec, config: PCNNAConfig | None = None
) -> float:
    """Values each DAC converts per kernel location, eq. (8).

    ``(nc * m * s) / N_DAC`` — for AlexNet conv4 with 10 DACs this is
    ``384 * 3 * 1 / 10 = 115.2``, the paper's "~116".
    """
    cfg = config if config is not None else PCNNAConfig()
    return spec.stride_update_values / cfg.num_input_dacs


def per_location_dac_time_s(
    spec: ConvLayerSpec, config: PCNNAConfig | None = None
) -> float:
    """Time the input-DAC array needs per kernel location (s)."""
    cfg = config if config is not None else PCNNAConfig()
    return dac_updates_per_location(spec, cfg) / cfg.input_dac.sample_rate_hz


def per_location_adc_time_s(
    spec: ConvLayerSpec, config: PCNNAConfig | None = None
) -> float:
    """Time the ADC array needs to digitize K outputs per location (s).

    Not part of the paper's model (see module docstring); used by the
    ADC-bound ablation.
    """
    cfg = config if config is not None else PCNNAConfig()
    kernels_per_pass = _kernels_per_pass(spec, cfg)
    return kernels_per_pass / (cfg.num_adcs * cfg.adc.sample_rate_hz)


def full_system_time_s(
    spec: ConvLayerSpec,
    config: PCNNAConfig | None = None,
    include_adc_bound: bool = False,
) -> float:
    """PCNNA(O+E): DAC-bound full-system layer time.

    Per location the system pays the slowest of the optical MAC cycle and
    the DAC refill (and, optionally, the ADC drain); the paper's model is
    the DAC term alone, which dominates for every AlexNet layer.
    """
    cfg = config if config is not None else PCNNAConfig()
    per_location = max(per_location_dac_time_s(spec, cfg), cfg.fast_clock_period_s)
    if include_adc_bound:
        per_location = max(per_location, per_location_adc_time_s(spec, cfg))
    passes = _kernel_passes(spec, cfg)
    return passes * spec.n_locs * per_location


def weight_load_time_s(
    spec: ConvLayerSpec, config: PCNNAConfig | None = None
) -> float:
    """Once-per-layer kernel-weight conversion time (s).

    All ``K * Nkernel`` weights pass through the weight-DAC array when a
    new layer is loaded; the paper excludes this from Tconv because
    weights are reused across all locations (and across inputs).
    """
    cfg = config if config is not None else PCNNAConfig()
    total_weights = microrings_filtered(spec)
    return total_weights / (cfg.num_weight_dacs * cfg.weight_dac.sample_rate_hz)


def _kernels_per_pass(spec: ConvLayerSpec, config: PCNNAConfig) -> int:
    """Kernels processed simultaneously, capped by instantiated banks."""
    if config.max_parallel_kernels is None:
        return spec.num_kernels
    return min(spec.num_kernels, config.max_parallel_kernels)


def _kernel_passes(spec: ConvLayerSpec, config: PCNNAConfig) -> int:
    """Sequential passes over the input needed to cover all K kernels."""
    per_pass = _kernels_per_pass(spec, config)
    return -(-spec.num_kernels // per_pass)


def speedup(baseline_time_s: float, accelerated_time_s: float) -> float:
    """Baseline-over-accelerated time ratio.

    Raises:
        ValueError: if either time is not strictly positive.
    """
    if baseline_time_s <= 0 or accelerated_time_s <= 0:
        raise ValueError(
            "speedup needs positive times, got "
            f"{baseline_time_s!r} / {accelerated_time_s!r}"
        )
    return baseline_time_s / accelerated_time_s


# ---------------------------------------------------------------------------
# Per-layer roll-up.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LayerAnalysis:
    """Every analytical quantity for one conv layer on one config.

    Attributes mirror the paper's evaluation section; times in seconds,
    areas in mm^2.
    """

    spec: ConvLayerSpec
    rings_unfiltered: int
    rings_filtered: int
    rings_per_bank: int
    ring_savings: float
    bank_area_mm2: float
    layer_rings_area_mm2: float
    optical_time_s: float
    full_system_time_s: float
    weight_load_time_s: float
    dac_updates_per_location: float
    macs: int

    @property
    def name(self) -> str:
        """Layer name."""
        return self.spec.name


def analyze_layer(
    spec: ConvLayerSpec, config: PCNNAConfig | None = None
) -> LayerAnalysis:
    """Compute the full analytical report for one conv layer."""
    cfg = config if config is not None else PCNNAConfig()
    filtered = microrings_filtered(spec)
    per_bank = rings_per_kernel_bank(spec)
    return LayerAnalysis(
        spec=spec,
        rings_unfiltered=microrings_unfiltered(spec),
        rings_filtered=filtered,
        rings_per_bank=per_bank,
        ring_savings=ring_savings_factor(spec),
        bank_area_mm2=bank_area_mm2(per_bank, cfg),
        layer_rings_area_mm2=bank_area_mm2(filtered, cfg),
        optical_time_s=optical_core_time_s(spec, cfg),
        full_system_time_s=full_system_time_s(spec, cfg),
        weight_load_time_s=weight_load_time_s(spec, cfg),
        dac_updates_per_location=dac_updates_per_location(spec, cfg),
        macs=spec.macs,
    )


def analyze_network(
    specs: list[ConvLayerSpec], config: PCNNAConfig | None = None
) -> list[LayerAnalysis]:
    """Analyze every conv layer of a network, in order."""
    cfg = config if config is not None else PCNNAConfig()
    return [analyze_layer(spec, cfg) for spec in specs]


def network_totals(analyses: list[LayerAnalysis]) -> dict[str, float]:
    """Aggregate totals across layers (times summed, rings summed).

    Returns:
        Mapping with ``optical_time_s``, ``full_system_time_s``,
        ``weight_load_time_s``, ``rings_filtered``, ``rings_unfiltered``
        and ``macs`` keys.
    """
    return {
        "optical_time_s": sum(a.optical_time_s for a in analyses),
        "full_system_time_s": sum(a.full_system_time_s for a in analyses),
        "weight_load_time_s": sum(a.weight_load_time_s for a in analyses),
        "rings_filtered": float(sum(a.rings_filtered for a in analyses)),
        "rings_unfiltered": float(sum(a.rings_unfiltered for a in analyses)),
        "macs": float(sum(a.macs for a in analyses)),
    }
