"""Inter-layer pipelining over multiple PCNNA cores (extension).

The paper's introduction names the blocker for scaling CNN inference:
"data dependencies across layers challenge any attempt of inter-layer
parallelization".  PCNNA sidesteps it by reusing one physical layer
sequentially.  The alternative the paper alludes to — several PCNNA
cores, each owning a contiguous slice of layers, streaming a batch
through like a pipeline — is modeled here:

* each core's service time is the sum of its layers' DAC-bound times;
* the pipeline's steady-state throughput is set by the slowest core;
* weight loads happen once per core (the weights are *stationary* in a
  pipelined deployment, eliminating the batching crossover entirely);
* :func:`balanced_partition` finds the layer split minimizing the
  bottleneck core via dynamic programming (the classic linear
  partition problem).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analytical import full_system_time_s
from repro.core.config import PCNNAConfig
from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class PipelinePartition:
    """An assignment of consecutive layers to cores.

    Attributes:
        slices: per-core (start, end) index ranges into the layer list
            (end exclusive), in pipeline order.
        core_times_s: per-core service time (sum of its layers).
    """

    slices: tuple[tuple[int, int], ...]
    core_times_s: tuple[float, ...]

    @property
    def num_cores(self) -> int:
        """Cores in the pipeline."""
        return len(self.slices)

    @property
    def bottleneck_s(self) -> float:
        """The slowest core's service time — the pipeline initiation
        interval (one image completes per bottleneck period)."""
        return max(self.core_times_s)

    @property
    def images_per_s(self) -> float:
        """Steady-state pipeline throughput."""
        return 1.0 / self.bottleneck_s

    @property
    def single_image_latency_s(self) -> float:
        """Latency of one image traversing every core."""
        return sum(self.core_times_s)

    @property
    def balance(self) -> float:
        """Mean core time / bottleneck time; 1.0 is perfectly balanced."""
        mean = sum(self.core_times_s) / self.num_cores
        return mean / self.bottleneck_s


def validate_num_cores(
    num_cores: int, num_layers: int, clamp: bool = False
) -> int:
    """Validate a pipeline core count against the layers it must split.

    Every entry point that partitions layers over cores funnels through
    this check, so an invalid request fails here with a clear message
    instead of deep inside the DP partitioner (a float ``num_cores``
    used to surface as a ``TypeError`` from ``range``).

    Args:
        num_cores: requested pipeline width.
        num_layers: layers available to split (must be >= 1).
        clamp: return ``min(num_cores, num_layers)`` instead of raising
            when more cores than layers are requested — convenient for
            sweeps that scan wide core counts across small networks.

    Returns:
        The validated (possibly clamped) core count.

    Raises:
        ValueError: if ``num_cores`` is not an integer, is < 1, or
            exceeds ``num_layers`` with ``clamp`` off.
    """
    if isinstance(num_cores, bool) or not isinstance(
        num_cores, (int, np.integer)
    ):
        raise ValueError(
            f"core count must be an integer, got {num_cores!r}"
        )
    if num_cores < 1:
        raise ValueError(f"core count must be >= 1, got {num_cores!r}")
    if num_cores > num_layers:
        if clamp:
            return num_layers
        raise ValueError(
            f"core count must be in [1, {num_layers}] (one core needs at "
            f"least one layer), got {num_cores!r}"
        )
    return int(num_cores)


def layer_times(
    specs: list[ConvLayerSpec], config: PCNNAConfig | None = None
) -> list[float]:
    """DAC-bound times for each layer (the partitioning weights)."""
    cfg = config if config is not None else PCNNAConfig()
    return [full_system_time_s(spec, cfg) for spec in specs]


def contiguous_partition(
    specs: list[ConvLayerSpec],
    boundaries: list[int],
    config: PCNNAConfig | None = None,
) -> PipelinePartition:
    """Build a partition from explicit split points.

    Args:
        specs: all layers, in network order.
        boundaries: ascending interior split indices; ``[2, 4]`` over 5
            layers yields cores [0:2], [2:4], [4:5].
        config: hardware configuration.

    Raises:
        ValueError: on unsorted, duplicate, or out-of-range boundaries.
    """
    if not specs:
        raise ValueError("need at least one layer")
    previous = 0
    for boundary in boundaries:
        if not previous < boundary < len(specs):
            raise ValueError(
                f"boundary {boundary} invalid for {len(specs)} layers after "
                f"{previous}"
            )
        previous = boundary
    times = layer_times(specs, config)
    edges = [0] + list(boundaries) + [len(specs)]
    slices = tuple(
        (start, end) for start, end in zip(edges[:-1], edges[1:])
    )
    core_times = tuple(sum(times[start:end]) for start, end in slices)
    return PipelinePartition(slices=slices, core_times_s=core_times)


def balanced_partition(
    specs: list[ConvLayerSpec],
    num_cores: int,
    config: PCNNAConfig | None = None,
) -> PipelinePartition:
    """Optimal contiguous split of layers over ``num_cores`` cores.

    Minimizes the bottleneck core time (linear-partition DP,
    O(cores * layers^2) — layers are few).

    Raises:
        ValueError: if ``specs`` is empty or ``num_cores`` is not an
            integer in [1, len(specs)].
    """
    if not specs:
        raise ValueError("need at least one layer to partition over cores")
    num_cores = validate_num_cores(num_cores, len(specs))
    times = layer_times(specs, config)
    num_layers = len(times)
    prefix = [0.0]
    for time_s in times:
        prefix.append(prefix[-1] + time_s)

    def range_sum(start: int, end: int) -> float:
        return prefix[end] - prefix[start]

    # dp[c][i]: minimal bottleneck covering the first i layers with c cores.
    infinity = float("inf")
    dp = [[infinity] * (num_layers + 1) for _ in range(num_cores + 1)]
    split = [[0] * (num_layers + 1) for _ in range(num_cores + 1)]
    dp[0][0] = 0.0
    for cores in range(1, num_cores + 1):
        for end in range(1, num_layers + 1):
            for start in range(cores - 1, end):
                candidate = max(dp[cores - 1][start], range_sum(start, end))
                if candidate < dp[cores][end]:
                    dp[cores][end] = candidate
                    split[cores][end] = start

    # Recover boundaries.
    boundaries: list[int] = []
    end = num_layers
    for cores in range(num_cores, 1, -1):
        start = split[cores][end]
        boundaries.append(start)
        end = start
    boundaries.reverse()
    return contiguous_partition(specs, boundaries, config)


def pipeline_speedup(
    specs: list[ConvLayerSpec],
    num_cores: int,
    config: PCNNAConfig | None = None,
) -> float:
    """Throughput gain of a ``num_cores`` pipeline over one core.

    One core processes images back-to-back at the network's total layer
    time; the pipeline initiates one image per bottleneck interval.
    """
    partition = balanced_partition(specs, num_cores, config)
    single_core = sum(layer_times(specs, config))
    return single_core / partition.bottleneck_s
