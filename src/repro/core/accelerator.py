"""The PCNNA accelerator facade: functional photonic convolution.

:class:`PhotonicConvolution` executes a *real* convolution through the
photonic substrate, exactly as the architecture does (paper section IV):

1. the kernel weights are scaled into [-1, 1] and programmed onto the K
   weight banks once per layer;
2. every kernel location's receptive field is scaled into [0, 1],
   DAC-quantized, encoded onto WDM wavelengths by the MZMs, broadcast to
   all K banks, and balanced-detected — producing all K outputs in one
   MAC wave;
3. outputs are ADC-quantized and rescaled back to the original ranges.

Two device execution engines implement step 2:

* ``mode="vectorized"`` (the default) — the whole im2col matrix, i.e.
  every kernel location of every image in the (optional) batch, is
  pushed through the substrate as one ``(waves, channels)`` stack via
  :meth:`~repro.photonics.broadcast_weight.BroadcastAndWeightLayer.compute_batch`
  — a handful of array operations per weight bank;
* ``mode="reference"`` — the original wave-by-wave Python loop, retained
  as the transparently-correct reference.  In ideal mode the two are
  bit-equal (asserted by ``tests/test_batched_engine.py``).

``convolve`` accepts a single ``(C, H, W)`` feature map or a batched
``(B, C, H, W)`` stack; batching programs the weight banks once and
streams every image through them, mirroring the weight-stationary
amortization of :mod:`repro.core.batching`.

Signed inputs are handled with an affine encoding: the optical core
computes ``dot(w, x')`` for the shifted/normalized ``x'`` and the digital
back-end removes the shift using the per-kernel weight sums (a one-time
calibration constant) — no information is lost and ideal mode is exact
to float precision.

:class:`PCNNA` bundles the functional engine with the analytical and
cycle-level models into the single entry point users interact with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analytical import LayerAnalysis, analyze_layer
from repro.core.config import PCNNAConfig
from repro.core.timing import LayerTimingResult, simulate_layer
from repro.nn.im2col import im2col_batch_stacked
from repro.nn.network import Network
from repro.nn.shapes import ConvLayerSpec, conv_output_side
from repro.photonics.broadcast_weight import BroadcastAndWeightLayer
from repro.photonics.wdm import WdmGrid


@dataclass(frozen=True)
class ConvScaling:
    """Affine scaling constants for one photonic conv layer.

    The input range is derived *per image* so that an image's encoding —
    and therefore its DAC/ADC quantization — never depends on which
    other images share its minibatch; the weight scaling is per layer
    (the banks are programmed once for the whole batch).

    Attributes:
        input_offset: per-image offsets ``(B,)`` subtracted from inputs
            before normalization.
        input_scale: per-image spans ``(B,)`` dividing shifted inputs
            into [0, 1].
        weight_scale: divides weights into [-1, 1].
        weight_sums: per-kernel sums of the *scaled* weights, used to
            remove the input offset from the detected outputs.
    """

    input_offset: np.ndarray
    input_scale: np.ndarray
    weight_scale: float
    weight_sums: np.ndarray

    def decode(self, raw_outputs: np.ndarray) -> np.ndarray:
        """Map balanced-detector outputs back to true convolution values.

        Args:
            raw_outputs: array of shape ``(B, K, num_locations)``.
        """
        return (
            raw_outputs * self.input_scale[:, None, None]
            + self.input_offset[:, None, None] * self.weight_sums[None, :, None]
        ) * self.weight_scale


def _compute_scaling(
    stack: np.ndarray, kernels: np.ndarray, include_zero: bool = False
) -> tuple[ConvScaling, np.ndarray]:
    """Derive the per-image affine scaling and the scaled weight matrix.

    Args:
        stack: minibatch of shape ``(B, C, H, W)``.
        include_zero: extend the input ranges to contain 0 — required
            when zero padding injects literal zeros into receptive
            fields.
    """
    x_min = stack.min(axis=(1, 2, 3))
    x_max = stack.max(axis=(1, 2, 3))
    if include_zero:
        x_min = np.minimum(x_min, 0.0)
        x_max = np.maximum(x_max, 0.0)
    span = x_max - x_min
    # Constant image: any positive scale works; pick 1 to avoid 0/0.
    span = np.where(span <= 0.0, 1.0, span)
    w_max = float(np.abs(kernels).max())
    if w_max <= 0.0:
        w_max = 1.0
    num_kernels = kernels.shape[0]
    weight_matrix = kernels.reshape(num_kernels, -1) / w_max
    scaling = ConvScaling(
        input_offset=x_min,
        input_scale=span,
        weight_scale=w_max,
        weight_sums=weight_matrix.sum(axis=1),
    )
    return scaling, weight_matrix


class PhotonicConvolution:
    """Executes convolutions on the broadcast-and-weight optical core.

    Args:
        config: hardware configuration (noise, converters, clocks).
        method: ``"device"`` runs every MAC wave through the full device
            simulation; ``"matrix"`` uses the mathematically-equivalent
            closed form (valid only in ideal mode, proven equivalent by
            the test suite); ``"auto"`` picks ``"matrix"`` when the
            configuration is ideal and quantization is disabled.
        quantize: apply DAC/ADC quantization to inputs/outputs.
        mode: device-simulation execution engine — ``"vectorized"`` (the
            default) pushes the whole im2col wave stack through the
            substrate in batched array operations; ``"reference"`` runs
            the retained wave-by-wave loop.  Ignored by the ``"matrix"``
            closed form.
    """

    def __init__(
        self,
        config: PCNNAConfig | None = None,
        method: str = "auto",
        quantize: bool = False,
        mode: str = "vectorized",
    ) -> None:
        if method not in ("auto", "device", "matrix"):
            raise ValueError(
                f"method must be 'auto', 'device' or 'matrix', got {method!r}"
            )
        if mode not in ("vectorized", "reference"):
            raise ValueError(
                f"mode must be 'vectorized' or 'reference', got {mode!r}"
            )
        self.config = config if config is not None else PCNNAConfig()
        self.method = method
        self.quantize = quantize
        self.mode = mode

    def _resolved_method(self) -> str:
        """The concrete execution method for the current configuration."""
        if self.method != "auto":
            return self.method
        if self.config.noise.enabled or self.quantize:
            return "device"
        return "matrix"

    def convolve(
        self,
        feature_map: np.ndarray,
        kernels: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> np.ndarray:
        """Convolve ``feature_map`` with ``kernels`` on the optical core.

        Args:
            feature_map: input of shape ``(C, H, W)``, or a minibatch of
                shape ``(B, C, H, W)`` — batching programs the weight
                banks once and streams every image through them.
            kernels: weights of shape ``(K, C, m, m)``.
            stride: spatial stride.
            padding: zero padding.

        Returns:
            Output of shape ``(K, out_h, out_w)`` for a single input, or
            ``(B, K, out_h, out_w)`` for a batch — the photonic estimate
            of the convolution (exact in ideal mode).

        Raises:
            ValueError: on shape mismatches.
        """
        feature_map = np.asarray(feature_map, dtype=float)
        kernels = np.asarray(kernels, dtype=float)
        batched = feature_map.ndim == 4
        if feature_map.ndim not in (3, 4):
            raise ValueError(
                "feature map must be (C, H, W) or batched (B, C, H, W), "
                f"got {feature_map.shape}"
            )
        stack = feature_map if batched else feature_map[None]
        if kernels.ndim != 4 or kernels.shape[1] != stack.shape[1]:
            raise ValueError(
                f"kernels {kernels.shape} incompatible with input "
                f"{feature_map.shape}"
            )

        num_kernels = kernels.shape[0]
        kernel_size = kernels.shape[2]
        batch_size = stack.shape[0]
        height = stack.shape[2]
        width = stack.shape[3]

        out_h = conv_output_side(height, kernel_size, padding, stride)
        out_w = conv_output_side(width, kernel_size, padding, stride)
        num_locations = out_h * out_w

        # Zero padding injects literal zeros into receptive fields, so the
        # affine input range must contain 0 for the encoding to be exact.
        # The weights are programmed once for the whole batch, but the
        # input encoding range is *per image*: an image's normalization,
        # DAC/ADC quantization, and TIA gain must not depend on which
        # other images share its minibatch.
        columns = im2col_batch_stacked(stack, kernel_size, stride, padding)
        scaling, weight_matrix = _compute_scaling(
            stack, kernels, include_zero=padding > 0
        )
        # In-place on the freshly-gathered columns: the encode chain is
        # memory-bandwidth-bound at batch scale, so avoid temporaries.
        normalized = np.subtract(
            columns, scaling.input_offset[:, None, None], out=columns
        )
        np.divide(normalized, scaling.input_scale[:, None, None], out=normalized)
        np.clip(normalized, 0.0, 1.0, out=normalized)

        if self.quantize:
            normalized = self.config.input_dac.quantize(normalized)

        if self._resolved_method() == "matrix":
            # One 2-D GEMM per image — the same (K, F) @ (F, L) call a
            # single-image run issues, so batched execution is
            # bit-identical to running the images one by one.  A
            # broadcast batched matmul is not: NumPy may round the
            # stacked product differently depending on the batch size.
            raw = np.empty(
                (batch_size, num_kernels, num_locations)
            )
            for index in range(batch_size):
                np.matmul(weight_matrix, normalized[index], out=raw[index])
        else:
            # Wave-major stack: wave b * L + l is image b's location l,
            # matching the image-major column order of im2col_batch.
            waves = np.ascontiguousarray(
                normalized.transpose(0, 2, 1)
            ).reshape(batch_size * num_locations, -1)
            if self.mode == "reference":
                currents = self._device_matvec(waves, weight_matrix)
            else:
                currents = self._device_matvec_vectorized(waves, weight_matrix)
            raw = currents.reshape(
                batch_size, num_locations, num_kernels
            ).transpose(0, 2, 1)

        if self.quantize:
            # The TIA's programmable gain maps the observed output range
            # onto the ADC full scale (automatic gain control), so the
            # quantizer's resolution is spent on the actual signal.  One
            # gain per image: a batch-wide gain would couple an image's
            # quantization to its batch neighbours.
            gain = np.maximum(np.abs(raw).max(axis=(1, 2)), 1e-30)
            gain = gain[:, None, None]
            raw = self.config.adc.quantize(raw / gain) * gain

        outputs = scaling.decode(raw)
        result = outputs.reshape(batch_size, num_kernels, out_h, out_w)
        return result if batched else result[0]

    def _build_layer(self, weight_matrix: np.ndarray) -> BroadcastAndWeightLayer:
        """Instantiate and program the optical core for one conv layer.

        The noise config is forked per call (fresh generator, seeded
        from the configured seed plus the layer geometry), so two
        identical noisy ``convolve`` calls draw identical noise instead
        of consuming successive slices of a shared stream, while
        different conv layers still get distinct streams.
        """
        num_kernels, field_size = weight_matrix.shape
        layer = BroadcastAndWeightLayer(
            num_inputs=field_size,
            num_outputs=num_kernels,
            grid=WdmGrid(num_channels=field_size),
            ring_design=self.config.ring_design,
            noise=self.config.noise.fork(key=(num_kernels << 32) | field_size),
        )
        layer.set_weight_matrix(weight_matrix)
        return layer

    def _device_matvec(
        self, waves: np.ndarray, weight_matrix: np.ndarray
    ) -> np.ndarray:
        """Reference engine: one wave at a time through the device stack.

        Args:
            waves: normalized receptive fields, shape ``(waves, field)``.

        Returns:
            Raw detector outputs, shape ``(waves, K)``.
        """
        layer = self._build_layer(weight_matrix)
        raw = np.empty((waves.shape[0], weight_matrix.shape[0]), dtype=float)
        for index in range(waves.shape[0]):
            raw[index] = layer.compute(waves[index])
        return raw

    def _device_matvec_vectorized(
        self, waves: np.ndarray, weight_matrix: np.ndarray
    ) -> np.ndarray:
        """Vectorized engine: the whole wave stack in batched array ops.

        Same contract as :meth:`_device_matvec`; bit-identical to it in
        ideal mode.
        """
        layer = self._build_layer(weight_matrix)
        return layer.compute_batch(waves)


@dataclass(frozen=True)
class LayerReport:
    """Combined analytical + simulated report for one layer.

    Attributes:
        analysis: closed-form quantities (rings, times, area).
        timing: cycle-level simulation result.
    """

    analysis: LayerAnalysis
    timing: LayerTimingResult

    @property
    def name(self) -> str:
        """Layer name."""
        return self.analysis.name


class PCNNA:
    """The PCNNA accelerator: one object tying every model together.

    Args:
        config: hardware configuration; defaults to the paper's.

    Example:
        >>> from repro import PCNNA
        >>> from repro.workloads import alexnet_layer
        >>> accelerator = PCNNA()
        >>> report = accelerator.report_layer(alexnet_layer("conv4"))
        >>> report.analysis.rings_per_bank
        3456
    """

    def __init__(self, config: PCNNAConfig | None = None) -> None:
        self.config = config if config is not None else PCNNAConfig()
        self.engine = PhotonicConvolution(self.config)

    def analyze_layer(self, spec: ConvLayerSpec) -> LayerAnalysis:
        """Closed-form analysis of one conv layer (paper section V)."""
        return analyze_layer(spec, self.config)

    # repro: allow[API002] delegate to the deterministic cycle-level
    # model; the engine's own randomness (noise) is seeded NoiseConfig
    def simulate_layer(
        self, spec: ConvLayerSpec, include_adc: bool = True
    ) -> LayerTimingResult:
        """Cycle-level timing simulation of one conv layer."""
        return simulate_layer(spec, self.config, include_adc)

    def report_layer(self, spec: ConvLayerSpec) -> LayerReport:
        """Both analyses for one layer."""
        return LayerReport(
            analysis=self.analyze_layer(spec),
            timing=self.simulate_layer(spec),
        )

    def convolve(
        self,
        feature_map: np.ndarray,
        kernels: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> np.ndarray:
        """Functional photonic convolution (see :class:`PhotonicConvolution`).

        Accepts a single ``(C, H, W)`` feature map or a batched
        ``(B, C, H, W)`` stack.
        """
        return self.engine.convolve(feature_map, kernels, stride, padding)

    def run_network(self, network: Network, inputs: np.ndarray) -> np.ndarray:
        """Run a full CNN with every conv layer executed photonically.

        Non-conv layers (pooling, activation, normalization, dense) run on
        the electronic side, mirroring the paper's system partitioning.

        Args:
            network: the CNN to execute.
            inputs: one input matching ``network.input_shape``, or a
                minibatch with a leading batch axis — conv layers then run
                through the batched photonic engine (weights programmed
                once per layer for the whole batch) and electronic layers
                push the whole minibatch through single array operations
                (``Layer.forward_batch``).  In ideal mode the batched
                result is bit-identical to running the images one by one.

        Returns:
            The network output, with a leading batch axis iff the input
            had one.

        Raises:
            ValueError: if the input shape does not match the network.
        """
        from repro.nn.layers import Conv2D

        inputs = np.asarray(inputs, dtype=float)
        batched = inputs.ndim == len(network.input_shape) + 1
        if batched:
            if inputs.shape[1:] != network.input_shape:
                raise ValueError(
                    f"expected batched input shape (B, *{network.input_shape}),"
                    f" got {inputs.shape}"
                )
        elif inputs.shape != network.input_shape:
            raise ValueError(
                f"expected input shape {network.input_shape}, got {inputs.shape}"
            )
        current = inputs
        for layer in network.layers:
            if isinstance(layer, Conv2D):
                current = self.convolve(
                    current, layer.weights, layer.stride, layer.padding
                )
                if layer.bias is not None:
                    bias = (
                        layer.bias[None, :, None, None]
                        if batched
                        else layer.bias[:, None, None]
                    )
                    current = current + bias
            elif batched:
                current = layer.forward_batch(current)
            else:
                current = layer.forward(current)
        return current
