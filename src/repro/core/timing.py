"""Cycle-level timing simulation of the full PCNNA pipeline.

Where :mod:`repro.core.analytical` encodes the paper's closed-form model,
this module *simulates* the Fig. 4 pipeline location by location:

    DRAM -> input buffer -> SRAM cache -> DAC array -> MZM -> MRR banks
         -> balanced PDs -> ADC array -> output buffer -> DRAM

Per location the stages are:

* **fetch** — newly-required receptive-field values stream from DRAM
  (exact counts from the :class:`~repro.core.scheduler.LayerSchedule`,
  including row wrap-around refills the analytical model ignores);
* **convert** — the input-DAC array converts the new values,
  ``ceil(new / num_dacs)`` sequential conversions on the busiest DAC;
* **compute** — one optical MAC wave: a single fast-clock cycle;
* **digitize** — the ADC array digitizes the K kernel outputs.

Stages are double-buffered (the paper's buffers exist precisely to
decouple them), so the steady-state per-location time is the *maximum*
stage time and the layer time is ``sum(max per location) + pipeline
fill``.  A non-pipelined mode (sum of all stages) is also reported.

The simulator exists to validate the analytical model: tests assert the
two agree within the fill/rounding slack, and the benchmarks report both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.analytical import full_system_time_s, optical_core_time_s
from repro.core.config import PCNNAConfig
from repro.core.scheduler import LayerSchedule
from repro.electronics.adc import AdcArray
from repro.electronics.dac import DacArray
from repro.electronics.dram import Dram
from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class StageBreakdown:
    """Accumulated time per pipeline stage over a layer (seconds).

    Attributes:
        fetch_s: DRAM streaming time.
        convert_s: input-DAC conversion time.
        compute_s: optical MAC time.
        digitize_s: ADC time.
    """

    fetch_s: float
    convert_s: float
    compute_s: float
    digitize_s: float

    @property
    def serial_total_s(self) -> float:
        """Total with no stage overlap (non-pipelined execution)."""
        return self.fetch_s + self.convert_s + self.compute_s + self.digitize_s


@dataclass(frozen=True)
class LayerTimingResult:
    """Cycle-level simulation result for one layer.

    Attributes:
        spec: the simulated layer.
        pipelined_time_s: steady-state double-buffered layer time.
        serial_time_s: non-pipelined layer time (all stages serialized).
        weight_load_time_s: once-per-layer weight DAC + DRAM time.
        stages: per-stage accumulated times.
        bottleneck: name of the stage with the largest accumulated time.
        dac_bound_locations: locations where the DAC was the slowest stage.
        adc_bound_locations: locations where the ADC was the slowest stage.
        dram_bytes: total DRAM traffic (bytes).
        analytical_optical_s: eq. (7) prediction for cross-checking.
        analytical_full_s: paper full-system (DAC-bound) prediction.
    """

    spec: ConvLayerSpec
    pipelined_time_s: float
    serial_time_s: float
    weight_load_time_s: float
    stages: StageBreakdown
    bottleneck: str
    dac_bound_locations: int
    adc_bound_locations: int
    dram_bytes: int
    analytical_optical_s: float
    analytical_full_s: float

    @property
    def name(self) -> str:
        """Layer name."""
        return self.spec.name

    @property
    def analytical_agreement(self) -> float:
        """Ratio of simulated pipelined time to the paper's prediction."""
        return self.pipelined_time_s / self.analytical_full_s


# repro: allow[API002] deterministic cycle-level timing model: pure
# function of the layer spec and config, nothing stochastic to seed
def simulate_layer(
    spec: ConvLayerSpec,
    config: PCNNAConfig | None = None,
    include_adc: bool = True,
) -> LayerTimingResult:
    """Simulate one conv layer through the PCNNA pipeline.

    Args:
        spec: layer geometry.
        config: hardware configuration.
        include_adc: model ADC serialization of the K per-location
            outputs.  The paper's analytical model omits it (see
            :mod:`repro.core.analytical`); disable to mirror the paper.

    Returns:
        The :class:`LayerTimingResult` for the layer.
    """
    cfg = config if config is not None else PCNNAConfig()
    schedule = LayerSchedule(spec)
    input_dacs = DacArray(cfg.num_input_dacs, cfg.input_dac)
    weight_dacs = DacArray(cfg.num_weight_dacs, cfg.weight_dac)
    adcs = AdcArray(cfg.num_adcs, cfg.adc)
    dram = Dram(cfg.dram)

    if cfg.max_parallel_kernels is None:
        kernels_per_pass = spec.num_kernels
    else:
        kernels_per_pass = min(spec.num_kernels, cfg.max_parallel_kernels)
    passes = math.ceil(spec.num_kernels / kernels_per_pass)

    fast_period = cfg.fast_clock_period_s
    value_bytes = cfg.value_bytes

    fetch_total = 0.0
    convert_total = 0.0
    compute_total = 0.0
    digitize_total = 0.0
    pipelined_total = 0.0
    dac_bound = 0
    adc_bound = 0
    max_stage_seen = 0.0

    adc_time = adcs.schedule(kernels_per_pass).time_s if include_adc else 0.0

    # DRAM fetch policy: if the SRAM cache holds the live m-row working
    # set, each input value streams from DRAM only on its first window
    # membership (row reuse); otherwise every window entry re-fetches.
    sram_fits = schedule.working_set_values() <= cfg.sram.capacity_words
    first_touch = schedule.first_touch_counts()

    for step in schedule.steps():
        fetched_values = (
            int(first_touch[step.index]) if sram_fits else step.new_values
        )
        # Bursts ride an open row, so only bandwidth is paid per location.
        fetch_time = dram.stream_read(fetched_values * value_bytes)
        convert_time = input_dacs.schedule(step.new_values).time_s
        compute_time = fast_period

        stage_times = {
            "fetch": fetch_time,
            "convert": convert_time,
            "compute": compute_time,
            "digitize": adc_time,
        }
        fetch_total += fetch_time
        convert_total += convert_time
        compute_total += compute_time
        digitize_total += adc_time

        slowest = max(stage_times.values())
        pipelined_total += slowest
        max_stage_seen = max(max_stage_seen, slowest)
        if slowest == convert_time and convert_time >= adc_time:
            dac_bound += 1
        elif slowest == adc_time:
            adc_bound += 1
        dram.stream_write(kernels_per_pass * value_bytes)

    # Sequential kernel passes repeat the whole location walk.
    fetch_total *= passes
    convert_total *= passes
    compute_total *= passes
    digitize_total *= passes
    pipelined_total *= passes

    # Pipeline fill: the first location's fetch/convert cannot overlap
    # anything, so add one full serial traversal of the non-dominant
    # stages for the first location (bounded by 3 stage maxima).
    pipeline_fill = 3 * max_stage_seen
    pipelined_total += pipeline_fill

    stages = StageBreakdown(
        fetch_s=fetch_total,
        convert_s=convert_total,
        compute_s=compute_total,
        digitize_s=digitize_total,
    )
    stage_map = {
        "fetch": fetch_total,
        "convert": convert_total,
        "compute": compute_total,
        "digitize": digitize_total,
    }
    bottleneck = max(stage_map, key=stage_map.__getitem__)

    # Weight load: DRAM read of all weights plus the weight-DAC pass.
    weight_bytes = spec.total_weights * value_bytes
    weight_load = dram.read(weight_bytes) + weight_dacs.schedule(
        spec.total_weights
    ).time_s

    return LayerTimingResult(
        spec=spec,
        pipelined_time_s=pipelined_total,
        serial_time_s=stages.serial_total_s,
        weight_load_time_s=weight_load,
        stages=stages,
        bottleneck=bottleneck,
        dac_bound_locations=dac_bound * passes,
        adc_bound_locations=adc_bound * passes,
        dram_bytes=dram.stats.total_bytes,
        analytical_optical_s=optical_core_time_s(spec, cfg),
        analytical_full_s=full_system_time_s(spec, cfg),
    )


@dataclass(frozen=True)
class BatchLayerTimingResult:
    """Cycle-level timing of one layer streamed over a minibatch.

    The hardware holds the layer's weights while the whole batch streams
    through (weight-stationary execution, the premise of the batched
    photonic engine), so the once-per-layer weight load amortizes over
    ``batch_size`` images.

    Attributes:
        layer: the single-image simulation the batch projection is
            built from.
        batch_size: images streamed per weight load.
        total_time_s: one weight load + ``batch_size`` pipelined walks.
    """

    layer: LayerTimingResult
    batch_size: int
    total_time_s: float

    @property
    def spec(self) -> ConvLayerSpec:
        """The simulated layer geometry."""
        return self.layer.spec

    @property
    def per_image_s(self) -> float:
        """Amortized per-image layer latency (s)."""
        return self.total_time_s / self.batch_size

    @property
    def images_per_s(self) -> float:
        """Sustained single-layer throughput (images/s)."""
        return self.batch_size / self.total_time_s

    @property
    def weight_load_fraction(self) -> float:
        """Fraction of the batch time spent loading weights."""
        return self.layer.weight_load_time_s / self.total_time_s


# repro: allow[API002] deterministic cycle-level timing model: pure
# function of the layer spec, batch size, and config
def simulate_layer_batch(
    spec: ConvLayerSpec,
    batch_size: int,
    config: PCNNAConfig | None = None,
    include_adc: bool = True,
) -> BatchLayerTimingResult:
    """Cycle-level timing of one conv layer over a ``batch_size`` batch.

    The cycle-accurate counterpart of
    :func:`repro.core.batching.layer_batch_time_s` (which uses the
    paper's closed-form times): one simulated weight load plus
    ``batch_size`` simulated pipelined location walks.

    Raises:
        ValueError: if ``batch_size`` is not positive.
    """
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size!r}")
    layer = simulate_layer(spec, config, include_adc)
    total = layer.weight_load_time_s + batch_size * layer.pipelined_time_s
    return BatchLayerTimingResult(
        layer=layer, batch_size=batch_size, total_time_s=total
    )


# repro: allow[API002] deterministic cycle-level timing model over a
# fixed layer list; nothing stochastic to seed
def simulate_network(
    specs: list[ConvLayerSpec],
    config: PCNNAConfig | None = None,
    include_adc: bool = True,
) -> list[LayerTimingResult]:
    """Simulate every layer of a network, in order."""
    cfg = config if config is not None else PCNNAConfig()
    return [simulate_layer(spec, cfg, include_adc) for spec in specs]
