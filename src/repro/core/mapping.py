"""Mapping convolution layers onto MRR weight banks (paper Fig. 2, sec. IV).

The paper's central optimization is *receptive-field filtering*: a kernel
only ever sees ``Nkernel = m * m * nc`` input values at a time, so its
weight bank needs ``Nkernel`` rings — not one ring per input-feature-map
value.  This module builds the concrete mapping:

* :class:`KernelBankMapping` — one kernel's bank: rings, and the
  wavelength channel assigned to each (channel, ky, kx) weight position;
* :class:`LayerMapping` — all K banks of a layer, the WDM grid they
  share, and how many wavelength groups are needed when ``Nkernel``
  exceeds the FSR-limited channel count;
* :func:`fig2_ring_counts` — the Fig. 2 comparison (16 x 16 input, five
  3 x 3 kernels): per-kernel and total ring counts with and without
  filtering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import PCNNAConfig
from repro.nn.shapes import ConvLayerSpec
from repro.photonics.wdm import WdmGrid, channel_count_limit


@dataclass(frozen=True)
class KernelBankMapping:
    """The bank serving one kernel.

    Attributes:
        kernel_index: which kernel (0-based).
        num_rings: rings in this bank (``Nkernel`` under filtering).
        wavelength_of: tuple mapping weight position ``(c, ky, kx)``
            flattened in C-major order to a WDM channel index.
    """

    kernel_index: int
    num_rings: int
    wavelength_of: tuple[int, ...]

    def channel_for(self, c: int, ky: int, kx: int, m: int) -> int:
        """WDM channel of weight position ``(c, ky, kx)`` for kernel side m.

        Raises:
            IndexError: if the flattened position is out of range.
        """
        flat = (c * m + ky) * m + kx
        if not 0 <= flat < len(self.wavelength_of):
            raise IndexError(
                f"weight position ({c}, {ky}, {kx}) out of range for "
                f"{len(self.wavelength_of)} rings"
            )
        return self.wavelength_of[flat]


@dataclass(frozen=True)
class LayerMapping:
    """The full MRR-bank mapping of one convolution layer.

    Attributes:
        spec: the layer being mapped.
        filtered: whether non-receptive-field values are filtered out
            (the paper's optimization; ``False`` models the naive design).
        banks: per-kernel bank mappings.
        rings_per_bank: rings in each bank.
        total_rings: rings across all banks.
        wavelengths_needed: distinct WDM channels the input encoding uses.
        wavelength_groups: serial wavelength reuse groups needed when the
            receptive field exceeds the single-FSR channel limit.
        parallel_kernel_passes: sequential passes to cover K kernels with
            the instantiated banks.
    """

    spec: ConvLayerSpec
    filtered: bool
    banks: tuple[KernelBankMapping, ...]
    rings_per_bank: int
    total_rings: int
    wavelengths_needed: int
    wavelength_groups: int
    parallel_kernel_passes: int

    def wdm_grid(self, config: PCNNAConfig | None = None) -> WdmGrid:
        """A WDM grid sized for one wavelength group of this mapping."""
        cfg = config if config is not None else PCNNAConfig()
        per_group = math.ceil(self.wavelengths_needed / self.wavelength_groups)
        return WdmGrid(num_channels=per_group)


def map_layer(
    spec: ConvLayerSpec,
    config: PCNNAConfig | None = None,
    filtered: bool = True,
) -> LayerMapping:
    """Build the MRR-bank mapping for a layer.

    With ``filtered=True`` each kernel's bank has ``Nkernel`` rings and
    each receptive-field position gets a dedicated wavelength.  With
    ``filtered=False`` every bank carries one ring per input-feature-map
    value (``Ninput`` rings), modeling the naive Fig. 2(a) design.

    Args:
        spec: layer geometry.
        config: hardware configuration (bank count cap, ring design).
        filtered: apply the paper's receptive-field filtering.

    Returns:
        The layer's :class:`LayerMapping`.
    """
    cfg = config if config is not None else PCNNAConfig()
    rings_per_bank = spec.n_kernel if filtered else spec.n_input
    wavelengths = rings_per_bank

    if cfg.max_parallel_kernels is None:
        instantiated_banks = spec.num_kernels
    else:
        instantiated_banks = min(spec.num_kernels, cfg.max_parallel_kernels)
    passes = math.ceil(spec.num_kernels / instantiated_banks)

    fsr = cfg.ring_design.free_spectral_range_hz()
    grid_limit = channel_count_limit(fsr)
    groups = max(1, math.ceil(wavelengths / grid_limit))

    assignment = tuple(range(rings_per_bank))
    banks = tuple(
        KernelBankMapping(
            kernel_index=index,
            num_rings=rings_per_bank,
            wavelength_of=assignment,
        )
        for index in range(instantiated_banks)
    )
    return LayerMapping(
        spec=spec,
        filtered=filtered,
        banks=banks,
        rings_per_bank=rings_per_bank,
        total_rings=spec.num_kernels * rings_per_bank,
        wavelengths_needed=wavelengths,
        wavelength_groups=groups,
        parallel_kernel_passes=passes,
    )


@dataclass(frozen=True)
class Fig2RingCounts:
    """The Fig. 2 comparison numbers.

    Attributes:
        rings_per_kernel_unfiltered: rings per bank without filtering
            (one per input value).
        rings_per_kernel_filtered: rings per bank with filtering
            (one per receptive-field value).
        total_unfiltered: all banks, unfiltered.
        total_filtered: all banks, filtered.
        savings: unfiltered / filtered ratio.
    """

    rings_per_kernel_unfiltered: int
    rings_per_kernel_filtered: int
    total_unfiltered: int
    total_filtered: int

    @property
    def savings(self) -> float:
        """Ring-count reduction factor from filtering."""
        return self.total_unfiltered / self.total_filtered


def fig2_ring_counts(
    input_side: int = 16,
    kernel_size: int = 3,
    num_kernels: int = 5,
    channels: int = 1,
) -> Fig2RingCounts:
    """Reproduce the paper's Fig. 2 ring-count comparison.

    Defaults are the figure's own scenario: a 16 x 16 input feature map
    and five 3 x 3 kernels, single channel.
    """
    spec = ConvLayerSpec(
        name="fig2",
        n=input_side,
        m=kernel_size,
        nc=channels,
        num_kernels=num_kernels,
    )
    per_kernel_unfiltered = spec.n_input
    per_kernel_filtered = spec.n_kernel
    return Fig2RingCounts(
        rings_per_kernel_unfiltered=per_kernel_unfiltered,
        rings_per_kernel_filtered=per_kernel_filtered,
        total_unfiltered=num_kernels * per_kernel_unfiltered,
        total_filtered=num_kernels * per_kernel_filtered,
    )
