"""Power and energy models (extension beyond the paper's evaluation).

The paper motivates PCNNA with photonics' "low power consumption" but
never quantifies system power.  This module rolls up component powers
from the same sources the paper cites, so the ablation benchmarks can
report energy-per-inference alongside latency:

* lasers — per-channel optical power / wall-plug efficiency;
* microring thermal tuning — per-ring heater power (Tait-class banks
  dissipate on the order of a milliwatt per actively tuned ring);
* DAC / ADC — datasheet powers of the cited converters;
* SRAM — the cited macro's 25 uW/MHz activity power;
* DRAM — energy per byte moved;
* receivers — TIA power per balanced detector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical import full_system_time_s
from repro.core.config import PCNNAConfig
from repro.core.scheduler import dram_traffic_bytes
from repro.nn.shapes import ConvLayerSpec

DEFAULT_RING_TUNING_W = 1e-3
"""Average heater power per actively tuned microring (W)."""

DEFAULT_TIA_POWER_W = 3e-3
"""Receiver (balanced detector + TIA) power per output channel (W)."""

DEFAULT_LASER_WALL_PLUG = 0.1
"""Laser wall-plug efficiency used for the bank power roll-up."""

DEFAULT_CHANNEL_OPTICAL_W = 1e-3
"""Optical power per WDM channel (W)."""


@dataclass(frozen=True)
class PowerReport:
    """Component power/energy breakdown for one layer (W / J).

    Attributes:
        spec: the analyzed layer.
        laser_w: laser bank electrical power.
        tuning_w: microring heater power (active banks only).
        dac_w: input + weight DAC power.
        adc_w: ADC power.
        sram_w: SRAM activity power at the sustained access rate.
        receiver_w: balanced-detector/TIA power.
        layer_time_s: DAC-bound layer time used for energy.
        dram_energy_j: DRAM access energy for the layer's traffic.
    """

    spec: ConvLayerSpec
    laser_w: float
    tuning_w: float
    dac_w: float
    adc_w: float
    sram_w: float
    receiver_w: float
    layer_time_s: float
    dram_energy_j: float

    @property
    def total_power_w(self) -> float:
        """Sum of all continuous component powers (W)."""
        return (
            self.laser_w
            + self.tuning_w
            + self.dac_w
            + self.adc_w
            + self.sram_w
            + self.receiver_w
        )

    @property
    def layer_energy_j(self) -> float:
        """Continuous power * layer time + DRAM access energy (J)."""
        return self.total_power_w * self.layer_time_s + self.dram_energy_j

    @property
    def energy_per_mac_j(self) -> float:
        """Layer energy divided by the layer's MAC count (J/MAC)."""
        return self.layer_energy_j / self.spec.macs


def estimate_layer_power(
    spec: ConvLayerSpec,
    config: PCNNAConfig | None = None,
    ring_tuning_w: float = DEFAULT_RING_TUNING_W,
    tia_power_w: float = DEFAULT_TIA_POWER_W,
    laser_wall_plug: float = DEFAULT_LASER_WALL_PLUG,
    channel_optical_w: float = DEFAULT_CHANNEL_OPTICAL_W,
) -> PowerReport:
    """Roll up the power/energy estimate for one conv layer.

    Args:
        spec: layer geometry.
        config: hardware configuration.
        ring_tuning_w: average heater power per tuned ring.
        tia_power_w: receiver power per kernel output.
        laser_wall_plug: laser wall-plug efficiency.
        channel_optical_w: optical power per WDM channel.

    Returns:
        The layer's :class:`PowerReport`.
    """
    cfg = config if config is not None else PCNNAConfig()
    if cfg.max_parallel_kernels is None:
        active_banks = spec.num_kernels
    else:
        active_banks = min(spec.num_kernels, cfg.max_parallel_kernels)

    num_channels = spec.n_kernel
    laser_w = num_channels * channel_optical_w / laser_wall_plug
    active_rings = active_banks * spec.n_kernel
    tuning_w = active_rings * ring_tuning_w
    dac_w = (
        cfg.num_input_dacs * cfg.input_dac.power_w
        + cfg.num_weight_dacs * cfg.weight_dac.power_w
    )
    adc_w = cfg.num_adcs * cfg.adc.power_w
    receiver_w = active_banks * tia_power_w

    layer_time = full_system_time_s(spec, cfg)
    # SRAM runs at the DAC feed rate during the layer.
    access_rate_hz = min(
        cfg.num_input_dacs * cfg.input_dac.sample_rate_hz, 1.0 / cfg.sram.access_time_s
    )
    sram_w = cfg.sram.power_per_mhz_w * (access_rate_hz / 1e6)

    traffic = dram_traffic_bytes(spec, cfg.value_bytes)
    dram_energy = traffic["total"] * cfg.dram.energy_per_byte_j

    return PowerReport(
        spec=spec,
        laser_w=laser_w,
        tuning_w=tuning_w,
        dac_w=dac_w,
        adc_w=adc_w,
        sram_w=sram_w,
        receiver_w=receiver_w,
        layer_time_s=layer_time,
        dram_energy_j=dram_energy,
    )


def estimate_network_energy_j(
    specs: list[ConvLayerSpec], config: PCNNAConfig | None = None
) -> float:
    """Total conv energy for a network, one inference (J)."""
    cfg = config if config is not None else PCNNAConfig()
    return sum(estimate_layer_power(spec, cfg).layer_energy_j for spec in specs)
