"""Sparsity-aware ring allocation (extension).

Equation (5) assumes every kernel weight gets a microring.  Pruned CNNs
carry many near-zero weights; a ring whose weight is zero can be parked
far off resonance (contributing nothing) or, at design time, not placed
at all.  This module quantifies what magnitude pruning buys PCNNA:

* rings (and heater power / area) saved per layer at a given threshold;
* the accuracy proxy — the fraction of weight *energy* retained;
* sparse mapping of a concrete weight tensor onto banks.

This extends the paper's own insight (receptive-field sparsity) from
connection sparsity down to weight sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analytical import bank_area_mm2
from repro.core.config import PCNNAConfig
from repro.core.power import DEFAULT_RING_TUNING_W


@dataclass(frozen=True)
class SparseMappingReport:
    """Effect of weight pruning on a layer's ring allocation.

    Attributes:
        total_weights: dense weight count (== dense ring count, eq. 5).
        active_rings: rings still needed after pruning.
        pruned_rings: rings eliminated.
        threshold: magnitude threshold used.
        energy_retained: fraction of sum(w^2) kept by the active rings.
        rings_area_saved_mm2: layout area eliminated.
        tuning_power_saved_w: heater power eliminated.
    """

    total_weights: int
    active_rings: int
    threshold: float
    energy_retained: float
    rings_area_saved_mm2: float
    tuning_power_saved_w: float

    @property
    def pruned_rings(self) -> int:
        """Rings eliminated by pruning."""
        return self.total_weights - self.active_rings

    @property
    def sparsity(self) -> float:
        """Fraction of rings eliminated."""
        if self.total_weights == 0:
            return 0.0
        return self.pruned_rings / self.total_weights


def prune_kernels(
    kernels: np.ndarray, threshold: float
) -> tuple[np.ndarray, np.ndarray]:
    """Zero out kernel weights below ``threshold`` in magnitude.

    Args:
        kernels: weight tensor of any shape.
        threshold: absolute magnitude cutoff (>= 0).

    Returns:
        ``(pruned_kernels, keep_mask)``.

    Raises:
        ValueError: if ``threshold`` is negative.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold!r}")
    weights = np.asarray(kernels, dtype=float)
    mask = np.abs(weights) >= threshold
    return weights * mask, mask


def sparse_mapping_report(
    kernels: np.ndarray,
    threshold: float,
    config: PCNNAConfig | None = None,
    tuning_w_per_ring: float = DEFAULT_RING_TUNING_W,
) -> SparseMappingReport:
    """Quantify the ring savings of pruning ``kernels`` at ``threshold``."""
    cfg = config if config is not None else PCNNAConfig()
    weights = np.asarray(kernels, dtype=float)
    pruned, mask = prune_kernels(weights, threshold)

    total = int(weights.size)
    active = int(mask.sum())
    dense_energy = float(np.sum(weights**2))
    if dense_energy == 0.0:
        retained = 1.0
    else:
        retained = float(np.sum(pruned**2)) / dense_energy

    saved_rings = total - active
    return SparseMappingReport(
        total_weights=total,
        active_rings=active,
        threshold=threshold,
        energy_retained=retained,
        rings_area_saved_mm2=bank_area_mm2(saved_rings, cfg),
        tuning_power_saved_w=saved_rings * tuning_w_per_ring,
    )


def threshold_for_sparsity(kernels: np.ndarray, sparsity: float) -> float:
    """Magnitude threshold achieving a target ring sparsity.

    Args:
        kernels: weight tensor.
        sparsity: desired fraction of rings to eliminate, in [0, 1).

    Raises:
        ValueError: if ``sparsity`` is outside [0, 1).
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity!r}")
    magnitudes = np.abs(np.asarray(kernels, dtype=float)).reshape(-1)
    if sparsity == 0.0:
        return 0.0
    return float(np.quantile(magnitudes, sparsity))


def pruned_conv_error(
    feature_map: np.ndarray, kernels: np.ndarray, threshold: float
) -> float:
    """Relative conv-output error introduced by pruning at ``threshold``.

    Runs the reference convolution with dense and pruned kernels and
    reports the max output deviation relative to the dense output scale.
    """
    from repro.nn import functional as F

    dense = F.conv2d(np.asarray(feature_map, dtype=float), np.asarray(kernels))
    pruned, _ = prune_kernels(kernels, threshold)
    sparse = F.conv2d(np.asarray(feature_map, dtype=float), pruned)
    scale = float(np.max(np.abs(dense)))
    if scale == 0.0:
        return 0.0
    return float(np.max(np.abs(sparse - dense)) / scale)
