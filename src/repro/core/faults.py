"""Hardware-degradation scenario engine for degraded-mode serving.

The PR 3 serving simulator (:mod:`repro.core.traffic`) assumes every
core stays perfectly calibrated forever.  Real microring weight banks do
not: ambient temperature drifts, heaters leak onto neighbours, rings die
and stick, and TIAs age.  This module closes that loop — the discrete
event loop, the scheduler, and the photonic substrate share one
simulated clock for the first time:

* a seeded :class:`FaultSchedule` describes *when* each physical core's
  hardware degrades (thermal drift ramps, crosstalk excursions,
  dead/stuck rings, TIA gain droop);
* each core carries a :class:`CoreHealthState` — a real
  :class:`~repro.photonics.drift.DriftingWeightBank` probe advanced to
  every dispatch instant, whose balanced-detection weight error is the
  core's **accuracy proxy**, measured from photodiode readout physics
  rather than assumed;
* an optional :class:`RecalibrationPolicy` watches the proxy and
  invokes the closed calibration loop
  (:func:`~repro.photonics.calibration.calibrate_bank` via the probe)
  when it crosses a threshold, costing the core real downtime on the
  shared clock;
* a fault-aware scheduler drains the pipeline and re-partitions the
  layers over the surviving cores (via
  :func:`~repro.core.multicore.balanced_partition` inside
  :class:`~repro.core.traffic.PipelineServiceModel`) when a core
  degrades beyond what recalibration can restore;
* :func:`replay_on_engine_degraded` re-executes the schedule's batches
  on the *real* engine with each core's conv weights pushed through the
  measured drift transfer, reporting golden-output divergence per batch.

The engine is differential by construction: the whole event loop is the
unified kernel of :mod:`repro.core.simkernel` — fault-and-drift
bookkeeping rides along as :class:`FaultPlugin`, a kernel plugin whose
hooks advance the drift state machines, pay recalibration downtime, and
re-partition around failed cores, while dispatch planning and the
pipeline walk stay the exact arithmetic the fault-free simulator uses.
A zero-magnitude schedule therefore yields a bit-identical
:class:`~repro.core.traffic.ServingReport` (and a bit-identical engine
replay) — the property ``tests/test_differential_faults.py`` pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import PCNNAConfig
from repro.core.serving import run_network_pipelined, stage_layer_slices
from repro.core.simkernel import (
    BatchingPolicy,
    BatchRecord,
    DispatchContext,
    EventLoopKernel,
    KernelPlugin,
)
from repro.core.traffic import (
    PipelineServiceModel,
    ServingReport,
    validate_replay_inputs,
)
from repro.nn.layers import Conv2D
from repro.nn.network import Network
from repro.nn.shapes import ConvLayerSpec
from repro.photonics.calibration import CalibrationResult
from repro.photonics.drift import (
    BankCondition,
    DriftingWeightBank,
    drift_transfer,
)

# Contract markers checked by `python -m repro.lint` (BIT001/PERF001):
# the zero-magnitude differential pins this module's floats
# bit-identical to the fault-free run, and CoreHealthState advances on
# every dispatch of the event loop.
__bit_identity__ = True
__hot_path__ = ("CoreHealthState",)

FAULT_KINDS: tuple[str, ...] = (
    "thermal_ramp",
    "crosstalk",
    "dead_rings",
    "stuck_rings",
    "tia_droop",
)
"""Fault kinds a :class:`FaultEvent` may carry."""

_RING_KINDS = ("dead_rings", "stuck_rings")
_UNIT_KINDS = ("dead_rings", "stuck_rings", "tia_droop")
_MAX_COUPLING = 0.95
"""Crosstalk excursions are capped below the thermal model's limit."""


@dataclass(frozen=True)
class FaultEvent:
    """One timed hardware fault on one physical core.

    Magnitude semantics per kind:

    * ``thermal_ramp`` — ambient temperature ramps at ``magnitude`` K/s
      from ``onset_s`` for ``duration_s``, then *holds* the accumulated
      offset (drift does not revert by itself; recalibration does).
    * ``crosstalk`` — heater coupling rises by ``magnitude`` while the
      event is active and reverts when it ends (a transient excursion).
    * ``dead_rings`` / ``stuck_rings`` — the first
      ``magnitude * len(rings)`` listed rings (rounded down) die or
      stick at ``onset_s``, permanently.  ``magnitude`` in ``[0, 1]`` is
      the affected fraction, which keeps zero-magnitude schedules
      perfect no-ops and lets sweeps scale severity continuously.
    * ``tia_droop`` — the TIA gain falls linearly to ``1 - magnitude``
      over ``duration_s`` and holds (a step at onset if the duration is
      infinite).

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        core: physical core index the fault strikes (events addressed to
            cores outside a given pipeline are inert there).
        onset_s: simulated time the fault begins.
        magnitude: severity, per the kind semantics above (>= 0).
        duration_s: active span (> 0; default infinite).
        rings: candidate ring indices for the ring kinds.
    """

    kind: str
    core: int
    onset_s: float
    magnitude: float
    duration_s: float = math.inf
    rings: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; have {FAULT_KINDS}"
            )
        if not isinstance(self.core, (int, np.integer)) or self.core < 0:
            raise ValueError(
                f"core must be a non-negative integer, got {self.core!r}"
            )
        if self.onset_s < 0.0 or not np.isfinite(self.onset_s):
            raise ValueError(
                f"onset must be finite and >= 0, got {self.onset_s!r}"
            )
        if self.magnitude < 0.0 or not np.isfinite(self.magnitude):
            raise ValueError(
                f"magnitude must be finite and >= 0, got {self.magnitude!r}"
            )
        if self.kind in _UNIT_KINDS and self.magnitude > 1.0:
            raise ValueError(
                f"{self.kind} magnitude is a fraction in [0, 1], got "
                f"{self.magnitude!r}"
            )
        if self.kind == "crosstalk" and self.magnitude >= 1.0:
            raise ValueError(
                f"crosstalk magnitude must be below 1, got {self.magnitude!r}"
            )
        if self.duration_s <= 0.0 or math.isnan(self.duration_s):
            raise ValueError(
                f"duration must be positive, got {self.duration_s!r}"
            )
        if any(
            not isinstance(ring, (int, np.integer)) or ring < 0
            for ring in self.rings
        ):
            raise ValueError(f"ring indices must be >= 0, got {self.rings!r}")
        if self.kind in _RING_KINDS and self.magnitude > 0.0 and not self.rings:
            raise ValueError(f"{self.kind} event needs candidate rings")

    @property
    def affected_rings(self) -> tuple[int, ...]:
        """The rings this event actually strikes (magnitude fraction)."""
        count = int(self.magnitude * len(self.rings) + 1e-9)
        return self.rings[:count]


@dataclass(frozen=True)
class FaultSchedule:
    """A named, immutable collection of timed fault events.

    Attributes:
        name: label used in reports and sweep tables.
        events: the fault events, in any order.
    """

    name: str
    events: tuple[FaultEvent, ...] = ()

    @classmethod
    def none(cls) -> "FaultSchedule":
        """The empty schedule (a perfectly healthy run)."""
        return cls(name="fault-free", events=())

    @classmethod
    def uniform_drift(
        cls,
        rate_k_per_s: float,
        num_cores: int,
        onset_s: float = 0.0,
        duration_s: float = math.inf,
    ) -> "FaultSchedule":
        """Every core's ambient temperature ramps at the same rate.

        The canonical sweep axis of
        :func:`~repro.analysis.sweeps.sweep_fault_tolerance`.

        Raises:
            ValueError: on a negative rate or non-positive core count.
        """
        if num_cores < 1:
            raise ValueError(f"need >= 1 core, got {num_cores!r}")
        events = tuple(
            FaultEvent(
                kind="thermal_ramp",
                core=core,
                onset_s=onset_s,
                magnitude=rate_k_per_s,
                duration_s=duration_s,
            )
            for core in range(num_cores)
        )
        return cls(name=f"drift-{rate_k_per_s:g}K/s", events=events)

    @classmethod
    def random(
        cls,
        seed: int,
        num_cores: int,
        horizon_s: float,
        events_per_core: int = 2,
        probe_rings: int = 8,
        max_drift_k_per_s: float = 1.0,
    ) -> "FaultSchedule":
        """A seeded random schedule mixing every fault kind.

        Pure function of its arguments: the same seed yields the same
        schedule, so randomized scenario studies stay reproducible.

        Raises:
            ValueError: on a non-positive core count, horizon, or event
                count.
        """
        if num_cores < 1:
            raise ValueError(f"need >= 1 core, got {num_cores!r}")
        if horizon_s <= 0.0:
            raise ValueError(f"horizon must be positive, got {horizon_s!r}")
        if events_per_core < 1:
            raise ValueError(
                f"need >= 1 event per core, got {events_per_core!r}"
            )
        rng = np.random.default_rng(seed)
        events = []
        for core in range(num_cores):
            for _ in range(events_per_core):
                kind = FAULT_KINDS[rng.integers(len(FAULT_KINDS))]
                onset = float(rng.uniform(0.0, horizon_s))
                duration = float(rng.uniform(0.1, 1.0) * horizon_s)
                if kind == "thermal_ramp":
                    magnitude = float(rng.uniform(0.0, max_drift_k_per_s))
                elif kind == "crosstalk":
                    magnitude = float(rng.uniform(0.0, 0.3))
                else:
                    magnitude = float(rng.uniform(0.0, 1.0))
                rings = tuple(
                    int(r)
                    for r in rng.choice(
                        probe_rings,
                        size=int(rng.integers(1, probe_rings + 1)),
                        replace=False,
                    )
                )
                events.append(
                    FaultEvent(
                        kind=kind,
                        core=core,
                        onset_s=onset,
                        magnitude=magnitude,
                        duration_s=duration,
                        rings=rings,
                    )
                )
        return cls(name=f"random-{seed}", events=tuple(events))

    def scaled(self, factor: float) -> "FaultSchedule":
        """The same schedule with every magnitude scaled by ``factor``.

        Fractional magnitudes (ring kinds, TIA droop) are clamped back
        to 1 after scaling.  ``scaled(0.0)`` is the canonical
        zero-magnitude schedule of the differential tests: same events,
        zero physical effect.

        Raises:
            ValueError: on a negative or non-finite factor.
        """
        if factor < 0.0 or not np.isfinite(factor):
            raise ValueError(
                f"scale factor must be finite and >= 0, got {factor!r}"
            )
        events = tuple(
            replace(
                event,
                magnitude=(
                    min(event.magnitude * factor, 1.0)
                    if event.kind in _UNIT_KINDS
                    else min(event.magnitude * factor, 0.99)
                    if event.kind == "crosstalk"
                    else event.magnitude * factor
                ),
            )
            for event in self.events
        )
        return FaultSchedule(name=f"{self.name}x{factor:g}", events=events)

    def events_for(self, core: int) -> tuple[FaultEvent, ...]:
        """The events striking one physical core, onset-ordered."""
        return tuple(
            sorted(
                (event for event in self.events if event.core == core),
                key=lambda event: event.onset_s,
            )
        )


@dataclass(frozen=True)
class RecalibrationPolicy:
    """When and at what cost is a drifted core recalibrated?

    Recalibration is triggered at dispatch instants when a core's
    measured weight error reaches ``error_threshold``; the core then
    drains and runs the closed calibration loop, paying
    ``overhead_s + iterations * iteration_time_s`` of downtime on the
    shared clock (the probe/settle cycle of each feedback iteration
    plus the drain/settle overhead).

    Attributes:
        name: label used in reports and sweep tables.
        error_threshold: weight error that triggers recalibration.
        max_iterations: feedback iterations per recalibration attempt.
        iteration_time_s: simulated time one feedback iteration costs.
        overhead_s: fixed drain/settle cost per attempt.
    """

    name: str = "recal"
    error_threshold: float = 0.05
    max_iterations: int = 20
    iteration_time_s: float = 50e-6
    overhead_s: float = 200e-6

    def __post_init__(self) -> None:
        if self.error_threshold <= 0.0 or not np.isfinite(self.error_threshold):
            raise ValueError(
                f"error threshold must be finite and > 0, got "
                f"{self.error_threshold!r}"
            )
        if self.max_iterations < 1:
            raise ValueError(
                f"need >= 1 iteration, got {self.max_iterations!r}"
            )
        if self.iteration_time_s < 0.0 or self.overhead_s < 0.0:
            raise ValueError("recalibration times must be >= 0")

    def downtime_s(self, iterations: int) -> float:
        """Downtime one attempt with ``iterations`` iterations costs."""
        return self.overhead_s + iterations * self.iteration_time_s


@dataclass(frozen=True)
class CoreDriftSnapshot:
    """One core's degradation at a dispatch instant.

    The residual shift, TIA gain, and dead rings feed
    :func:`replay_on_engine_degraded`; the stuck rings are recorded for
    diagnostics only — a stuck heater's effect on the *output* is that
    recalibration cannot correct its channel, which the residual shift
    already carries, so the replay intentionally does not perturb stuck
    positions a second time.

    Attributes:
        core: physical core index.
        residual_shift_hz: ambient resonance shift *beyond* what the
            last successful recalibration compensated.
        tia_gain: output-visible TIA gain — droop accrued *beyond* what
            the last successful recalibration's command boost absorbed.
        dead_rings: rings currently dead.
        stuck_rings: rings currently stuck (diagnostic).
    """

    core: int
    residual_shift_hz: float
    tia_gain: float
    dead_rings: tuple[int, ...]
    stuck_rings: tuple[int, ...]

    @property
    def pristine(self) -> bool:
        """Whether the degraded replay may skip perturbing this core."""
        return (
            self.residual_shift_hz == 0.0
            and self.tia_gain == 1.0
            and not self.dead_rings
        )


@dataclass(frozen=True)
class RecalibrationRecord:
    """One recalibration attempt, as the event loop saw it.

    Attributes:
        time_s: dispatch instant that triggered the attempt.
        core: physical core recalibrated.
        iterations: feedback iterations the loop ran.
        residual: weight error *after* the attempt.
        downtime_s: simulated downtime charged to the core.
        restored: whether the residual fell back below the policy
            threshold (``False`` means the drift exceeded the command
            headroom — the core is a failure candidate).
    """

    time_s: float
    core: int
    iterations: int
    residual: float
    downtime_s: float
    restored: bool


@dataclass(frozen=True)
class RepartitionRecord:
    """One fault-aware drain-and-repartition of the pipeline.

    Attributes:
        time_s: dispatch instant the scheduler reacted at.
        failed_cores: physical cores removed from the pipeline.
        num_cores_after: pipeline width after the repartition.
    """

    time_s: float
    failed_cores: tuple[int, ...]
    num_cores_after: int


class CoreHealthState:
    """Drift state machine of one physical core on the shared clock.

    Wraps the core's :class:`DriftingWeightBank` probe: closed-form
    composition of the schedule's events yields the core's
    :class:`BankCondition` at any instant, the probe is re-tuned only
    when that condition actually changes, and the measured weight error
    is cached between changes.  Deterministic: the probe is seeded by
    the core index and every input is a pure function of simulated time.

    Args:
        core: physical core index.
        schedule: the fault schedule (events for other cores ignored).
        probe_rings: rings in the accuracy-probe bank.
    """

    __slots__ = (
        "core",
        "events",
        "probe",
        "_condition",
        "error",
        "compensated_shift_hz",
        "compensated_gain",
        "recal_exhausted",
        "_exhausted_condition",
    )

    def __init__(
        self, core: int, schedule: FaultSchedule, probe_rings: int = 8
    ) -> None:
        self.core = core
        self.events = schedule.events_for(core)
        self.probe = DriftingWeightBank(
            num_rings=probe_rings, targets=None, seed=core
        )
        # Squash the pristine bank's open-loop crosstalk residual so the
        # healthy baseline error is ~1e-7, far below any trigger.
        self.probe.recalibrate()
        self._condition = BankCondition()
        self.error = self.probe.weight_error()
        self.compensated_shift_hz = 0.0
        self.compensated_gain = 1.0
        self.recal_exhausted = False
        self._exhausted_condition: BankCondition | None = None

    def condition_at(self, time_s: float) -> BankCondition:
        """Compose the schedule into the core's condition at one instant."""
        ambient_k = 0.0
        coupling = 0.0
        gain = 1.0
        dead: set[int] = set()
        stuck: set[int] = set()
        for event in self.events:
            if event.kind == "thermal_ramp":
                ambient_k += event.magnitude * min(
                    max(time_s - event.onset_s, 0.0), event.duration_s
                )
            elif event.kind == "crosstalk":
                if event.onset_s <= time_s < event.onset_s + event.duration_s:
                    coupling += event.magnitude
            elif event.kind == "tia_droop":
                if math.isinf(event.duration_s):
                    progress = 1.0 if time_s >= event.onset_s else 0.0
                else:
                    progress = min(
                        max((time_s - event.onset_s) / event.duration_s, 0.0),
                        1.0,
                    )
                gain *= 1.0 - event.magnitude * progress
            elif time_s >= event.onset_s:
                affected = event.affected_rings
                if event.kind == "dead_rings":
                    dead.update(affected)
                else:
                    stuck.update(affected)
        return BankCondition(
            ambient_k=ambient_k,
            crosstalk_coupling=min(coupling, _MAX_COUPLING),
            dead_rings=tuple(sorted(dead)),
            stuck_rings=tuple(sorted(stuck)),
            tia_gain=max(gain, 0.0),
        )

    def advance_to(self, time_s: float) -> None:
        """Advance the probe to a dispatch instant (no-op if unchanged)."""
        condition = self.condition_at(time_s)
        if condition == self._condition:
            return
        self.probe.set_condition(condition)
        if (
            self.recal_exhausted
            and self._exhausted_condition is not None
            and self._improved(self._exhausted_condition, condition)
        ):
            # The hardware got better on its own (an excursion ended);
            # recalibration is worth attempting again.
            self.recal_exhausted = False
            self._exhausted_condition = None
        self._condition = condition
        self.error = self.probe.weight_error()

    @staticmethod
    def _improved(old: BankCondition, new: BankCondition) -> bool:
        return (
            new.ambient_k < old.ambient_k
            or new.crosstalk_coupling < old.crosstalk_coupling
            or new.tia_gain > old.tia_gain
            or len(new.dead_rings) < len(old.dead_rings)
            or len(new.stuck_rings) < len(old.stuck_rings)
        )

    def should_recalibrate(self, policy: RecalibrationPolicy) -> bool:
        """Whether the policy triggers a recalibration attempt now."""
        return not self.recal_exhausted and self.error >= policy.error_threshold

    def recalibrate(self, policy: RecalibrationPolicy) -> CalibrationResult:
        """Run the closed calibration loop and update the health state."""
        result = self.probe.recalibrate(max_iterations=policy.max_iterations)
        self.error = self.probe.weight_error()
        if self.error <= policy.error_threshold:
            # Fully compensated: the command now absorbs the current
            # ambient shift and TIA droop, so replay measures drift
            # from here.
            self.compensated_shift_hz = self._condition.ambient_shift_hz
            self.compensated_gain = self._condition.tia_gain
        else:
            self.recal_exhausted = True
            self._exhausted_condition = self._condition
        return result

    @property
    def residual_shift_hz(self) -> float:
        """Ambient shift beyond the last successful compensation."""
        return max(
            self._condition.ambient_shift_hz - self.compensated_shift_hz, 0.0
        )

    @property
    def residual_gain(self) -> float:
        """TIA gain beyond the last successful compensation.

        A successful recalibration boosts the commands to absorb the
        gain droop, so the *output-visible* gain is the droop accrued
        since then (capped at 1 — commands cannot attenuate).
        """
        if self.compensated_gain <= 0.0:
            return self._condition.tia_gain
        return min(self._condition.tia_gain / self.compensated_gain, 1.0)

    def snapshot(self) -> CoreDriftSnapshot:
        """The core's degradation right now, for the degraded replay."""
        return CoreDriftSnapshot(
            core=self.core,
            residual_shift_hz=self.residual_shift_hz,
            tia_gain=self.residual_gain,
            dead_rings=self._condition.dead_rings,
            stuck_rings=self._condition.stuck_rings,
        )


@dataclass(frozen=True)
class DegradedServingReport(ServingReport):
    """A :class:`ServingReport` plus everything degradation added.

    Attributes:
        schedule_name: the fault schedule that ran.
        recalibration_name: the recalibration policy, or ``None``.
        accuracy_proxy: per-batch worst measured weight error over the
            cores the batch traversed (the photodiode-level accuracy
            metric).
        batch_num_cores: per-batch pipeline width (shrinks after
            fault-aware repartitions).
        batch_snapshots: per-batch per-stage drift snapshots, the input
            to :func:`replay_on_engine_degraded`.
        core_downtime_s: per-physical-core recalibration downtime.
        final_core_errors: per-physical-core weight error at the end.
        recalibrations: every recalibration attempt, in order.
        repartitions: every fault-aware repartition, in order.
    """

    schedule_name: str
    recalibration_name: str | None
    accuracy_proxy: np.ndarray
    batch_num_cores: np.ndarray
    batch_snapshots: tuple[tuple[CoreDriftSnapshot, ...], ...]
    core_downtime_s: tuple[float, ...]
    final_core_errors: tuple[float, ...]
    recalibrations: tuple[RecalibrationRecord, ...]
    repartitions: tuple[RepartitionRecord, ...]

    @property
    def availability(self) -> tuple[float, ...]:
        """Per-core fraction of the makespan not lost to recalibration."""
        span = self.makespan_s
        return tuple(
            1.0 - downtime / span for downtime in self.core_downtime_s
        )

    @property
    def mean_accuracy_proxy(self) -> float:
        """Batch-weighted mean of the accuracy proxy."""
        sizes = np.array([batch.size for batch in self.batches], dtype=float)
        # repro: allow[BIT001] report statistic outside the differential
        # pin: both folds run on the same arrays whichever mode built
        # the schedule, so the rounding is identical by construction
        return float((self.accuracy_proxy * sizes).sum() / sizes.sum())

    @property
    def worst_accuracy_proxy(self) -> float:
        """The worst per-batch accuracy proxy of the run."""
        return float(self.accuracy_proxy.max())

    @property
    def final_accuracy_proxy(self) -> float:
        """The last batch's accuracy proxy."""
        return float(self.accuracy_proxy[-1])

    def describe(self) -> str:
        """The base summary block plus the degradation lines."""
        availability = ", ".join(f"{a:.2%}" for a in self.availability)
        lines = [
            super().describe(),
            f"  faults [{self.schedule_name}]: accuracy proxy mean "
            f"{self.mean_accuracy_proxy:.3g}, worst "
            f"{self.worst_accuracy_proxy:.3g} | "
            f"{len(self.recalibrations)} recalibrations, "
            f"{len(self.repartitions)} repartitions",
            f"  availability {availability}",
        ]
        return "\n".join(lines)


class FaultPlugin(KernelPlugin):
    """Fault-and-drift bookkeeping as a plugin on the event-loop kernel.

    At every sealed dispatch the plugin advances each serving core's
    drift state machine to the dispatch instant, lets the recalibration
    policy drain cores (downtime pushed into the kernel's ``core_free``
    clock), and — when a core degrades beyond recalibration's reach —
    re-partitions the layers over the survivors by swapping the kernel's
    service model and stage→core map.  After each batch it records the
    accuracy proxy, the pipeline width, and the per-stage drift
    snapshots the degraded engine replay consumes.

    The plugin never touches dispatch planning or the pipeline-walk
    arithmetic, which is why a zero-magnitude schedule stays
    bit-identical to the plain kernel.

    Args:
        schedule: the fault schedule to inject.
        recalibration: online recalibration policy; ``None`` disables
            recalibration entirely.
        specs: the served network's conv layers; required for
            fault-aware repartitioning (``None`` disables it).
        config: hardware configuration used when repartitioning.
        fail_error_threshold: weight error beyond which a core is
            declared failed and drained out of the pipeline.
        probe_rings: rings in each core's accuracy-probe bank.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        recalibration: RecalibrationPolicy | None = None,
        specs: list[ConvLayerSpec] | None = None,
        config: PCNNAConfig | None = None,
        fail_error_threshold: float = 0.5,
        probe_rings: int = 8,
    ) -> None:
        if fail_error_threshold <= 0.0:
            raise ValueError(
                f"fail threshold must be positive, got "
                f"{fail_error_threshold!r}"
            )
        self.schedule = schedule
        self.recalibration = recalibration
        self.specs = specs
        self.config = config
        self.fail_error_threshold = fail_error_threshold
        self.probe_rings = probe_rings
        self.states: list[CoreHealthState] = []
        self.downtime: list[float] = []
        self.proxies: list[float] = []
        self.widths: list[int] = []
        self.snapshots: list[tuple[CoreDriftSnapshot, ...]] = []
        self.recalibrations: list[RecalibrationRecord] = []
        self.repartitions: list[RepartitionRecord] = []

    def on_run_start(self, ctx: DispatchContext) -> None:
        """Seed one drift state machine per physical pipeline core.

        Every per-run record is reset here, so one plugin instance can
        be attached to consecutive kernel runs without leaking state.
        """
        width = ctx.model.num_cores
        self.states = [
            CoreHealthState(core, self.schedule, self.probe_rings)
            for core in range(width)
        ]
        self.downtime = [0.0] * width
        self.proxies = []
        self.widths = []
        self.snapshots = []
        self.recalibrations = []
        self.repartitions = []

    def _should_recalibrate(
        self, ctx: DispatchContext, state: CoreHealthState, dispatch_s: float
    ) -> bool:
        """The recalibration trigger decision for one core, one instant.

        The static policy's threshold test, factored out so the adaptive
        control plane (:mod:`repro.core.adaptive`) can substitute a
        telemetry-driven decision.  Whatever the trigger decides, the
        recalibration *arithmetic* (the calibration loop, the downtime
        charged into ``core_free``) is shared — which is why a frozen
        adaptive trigger stays bit-identical to this one.
        """
        return state.should_recalibrate(self.recalibration)

    def on_dispatch_planned(
        self, ctx: DispatchContext, dispatch_s: float, size: int
    ) -> None:
        """Advance the substrate, recalibrate, and repartition."""
        states = self.states
        stage_to_core = ctx.stage_to_core
        core_free = ctx.core_free

        # -- substrate: advance every serving core to this instant --
        for core in stage_to_core:
            states[core].advance_to(dispatch_s)

        # -- recalibration: drain a core, pay downtime on the clock --
        if self.recalibration is not None:
            for stage, core in enumerate(stage_to_core):
                state = states[core]
                if not self._should_recalibrate(ctx, state, dispatch_s):
                    continue
                result = state.recalibrate(self.recalibration)
                cost = self.recalibration.downtime_s(result.iterations)
                core_free[stage] = max(core_free[stage], dispatch_s) + cost
                self.downtime[core] += cost
                self.recalibrations.append(
                    RecalibrationRecord(
                        time_s=dispatch_s,
                        core=core,
                        iterations=result.iterations,
                        residual=state.error,
                        downtime_s=cost,
                        restored=state.error
                        <= self.recalibration.error_threshold,
                    )
                )

        # -- fault-aware scheduler: drain and re-partition around
        #    cores degraded beyond recalibration's reach --
        if self.specs is not None and len(stage_to_core) > 1:
            failing = [
                core
                for core in stage_to_core
                if states[core].error >= self.fail_error_threshold
            ]
            if failing and len(failing) < len(stage_to_core):
                survivors = [
                    core for core in stage_to_core if core not in failing
                ]
                drain = max(core_free)
                ctx.model = PipelineServiceModel.from_specs(
                    self.specs,
                    len(survivors),
                    self.config,
                    clamp_cores=True,
                )
                ctx.stage_to_core = survivors
                ctx.core_free = [drain] * len(survivors)
                self.repartitions.append(
                    RepartitionRecord(
                        time_s=dispatch_s,
                        failed_cores=tuple(failing),
                        num_cores_after=len(survivors),
                    )
                )

    def on_batch_complete(
        self, ctx: DispatchContext, batch: BatchRecord
    ) -> None:
        """Record the batch's proxy, width, and drift snapshots."""
        states = self.states
        self.proxies.append(
            max(states[core].error for core in ctx.stage_to_core)
        )
        self.widths.append(ctx.model.num_cores)
        self.snapshots.append(
            tuple(states[core].snapshot() for core in ctx.stage_to_core)
        )

    def on_run_end(self, ctx: DispatchContext) -> None:
        """Advance every state machine to the final dispatch instant.

        Drained cores stop being advanced by the dispatch loop; this
        brings every state to the end of the run so
        ``final_core_errors`` reports end-of-run degradation, not
        drain-time snapshots.
        """
        final_time = ctx.batches[-1].dispatch_s
        for state in self.states:
            state.advance_to(final_time)


class DegradedServingSimulator:
    """The serving event loop with hardware degradation on the clock.

    A facade over the unified kernel: the event loop is
    :class:`~repro.core.simkernel.EventLoopKernel` with a
    :class:`FaultPlugin` attached, so it is identical to
    :class:`~repro.core.traffic.ServingSimulator` except that at every
    dispatch instant each core's drift state machine is advanced, the
    recalibration policy may drain a core (downtime on the shared
    clock), and the fault-aware scheduler may re-partition the layers
    over the surviving cores.

    Args:
        model: the healthy per-core service model (initial pipeline).
        policy: the batching policy.
        schedule: the fault schedule to inject.
        recalibration: online recalibration policy; ``None`` disables
            recalibration entirely.
        specs: the served network's conv layers; required for
            fault-aware repartitioning (``None`` disables it).
        config: hardware configuration used when repartitioning.
        fail_error_threshold: weight error beyond which a core is
            declared failed and drained out of the pipeline.
        probe_rings: rings in each core's accuracy-probe bank.
        mode: kernel execution mode.  A fault run always carries the
            :class:`FaultPlugin`, so ``"auto"`` resolves to the
            reference event loop; ``"vectorized"`` is rejected by the
            kernel (plugins mutate the pipeline mid-run).  The argument
            exists so callers can spell the mode explicitly and get the
            same error surface everywhere.
    """

    def __init__(
        self,
        model: PipelineServiceModel,
        policy: BatchingPolicy,
        schedule: FaultSchedule,
        recalibration: RecalibrationPolicy | None = None,
        specs: list[ConvLayerSpec] | None = None,
        config: PCNNAConfig | None = None,
        fail_error_threshold: float = 0.5,
        probe_rings: int = 8,
        mode: str = "auto",
    ) -> None:
        self.model = model
        self.policy = policy
        self.mode = mode
        self.schedule = schedule
        self.recalibration = recalibration
        self.specs = specs
        self.config = config
        self.fail_error_threshold = fail_error_threshold
        self.probe_rings = probe_rings
        # Validate plugin arguments eagerly so a bad threshold fails at
        # construction, as it always has.
        self._make_plugin()

    def _make_plugin(self) -> FaultPlugin:
        return FaultPlugin(
            schedule=self.schedule,
            recalibration=self.recalibration,
            specs=self.specs,
            config=self.config,
            fail_error_threshold=self.fail_error_threshold,
            probe_rings=self.probe_rings,
        )

    def run(self, arrival_s: np.ndarray) -> DegradedServingReport:
        """Serve a trace to completion under the fault schedule.

        Raises:
            ValueError: on an empty or unsorted trace.
        """
        plugin = self._make_plugin()
        run = EventLoopKernel(
            self.model, self.policy, (plugin,), mode=self.mode
        ).run(arrival_s)
        return DegradedServingReport(
            policy=self.policy,
            num_cores=run.initial_num_cores,
            arrival_s=run.arrival_s,
            dispatch_s=run.dispatch_s,
            completion_s=run.completion_s,
            batches=run.batches,
            core_busy_s=run.core_busy_s,
            schedule_name=self.schedule.name,
            recalibration_name=(
                None if self.recalibration is None else self.recalibration.name
            ),
            accuracy_proxy=np.array(plugin.proxies),
            batch_num_cores=np.array(plugin.widths, dtype=int),
            batch_snapshots=tuple(plugin.snapshots),
            core_downtime_s=tuple(plugin.downtime),
            final_core_errors=tuple(state.error for state in plugin.states),
            recalibrations=tuple(plugin.recalibrations),
            repartitions=tuple(plugin.repartitions),
        )


def simulate_degraded_serving(
    network: Network,
    arrival_s: np.ndarray,
    policy: BatchingPolicy,
    schedule: FaultSchedule,
    num_cores: int,
    recalibration: RecalibrationPolicy | None = None,
    config: PCNNAConfig | None = None,
    clamp_cores: bool = False,
    repartition: bool = True,
    fail_error_threshold: float = 0.5,
    mode: str = "auto",
) -> DegradedServingReport:
    """One-call degraded serving simulation for an executable network.

    Raises:
        ValueError: on a conv-free network, invalid ``num_cores``, or a
            bad trace.
    """
    specs = network.conv_specs()
    model = PipelineServiceModel.from_specs(
        specs, num_cores, config, clamp_cores
    )
    simulator = DegradedServingSimulator(
        model,
        policy,
        schedule,
        recalibration=recalibration,
        specs=specs if repartition else None,
        config=config,
        fail_error_threshold=fail_error_threshold,
        mode=mode,
    )
    return simulator.run(arrival_s)


@dataclass(frozen=True)
class DegradedReplay:
    """Degraded engine replay of a simulated schedule.

    Attributes:
        outputs: per-request outputs with each batch's conv weights
            pushed through the cores' measured drift transfer.
        reference_outputs: the same batches executed fault-free.
        divergence_per_batch: per-batch ``max |degraded - reference|``
            — the golden-output divergence the accuracy proxy bounds.
    """

    outputs: np.ndarray
    reference_outputs: np.ndarray
    divergence_per_batch: np.ndarray

    @property
    def max_divergence(self) -> float:
        """Worst per-batch golden-output divergence."""
        return float(self.divergence_per_batch.max())


def _degraded_conv_weights(
    weights: np.ndarray, snapshot: CoreDriftSnapshot
) -> np.ndarray:
    """Push one conv layer's kernels through a core's drift transfer.

    The engine programs each kernel into its weight bank after an affine
    scale to ``[-1, 1]`` (per-kernel max-abs, the scaling
    :class:`~repro.core.accelerator.PhotonicConvolution` applies), so
    the drift acts in the bank domain: normalize per kernel, apply the
    commanded→effective map, pin dead-ring bank positions to the rail
    (``-tia_gain``), and scale back.
    """
    kernels = weights.reshape(weights.shape[0], -1)
    scales = np.max(np.abs(kernels), axis=1, keepdims=True)
    safe = np.where(scales > 0.0, scales, 1.0)
    normalized = kernels / safe
    effective = drift_transfer(
        normalized, snapshot.residual_shift_hz, snapshot.tia_gain
    )
    if snapshot.dead_rings:
        positions = np.unique(
            [ring % kernels.shape[1] for ring in snapshot.dead_rings]
        )
        effective[:, positions] = -snapshot.tia_gain
    # Scale back by the true per-kernel scale: all-zero kernels stay zero.
    return (effective * scales).reshape(weights.shape)


def _degraded_network(
    network: Network,
    snapshots: tuple[CoreDriftSnapshot, ...],
    config: PCNNAConfig | None,
) -> Network:
    """The network with each core's conv layers drift-perturbed."""
    _, slices = stage_layer_slices(
        network, len(snapshots), config, clamp_cores=True
    )
    layers = list(network.layers)
    for (start, end), snapshot in zip(slices, snapshots):
        if snapshot.pristine:
            continue
        for index in range(start, end):
            layer = network.layers[index]
            if not isinstance(layer, Conv2D):
                continue
            layers[index] = Conv2D(
                _degraded_conv_weights(layer.weights, snapshot),
                stride=layer.stride,
                padding=layer.padding,
                bias=layer.bias,
                name=layer.name,
            )
    return Network(
        layers, input_shape=network.input_shape, name=f"{network.name}/degraded"
    )


def replay_on_engine_degraded(
    network: Network,
    report: DegradedServingReport,
    inputs: np.ndarray,
    config: PCNNAConfig | None = None,
) -> DegradedReplay:
    """Execute a degraded schedule's batches on the real engine.

    Each simulated batch runs twice through
    :func:`~repro.core.serving.run_network_pipelined` at the pipeline
    width the batch actually saw: once fault-free and once with every
    core's conv weights pushed through that core's measured drift
    transfer (:func:`~repro.photonics.drift.drift_transfer`, dead rings
    pinned to the rail).  The per-batch max divergence is the
    golden-output error the simulator's photodiode-level accuracy proxy
    is a bound for.  Under a zero-magnitude schedule every snapshot is
    pristine and the degraded outputs are bit-identical to
    :func:`~repro.core.traffic.replay_on_engine`.

    Args:
        network: the served network.
        report: a degraded simulation over ``inputs.shape[0]`` requests.
        inputs: per-request inputs.
        config: hardware configuration for execution.

    Returns:
        A :class:`DegradedReplay`.

    Raises:
        ValueError: if ``inputs`` does not cover the report's requests.
    """
    inputs = validate_replay_inputs(network, report, inputs)
    outputs: np.ndarray | None = None
    reference: np.ndarray | None = None
    divergence = np.empty(len(report.batches))
    for batch, snapshots in zip(report.batches, report.batch_snapshots):
        stop = batch.first_request + batch.size
        window = inputs[batch.first_request : stop]
        width = len(snapshots)
        clean = run_network_pipelined(network, window, width, config)
        if all(snapshot.pristine for snapshot in snapshots):
            # Healthy batch: the degraded run is the clean run by
            # construction, so skip the second engine pass.
            degraded_outputs = clean.outputs
        else:
            degraded_net = _degraded_network(network, snapshots, config)
            degraded_outputs = run_network_pipelined(
                degraded_net, window, width, config
            ).outputs
        if outputs is None:
            shape = (report.num_requests, *clean.outputs.shape[1:])
            outputs = np.empty(shape)
            reference = np.empty(shape)
        outputs[batch.first_request : stop] = degraded_outputs
        reference[batch.first_request : stop] = clean.outputs
        divergence[batch.index] = float(
            np.max(np.abs(degraded_outputs - clean.outputs))
        )
    assert outputs is not None and reference is not None
    return DegradedReplay(
        outputs=outputs,
        reference_outputs=reference,
        divergence_per_batch=divergence,
    )


__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "RecalibrationPolicy",
    "RecalibrationRecord",
    "RepartitionRecord",
    "CoreDriftSnapshot",
    "CoreHealthState",
    "DegradedServingReport",
    "DegradedServingSimulator",
    "DegradedReplay",
    "FaultPlugin",
    "simulate_degraded_serving",
    "replay_on_engine_degraded",
]
