"""Silicon/photonic area roll-up (paper section V-A plus periphery).

The paper quantifies microring area (25 um x 25 um per ring; 3456 rings
= 2.2 mm^2) and lists the areas of the cited periphery (DAC 0.52 mm^2
each, SRAM macro 0.443 mm^2).  :func:`estimate_layer_area` combines them
into a per-layer floorplan estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical import bank_area_mm2, rings_per_kernel_bank
from repro.core.config import PCNNAConfig
from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class AreaReport:
    """Component area breakdown (mm^2).

    Attributes:
        spec: the analyzed layer.
        rings_mm2: microring area for the instantiated banks.
        dac_mm2: input + weight DAC area.
        adc_mm2: ADC area.
        sram_mm2: SRAM macro area.
        num_banks: weight banks instantiated.
        rings_per_bank: rings per bank.
    """

    spec: ConvLayerSpec
    rings_mm2: float
    dac_mm2: float
    adc_mm2: float
    sram_mm2: float
    num_banks: int
    rings_per_bank: int

    @property
    def total_mm2(self) -> float:
        """Total estimated area (mm^2)."""
        return self.rings_mm2 + self.dac_mm2 + self.adc_mm2 + self.sram_mm2


def estimate_layer_area(
    spec: ConvLayerSpec, config: PCNNAConfig | None = None
) -> AreaReport:
    """Floorplan estimate for running one layer on PCNNA.

    The ring area covers the instantiated banks (all K kernels unless
    ``max_parallel_kernels`` caps them); periphery areas come from the
    cited parts' datasheets.
    """
    cfg = config if config is not None else PCNNAConfig()
    if cfg.max_parallel_kernels is None:
        num_banks = spec.num_kernels
    else:
        num_banks = min(spec.num_kernels, cfg.max_parallel_kernels)
    per_bank = rings_per_kernel_bank(spec)
    rings_mm2 = bank_area_mm2(num_banks * per_bank, cfg)
    dac_mm2 = (
        cfg.num_input_dacs * cfg.input_dac.area_mm2
        + cfg.num_weight_dacs * cfg.weight_dac.area_mm2
    )
    adc_mm2 = cfg.num_adcs * cfg.adc.area_mm2
    return AreaReport(
        spec=spec,
        rings_mm2=rings_mm2,
        dac_mm2=dac_mm2,
        adc_mm2=adc_mm2,
        sram_mm2=cfg.sram.area_mm2,
        num_banks=num_banks,
        rings_per_bank=per_bank,
    )


def network_max_area_mm2(
    specs: list[ConvLayerSpec], config: PCNNAConfig | None = None
) -> float:
    """Area of the largest layer — the PCNNA chip is sized for it.

    PCNNA reuses one physical layer's hardware across the network
    (paper section IV), so the chip must fit the largest layer mapping.
    """
    cfg = config if config is not None else PCNNAConfig()
    return max(estimate_layer_area(spec, cfg).total_mm2 for spec in specs)
