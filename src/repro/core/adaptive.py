"""The adaptive control plane: telemetry-driven serving policies.

Every operator decision in the serving stack so far is a frozen
constant: :class:`~repro.core.faults.RecalibrationPolicy` fires the
moment a core's measured weight error crosses a threshold, a tenant's
``queue_cap`` sheds load at a fixed occupancy, and
:class:`~repro.core.cluster.ElasticReallocation` moves cores at fixed
pressure ratios.  This module closes ROADMAP item 4's loop — the same
decisions, made *online* from the telemetry the simulators already
measure on the shared clock:

* :class:`AdaptiveRecalibration` — an EWMA drift estimator per core
  plus cost-aware scheduling: recalibrate when the *smoothed, projected*
  error crosses the threshold (a transient excursion no longer buys a
  wasted drain), defer when the kernel queue is deep and the projected
  divergence still has headroom, and stop paying downtime once a
  per-core budget is spent.  Runs as :class:`AdaptiveRecalPlugin` on the
  unified event-loop kernel, and as a drop-in recalibration policy on
  the cluster runtime.
* :class:`BurnRateAdmission` — SLO-burn-rate admission for cluster
  tenants: alongside the static occupancy cap, shed arrivals while the
  fraction of recently completed requests over the SLO latency exceeds
  a burn-rate budget (the tail is protected *before* the queue fills).
* :class:`PressureController` — :class:`ElasticReallocation` thresholds
  driven by observed queue pressure: the higher the peak pressure, the
  lower the ratio/min-queue barriers, so cores move sooner exactly when
  the pool is drowning.

The load-bearing contract is differential, in the style of the PR 4
zero-magnitude and PR 6 vectorized-vs-reference pins: every controller
at its **frozen** setting (:meth:`AdaptiveRecalibration.frozen`,
:meth:`BurnRateAdmission.disabled`, :meth:`PressureController.inert`)
makes decision-for-decision the same calls as its static baseline, so
the run is *bit-identical* — same batches, same latency streams, same
busy ledgers.  ``tests/test_adaptive.py`` pins all three.

Controllers only read :class:`~repro.core.simkernel.KernelTelemetry`
snapshots and the health states' measured errors; the dispatch-planning
and pipeline-walk arithmetic is never touched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.cluster import ElasticReallocation
from repro.core.config import PCNNAConfig
from repro.core.faults import (
    CoreHealthState,
    DegradedServingReport,
    FaultPlugin,
    FaultSchedule,
    RecalibrationPolicy,
)
from repro.core.simkernel import (
    BatchingPolicy,
    DispatchContext,
    EventLoopKernel,
)
from repro.core.traffic import PipelineServiceModel
from repro.nn.network import Network

# Contract markers checked by `python -m repro.lint` (BIT001/PERF001):
# frozen-setting runs are pinned bit-identical to the static policies,
# and the EWMA decider is advanced at every dispatch of the event loop.
__bit_identity__ = True
__hot_path__ = ("EwmaRecalDecider",)

DECISION_ACTIONS: tuple[str, ...] = (
    "recalibrate",
    "defer-pressure",
    "defer-budget",
)
"""Actions an :class:`AdaptiveDecision` may record."""


def _require_gain(name: str, value: float, low: float = 0.0) -> None:
    """Reject non-finite or out-of-range controller gains eagerly."""
    if math.isnan(value) or value < low:
        raise ValueError(
            f"{name} must be a finite number >= {low:g}, got {value!r}"
        )


@dataclass(frozen=True)
class AdaptiveRecalibration:
    """EWMA drift estimation + cost-aware recalibration scheduling.

    Wraps a static :class:`RecalibrationPolicy` (the threshold and the
    calibration-loop costs) and replaces its *trigger* with a feedback
    controller.  At every dispatch the controller folds the core's
    measured weight error into an EWMA level and slope, projects the
    error ``lead_time_s`` ahead, and fires only when the projection
    crosses the base threshold — so a short crosstalk excursion decays
    out of the estimate instead of buying a drain, while sustained
    drift still triggers (slightly early, if a lead time is set).  Two
    cost gates trade recal downtime against projected divergence: a
    deep kernel queue defers the drain while the projection has
    headroom, and a per-core downtime budget stops paying entirely.

    At the :meth:`frozen` setting the controller is decision-for-
    decision the static policy: ``smoothing=1`` makes the EWMA the raw
    error, ``lead_time_s=0`` makes the projection the level, and the
    gates never bind — the differential pin of
    ``tests/test_adaptive.py``.

    Attributes:
        base: the static policy supplying threshold and costs.
        smoothing: EWMA weight on the newest error sample, in (0, 1].
        lead_time_s: projection horizon for the drift slope (>= 0).
        pressure_hold: defer recalibration while the kernel queue holds
            at least this many requests — unless the projection exceeds
            ``hold_ceiling`` times the threshold.  ``None`` disables
            the gate.
        hold_ceiling: threshold multiple beyond which a pressure-held
            recalibration fires anyway (>= 1).
        downtime_budget_s: per-core recalibration downtime budget;
            ``inf`` is unlimited.
        name: label used in reports and sweep tables.

    Raises:
        ValueError: on a non-finite or out-of-range gain.
    """

    base: RecalibrationPolicy
    smoothing: float = 0.3
    lead_time_s: float = 0.0
    pressure_hold: int | None = None
    hold_ceiling: float = 2.0
    downtime_budget_s: float = math.inf
    name: str = "ewma-recal"

    def __post_init__(self) -> None:
        if (
            math.isnan(self.smoothing)
            or not 0.0 < self.smoothing <= 1.0
        ):
            raise ValueError(
                f"smoothing must be a finite number in (0, 1], got "
                f"{self.smoothing!r}"
            )
        if math.isinf(self.lead_time_s):
            raise ValueError(
                f"lead time must be finite, got {self.lead_time_s!r}"
            )
        _require_gain("lead time", self.lead_time_s)
        if self.pressure_hold is not None and self.pressure_hold < 1:
            raise ValueError(
                f"pressure hold must be >= 1, got {self.pressure_hold!r}"
            )
        _require_gain("hold ceiling", self.hold_ceiling, low=1.0)
        if math.isnan(self.downtime_budget_s) or self.downtime_budget_s <= 0.0:
            raise ValueError(
                f"downtime budget must be > 0, got {self.downtime_budget_s!r}"
            )

    @classmethod
    def frozen(cls, base: RecalibrationPolicy) -> "AdaptiveRecalibration":
        """The degenerate setting: decision-identical to ``base``.

        No smoothing memory, no projection, no gates — the trigger
        reduces to ``error >= base.error_threshold`` exactly, which is
        the bit-identity anchor of the differential tests.
        """
        return cls(
            base=base,
            smoothing=1.0,
            lead_time_s=0.0,
            pressure_hold=None,
            downtime_budget_s=math.inf,
            name=f"{base.name}-frozen",
        )

    def decider(self) -> "EwmaRecalDecider":
        """A fresh per-run decision engine for this configuration."""
        return EwmaRecalDecider(self)


@dataclass(frozen=True, slots=True)
class AdaptiveDecision:
    """One controller decision, as the event loop saw it.

    Attributes:
        time_s: dispatch instant the controller decided at.
        core: physical core the decision concerns.
        action: one of :data:`DECISION_ACTIONS`.
        error: the core's raw measured weight error.
        smoothed: the EWMA error level at the decision.
        projected: the level projected ``lead_time_s`` ahead.
        queued: kernel queue depth the cost gate saw (-1 when the
            pressure gate is disabled and the depth was not sampled).
    """

    time_s: float
    core: int
    action: str
    error: float
    smoothed: float
    projected: float
    queued: int = -1


class EwmaRecalDecider:
    """Per-run runtime state of one :class:`AdaptiveRecalibration`.

    Holds the per-core EWMA level/slope estimates and the decision log;
    deterministic by construction — the same telemetry sequence always
    produces the same actions, the property the hypothesis suite pins.
    """

    __slots__ = (
        "controller",
        "decisions",
        "_level",
        "_slope",
        "_last_error",
        "_last_time",
    )

    def __init__(self, controller: AdaptiveRecalibration) -> None:
        self.controller = controller
        self.decisions: list[AdaptiveDecision] = []
        self._level: dict[int, float] = {}
        self._slope: dict[int, float] = {}
        self._last_error: dict[int, float] = {}
        self._last_time: dict[int, float] = {}

    def observe(self, core: int, error: float, time_s: float) -> float:
        """Fold one error sample into the core's estimate.

        Returns the projected error (EWMA level plus the non-negative
        EWMA slope times the lead time).  With ``smoothing=1`` the
        level is the raw sample and the slope never feeds the
        projection, so the return value *is* ``error`` bit-for-bit.
        """
        alpha = self.controller.smoothing
        prev = self._level.get(core)
        if prev is None:
            level = error
            slope = 0.0
        else:
            level = alpha * error + (1.0 - alpha) * prev
            dt = time_s - self._last_time[core]
            rate = (error - self._last_error[core]) / dt if dt > 0.0 else 0.0
            slope = alpha * rate + (1.0 - alpha) * self._slope[core]
        self._level[core] = level
        self._slope[core] = slope
        self._last_error[core] = error
        self._last_time[core] = time_s
        return level + max(slope, 0.0) * self.controller.lead_time_s

    def decide(
        self,
        state: CoreHealthState,
        time_s: float,
        downtime_s: float,
        queued: int | None = None,
    ) -> bool:
        """Should this core recalibrate at this dispatch instant?

        Mirrors :meth:`CoreHealthState.should_recalibrate` with the
        estimator in place of the raw error, then applies the cost
        gates.  Every would-fire decision (fired or deferred) is
        appended to :attr:`decisions`.
        """
        controller = self.controller
        projected = self.observe(state.core, state.error, time_s)
        if state.recal_exhausted:
            return False
        threshold = controller.base.error_threshold
        if projected < threshold:
            return False
        action = "recalibrate"
        if downtime_s >= controller.downtime_budget_s:
            action = "defer-budget"
        elif (
            controller.pressure_hold is not None
            and queued is not None
            and queued >= controller.pressure_hold
            and projected < controller.hold_ceiling * threshold
        ):
            action = "defer-pressure"
        self.decisions.append(
            AdaptiveDecision(
                time_s=time_s,
                core=state.core,
                action=action,
                error=state.error,
                smoothed=self._level[state.core],
                projected=projected,
                queued=-1 if queued is None else queued,
            )
        )
        if action != "recalibrate":
            return False
        # Recalibration resets the core's error; drop the estimator
        # memory so the next sample re-seeds from the restored state.
        del self._level[state.core]
        del self._slope[state.core]
        return True


class AdaptiveRecalPlugin(FaultPlugin):
    """:class:`FaultPlugin` with the EWMA controller as the trigger.

    Only the trigger decision differs: drift state machines, the
    calibration loop, the downtime arithmetic, and fault-aware
    repartitioning are inherited verbatim, which is what makes the
    frozen controller bit-identical to the static policy.

    Args:
        schedule: the fault schedule to inject.
        controller: the adaptive recalibration controller.
        specs: the served network's conv layers (enables repartition).
        config: hardware configuration used when repartitioning.
        fail_error_threshold: weight error beyond which a core is
            declared failed and drained out of the pipeline.
        probe_rings: rings in each core's accuracy-probe bank.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        controller: AdaptiveRecalibration,
        specs=None,
        config: PCNNAConfig | None = None,
        fail_error_threshold: float = 0.5,
        probe_rings: int = 8,
    ) -> None:
        super().__init__(
            schedule,
            recalibration=controller.base,
            specs=specs,
            config=config,
            fail_error_threshold=fail_error_threshold,
            probe_rings=probe_rings,
        )
        self.controller = controller
        self.decider = controller.decider()

    def on_run_start(self, ctx: DispatchContext) -> None:
        """Reset the inherited records plus the decision engine."""
        super().on_run_start(ctx)
        self.decider = self.controller.decider()

    def _should_recalibrate(
        self, ctx: DispatchContext, state: CoreHealthState, dispatch_s: float
    ) -> bool:
        queued = (
            ctx.telemetry(dispatch_s).queued
            if self.controller.pressure_hold is not None
            else None
        )
        return self.decider.decide(
            state, dispatch_s, self.downtime[state.core], queued=queued
        )


@dataclass(frozen=True)
class AdaptiveServingReport(DegradedServingReport):
    """A :class:`DegradedServingReport` plus the controller's log.

    Attributes:
        decisions: every would-fire controller decision, in order
            (fired recalibrations and cost-gate deferrals alike).
    """

    decisions: tuple[AdaptiveDecision, ...] = ()

    @property
    def num_deferrals(self) -> int:
        """Would-fire decisions the cost gates deferred."""
        return len(
            [d for d in self.decisions if d.action != "recalibrate"]
        )

    def describe(self) -> str:
        """The degraded summary block plus the controller line."""
        return "\n".join(
            [
                super().describe(),
                f"  controller [{self.recalibration_name}]: "
                f"{len(self.decisions)} decisions, "
                f"{self.num_deferrals} deferred",
            ]
        )


def simulate_adaptive_serving(
    network: Network,
    arrival_s: np.ndarray,
    policy: BatchingPolicy,
    schedule: FaultSchedule,
    num_cores: int,
    controller: AdaptiveRecalibration,
    config: PCNNAConfig | None = None,
    clamp_cores: bool = False,
    repartition: bool = True,
    fail_error_threshold: float = 0.5,
    mode: str = "auto",
) -> AdaptiveServingReport:
    """One-call degraded serving under the EWMA recal controller.

    The adaptive sibling of
    :func:`~repro.core.faults.simulate_degraded_serving`: identical
    kernel, identical fault engine, with the controller deciding when
    each core drains.  Under :meth:`AdaptiveRecalibration.frozen` the
    report is bit-identical to the static policy's.

    Raises:
        ValueError: on a conv-free network, invalid ``num_cores``, or a
            bad trace.
    """
    specs = network.conv_specs()
    model = PipelineServiceModel.from_specs(
        specs, num_cores, config, clamp_cores
    )
    plugin = AdaptiveRecalPlugin(
        schedule,
        controller,
        specs=specs if repartition else None,
        config=config,
        fail_error_threshold=fail_error_threshold,
    )
    run = EventLoopKernel(model, policy, (plugin,), mode=mode).run(arrival_s)
    return AdaptiveServingReport(
        policy=policy,
        num_cores=run.initial_num_cores,
        arrival_s=run.arrival_s,
        dispatch_s=run.dispatch_s,
        completion_s=run.completion_s,
        batches=run.batches,
        core_busy_s=run.core_busy_s,
        schedule_name=schedule.name,
        recalibration_name=controller.name,
        accuracy_proxy=np.array(plugin.proxies),
        batch_num_cores=np.array(plugin.widths, dtype=int),
        batch_snapshots=tuple(plugin.snapshots),
        core_downtime_s=tuple(plugin.downtime),
        final_core_errors=tuple(state.error for state in plugin.states),
        recalibrations=tuple(plugin.recalibrations),
        repartitions=tuple(plugin.repartitions),
        decisions=tuple(plugin.decider.decisions),
    )


@dataclass(frozen=True)
class BurnRateAdmission:
    """SLO-burn-rate admission control for one cluster tenant.

    The static occupancy cap judges only *queue length*; this
    controller also watches the tenant's recent completions.  An
    arrival is shed when the fraction of the last ``window`` completed
    requests whose latency exceeded ``slo_latency_s`` is above
    ``max_burn_rate`` — the tail is protected while the queue is still
    legal.  Judgments are online: only completions of batches already
    sealed before the arrival's instant are visible, exactly the
    information a real admission controller has.

    ``max_burn_rate=inf`` (:meth:`disabled`) never sheds on burn, so
    admission reduces to the occupancy cap decision-for-decision — the
    bit-identity anchor of the differential tests.

    Attributes:
        slo_latency_s: the tenant's latency SLO.
        max_burn_rate: tolerated fraction of recent completions over
            the SLO; ``inf`` disables burn shedding.
        window: completions in the burn-rate window (>= 1).
        queue_cap: static occupancy cap enforced alongside the burn
            rate; ``None`` leaves occupancy unbounded.
        name: label used in reports and sweep tables.

    Raises:
        ValueError: on a non-finite SLO, a negative or NaN burn rate,
            or a bad window/cap.
    """

    slo_latency_s: float
    max_burn_rate: float = 0.5
    window: int = 32
    queue_cap: int | None = None
    name: str = "burn-rate"

    def __post_init__(self) -> None:
        if self.slo_latency_s <= 0.0 or not math.isfinite(self.slo_latency_s):
            raise ValueError(
                f"SLO latency must be finite and > 0, got "
                f"{self.slo_latency_s!r}"
            )
        _require_gain("burn rate", self.max_burn_rate)
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window!r}")
        if self.queue_cap is not None and self.queue_cap < 1:
            raise ValueError(
                f"queue cap must be >= 1, got {self.queue_cap!r}"
            )

    @classmethod
    def disabled(
        cls, slo_latency_s: float = 1e-3, queue_cap: int | None = None
    ) -> "BurnRateAdmission":
        """The degenerate setting: the static occupancy cap alone."""
        return cls(
            slo_latency_s=slo_latency_s,
            max_burn_rate=math.inf,
            queue_cap=queue_cap,
            name="burn-disabled",
        )

    @property
    def enabled(self) -> bool:
        """Whether burn shedding can ever fire."""
        return math.isfinite(self.max_burn_rate)

    def burn_rate(self, latency_s: np.ndarray) -> float:
        """Fraction of the trailing window's latencies over the SLO.

        Zero observations — a tenant with no completed requests yet, or
        zero offered load — burn nothing: admission stays open until
        there is evidence of SLO burn.
        """
        latencies = np.asarray(latency_s, dtype=float)
        if latencies.size == 0:
            return 0.0
        recent = latencies[-self.window :]
        over = int(np.count_nonzero(recent > self.slo_latency_s))
        return over / int(recent.size)

    def sheds(self, burn: float) -> bool:
        """Whether this burn rate sheds the arrival."""
        return burn > self.max_burn_rate


@dataclass(frozen=True)
class PressureController:
    """:class:`ElasticReallocation` thresholds driven by observed pressure.

    The static policy's ``pressure_ratio`` / ``min_queue`` barriers are
    constants tuned for thrash avoidance; under a genuine load spike
    they delay the very moves that would relieve it.  This controller
    scales both barriers down by ``1 + gain * peak_pressure`` — the
    higher the worst observed queue pressure (queued requests per
    allocated core), the sooner a core moves — with floors of 1 so a
    calm pool behaves exactly like the static policy.

    ``gain=0`` (:meth:`inert`) returns the base thresholds unchanged,
    decision-for-decision the static reallocator — the bit-identity
    anchor of the differential tests.

    Attributes:
        base: the static reallocation policy supplying the barriers.
        gain: pressure feedback gain (>= 0; 0 is inert).
        name: label used in reports and sweep tables.

    Raises:
        ValueError: on a non-finite or negative gain.
    """

    base: ElasticReallocation
    gain: float = 0.25
    name: str = "pressure"

    def __post_init__(self) -> None:
        if math.isinf(self.gain):
            raise ValueError(f"gain must be finite, got {self.gain!r}")
        _require_gain("gain", self.gain)

    @classmethod
    def inert(
        cls, base: ElasticReallocation | None = None
    ) -> "PressureController":
        """The degenerate setting: the static thresholds unchanged."""
        return cls(
            base=base if base is not None else ElasticReallocation(),
            gain=0.0,
            name="pressure-inert",
        )

    def thresholds(self, peak_pressure: float) -> tuple[float, int]:
        """Effective ``(pressure_ratio, min_queue)`` at this pressure."""
        if self.gain == 0.0:
            return self.base.pressure_ratio, self.base.min_queue
        relief = 1.0 + self.gain * max(peak_pressure, 0.0)
        ratio = max(self.base.pressure_ratio / relief, 1.0)
        min_queue = max(int(math.ceil(self.base.min_queue / relief)), 1)
        return ratio, min_queue


__all__ = [
    "DECISION_ACTIONS",
    "AdaptiveDecision",
    "AdaptiveRecalPlugin",
    "AdaptiveRecalibration",
    "AdaptiveServingReport",
    "BurnRateAdmission",
    "EwmaRecalDecider",
    "PressureController",
    "simulate_adaptive_serving",
]
