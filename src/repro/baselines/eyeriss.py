"""Eyeriss baseline model (Chen et al., ISCA/ISSCC 2016, JSSC 2017).

Eyeriss is the primary electronic comparison point of the paper's Fig. 6.
Two latency models are provided:

* :func:`published_layer_time_s` — the per-layer AlexNet processing
  times measured on the Eyeriss chip (JSSC 2017, Table V: 20.9 / 41.9 /
  23.6 / 18.4 / 10.5 ms for a batch of 4), normalized per image.  This is
  what a reader of the PCNNA paper would compare against, so Fig. 6 uses
  it.
* :class:`EyerissModel` — an analytical row-stationary model
  (``MACs / (num_PEs * utilization * f_clock)``) parameterized by the
  published architecture (168 PEs at 200 MHz) and per-layer utilizations.
  It cross-checks the published numbers to within ~2x and supports
  non-AlexNet workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.shapes import ConvLayerSpec

EYERISS_NUM_PES = 168
"""Processing elements in the Eyeriss array (12 x 14)."""

EYERISS_CLOCK_HZ = 200e6
"""Eyeriss core clock."""

EYERISS_BATCH_SIZE = 4
"""Batch size of the published AlexNet measurements."""

PUBLISHED_ALEXNET_LAYER_TIMES_S: dict[str, float] = {
    "conv1": 20.9e-3,
    "conv2": 41.9e-3,
    "conv3": 23.6e-3,
    "conv4": 18.4e-3,
    "conv5": 10.5e-3,
}
"""Measured AlexNet conv processing times for a batch of 4 (JSSC'17 T.V)."""

# Average PE array utilization per AlexNet layer, from the Eyeriss papers'
# reported mapping efficiency (approximate; used by the analytical model).
_ALEXNET_UTILIZATION: dict[str, float] = {
    "conv1": 0.76,
    "conv2": 0.78,
    "conv3": 0.88,
    "conv4": 0.88,
    "conv5": 0.88,
}

_DEFAULT_UTILIZATION = 0.80
"""Utilization assumed for layers without a published figure."""


def published_layer_time_s(layer_name: str, per_image: bool = True) -> float:
    """Measured Eyeriss time for one AlexNet conv layer (s).

    Args:
        layer_name: ``"conv1"`` .. ``"conv5"``.
        per_image: divide the batch-of-4 measurement by 4.

    Raises:
        KeyError: if the layer has no published measurement.
    """
    if layer_name not in PUBLISHED_ALEXNET_LAYER_TIMES_S:
        raise KeyError(
            f"no published Eyeriss time for {layer_name!r}; have "
            f"{sorted(PUBLISHED_ALEXNET_LAYER_TIMES_S)}"
        )
    time_s = PUBLISHED_ALEXNET_LAYER_TIMES_S[layer_name]
    if per_image:
        time_s /= EYERISS_BATCH_SIZE
    return time_s


@dataclass(frozen=True)
class EyerissModel:
    """Analytical row-stationary latency/energy model.

    Attributes:
        num_pes: processing elements.
        clock_hz: core clock.
        default_utilization: PE utilization for unknown layers.
        energy_per_mac_j: average energy per MAC including on-chip data
            movement (Eyeriss reports ~278 mW at 34.7 fps on AlexNet,
            which is roughly 16 pJ/MAC end to end).
    """

    num_pes: int = EYERISS_NUM_PES
    clock_hz: float = EYERISS_CLOCK_HZ
    default_utilization: float = _DEFAULT_UTILIZATION
    energy_per_mac_j: float = 16e-12

    def __post_init__(self) -> None:
        if self.num_pes <= 0:
            raise ValueError(f"PE count must be positive, got {self.num_pes!r}")
        if self.clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_hz!r}")
        if not 0 < self.default_utilization <= 1:
            raise ValueError(
                f"utilization must be in (0, 1], got {self.default_utilization!r}"
            )

    def utilization_for(self, spec: ConvLayerSpec) -> float:
        """Per-layer utilization: published value if known, else default."""
        return _ALEXNET_UTILIZATION.get(spec.name, self.default_utilization)

    def layer_time_s(self, spec: ConvLayerSpec) -> float:
        """Analytical layer latency: ``MACs / (PEs * util * f)`` (s)."""
        effective_macs_per_s = (
            self.num_pes * self.utilization_for(spec) * self.clock_hz
        )
        return spec.macs / effective_macs_per_s

    def layer_energy_j(self, spec: ConvLayerSpec) -> float:
        """Analytical layer energy (J)."""
        return spec.macs * self.energy_per_mac_j

    def network_time_s(self, specs: list[ConvLayerSpec]) -> float:
        """Sum of analytical layer latencies (s)."""
        return sum(self.layer_time_s(spec) for spec in specs)
