"""YodaNN baseline model (Andri et al., ISVLSI 2016).

YodaNN is the second electronic comparison point in the paper's Fig. 6: a
binary-weight CNN accelerator in 65 nm whose sum-of-products datapath
trades weight precision for throughput and energy.  No per-layer AlexNet
measurements were published, so the model is a throughput model:

    T_layer = MACs / (peak_macs_per_s * utilization)

with the peak derived from the published architecture: 32 sum-of-product
units, each covering a 7 x 7 filter window (49 MACs) per cycle, at
480 MHz — 752 GMAC/s peak at the 1.2 V operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.shapes import ConvLayerSpec

YODANN_NUM_SOP_UNITS = 32
"""Parallel sum-of-products units."""

YODANN_MACS_PER_UNIT = 49
"""MACs per unit per cycle (7 x 7 filter window)."""

YODANN_CLOCK_HZ = 480e6
"""Core clock at the 1.2 V high-throughput operating point."""


@dataclass(frozen=True)
class YodaNNModel:
    """Analytical throughput/energy model for YodaNN.

    Attributes:
        num_sop_units: parallel sum-of-product units.
        macs_per_unit: MACs each unit retires per cycle.
        clock_hz: core clock.
        utilization: average datapath utilization (filters smaller than
            7 x 7 leave lanes idle; 0.55 reflects the mix the YodaNN
            paper reports).
        energy_per_mac_j: average energy per MAC (binary weights make
            this very low; ~0.7 pJ at 1.2 V).
    """

    num_sop_units: int = YODANN_NUM_SOP_UNITS
    macs_per_unit: int = YODANN_MACS_PER_UNIT
    clock_hz: float = YODANN_CLOCK_HZ
    utilization: float = 0.55
    energy_per_mac_j: float = 0.7e-12

    def __post_init__(self) -> None:
        if self.num_sop_units <= 0:
            raise ValueError(
                f"unit count must be positive, got {self.num_sop_units!r}"
            )
        if self.macs_per_unit <= 0:
            raise ValueError(
                f"MACs per unit must be positive, got {self.macs_per_unit!r}"
            )
        if self.clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_hz!r}")
        if not 0 < self.utilization <= 1:
            raise ValueError(
                f"utilization must be in (0, 1], got {self.utilization!r}"
            )

    @property
    def peak_macs_per_s(self) -> float:
        """Peak MAC throughput (MAC/s)."""
        return self.num_sop_units * self.macs_per_unit * self.clock_hz

    def layer_time_s(self, spec: ConvLayerSpec) -> float:
        """Layer latency at sustained (utilization-derated) throughput (s)."""
        return spec.macs / (self.peak_macs_per_s * self.utilization)

    def layer_energy_j(self, spec: ConvLayerSpec) -> float:
        """Layer energy (J)."""
        return spec.macs * self.energy_per_mac_j

    def network_time_s(self, specs: list[ConvLayerSpec]) -> float:
        """Sum of layer latencies (s)."""
        return sum(self.layer_time_s(spec) for spec in specs)
