"""Roofline-style CPU/GPU reference models.

Not part of the paper's Fig. 6, but useful context in the examples and
extension benchmarks: a general-purpose device's conv latency is the
maximum of its compute-bound and memory-bound times (the roofline model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class RooflineDevice:
    """A compute device characterized by peak FLOPS and memory bandwidth.

    Attributes:
        name: device label.
        peak_macs_per_s: peak MAC throughput.
        memory_bandwidth_bytes_per_s: peak DRAM bandwidth.
        bytes_per_value: working-set bytes per tensor element.
        compute_efficiency: fraction of peak compute achievable on conv.
    """

    name: str
    peak_macs_per_s: float
    memory_bandwidth_bytes_per_s: float
    bytes_per_value: int = 4
    compute_efficiency: float = 0.7

    def __post_init__(self) -> None:
        if self.peak_macs_per_s <= 0:
            raise ValueError(
                f"peak throughput must be positive, got {self.peak_macs_per_s!r}"
            )
        if self.memory_bandwidth_bytes_per_s <= 0:
            raise ValueError(
                "memory bandwidth must be positive, got "
                f"{self.memory_bandwidth_bytes_per_s!r}"
            )
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError(
                f"efficiency must be in (0, 1], got {self.compute_efficiency!r}"
            )

    def layer_bytes(self, spec: ConvLayerSpec) -> int:
        """Bytes moved for one layer: input + weights + output, once each."""
        values = spec.n_input + spec.total_weights + spec.n_output
        return values * self.bytes_per_value

    def compute_time_s(self, spec: ConvLayerSpec) -> float:
        """Compute-bound layer time (s)."""
        return spec.macs / (self.peak_macs_per_s * self.compute_efficiency)

    def memory_time_s(self, spec: ConvLayerSpec) -> float:
        """Memory-bound layer time (s)."""
        return self.layer_bytes(spec) / self.memory_bandwidth_bytes_per_s

    def layer_time_s(self, spec: ConvLayerSpec) -> float:
        """Roofline layer time: max(compute, memory) (s)."""
        return max(self.compute_time_s(spec), self.memory_time_s(spec))

    def network_time_s(self, specs: list[ConvLayerSpec]) -> float:
        """Sum of roofline layer times (s)."""
        return sum(self.layer_time_s(spec) for spec in specs)


DESKTOP_CPU = RooflineDevice(
    name="desktop-cpu",
    peak_macs_per_s=200e9,
    memory_bandwidth_bytes_per_s=40e9,
)
"""A 2018-era desktop CPU (AVX2-class, ~0.4 TFLOPS fp32)."""

DATACENTER_GPU = RooflineDevice(
    name="datacenter-gpu",
    peak_macs_per_s=6e12,
    memory_bandwidth_bytes_per_s=700e9,
)
"""A 2018-era datacenter GPU (~12 TFLOPS fp32)."""
