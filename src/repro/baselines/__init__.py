"""Electronic baseline models for the paper's Fig. 6 comparison."""

from repro.baselines.cpu_gpu import DATACENTER_GPU, DESKTOP_CPU, RooflineDevice
from repro.baselines.eyeriss import (
    EYERISS_BATCH_SIZE,
    EYERISS_CLOCK_HZ,
    EYERISS_NUM_PES,
    PUBLISHED_ALEXNET_LAYER_TIMES_S,
    EyerissModel,
    published_layer_time_s,
)
from repro.baselines.yodann import (
    YODANN_CLOCK_HZ,
    YODANN_MACS_PER_UNIT,
    YODANN_NUM_SOP_UNITS,
    YodaNNModel,
)

__all__ = [
    "DATACENTER_GPU",
    "DESKTOP_CPU",
    "RooflineDevice",
    "EYERISS_BATCH_SIZE",
    "EYERISS_CLOCK_HZ",
    "EYERISS_NUM_PES",
    "PUBLISHED_ALEXNET_LAYER_TIMES_S",
    "EyerissModel",
    "published_layer_time_s",
    "YODANN_CLOCK_HZ",
    "YODANN_MACS_PER_UNIT",
    "YODANN_NUM_SOP_UNITS",
    "YodaNNModel",
]
