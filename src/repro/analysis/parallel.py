"""Process-parallel grid execution with a byte-identity contract.

Scenario x policy grids (:mod:`repro.analysis.policy_eval`) and the
capacity/placement sweeps (:mod:`repro.analysis.sweeps`) are
embarrassingly parallel: every cell is a pure function of its own
arguments — the traces are explicit arrays, the seeds live inside the
cell spec, and no cell reads global RNG or mutable module state.  That
purity is what makes process parallelism *safe to offer*: fanning the
cells over workers changes wall-clock only, never a byte of output.

The determinism contract :func:`run_grid` guarantees (and the tests
pin):

* ``workers=N`` output is **byte-identical** to ``workers=1`` for every
  ``N`` — same cell results, same order, same array bytes;
* results are merged in **cell order**, regardless of which worker
  finished first;
* ``workers=1`` never touches :mod:`multiprocessing` at all — it is the
  plain serial loop, so it stays usable under restricted environments
  and debuggers, and it *is* the reference the parallel path is
  compared against;
* a cell exception propagates to the caller (the pool tears down and
  re-raises the first failing cell's error).

Workers are spawn-safe by construction: the cell function must be an
importable module-level callable and the cells picklable, so the
executor works under the ``spawn`` start method (the only one macOS and
Windows offer) as well as ``fork``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

_Cell = TypeVar("_Cell")
_Result = TypeVar("_Result")

START_METHODS: tuple[str, ...] = ("auto", "fork", "spawn", "forkserver")
"""Accepted ``start_method`` arguments to :func:`run_grid`."""


def resolve_start_method(start_method: str = "auto") -> str:
    """Pick the concrete multiprocessing start method for a grid run.

    ``"auto"`` prefers ``fork`` where the platform offers it (cheapest:
    workers inherit the loaded interpreter instead of re-importing it)
    and falls back to ``spawn`` elsewhere.  Naming a method explicitly
    validates it against the platform's supported set.

    Raises:
        ValueError: on an unknown or platform-unsupported method.
    """
    if start_method not in START_METHODS:
        raise ValueError(
            f"unknown start method {start_method!r}; have {START_METHODS}"
        )
    available = multiprocessing.get_all_start_methods()
    if start_method == "auto":
        return "fork" if "fork" in available else "spawn"
    if start_method not in available:
        raise ValueError(
            f"start method {start_method!r} unavailable on this platform; "
            f"have {tuple(available)}"
        )
    return start_method


def run_grid(
    fn: Callable[[_Cell], _Result],
    cells: Sequence[_Cell],
    workers: int = 1,
    start_method: str = "auto",
) -> list[_Result]:
    """Map ``fn`` over ``cells``, optionally across worker processes.

    The workhorse behind every ``workers=`` knob in
    :mod:`repro.analysis`: ``workers=1`` runs the plain serial loop in
    this process; ``workers>1`` fans the cells over a process pool and
    merges the results back **in cell order**, so the output is
    byte-identical to serial (see the module docstring for the full
    contract).

    Args:
        fn: a module-level (hence picklable, spawn-safe) callable
            applied to each cell.
        cells: the cell arguments, one per grid cell.
        workers: worker processes; 1 means serial in-process.  The pool
            never exceeds ``len(cells)`` workers.
        start_method: multiprocessing start method, or ``"auto"`` (see
            :func:`resolve_start_method`).

    Returns:
        ``[fn(cell) for cell in cells]`` — by construction for serial,
        by the ordered merge for parallel.

    Raises:
        ValueError: on a non-callable ``fn``, a bad ``workers`` count,
            or a bad ``start_method``.
    """
    if not callable(fn):
        raise ValueError(f"cell function must be callable, got {fn!r}")
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(f"workers must be an int >= 1, got {workers!r}")
    if workers < 1:
        raise ValueError(f"workers must be an int >= 1, got {workers!r}")
    method = resolve_start_method(start_method)
    todo = list(cells)
    if workers == 1 or len(todo) <= 1:
        return [fn(cell) for cell in todo]
    context = multiprocessing.get_context(method)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(todo)), mp_context=context
    ) as pool:
        return list(pool.map(fn, todo))


__all__ = ["START_METHODS", "resolve_start_method", "run_grid"]
