"""Plain-text table rendering for benchmark and example output.

The benchmark harness prints the paper's tables and figure data as
aligned text tables; this module is the one formatter they share.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    Args:
        headers: column headers.
        rows: row cells; each row must have ``len(headers)`` entries.
        title: optional title line above the table.

    Returns:
        The rendered multi-line string.

    Raises:
        ValueError: if any row has the wrong number of cells.
    """
    str_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns: "
                f"{row!r}"
            )
        str_rows.append([_format_cell(cell) for cell in row])

    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    """Format one table cell."""
    if isinstance(cell, float):
        return format_quantity(cell)
    return str(cell)


def format_quantity(value: float, digits: int = 3) -> str:
    """Format a float compactly: fixed for mid-range, scientific outside."""
    if value == 0.0:
        return "0"
    magnitude = abs(value)
    if 1e-3 <= magnitude < 1e6:
        return f"{value:.{digits}g}"
    return f"{value:.{digits - 1}e}"


_TIME_UNITS = [(1.0, "s"), (1e-3, "ms"), (1e-6, "us"), (1e-9, "ns"), (1e-12, "ps")]


def format_time(seconds: float) -> str:
    """Human-readable time with an auto-selected unit.

    Raises:
        ValueError: if ``seconds`` is negative.
    """
    if seconds < 0:
        raise ValueError(f"time must be non-negative, got {seconds!r}")
    if seconds == 0.0:
        return "0 s"
    for scale, unit in _TIME_UNITS:
        if seconds >= scale:
            return f"{seconds / scale:.3g} {unit}"
    return f"{seconds / 1e-12:.3g} ps"


def format_count(value: float) -> str:
    """Human-readable count with K/M/B suffixes."""
    magnitude = abs(value)
    for scale, suffix in [(1e9, "B"), (1e6, "M"), (1e3, "K")]:
        if magnitude >= scale:
            return f"{value / scale:.3g} {suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def format_orders_of_magnitude(ratio: float) -> str:
    """Express a speedup as 'N.N orders of magnitude'.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio!r}")
    return f"{math.log10(ratio):.1f} orders of magnitude"
