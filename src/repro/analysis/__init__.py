"""Result analysis: table/figure rendering and design-space sweeps."""

from repro.analysis.export import results_to_json, series_to_csv, write_text
from repro.analysis.figures import ascii_line_plot, log_bar_chart
from repro.analysis.sweeps import (
    CLUSTER_SWEEP_HEADER,
    FAULT_SWEEP_HEADER,
    SERVING_SWEEP_HEADER,
    ClusterSweepPoint,
    FaultSweepPoint,
    ServingSweepPoint,
    SweepPoint,
    sweep_cluster_serving,
    sweep_fast_clock,
    sweep_fault_tolerance,
    sweep_kernel_count,
    sweep_num_dacs,
    sweep_serving_policies,
    sweep_stride,
)
from repro.analysis.tables import (
    format_count,
    format_orders_of_magnitude,
    format_quantity,
    format_table,
    format_time,
)

__all__ = [
    "results_to_json",
    "series_to_csv",
    "write_text",
    "ascii_line_plot",
    "log_bar_chart",
    "CLUSTER_SWEEP_HEADER",
    "FAULT_SWEEP_HEADER",
    "SERVING_SWEEP_HEADER",
    "ClusterSweepPoint",
    "FaultSweepPoint",
    "ServingSweepPoint",
    "SweepPoint",
    "sweep_cluster_serving",
    "sweep_fast_clock",
    "sweep_fault_tolerance",
    "sweep_kernel_count",
    "sweep_num_dacs",
    "sweep_serving_policies",
    "sweep_stride",
    "format_count",
    "format_orders_of_magnitude",
    "format_quantity",
    "format_table",
    "format_time",
]
