"""Design-space parameter sweeps (extension / ablation experiments).

The paper's analytical framework makes several design parameters
explicit; these sweeps quantify their impact:

* input-DAC count — the eq. 8 bottleneck scales as 1/N_DAC until the
  optical clock floor;
* fast-clock frequency — the eq. 7 optical-core scaling;
* stride — eq. 8's front-end load is proportional to s;
* kernel count — PCNNA's headline property: layer time is flat in K
  while ring count grows linearly (paper section V-B);
* serving policy x core count — the request-level simulator's policy
  comparison (:func:`sweep_serving_policies`), quantifying what dynamic
  batching and pipeline width buy under one shared traffic trace;
* tenant mix x pool size — the cluster runtime's capacity planning
  question (:func:`sweep_cluster_serving`): how much pool does a given
  multi-tenant mix need before shedding stops and every tenant's tail
  latency settles;
* global routing policy x region set — the fleet runtime's placement
  question (:func:`sweep_fleet_serving`): over one shared multi-region
  offered load, what do geo-affinity, least-loaded, and
  latency-weighted routing each cost in tail latency, cross-region
  traffic, and placement efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.core.adaptive import (
    AdaptiveRecalibration,
    simulate_adaptive_serving,
)
from repro.core.analytical import (
    full_system_time_s,
    microrings_filtered,
    optical_core_time_s,
)
from repro.core.cluster import (
    ClusterReport,
    ClusterSimulator,
    ClusterTenant,
    ElasticReallocation,
    RoutingPolicy,
)
from repro.core.config import PCNNAConfig
from repro.core.fleet import (
    FleetAutoscaler,
    FleetReport,
    FleetRuntime,
    GlobalRoutingPolicy,
    RegionSpec,
)
from repro.core.faults import (
    DegradedServingReport,
    DegradedServingSimulator,
    FaultSchedule,
    RecalibrationPolicy,
    simulate_degraded_serving,
)
from repro.analysis.parallel import run_grid
from repro.nn.network import Network
from repro.core.traffic import (
    BatchingPolicy,
    PipelineServiceModel,
    ServingReport,
    ServingSimulator,
)
from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class SweepPoint:
    """One point of a 1-D design sweep.

    Attributes:
        parameter: the swept value.
        optical_time_s: eq. 7 layer time at this point.
        full_system_time_s: DAC-bound layer time at this point.
        rings: filtered ring count at this point.
    """

    parameter: float
    optical_time_s: float
    full_system_time_s: float
    rings: int


# repro: allow[API002] closed-form analytical sweep (paper section V):
# pure function of the layer spec and config, nothing stochastic
def sweep_num_dacs(
    spec: ConvLayerSpec,
    dac_counts: list[int],
    config: PCNNAConfig | None = None,
) -> list[SweepPoint]:
    """Sweep the input-DAC count (the paper's N_DAC = 10 choice)."""
    cfg = config if config is not None else PCNNAConfig()
    points = []
    for count in dac_counts:
        swept = cfg.with_dacs(count)
        points.append(
            SweepPoint(
                parameter=float(count),
                optical_time_s=optical_core_time_s(spec, swept),
                full_system_time_s=full_system_time_s(spec, swept),
                rings=microrings_filtered(spec),
            )
        )
    return points


# repro: allow[API002] closed-form analytical sweep: pure function of
# the layer spec and config, nothing stochastic
def sweep_fast_clock(
    spec: ConvLayerSpec,
    clocks_hz: list[float],
    config: PCNNAConfig | None = None,
) -> list[SweepPoint]:
    """Sweep the optical-core clock (the paper's 5 GHz choice)."""
    cfg = config if config is not None else PCNNAConfig()
    points = []
    for clock in clocks_hz:
        swept = cfg.with_fast_clock(clock)
        points.append(
            SweepPoint(
                parameter=clock,
                optical_time_s=optical_core_time_s(spec, swept),
                full_system_time_s=full_system_time_s(spec, swept),
                rings=microrings_filtered(spec),
            )
        )
    return points


# repro: allow[API002] closed-form analytical sweep: pure function of
# the layer spec and config, nothing stochastic
def sweep_stride(
    spec: ConvLayerSpec,
    strides: list[int],
    config: PCNNAConfig | None = None,
) -> list[SweepPoint]:
    """Sweep the layer stride (eq. 8's front-end load is linear in s)."""
    cfg = config if config is not None else PCNNAConfig()
    points = []
    for stride in strides:
        swept_spec = replace(spec, s=stride)
        points.append(
            SweepPoint(
                parameter=float(stride),
                optical_time_s=optical_core_time_s(swept_spec, cfg),
                full_system_time_s=full_system_time_s(swept_spec, cfg),
                rings=microrings_filtered(swept_spec),
            )
        )
    return points


@dataclass(frozen=True)
class ServingSweepPoint:
    """One (policy, core count) cell of a serving-policy sweep.

    Attributes:
        policy: the batching policy's name.
        num_cores: pipeline width of the cell.
        report: the full simulation result (percentiles, utilization,
            batch records) for drill-down.
        mode: the kernel execution mode the cell ran under (both modes
            are bit-identical; the column records which path produced
            the numbers).
    """

    policy: str
    num_cores: int
    report: ServingReport
    mode: str = "auto"

    @property
    def throughput_rps(self) -> float:
        """Sustained completion rate."""
        return self.report.throughput_rps

    @property
    def p99_s(self) -> float:
        """99th-percentile request latency."""
        return self.report.p99_s

    def row(self) -> list[str]:
        """The cell formatted for a comparison table."""
        report = self.report
        return [
            self.policy,
            str(self.num_cores),
            f"{report.throughput_rps:,.0f}",
            f"{report.p50_s * 1e6:.0f}",
            f"{report.p99_s * 1e6:.0f}",
            f"{report.mean_batch_size:.1f}",
            f"{max(report.core_utilization):.0%}",
            self.mode,
        ]


SERVING_SWEEP_HEADER = [
    "policy",
    "cores",
    "req/s",
    "p50 (us)",
    "p99 (us)",
    "batch",
    "peak util",
    "mode",
]
"""Column labels matching :meth:`ServingSweepPoint.row`."""


def sweep_serving_policies(
    specs: list[ConvLayerSpec],
    policies: list[BatchingPolicy],
    core_counts: list[int],
    arrival_s: np.ndarray,
    config: PCNNAConfig | None = None,
    clamp_cores: bool = False,
    mode: str = "auto",
) -> list[ServingSweepPoint]:
    """Simulate every (policy, core count) pair over one shared trace.

    Feeding the identical arrival trace to every cell makes the cells
    directly comparable: differences in percentile latency and
    throughput are attributable to the policy and the pipeline width
    alone.

    Args:
        specs: the served network's conv layers.
        policies: batching policies to compare.
        core_counts: pipeline widths to compare.
        arrival_s: the shared request-arrival trace.
        config: hardware configuration.
        clamp_cores: clamp oversized core counts to ``len(specs)``
            instead of raising (duplicate clamped cells are kept).
        mode: kernel execution mode for every cell (the modes are
            bit-identical; ``"reference"`` is useful for cross-checks).

    Returns:
        One :class:`ServingSweepPoint` per pair, policies varying
        fastest.

    Raises:
        ValueError: on empty specs/policies/core counts, an invalid
            trace, or an unknown mode.
    """
    if not policies:
        raise ValueError("need at least one batching policy")
    if not core_counts:
        raise ValueError("need at least one core count")
    points = []
    for num_cores in core_counts:
        model = PipelineServiceModel.from_specs(
            specs, num_cores, config, clamp_cores=clamp_cores
        )
        for policy in policies:
            report = ServingSimulator(model, policy, mode=mode).run(
                arrival_s
            )
            points.append(
                ServingSweepPoint(
                    policy=policy.name,
                    num_cores=model.num_cores,
                    report=report,
                    mode=mode,
                )
            )
    return points


@dataclass(frozen=True)
class FaultSweepPoint:
    """One (drift rate, recalibration policy) cell of a fault sweep.

    Attributes:
        drift_rate_k_per_s: uniform ambient drift rate of the cell.
        recalibration: the recalibration policy's name, or ``"none"``.
        report: the full degraded simulation result for drill-down.
    """

    drift_rate_k_per_s: float
    recalibration: str
    report: DegradedServingReport

    @property
    def mean_accuracy_proxy(self) -> float:
        """Batch-weighted mean measured weight error."""
        return self.report.mean_accuracy_proxy

    @property
    def min_availability(self) -> float:
        """The least-available core's availability."""
        return min(self.report.availability)

    def row(self) -> list[str]:
        """The cell formatted for a comparison table."""
        report = self.report
        return [
            f"{self.drift_rate_k_per_s:g}",
            self.recalibration,
            f"{report.mean_accuracy_proxy:.4f}",
            f"{report.final_accuracy_proxy:.4f}",
            f"{report.p99_s * 1e6:.0f}",
            f"{self.min_availability:.2%}",
            str(len(report.recalibrations)),
        ]


FAULT_SWEEP_HEADER = [
    "drift (K/s)",
    "recal",
    "proxy mean",
    "proxy final",
    "p99 (us)",
    "min avail",
    "recals",
]
"""Column labels matching :meth:`FaultSweepPoint.row`."""


def sweep_fault_tolerance(
    specs: list[ConvLayerSpec],
    policy: BatchingPolicy,
    drift_rates_k_per_s: list[float],
    recalibrations: list[RecalibrationPolicy | None],
    arrival_s: np.ndarray,
    num_cores: int,
    config: PCNNAConfig | None = None,
    clamp_cores: bool = False,
) -> list[FaultSweepPoint]:
    """Simulate drift rate x recalibration policy over one shared trace.

    Every cell serves the identical arrival trace under a uniform
    thermal-drift ramp (:meth:`FaultSchedule.uniform_drift`), so the
    accuracy-proxy and availability differences are attributable to the
    drift rate and the recalibration policy alone.  Passing ``None`` in
    ``recalibrations`` produces the no-recalibration baseline column.

    Uniform drift degrades every core in lockstep, so the fault-aware
    repartitioning path (which must keep at least one survivor) can
    never trigger here and is left off; study asymmetric failures via
    :class:`DegradedServingSimulator` with a scenario schedule instead.

    Args:
        specs: the served network's conv layers.
        policy: the batching policy every cell uses.
        drift_rates_k_per_s: ambient drift rates to compare.
        recalibrations: recalibration policies to compare (``None`` =
            recalibration disabled).
        arrival_s: the shared request-arrival trace.
        num_cores: pipeline width.
        config: hardware configuration.
        clamp_cores: clamp an oversized ``num_cores`` to ``len(specs)``.

    Returns:
        One :class:`FaultSweepPoint` per cell, policies varying fastest.

    Raises:
        ValueError: on empty sweep axes, bad specs, or a bad trace.
    """
    if not drift_rates_k_per_s:
        raise ValueError("need at least one drift rate")
    if not recalibrations:
        raise ValueError("need at least one recalibration policy (or None)")
    model = PipelineServiceModel.from_specs(
        specs, num_cores, config, clamp_cores=clamp_cores
    )
    points = []
    for rate in drift_rates_k_per_s:
        schedule = FaultSchedule.uniform_drift(rate, model.num_cores)
        for recalibration in recalibrations:
            simulator = DegradedServingSimulator(
                model,
                policy,
                schedule,
                recalibration=recalibration,
                config=config,
            )
            points.append(
                FaultSweepPoint(
                    drift_rate_k_per_s=rate,
                    recalibration=(
                        "none" if recalibration is None else recalibration.name
                    ),
                    report=simulator.run(arrival_s),
                )
            )
    return points


@dataclass(frozen=True)
class ClusterSweepPoint:
    """One pool-size cell of a tenant-mix x pool-size sweep.

    Attributes:
        pool_size: physical cores in the cell's pool.
        report: the full cluster simulation result for drill-down.
    """

    pool_size: int
    report: ClusterReport

    @property
    def shed_fraction(self) -> float:
        """Fraction of the total offered load shed at this pool size."""
        return self.report.num_shed / self.report.num_offered

    def rows(self) -> list[list[str]]:
        """One formatted row per tenant of the cell."""
        return [
            [
                str(self.pool_size),
                tenant.tenant,
                str(tenant.num_offered),
                str(tenant.num_requests),
                str(tenant.num_shed),
                f"{tenant.p99_s * 1e6:.0f}",
                f"{tenant.mean_batch_size:.1f}",
                str(int(tenant.batch_num_cores[-1])),
            ]
            for tenant in self.report.tenants
        ]


CLUSTER_SWEEP_HEADER = [
    "pool",
    "tenant",
    "offered",
    "served",
    "shed",
    "p99 (us)",
    "batch",
    "cores@end",
]
"""Column labels matching :meth:`ClusterSweepPoint.rows`."""


def _cluster_serving_cell(
    args: tuple[
        tuple[ClusterTenant, ...],
        dict[str, np.ndarray],
        int,
        RoutingPolicy | None,
        ElasticReallocation | None,
        PCNNAConfig | None,
    ],
) -> ClusterSweepPoint:
    """One pool-size cell of :func:`sweep_cluster_serving`.

    Module-level (hence picklable) so :func:`run_grid` can ship it to
    spawn-started workers; the cell carries everything it needs.
    """
    tenants, arrival_s, pool_size, routing, elastic, config = args
    simulator = ClusterSimulator(
        tenants,
        pool_size,
        routing=routing,
        elastic=elastic,
        config=config,
    )
    return ClusterSweepPoint(
        pool_size=pool_size, report=simulator.run(arrival_s)
    )


def sweep_cluster_serving(
    tenants: Sequence[ClusterTenant],
    arrival_s: Mapping[str, np.ndarray],
    pool_sizes: list[int],
    routing: RoutingPolicy | None = None,
    elastic: ElasticReallocation | None = None,
    config: PCNNAConfig | None = None,
    workers: int = 1,
) -> list[ClusterSweepPoint]:
    """Simulate one tenant mix over a range of pool sizes.

    Every cell serves the identical per-tenant arrival traces, so
    differences in shedding, tail latency, and reallocation behaviour
    are attributable to the pool size alone — the capacity-planning
    curve for the mix.

    Args:
        tenants: the co-served tenant mix.
        arrival_s: per-tenant arrival traces shared by every cell.
        pool_sizes: pool sizes to compare (each >= the tenant count).
        routing: pool arbitration policy for every cell.
        elastic: elastic reallocation policy for every cell.
        config: hardware configuration.
        workers: worker processes for the cells; byte-identical to the
            serial result for every count (see
            :func:`repro.analysis.parallel.run_grid`).

    Returns:
        One :class:`ClusterSweepPoint` per pool size, in order.

    Raises:
        ValueError: on an empty pool-size list, a bad worker count, or
            invalid cluster arguments.
    """
    if not pool_sizes:
        raise ValueError("need at least one pool size")
    frozen_tenants = tuple(tenants)
    traces = dict(arrival_s)
    return run_grid(
        _cluster_serving_cell,
        [
            (frozen_tenants, traces, pool_size, routing, elastic, config)
            for pool_size in pool_sizes
        ],
        workers=workers,
    )


@dataclass(frozen=True)
class FleetSweepPoint:
    """One routing-policy cell of a fleet placement sweep.

    Attributes:
        routing: the cell's global routing kind.
        report: the full fleet simulation result for drill-down.
    """

    routing: str
    report: FleetReport

    @property
    def shed_fraction(self) -> float:
        """Fraction of the fleet's offered load shed under the cell."""
        return self.report.num_shed / self.report.num_offered

    @property
    def remote_fraction(self) -> float:
        """Fraction of offered load served away from home."""
        return self.report.num_remote / self.report.num_offered

    @property
    def p99_s(self) -> float:
        """Global 99th-percentile end-to-end latency of the cell."""
        return self.report.p99_s

    def rows(self) -> list[list[str]]:
        """One formatted row per region of the cell."""
        rows = []
        for outcome in self.report.regions:
            p99 = (
                f"{outcome.p99_s * 1e6:.0f}" if outcome.num_served else "-"
            )
            rows.append(
                [
                    self.routing,
                    outcome.name,
                    str(outcome.pool_size),
                    str(outcome.routed_in),
                    str(outcome.remote_in),
                    str(outcome.num_served),
                    str(outcome.num_shed),
                    p99,
                    f"{self.report.placement_efficiency:.2f}",
                ]
            )
        return rows


FLEET_SWEEP_HEADER = [
    "routing",
    "region",
    "pool",
    "routed",
    "remote",
    "served",
    "shed",
    "p99 (us)",
    "placement",
]
"""Column labels matching :meth:`FleetSweepPoint.rows`."""


def _fleet_serving_cell(
    args: tuple[
        tuple[ClusterTenant, ...],
        tuple[RegionSpec, ...],
        dict[str, dict[str, np.ndarray]],
        GlobalRoutingPolicy,
        np.ndarray | None,
        FleetAutoscaler | None,
        PCNNAConfig | None,
    ],
) -> FleetSweepPoint:
    """One routing-policy cell of :func:`sweep_fleet_serving`.

    Module-level (hence picklable) so :func:`run_grid` can ship it to
    spawn-started workers; the cell carries everything it needs.
    """
    tenants, regions, arrival_s, routing, rtt_s, autoscaler, config = args
    runtime = FleetRuntime(
        tenants,
        regions,
        rtt_s=rtt_s,
        routing=routing,
        autoscaler=autoscaler,
        config=config,
    )
    return FleetSweepPoint(routing=routing.kind, report=runtime.run(arrival_s))


def sweep_fleet_serving(
    tenants: Sequence[ClusterTenant],
    regions: Sequence[RegionSpec],
    arrival_s: Mapping[str, Mapping[str, np.ndarray]],
    routings: Sequence[GlobalRoutingPolicy],
    rtt_s: np.ndarray | None = None,
    autoscaler: FleetAutoscaler | None = None,
    config: PCNNAConfig | None = None,
    workers: int = 1,
) -> list[FleetSweepPoint]:
    """Simulate one multi-region offered load under each routing policy.

    Every cell serves the identical per-region, per-tenant traces over
    the identical region set and RTT matrix, so differences in tail
    latency, cross-region traffic, shedding, and placement efficiency
    are attributable to the global routing policy alone.

    Args:
        tenants: the globally replicated tenant set.
        regions: the regional pools shared by every cell.
        arrival_s: per-region, per-tenant traces shared by every cell.
        routings: global routing policies to compare.
        rtt_s: inter-region RTT matrix shared by every cell.
        autoscaler: pool autoscaler shared by every cell.
        config: hardware configuration.
        workers: worker processes for the cells; byte-identical to the
            serial result for every count (see
            :func:`repro.analysis.parallel.run_grid`).

    Returns:
        One :class:`FleetSweepPoint` per routing policy, in order.

    Raises:
        ValueError: on an empty routing list, a bad worker count, or
            invalid fleet arguments.
    """
    if not routings:
        raise ValueError("need at least one global routing policy")
    frozen_tenants = tuple(tenants)
    frozen_regions = tuple(regions)
    traces = {
        region: dict(per_tenant) for region, per_tenant in arrival_s.items()
    }
    return run_grid(
        _fleet_serving_cell,
        [
            (
                frozen_tenants,
                frozen_regions,
                traces,
                routing,
                rtt_s,
                autoscaler,
                config,
            )
            for routing in routings
        ],
        workers=workers,
    )


# repro: allow[API002] closed-form analytical sweep: pure function of
# the layer spec and config, nothing stochastic
def sweep_kernel_count(
    spec: ConvLayerSpec,
    kernel_counts: list[int],
    config: PCNNAConfig | None = None,
) -> list[SweepPoint]:
    """Sweep K — time should stay flat while rings grow linearly."""
    cfg = config if config is not None else PCNNAConfig()
    points = []
    for count in kernel_counts:
        swept_spec = replace(spec, num_kernels=count)
        points.append(
            SweepPoint(
                parameter=float(count),
                optical_time_s=optical_core_time_s(swept_spec, cfg),
                full_system_time_s=full_system_time_s(swept_spec, cfg),
                rings=microrings_filtered(swept_spec),
            )
        )
    return points


@dataclass(frozen=True)
class AdaptiveSweepPoint:
    """One controller cell of an adaptive-recalibration sweep.

    Attributes:
        controller: the controller's (or static policy's) name, or
            ``"none"`` for the no-recalibration baseline.
        report: the full degraded/adaptive run for drill-down.
    """

    controller: str
    report: DegradedServingReport

    @property
    def total_downtime_s(self) -> float:
        """Recalibration downtime summed over the pipeline's cores."""
        return float(sum(self.report.core_downtime_s))

    def row(self) -> list[str]:
        """The cell formatted for a comparison table."""
        report = self.report
        return [
            self.controller,
            f"{report.mean_accuracy_proxy:.4f}",
            f"{min(report.availability):.4f}",
            f"{report.latency_percentile_s(99.0) * 1e6:.1f}",
            f"{self.total_downtime_s * 1e6:.0f}",
            str(len(report.recalibrations)),
        ]


ADAPTIVE_SWEEP_HEADER = [
    "controller",
    "proxy mean",
    "min avail",
    "p99 (us)",
    "downtime (us)",
    "recals",
]
"""Column labels matching :meth:`AdaptiveSweepPoint.row`."""


def sweep_adaptive_recalibration(
    network: Network,
    policy: BatchingPolicy,
    schedule: FaultSchedule,
    controllers: Sequence[AdaptiveRecalibration | RecalibrationPolicy | None],
    arrival_s: np.ndarray,
    num_cores: int,
    config: PCNNAConfig | None = None,
    clamp_cores: bool = False,
) -> list[AdaptiveSweepPoint]:
    """Compare recalibration controllers over one shared faulted trace.

    Every cell serves the identical arrival trace under the identical
    fault schedule, so accuracy-proxy, availability, and downtime
    differences are attributable to the controller alone.  Cells accept
    the static :class:`RecalibrationPolicy`, the adaptive
    :class:`~repro.core.adaptive.AdaptiveRecalibration` controller, and
    ``None`` (the no-recalibration baseline) side by side.

    Raises:
        ValueError: on an empty controller axis or a bad trace.
    """
    if not controllers:
        raise ValueError("need at least one controller (or None)")
    points = []
    for controller in controllers:
        if isinstance(controller, AdaptiveRecalibration):
            report = simulate_adaptive_serving(
                network,
                arrival_s,
                policy,
                schedule,
                num_cores,
                controller=controller,
                config=config,
                clamp_cores=clamp_cores,
            )
        else:
            report = simulate_degraded_serving(
                network,
                arrival_s,
                policy,
                schedule,
                num_cores,
                recalibration=controller,
                config=config,
                clamp_cores=clamp_cores,
            )
        points.append(
            AdaptiveSweepPoint(
                controller=(
                    "none" if controller is None else controller.name
                ),
                report=report,
            )
        )
    return points
