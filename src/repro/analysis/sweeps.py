"""Design-space parameter sweeps (extension / ablation experiments).

The paper's analytical framework makes several design parameters
explicit; these sweeps quantify their impact:

* input-DAC count — the eq. 8 bottleneck scales as 1/N_DAC until the
  optical clock floor;
* fast-clock frequency — the eq. 7 optical-core scaling;
* stride — eq. 8's front-end load is proportional to s;
* kernel count — PCNNA's headline property: layer time is flat in K
  while ring count grows linearly (paper section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.analytical import (
    full_system_time_s,
    microrings_filtered,
    optical_core_time_s,
)
from repro.core.config import PCNNAConfig
from repro.nn.shapes import ConvLayerSpec


@dataclass(frozen=True)
class SweepPoint:
    """One point of a 1-D design sweep.

    Attributes:
        parameter: the swept value.
        optical_time_s: eq. 7 layer time at this point.
        full_system_time_s: DAC-bound layer time at this point.
        rings: filtered ring count at this point.
    """

    parameter: float
    optical_time_s: float
    full_system_time_s: float
    rings: int


def sweep_num_dacs(
    spec: ConvLayerSpec,
    dac_counts: list[int],
    config: PCNNAConfig | None = None,
) -> list[SweepPoint]:
    """Sweep the input-DAC count (the paper's N_DAC = 10 choice)."""
    cfg = config if config is not None else PCNNAConfig()
    points = []
    for count in dac_counts:
        swept = cfg.with_dacs(count)
        points.append(
            SweepPoint(
                parameter=float(count),
                optical_time_s=optical_core_time_s(spec, swept),
                full_system_time_s=full_system_time_s(spec, swept),
                rings=microrings_filtered(spec),
            )
        )
    return points


def sweep_fast_clock(
    spec: ConvLayerSpec,
    clocks_hz: list[float],
    config: PCNNAConfig | None = None,
) -> list[SweepPoint]:
    """Sweep the optical-core clock (the paper's 5 GHz choice)."""
    cfg = config if config is not None else PCNNAConfig()
    points = []
    for clock in clocks_hz:
        swept = cfg.with_fast_clock(clock)
        points.append(
            SweepPoint(
                parameter=clock,
                optical_time_s=optical_core_time_s(spec, swept),
                full_system_time_s=full_system_time_s(spec, swept),
                rings=microrings_filtered(spec),
            )
        )
    return points


def sweep_stride(
    spec: ConvLayerSpec,
    strides: list[int],
    config: PCNNAConfig | None = None,
) -> list[SweepPoint]:
    """Sweep the layer stride (eq. 8's front-end load is linear in s)."""
    cfg = config if config is not None else PCNNAConfig()
    points = []
    for stride in strides:
        swept_spec = replace(spec, s=stride)
        points.append(
            SweepPoint(
                parameter=float(stride),
                optical_time_s=optical_core_time_s(swept_spec, cfg),
                full_system_time_s=full_system_time_s(swept_spec, cfg),
                rings=microrings_filtered(swept_spec),
            )
        )
    return points


def sweep_kernel_count(
    spec: ConvLayerSpec,
    kernel_counts: list[int],
    config: PCNNAConfig | None = None,
) -> list[SweepPoint]:
    """Sweep K — time should stay flat while rings grow linearly."""
    cfg = config if config is not None else PCNNAConfig()
    points = []
    for count in kernel_counts:
        swept_spec = replace(spec, num_kernels=count)
        points.append(
            SweepPoint(
                parameter=float(count),
                optical_time_s=optical_core_time_s(swept_spec, cfg),
                full_system_time_s=full_system_time_s(swept_spec, cfg),
                rings=microrings_filtered(swept_spec),
            )
        )
    return points
