"""Export benchmark/analysis results to CSV and JSON.

Downstream users typically re-plot the reproduced figures with their own
tooling; these helpers serialize the per-layer series the benchmarks
compute into portable formats.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Mapping, Sequence
from dataclasses import asdict, is_dataclass
from pathlib import Path


def series_to_csv(
    series: Mapping[str, Sequence[float]],
    categories: Sequence[str],
    category_header: str = "layer",
) -> str:
    """Render {series-name: values} keyed by category into CSV text.

    Args:
        series: mapping of column name to per-category values.
        categories: row labels (e.g. layer names).
        category_header: header for the label column.

    Raises:
        ValueError: if any series length mismatches the categories.
    """
    for name, values in series.items():
        if len(values) != len(categories):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([category_header] + list(series))
    for index, category in enumerate(categories):
        writer.writerow(
            [category] + [repr(series[name][index]) for name in series]
        )
    return buffer.getvalue()


def results_to_json(results: Sequence[object], indent: int = 2) -> str:
    """Serialize a list of result dataclasses (or dicts) to JSON text.

    Dataclass fields that are themselves dataclasses (e.g. the spec
    inside a LayerAnalysis) are recursively expanded; NumPy scalars are
    coerced to Python numbers.
    """

    def coerce(value):
        if is_dataclass(value) and not isinstance(value, type):
            return {key: coerce(val) for key, val in asdict(value).items()}
        if isinstance(value, Mapping):
            return {key: coerce(val) for key, val in value.items()}
        if isinstance(value, (list, tuple)):
            return [coerce(item) for item in value]
        if hasattr(value, "item") and callable(value.item):
            try:
                return value.item()
            except (TypeError, ValueError):
                return str(value)
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        return str(value)

    return json.dumps([coerce(result) for result in results], indent=indent)


def write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` (creating parent directories).

    Returns:
        The resolved path written.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target
