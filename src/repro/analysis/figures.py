"""ASCII figure rendering (log-scale bar charts) for benchmark output.

The paper's Fig. 5 and Fig. 6 are log-scale bar charts; the benchmark
harness reprints their data as text bars so the "shape" of each figure
(who wins, by how many decades) is visible directly in the terminal.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def ascii_line_plot(
    x: Sequence[float],
    y: Sequence[float],
    title: str = "",
    height: int = 12,
    width: int = 70,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render a single (x, y) series as an ASCII scatter/line plot.

    Args:
        x: abscissa values (need not be uniform).
        y: ordinate values, same length as ``x``.
        title: plot title.
        height: plot rows.
        width: plot columns.
        x_label: x-axis caption.
        y_label: y-axis caption.

    Returns:
        The rendered multi-line string.

    Raises:
        ValueError: on length mismatch or fewer than two points.
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} x vs {len(y)} y")
    if len(x) < 2:
        raise ValueError("need at least two points")
    if height < 2 or width < 2:
        raise ValueError("plot must be at least 2x2")

    x_min, x_max = min(x), max(x)
    y_min, y_max = min(y), max(y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int(round((xi - x_min) / x_span * (width - 1)))
        row = int(round((yi - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    margin = max(len(top_label), len(bottom_label))
    for index, row_chars in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(margin)
        elif index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row_chars)}")
    lines.append(" " * margin + " +" + "-" * width)
    axis = f"{x_min:.3g}".ljust(width - 8) + f"{x_max:.3g}".rjust(8)
    lines.append(" " * margin + "  " + axis)
    if x_label or y_label:
        lines.append(
            " " * margin + f"  x: {x_label}" + (f"   y: {y_label}" if y_label else "")
        )
    return "\n".join(lines)


def log_bar_chart(
    series: Mapping[str, Sequence[float]],
    categories: Sequence[str],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Render grouped log-scale horizontal bars.

    Args:
        series: mapping of series name to per-category values (all > 0).
        categories: category labels (e.g. layer names), one per value.
        title: chart title.
        width: maximum bar width in characters.
        unit: unit label appended to values.

    Returns:
        The rendered multi-line string.

    Raises:
        ValueError: if values are non-positive or lengths mismatch.
    """
    for name, values in series.items():
        if len(values) != len(categories):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
        if any(value <= 0 for value in values):
            raise ValueError(f"log chart requires positive values in {name!r}")

    all_values = [value for values in series.values() for value in values]
    log_min = math.floor(math.log10(min(all_values)))
    log_max = math.ceil(math.log10(max(all_values)))
    log_span = max(log_max - log_min, 1)

    name_width = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for index, category in enumerate(categories):
        lines.append(f"{category}:")
        for name, values in series.items():
            value = values[index]
            filled = int(
                round((math.log10(value) - log_min) / log_span * width)
            )
            filled = max(filled, 1)
            bar = "#" * filled
            label = f"{value:.3g}{(' ' + unit) if unit else ''}"
            lines.append(f"  {name.ljust(name_width)} |{bar} {label}")
    lines.append(
        f"(log scale: 1e{log_min} .. 1e{log_max}{(' ' + unit) if unit else ''})"
    )
    return "\n".join(lines)
