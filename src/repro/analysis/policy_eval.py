"""Policy-evaluation harness: adaptive control vs static baselines.

The adaptive control plane (:mod:`repro.core.adaptive`) claims to
subsume the static serving policies — threshold recalibration, the
occupancy admission cap, fixed elastic thresholds.  This module makes
that claim *machine-checkable*: a fixed scenario suite (named fault
scenario x named tenant mix, both from :mod:`repro.workloads`) is
crossed with a policy grid, every cell is scored on the three axes the
paper's serving story cares about —

* **availability** — fraction of offered requests served, discounted by
  the fraction of pool capacity lost to recalibration downtime;
* **accuracy error** — request-weighted mean of the per-batch accuracy
  proxy (lower is better);
* **p99 latency** — the 99th percentile over every served request.

— and the :class:`DominanceReport` states exactly which adaptive
policies strictly dominate their named static baselines on which
scenarios, and which policies sit on the per-scenario Pareto front.
Every run is a pure function of the scenario and policy specs, so the
report is deterministic and usable as a regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.core.adaptive import (
    AdaptiveRecalibration,
    BurnRateAdmission,
    PressureController,
)
from repro.core.cluster import (
    ClusterReport,
    ElasticReallocation,
    simulate_cluster_serving,
)
from repro.core.config import PCNNAConfig
from repro.core.faults import RecalibrationPolicy
from repro.analysis.parallel import run_grid
from repro.workloads.cluster_mixes import CLUSTER_MIXES, cluster_mix
from repro.workloads.fault_scenarios import FAULT_SCENARIOS, fault_scenario


@dataclass(frozen=True)
class EvalScenario:
    """One named cell of the scenario suite.

    Attributes:
        name: label used in reports ("<fault>/<mix>" reads well).
        fault: a :data:`~repro.workloads.FAULT_SCENARIOS` name.
        mix: a :data:`~repro.workloads.CLUSTER_MIXES` name.
        rate_rps: aggregate offered rate for the mix.
        num_requests: offered requests across tenants.
        pool_size: physical cores in the shared pool.
        seed: arrival-trace RNG seed.
        severity: fault-magnitude multiplier (0 disarms).
    """

    name: str
    fault: str
    mix: str
    rate_rps: float = 2000.0
    num_requests: int = 400
    pool_size: int = 6
    seed: int = 3
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.fault not in FAULT_SCENARIOS:
            raise ValueError(
                f"unknown fault scenario {self.fault!r}; "
                f"have {FAULT_SCENARIOS}"
            )
        if self.mix not in CLUSTER_MIXES:
            raise ValueError(
                f"unknown cluster mix {self.mix!r}; have {CLUSTER_MIXES}"
            )
        if self.rate_rps <= 0.0 or not np.isfinite(self.rate_rps):
            raise ValueError(
                f"rate must be finite and > 0, got {self.rate_rps!r}"
            )
        if self.num_requests < 1:
            raise ValueError(
                f"need >= 1 request, got {self.num_requests!r}"
            )
        if self.pool_size < 1:
            raise ValueError(f"need >= 1 core, got {self.pool_size!r}")


@dataclass(frozen=True)
class PolicySpec:
    """One control-policy column of the evaluation grid.

    ``baseline`` names the static policy this spec claims to dominate;
    baselines themselves leave it ``None``.  The admission template's
    ``queue_cap`` is ignored — every tenant keeps its own configured
    cap, the template only adds the burn-rate judgement on top.

    Attributes:
        name: label used in reports.
        recalibration: static policy, adaptive controller, or ``None``.
        admission: burn-rate admission template, or ``None`` for the
            plain per-tenant occupancy cap.
        elastic: static reallocation policy, pressure controller, or
            ``None`` to pin the initial core split.
        baseline: name of the static baseline spec, or ``None``.
    """

    name: str
    recalibration: RecalibrationPolicy | AdaptiveRecalibration | None = None
    admission: BurnRateAdmission | None = None
    elastic: ElasticReallocation | PressureController | None = None
    baseline: str | None = None

    @property
    def is_adaptive(self) -> bool:
        """Whether this spec claims dominance over a baseline."""
        return self.baseline is not None


POLICY_EVAL_HEADER = [
    "scenario",
    "policy",
    "availability",
    "accuracy err",
    "p99 (ms)",
    "downtime (us)",
    "served",
    "shed",
    "recals",
]
"""Column labels matching :meth:`PolicyOutcome.row`."""


@dataclass(frozen=True)
class PolicyOutcome:
    """One scored (scenario, policy) cell.

    Attributes:
        scenario: the scenario's name.
        policy: the policy's name.
        baseline: the policy's claimed baseline, or ``None``.
        availability: served fraction x capacity not lost to downtime.
        accuracy_error: request-weighted mean accuracy proxy (lower is
            better).
        p99_latency_s: 99th-percentile latency over served requests.
        downtime_s: total recalibration downtime across the pool.
        served / offered / shed: request conservation ledger.
        recalibrations: recalibration attempts across the pool.
        report: the full cluster run for drill-down.
    """

    scenario: str
    policy: str
    baseline: str | None
    availability: float
    accuracy_error: float
    p99_latency_s: float
    downtime_s: float
    served: int
    offered: int
    shed: int
    recalibrations: int
    report: ClusterReport = field(repr=False)

    def dominates(self, other: "PolicyOutcome") -> bool:
        """Strict Pareto dominance on availability/accuracy/p99."""
        at_least = (
            self.availability >= other.availability
            and self.accuracy_error <= other.accuracy_error
            and self.p99_latency_s <= other.p99_latency_s
        )
        strict = (
            self.availability > other.availability
            or self.accuracy_error < other.accuracy_error
            or self.p99_latency_s < other.p99_latency_s
        )
        return at_least and strict

    def row(self) -> list[str]:
        """The cell formatted for a comparison table."""
        return [
            self.scenario,
            self.policy,
            f"{self.availability:.6f}",
            f"{self.accuracy_error:.5f}",
            f"{self.p99_latency_s * 1e3:.3f}",
            f"{self.downtime_s * 1e6:.0f}",
            str(self.served),
            str(self.shed),
            str(self.recalibrations),
        ]


def _score(
    scenario: EvalScenario, policy: PolicySpec, report: ClusterReport
) -> PolicyOutcome:
    offered = sum(t.num_offered for t in report.tenants)
    served = sum(t.num_requests for t in report.tenants)
    shed = sum(t.num_shed for t in report.tenants)
    downtime = float(sum(report.core_downtime_s))
    span = report.makespan_s
    availability = (served / offered) * (
        1.0 - downtime / (report.pool_size * span)
    )
    sizes = np.concatenate(
        [
            np.array([b.size for b in t.batches], dtype=float)
            for t in report.tenants
        ]
    )
    proxies = np.concatenate(
        [np.asarray(t.accuracy_proxy, dtype=float) for t in report.tenants]
    )
    accuracy_error = float((proxies * sizes).sum() / sizes.sum())
    latencies = np.concatenate([t.latencies_s for t in report.tenants])
    p99 = float(np.percentile(latencies, 99.0))
    return PolicyOutcome(
        scenario=scenario.name,
        policy=policy.name,
        baseline=policy.baseline,
        availability=availability,
        accuracy_error=accuracy_error,
        p99_latency_s=p99,
        downtime_s=downtime,
        served=served,
        offered=offered,
        shed=shed,
        recalibrations=len(report.recalibrations),
        report=report,
    )


def evaluate_policy(
    scenario: EvalScenario,
    policy: PolicySpec,
    config: PCNNAConfig | None = None,
) -> PolicyOutcome:
    """Serve one scenario under one policy and score the run."""
    tenants, arrivals = cluster_mix(
        scenario.mix,
        rate_rps=scenario.rate_rps,
        num_requests=scenario.num_requests,
        seed=scenario.seed,
    )
    horizon = max(float(trace[-1]) for trace in arrivals.values())
    schedule = fault_scenario(
        scenario.fault,
        num_cores=scenario.pool_size,
        horizon_s=horizon,
        severity=scenario.severity,
    )
    admission: Mapping[str, object] | None = None
    if policy.admission is not None:
        admission = {
            tenant.name: replace(
                policy.admission, queue_cap=tenant.queue_cap
            )
            for tenant in tenants
        }
    report = simulate_cluster_serving(
        tenants,
        arrivals,
        pool_size=scenario.pool_size,
        elastic=policy.elastic,
        schedule=schedule,
        recalibration=policy.recalibration,
        config=config,
        admission=admission,
    )
    return _score(scenario, policy, report)


def _policy_grid_cell(
    args: tuple[EvalScenario, PolicySpec, PCNNAConfig | None],
) -> PolicyOutcome:
    """One (scenario, policy) cell of :func:`evaluate_policy_grid`.

    Module-level (hence picklable) so
    :func:`~repro.analysis.parallel.run_grid` can ship it to
    spawn-started workers; the cell carries everything it needs.
    """
    scenario, policy, config = args
    return evaluate_policy(scenario, policy, config)


def evaluate_policy_grid(
    scenarios: Sequence[EvalScenario],
    policies: Sequence[PolicySpec],
    config: PCNNAConfig | None = None,
    workers: int = 1,
) -> list[PolicyOutcome]:
    """Score every scenario x policy cell of the grid.

    Cells are independent pure functions of their specs, so they fan
    out over ``workers`` processes with byte-identical results merged
    in cell order (scenarios outer, policies inner — the serial order).

    Raises:
        ValueError: on an empty scenario suite or policy grid, a bad
            worker count, or duplicate policy names (dominance lookups
            need them unique).
    """
    if not scenarios:
        raise ValueError("need at least one scenario")
    if not policies:
        raise ValueError("need at least one policy")
    names = [policy.name for policy in policies]
    if len(set(names)) != len(names):
        raise ValueError(f"policy names must be unique, got {names!r}")
    known = set(names)
    for policy in policies:
        if policy.baseline is not None and policy.baseline not in known:
            raise ValueError(
                f"policy {policy.name!r} names unknown baseline "
                f"{policy.baseline!r}"
            )
    return run_grid(
        _policy_grid_cell,
        [
            (scenario, policy, config)
            for scenario in scenarios
            for policy in policies
        ],
        workers=workers,
    )


def pareto_front(
    outcomes: Sequence[PolicyOutcome],
) -> tuple[PolicyOutcome, ...]:
    """The non-dominated subset of one scenario's outcomes."""
    return tuple(
        candidate
        for candidate in outcomes
        if not any(other.dominates(candidate) for other in outcomes)
    )


@dataclass(frozen=True)
class DominanceReport:
    """The machine-checkable verdict over a scored grid.

    Attributes:
        outcomes: every scored cell.
        wins: ``(scenario, policy, baseline)`` triples where the
            adaptive policy strictly dominated its named baseline.
        fronts: per-scenario Pareto-front policy names.
    """

    outcomes: tuple[PolicyOutcome, ...]
    wins: tuple[tuple[str, str, str], ...]
    fronts: Mapping[str, tuple[str, ...]]

    @classmethod
    def from_outcomes(
        cls, outcomes: Sequence[PolicyOutcome]
    ) -> "DominanceReport":
        """Derive dominance wins and Pareto fronts from scored cells."""
        by_scenario: dict[str, list[PolicyOutcome]] = {}
        for outcome in outcomes:
            by_scenario.setdefault(outcome.scenario, []).append(outcome)
        wins: list[tuple[str, str, str]] = []
        fronts: dict[str, tuple[str, ...]] = {}
        for scenario, cells in by_scenario.items():
            by_policy = {cell.policy: cell for cell in cells}
            for cell in cells:
                if cell.baseline is None or cell.baseline not in by_policy:
                    continue
                if cell.dominates(by_policy[cell.baseline]):
                    wins.append((scenario, cell.policy, cell.baseline))
            fronts[scenario] = tuple(
                cell.policy for cell in pareto_front(cells)
            )
        return cls(
            outcomes=tuple(outcomes), wins=tuple(wins), fronts=dict(fronts)
        )

    def winning_policies(self, min_scenarios: int = 2) -> tuple[str, ...]:
        """Adaptive policies that dominate their baseline on enough
        scenarios *and* sit on the Pareto front of each winning one."""
        by_policy: dict[str, set[str]] = {}
        for scenario, policy, _ in self.wins:
            if policy in self.fronts.get(scenario, ()):
                by_policy.setdefault(policy, set()).add(scenario)
        return tuple(
            sorted(
                policy
                for policy, scenarios in by_policy.items()
                if len(scenarios) >= min_scenarios
            )
        )

    def passes(self, min_scenarios: int = 2) -> bool:
        """Whether at least one adaptive policy clears the bar."""
        return bool(self.winning_policies(min_scenarios))

    def describe(self) -> str:
        """Human-readable table plus the dominance verdict."""
        widths = [
            max(
                len(header),
                max(
                    (len(o.row()[i]) for o in self.outcomes), default=0
                ),
            )
            for i, header in enumerate(POLICY_EVAL_HEADER)
        ]
        lines = [
            "  ".join(
                header.ljust(widths[i])
                for i, header in enumerate(POLICY_EVAL_HEADER)
            )
        ]
        for outcome in self.outcomes:
            lines.append(
                "  ".join(
                    cell.ljust(widths[i])
                    for i, cell in enumerate(outcome.row())
                )
            )
        for scenario in sorted(self.fronts):
            lines.append(
                f"pareto[{scenario}]: {', '.join(self.fronts[scenario])}"
            )
        if self.wins:
            for scenario, policy, baseline in self.wins:
                lines.append(
                    f"dominance: {policy} > {baseline} on {scenario}"
                )
        else:
            lines.append("dominance: none")
        return "\n".join(lines)


def evaluate_dominance(
    scenarios: Sequence[EvalScenario],
    policies: Sequence[PolicySpec],
    config: PCNNAConfig | None = None,
    workers: int = 1,
) -> DominanceReport:
    """Score the grid and fold it into a :class:`DominanceReport`.

    ``workers`` fans the grid cells over processes; the folded report
    is byte-identical to serial (see :func:`evaluate_policy_grid`).
    """
    return DominanceReport.from_outcomes(
        evaluate_policy_grid(scenarios, policies, config, workers=workers)
    )


def default_scenarios(
    num_requests: int = 400, rate_rps: float = 2000.0
) -> tuple[EvalScenario, ...]:
    """The stock scenario suite for the dominance gate."""
    return tuple(
        EvalScenario(
            name=f"{fault}/interactive-batch",
            fault=fault,
            mix="interactive-batch",
            rate_rps=rate_rps,
            num_requests=num_requests,
        )
        for fault in (
            "tia-aging",
            "tia-burnin",
            "slow-drift",
            "crosstalk-blip",
        )
    )


def default_policy_grid(
    scenarios: Sequence[EvalScenario] | None = None,
) -> tuple[PolicySpec, ...]:
    """The stock policy grid: static baselines plus their adaptive
    challengers.

    The EWMA controller's lead time is sized relative to the suite's
    arrival horizon (the drift-slope projection needs a window measured
    in scenario time), so the suite is rebuilt here to derive it.
    """
    if scenarios is None:
        scenarios = default_scenarios()
    if not scenarios:
        raise ValueError("need at least one scenario")
    first = scenarios[0]
    _, arrivals = cluster_mix(
        first.mix,
        rate_rps=first.rate_rps,
        num_requests=first.num_requests,
        seed=first.seed,
    )
    horizon = max(float(trace[-1]) for trace in arrivals.values())
    recal = RecalibrationPolicy(error_threshold=0.05)
    elastic = ElasticReallocation(pressure_ratio=4.0, min_queue=16)
    ewma = AdaptiveRecalibration(
        base=recal, smoothing=0.45, lead_time_s=0.08 * horizon
    )
    burn = BurnRateAdmission(
        slo_latency_s=0.05, max_burn_rate=0.5, window=32
    )
    return (
        PolicySpec(name="no-recal"),
        PolicySpec(name="static-recal", recalibration=recal),
        PolicySpec(
            name="static-elastic", recalibration=recal, elastic=elastic
        ),
        PolicySpec(
            name="adaptive-recal",
            recalibration=ewma,
            baseline="static-recal",
        ),
        PolicySpec(
            name="adaptive-burn",
            recalibration=recal,
            admission=burn,
            baseline="static-recal",
        ),
        PolicySpec(
            name="adaptive-pressure",
            recalibration=recal,
            elastic=PressureController(base=elastic, gain=0.25),
            baseline="static-elastic",
        ),
    )


__all__ = [
    "POLICY_EVAL_HEADER",
    "DominanceReport",
    "EvalScenario",
    "PolicyOutcome",
    "PolicySpec",
    "default_policy_grid",
    "default_scenarios",
    "evaluate_dominance",
    "evaluate_policy",
    "evaluate_policy_grid",
    "pareto_front",
]
