"""Additional workload suites: other networks and synthetic sweeps.

The paper evaluates only AlexNet; these suites back the extension
benchmarks (VGG-16, LeNet-5) and the design-space-exploration example,
which sweeps synthetic conv layers over kernel size, channel count,
stride, and kernel count.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.nn.shapes import ConvLayerSpec

VGG16_CONV_LAYERS: tuple[ConvLayerSpec, ...] = (
    ConvLayerSpec(name="conv1_1", n=224, m=3, nc=3, num_kernels=64, s=1, p=1),
    ConvLayerSpec(name="conv1_2", n=224, m=3, nc=64, num_kernels=64, s=1, p=1),
    ConvLayerSpec(name="conv2_1", n=112, m=3, nc=64, num_kernels=128, s=1, p=1),
    ConvLayerSpec(name="conv2_2", n=112, m=3, nc=128, num_kernels=128, s=1, p=1),
    ConvLayerSpec(name="conv3_1", n=56, m=3, nc=128, num_kernels=256, s=1, p=1),
    ConvLayerSpec(name="conv3_2", n=56, m=3, nc=256, num_kernels=256, s=1, p=1),
    ConvLayerSpec(name="conv3_3", n=56, m=3, nc=256, num_kernels=256, s=1, p=1),
    ConvLayerSpec(name="conv4_1", n=28, m=3, nc=256, num_kernels=512, s=1, p=1),
    ConvLayerSpec(name="conv4_2", n=28, m=3, nc=512, num_kernels=512, s=1, p=1),
    ConvLayerSpec(name="conv4_3", n=28, m=3, nc=512, num_kernels=512, s=1, p=1),
    ConvLayerSpec(name="conv5_1", n=14, m=3, nc=512, num_kernels=512, s=1, p=1),
    ConvLayerSpec(name="conv5_2", n=14, m=3, nc=512, num_kernels=512, s=1, p=1),
    ConvLayerSpec(name="conv5_3", n=14, m=3, nc=512, num_kernels=512, s=1, p=1),
)
"""VGG-16's thirteen conv layers in paper notation."""

LENET5_CONV_LAYERS: tuple[ConvLayerSpec, ...] = (
    ConvLayerSpec(name="conv1", n=32, m=5, nc=1, num_kernels=6),
    ConvLayerSpec(name="conv2", n=14, m=5, nc=6, num_kernels=16),
    ConvLayerSpec(name="conv3", n=5, m=5, nc=16, num_kernels=120),
)
"""LeNet-5's three conv layers in paper notation."""


def vgg16_conv_specs() -> list[ConvLayerSpec]:
    """A fresh list of the VGG-16 conv-layer specs."""
    return list(VGG16_CONV_LAYERS)


def lenet5_conv_specs() -> list[ConvLayerSpec]:
    """A fresh list of the LeNet-5 conv-layer specs."""
    return list(LENET5_CONV_LAYERS)


def synthetic_layer_sweep(
    input_sides: list[int] | None = None,
    kernel_sizes: list[int] | None = None,
    channel_counts: list[int] | None = None,
    kernel_counts: list[int] | None = None,
    strides: list[int] | None = None,
) -> Iterator[ConvLayerSpec]:
    """Generate the cross-product of synthetic conv layers.

    Geometrically-invalid combinations (kernel larger than the input) are
    skipped rather than raised, so callers can sweep freely.
    """
    sides = input_sides if input_sides is not None else [14, 28, 56]
    kernels = kernel_sizes if kernel_sizes is not None else [1, 3, 5, 7]
    channels = channel_counts if channel_counts is not None else [16, 64, 256]
    counts = kernel_counts if kernel_counts is not None else [32, 128, 512]
    steps = strides if strides is not None else [1, 2]
    for n in sides:
        for m in kernels:
            if m > n:
                continue
            for nc in channels:
                for k in counts:
                    for s in steps:
                        yield ConvLayerSpec(
                            name=f"n{n}_m{m}_c{nc}_k{k}_s{s}",
                            n=n,
                            m=m,
                            nc=nc,
                            num_kernels=k,
                            s=s,
                            p=m // 2,
                        )
