"""Executable minibatch-serving workloads.

The other :mod:`repro.workloads` modules carry *analytical* layer specs
(paper Table I notation).  Serving studies additionally need executable
networks that run end-to-end through the batched photonic + electronic
path and the pipelined runner; this module names those scenarios so
examples, benchmarks, and tests all pull the same models at the same
tractable scales.
"""

from __future__ import annotations

import numpy as np

from repro.nn.models import build_alexnet, build_googlenet_stem, build_lenet5
from repro.nn.network import Network

SERVING_NETWORKS: tuple[str, ...] = ("lenet5", "alexnet", "googlenet-stem")
"""Names accepted by :func:`serving_network`."""


def serving_network(name: str, scale: float = 0.05, seed: int = 0) -> Network:
    """Build one of the named executable serving networks.

    Args:
        name: one of :data:`SERVING_NETWORKS`.
        scale: channel-count multiplier for the scalable topologies
            (AlexNet, GoogLeNet stem); LeNet-5 is already small and
            ignores it.
        seed: weight RNG seed.

    Raises:
        KeyError: if ``name`` is unknown.
    """
    if name == "lenet5":
        return build_lenet5(seed=seed)
    if name == "alexnet":
        return build_alexnet(scale=scale, num_classes=100, seed=seed)
    if name == "googlenet-stem":
        return build_googlenet_stem(scale=scale, num_classes=100, seed=seed)
    raise KeyError(f"unknown serving network {name!r}; have {SERVING_NETWORKS}")


def serving_batch(network: Network, batch_size: int, seed: int = 0) -> np.ndarray:
    """A seeded random ``(batch_size, *input_shape)`` minibatch.

    Raises:
        ValueError: if ``batch_size`` is not positive.
    """
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size!r}")
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch_size, *network.input_shape))
