"""Workload definitions: the paper's AlexNet table plus extension suites."""

from repro.workloads.alexnet import (
    ALEXNET_CONV_LAYERS,
    alexnet_conv_specs,
    alexnet_layer,
)
from repro.workloads.googlenet import (
    googlenet_conv_specs,
    inception_module_specs,
)
from repro.workloads.cluster_mixes import (
    CLUSTER_MIXES,
    cluster_mix,
)
from repro.workloads.fleet_mixes import (
    FLEET_MIXES,
    FleetScenario,
    fleet_mix,
)
from repro.workloads.fault_scenarios import (
    FAULT_SCENARIOS,
    fault_scenario,
)
from repro.workloads.serving import (
    SERVING_NETWORKS,
    serving_batch,
    serving_network,
)
from repro.workloads.traffic import (
    TRAFFIC_PATTERNS,
    diurnal_arrivals,
    make_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
)
from repro.workloads.suites import (
    LENET5_CONV_LAYERS,
    VGG16_CONV_LAYERS,
    lenet5_conv_specs,
    synthetic_layer_sweep,
    vgg16_conv_specs,
)

__all__ = [
    "ALEXNET_CONV_LAYERS",
    "alexnet_conv_specs",
    "alexnet_layer",
    "googlenet_conv_specs",
    "inception_module_specs",
    "CLUSTER_MIXES",
    "cluster_mix",
    "FLEET_MIXES",
    "FleetScenario",
    "fleet_mix",
    "FAULT_SCENARIOS",
    "fault_scenario",
    "SERVING_NETWORKS",
    "serving_batch",
    "serving_network",
    "TRAFFIC_PATTERNS",
    "diurnal_arrivals",
    "make_arrivals",
    "mmpp_arrivals",
    "poisson_arrivals",
    "LENET5_CONV_LAYERS",
    "VGG16_CONV_LAYERS",
    "lenet5_conv_specs",
    "synthetic_layer_sweep",
    "vgg16_conv_specs",
]
