"""Seeded request-arrival processes for serving studies.

The serving simulator (:mod:`repro.core.traffic`) is driven by a sorted
array of request arrival times.  This module generates those traces:

* :func:`poisson_arrivals` — memoryless traffic at a constant offered
  rate, the standard open-loop serving assumption;
* :func:`mmpp_arrivals` — a two-state Markov-modulated Poisson process
  (quiet/burst), the classic model for bursty production traffic;
* :func:`diurnal_arrivals` — an inhomogeneous Poisson process whose
  rate ramps sinusoidally between an off-peak and a peak level, the
  shape of a day of user traffic compressed into the simulated horizon.

Every generator is a pure function of its arguments: the same seed
yields the same trace bit-for-bit, which is what makes the downstream
latency percentiles reproducible (see ``docs/architecture.md``,
"Serving & traffic simulation").
"""

from __future__ import annotations

import numpy as np

TRAFFIC_PATTERNS: tuple[str, ...] = ("poisson", "mmpp", "diurnal")
"""Names accepted by :func:`make_arrivals`."""


def _validate(rate_rps: float, num_requests: int) -> None:
    if rate_rps <= 0.0:
        raise ValueError(f"arrival rate must be positive, got {rate_rps!r}")
    if num_requests <= 0:
        raise ValueError(
            f"request count must be positive, got {num_requests!r}"
        )


def poisson_arrivals(
    rate_rps: float, num_requests: int, seed: int = 0
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process.

    Args:
        rate_rps: mean offered load (requests per second).
        num_requests: trace length.
        seed: RNG seed; the trace is a pure function of it.

    Returns:
        A sorted ``(num_requests,)`` array of arrival times starting
        after 0.

    Raises:
        ValueError: on non-positive rate or count.
    """
    _validate(rate_rps, num_requests)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=num_requests)
    return np.cumsum(gaps)


def mmpp_arrivals(
    quiet_rate_rps: float,
    burst_rate_rps: float,
    num_requests: int,
    mean_dwell_s: float,
    seed: int = 0,
) -> np.ndarray:
    """Arrival times of a two-state Markov-modulated Poisson process.

    The process alternates between a quiet state and a burst state;
    state dwell times are exponential with mean ``mean_dwell_s`` and
    within each state arrivals are Poisson at the state's rate.  This is
    the minimal model of bursty traffic: the long-run mean rate is the
    dwell-weighted average, but arrivals cluster.

    Args:
        quiet_rate_rps: arrival rate in the quiet state.
        burst_rate_rps: arrival rate in the burst state.
        num_requests: trace length.
        mean_dwell_s: mean sojourn time in each state.
        seed: RNG seed.

    Raises:
        ValueError: on non-positive rates, dwell, or count.
    """
    _validate(quiet_rate_rps, num_requests)
    _validate(burst_rate_rps, num_requests)
    if mean_dwell_s <= 0.0:
        raise ValueError(f"mean dwell must be positive, got {mean_dwell_s!r}")
    rng = np.random.default_rng(seed)
    rates = (quiet_rate_rps, burst_rate_rps)
    state = 0
    now = 0.0
    state_ends = rng.exponential(mean_dwell_s)
    times = np.empty(num_requests)
    produced = 0
    while produced < num_requests:
        gap = rng.exponential(1.0 / rates[state])
        if now + gap < state_ends:
            now += gap
            times[produced] = now
            produced += 1
        else:
            # The candidate gap straddles a state switch: restart the
            # (memoryless) arrival clock in the new state.
            now = state_ends
            state = 1 - state
            state_ends = now + rng.exponential(mean_dwell_s)
    return times


def diurnal_arrivals(
    offpeak_rate_rps: float,
    peak_rate_rps: float,
    num_requests: int,
    period_s: float,
    seed: int = 0,
) -> np.ndarray:
    """Arrival times of a sinusoidally-ramped inhomogeneous Poisson process.

    The instantaneous rate ramps between off-peak and peak over
    ``period_s`` (one simulated "day"), sampled by thinning: candidate
    arrivals are drawn at the peak rate and accepted with probability
    ``rate(t) / peak_rate``.

    Args:
        offpeak_rate_rps: trough arrival rate.
        peak_rate_rps: crest arrival rate (must be >= off-peak).
        num_requests: trace length.
        period_s: the ramp period.
        seed: RNG seed.

    Raises:
        ValueError: on non-positive parameters or peak < off-peak.
    """
    _validate(offpeak_rate_rps, num_requests)
    _validate(peak_rate_rps, num_requests)
    if period_s <= 0.0:
        raise ValueError(f"period must be positive, got {period_s!r}")
    if peak_rate_rps < offpeak_rate_rps:
        raise ValueError(
            f"peak rate {peak_rate_rps!r} below off-peak {offpeak_rate_rps!r}"
        )
    rng = np.random.default_rng(seed)
    mid = 0.5 * (peak_rate_rps + offpeak_rate_rps)
    amplitude = 0.5 * (peak_rate_rps - offpeak_rate_rps)
    times = np.empty(num_requests)
    produced = 0
    now = 0.0
    while produced < num_requests:
        now += rng.exponential(1.0 / peak_rate_rps)
        rate = mid - amplitude * np.cos(2.0 * np.pi * now / period_s)
        if rng.uniform() * peak_rate_rps <= rate:
            times[produced] = now
            produced += 1
    return times


def make_arrivals(
    pattern: str, rate_rps: float, num_requests: int, seed: int = 0
) -> np.ndarray:
    """Build a named arrival trace with one shared knob (the mean rate).

    ``"poisson"`` uses the rate directly; ``"mmpp"`` alternates between
    ``rate / 3`` and ``5 * rate / 3`` (equal mean dwells of 50 mean
    inter-arrival periods, so the long-run mean stays ``rate``);
    ``"diurnal"`` ramps between ``rate / 3`` and ``5 * rate / 3`` over a
    period of 500 mean inter-arrival periods (mean ``rate`` likewise).

    Raises:
        KeyError: on an unknown pattern name.
        ValueError: on non-positive rate or count.
    """
    _validate(rate_rps, num_requests)
    if pattern == "poisson":
        return poisson_arrivals(rate_rps, num_requests, seed)
    if pattern == "mmpp":
        return mmpp_arrivals(
            quiet_rate_rps=rate_rps / 3.0,
            burst_rate_rps=5.0 * rate_rps / 3.0,
            num_requests=num_requests,
            mean_dwell_s=50.0 / rate_rps,
            seed=seed,
        )
    if pattern == "diurnal":
        return diurnal_arrivals(
            offpeak_rate_rps=rate_rps / 3.0,
            peak_rate_rps=5.0 * rate_rps / 3.0,
            num_requests=num_requests,
            period_s=500.0 / rate_rps,
            seed=seed,
        )
    raise KeyError(
        f"unknown traffic pattern {pattern!r}; have {TRAFFIC_PATTERNS}"
    )
