"""GoogLeNet (Szegedy et al. 2015) convolution workload.

The paper cites GoogLeNet as one of the "tens, if not hundreds, of
layers" CNNs motivating PCNNA (reference [13]).  An inception module is
four parallel branches; on PCNNA's layer-sequential dataflow each branch
conv is simply another layer request, so the workload flattens every
branch conv into the layer list (58 convolutions).

Only the convolutions that dominate compute are listed: the stem, every
inception branch conv (1x1 reductions, 3x3, 5x5, and pool-projection
1x1s), for all nine inception modules (3a-3b, 4a-4e, 5a-5b).
"""

from __future__ import annotations

from repro.nn.shapes import ConvLayerSpec


def _inception(
    prefix: str,
    side: int,
    in_channels: int,
    b1: int,
    b3_reduce: int,
    b3: int,
    b5_reduce: int,
    b5: int,
    pool_proj: int,
) -> list[ConvLayerSpec]:
    """The six convolutions of one inception module."""
    return [
        ConvLayerSpec(f"{prefix}/1x1", n=side, m=1, nc=in_channels, num_kernels=b1),
        ConvLayerSpec(
            f"{prefix}/3x3_reduce", n=side, m=1, nc=in_channels,
            num_kernels=b3_reduce,
        ),
        ConvLayerSpec(
            f"{prefix}/3x3", n=side, m=3, nc=b3_reduce, num_kernels=b3, p=1
        ),
        ConvLayerSpec(
            f"{prefix}/5x5_reduce", n=side, m=1, nc=in_channels,
            num_kernels=b5_reduce,
        ),
        ConvLayerSpec(
            f"{prefix}/5x5", n=side, m=5, nc=b5_reduce, num_kernels=b5, p=2
        ),
        ConvLayerSpec(
            f"{prefix}/pool_proj", n=side, m=1, nc=in_channels,
            num_kernels=pool_proj,
        ),
    ]


def googlenet_conv_specs() -> list[ConvLayerSpec]:
    """All 58 GoogLeNet convolutions in paper notation, network order."""
    specs: list[ConvLayerSpec] = [
        ConvLayerSpec("conv1/7x7", n=224, m=7, nc=3, num_kernels=64, s=2, p=3),
        ConvLayerSpec("conv2/3x3_reduce", n=56, m=1, nc=64, num_kernels=64),
        ConvLayerSpec("conv2/3x3", n=56, m=3, nc=64, num_kernels=192, p=1),
    ]
    # (prefix, side, in_ch, 1x1, 3x3red, 3x3, 5x5red, 5x5, pool_proj)
    modules = [
        ("inception_3a", 28, 192, 64, 96, 128, 16, 32, 32),
        ("inception_3b", 28, 256, 128, 128, 192, 32, 96, 64),
        ("inception_4a", 14, 480, 192, 96, 208, 16, 48, 64),
        ("inception_4b", 14, 512, 160, 112, 224, 24, 64, 64),
        ("inception_4c", 14, 512, 128, 128, 256, 24, 64, 64),
        ("inception_4d", 14, 512, 112, 144, 288, 32, 64, 64),
        ("inception_4e", 14, 528, 256, 160, 320, 32, 128, 128),
        ("inception_5a", 7, 832, 256, 160, 320, 32, 128, 128),
        ("inception_5b", 7, 832, 384, 192, 384, 48, 128, 128),
    ]
    for module in modules:
        specs.extend(_inception(*module))
    return specs


def inception_module_specs(prefix: str) -> list[ConvLayerSpec]:
    """The six convs of one named inception module (e.g. "inception_4a").

    Raises:
        KeyError: if no module has that prefix.
    """
    matching = [
        spec for spec in googlenet_conv_specs() if spec.name.startswith(prefix + "/")
    ]
    if not matching:
        raise KeyError(f"unknown inception module {prefix!r}")
    return matching
