"""The AlexNet convolution-layer table used throughout the paper's evaluation.

These specs reproduce the exact geometry behind the paper's worked
numbers: conv1 = 224 x 224 x 3 input with 96 kernels of 11 x 11 x 3
(Ninput = 150 528, Nkernel = 363, 5.2 B unfiltered rings, ~35 K filtered)
and conv4 with Nkernel = 3 * 3 * 384 = 3456 (the "most kernel weights"
layer whose single-bank area is 2.2 mm^2).
"""

from __future__ import annotations

from repro.nn.shapes import ConvLayerSpec

ALEXNET_CONV_LAYERS: tuple[ConvLayerSpec, ...] = (
    ConvLayerSpec(name="conv1", n=224, m=11, nc=3, num_kernels=96, s=4, p=2),
    ConvLayerSpec(name="conv2", n=27, m=5, nc=96, num_kernels=256, s=1, p=2),
    ConvLayerSpec(name="conv3", n=13, m=3, nc=256, num_kernels=384, s=1, p=1),
    ConvLayerSpec(name="conv4", n=13, m=3, nc=384, num_kernels=384, s=1, p=1),
    ConvLayerSpec(name="conv5", n=13, m=3, nc=384, num_kernels=256, s=1, p=1),
)
"""The five AlexNet conv layers, paper notation, in network order."""


def alexnet_conv_specs() -> list[ConvLayerSpec]:
    """A fresh list of the paper's AlexNet conv-layer specs."""
    return list(ALEXNET_CONV_LAYERS)


def alexnet_layer(name: str) -> ConvLayerSpec:
    """Look up one AlexNet conv layer by name (e.g. ``"conv4"``).

    Raises:
        KeyError: if no layer has that name.
    """
    for spec in ALEXNET_CONV_LAYERS:
        if spec.name == name:
            return spec
    raise KeyError(
        f"unknown AlexNet layer {name!r}; have "
        f"{[spec.name for spec in ALEXNET_CONV_LAYERS]}"
    )
