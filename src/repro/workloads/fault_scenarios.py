"""Named fault scenarios for degraded-mode serving studies.

The fault engine (:mod:`repro.core.faults`) takes arbitrary schedules;
studies, examples, and tests want *named, reproducible* ones.  Each
scenario here is a pure function of ``(num_cores, horizon_s, severity)``
— the same arguments always build the same schedule — and its time
constants scale with the simulated horizon, the same compression the
diurnal traffic generator applies to a day of load: real microring
deployments drift over minutes to hours, a simulated trace lasts
fractions of a second, so the scenario expresses drift as "so much
degradation over this trace" rather than a wall-clock rate.

``severity=1.0`` is tuned so the healthy-baseline study stays
interesting: slow drift is recoverable by recalibration, the runaway
core and the ring deaths are not (they exercise the fault-aware
repartitioning path), and everything is scaled down to a no-op by
``severity=0.0`` (the differential-testing hook).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.faults import FaultEvent, FaultSchedule

FAULT_SCENARIOS: tuple[str, ...] = (
    "slow-drift",
    "thermal-runaway",
    "crosstalk-storm",
    "ring-death",
    "tia-aging",
    "tia-burnin",
    "crosstalk-blip",
    "mixed-degradation",
)
"""Names accepted by :func:`fault_scenario`."""

_SLOW_DRIFT_TOTAL_K = 0.06
"""Ambient accumulated by "slow-drift" over the horizon — inside the
command headroom, so online recalibration keeps absorbing it."""

_RUNAWAY_TOTAL_K = 1.0
"""Ambient the runaway core accumulates — far beyond the headroom, so
recalibration exhausts and the scheduler must drain the core."""


def _validate(num_cores: int, horizon_s: float) -> None:
    if num_cores < 1:
        raise ValueError(f"need >= 1 core, got {num_cores!r}")
    if horizon_s <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon_s!r}")


def fault_scenario(
    name: str, num_cores: int, horizon_s: float, severity: float = 1.0
) -> FaultSchedule:
    """Build one of the named fault scenarios.

    Args:
        name: one of :data:`FAULT_SCENARIOS`.
        num_cores: physical cores in the served pipeline.
        horizon_s: expected trace length; every onset and rate scales
            with it.
        severity: magnitude multiplier (0 disarms every fault).

    Raises:
        KeyError: on an unknown scenario name.
        ValueError: on a non-positive core count or horizon.
    """
    _validate(num_cores, horizon_s)
    cores = range(num_cores)
    if name == "slow-drift":
        rate = _SLOW_DRIFT_TOTAL_K / horizon_s
        schedule = replace(
            FaultSchedule.uniform_drift(rate, num_cores), name=name
        )
    elif name == "thermal-runaway":
        slow = _SLOW_DRIFT_TOTAL_K / horizon_s
        fast = _RUNAWAY_TOTAL_K / horizon_s
        schedule = FaultSchedule(
            name=name,
            events=tuple(
                FaultEvent(
                    kind="thermal_ramp",
                    core=core,
                    onset_s=0.0,
                    magnitude=fast if core == 0 else slow,
                )
                for core in cores
            ),
        )
    elif name == "crosstalk-storm":
        schedule = FaultSchedule(
            name=name,
            events=tuple(
                FaultEvent(
                    kind="crosstalk",
                    core=core,
                    onset_s=0.3 * horizon_s,
                    magnitude=0.25,
                    duration_s=0.3 * horizon_s,
                )
                for core in cores
            ),
        )
    elif name == "ring-death":
        victim = num_cores - 1
        schedule = FaultSchedule(
            name=name,
            events=(
                FaultEvent(
                    kind="dead_rings",
                    core=victim,
                    onset_s=0.4 * horizon_s,
                    magnitude=1.0,
                    rings=(7, 6),
                ),
            ),
        )
    elif name == "tia-aging":
        schedule = FaultSchedule(
            name=name,
            events=tuple(
                FaultEvent(
                    kind="tia_droop",
                    core=core,
                    onset_s=0.0,
                    magnitude=0.15,
                    duration_s=horizon_s,
                )
                for core in cores
            ),
        )
    elif name == "tia-burnin":
        # Deep, slow photodiode burn-in: the droop keeps progressing
        # well past the nominal horizon, so the error curve stays in
        # its decelerating early phase for the whole run — the regime
        # where recalibrating early (at a lower starting error) costs
        # fewer feedback iterations than waiting for the threshold.
        schedule = FaultSchedule(
            name=name,
            events=tuple(
                FaultEvent(
                    kind="tia_droop",
                    core=core,
                    onset_s=0.0,
                    magnitude=0.3,
                    duration_s=3.0 * horizon_s,
                )
                for core in cores
            ),
        )
    elif name == "crosstalk-blip":
        # One short crosstalk excursion on one core — a transient that
        # reverts on its own.  Threshold-triggered recalibration fires
        # on the excursion and again on the stale compensation it
        # leaves behind once the coupling reverts; a smoothed estimator
        # rides the blip out.
        schedule = FaultSchedule(
            name=name,
            events=(
                FaultEvent(
                    kind="crosstalk",
                    core=0,
                    onset_s=0.35 * horizon_s,
                    magnitude=0.15,
                    duration_s=horizon_s / 48.0,
                ),
            ),
        )
    elif name == "mixed-degradation":
        slow = _SLOW_DRIFT_TOTAL_K / horizon_s
        events = [
            FaultEvent(
                kind="thermal_ramp", core=core, onset_s=0.0, magnitude=slow
            )
            for core in cores
        ]
        events.append(
            FaultEvent(
                kind="crosstalk",
                core=min(1, num_cores - 1),
                onset_s=0.25 * horizon_s,
                magnitude=0.2,
                duration_s=0.25 * horizon_s,
            )
        )
        events.append(
            FaultEvent(
                kind="dead_rings",
                core=num_cores - 1,
                onset_s=0.5 * horizon_s,
                magnitude=1.0,
                rings=(7,),
            )
        )
        schedule = FaultSchedule(name=name, events=tuple(events))
    else:
        raise KeyError(
            f"unknown fault scenario {name!r}; have {FAULT_SCENARIOS}"
        )
    if severity != 1.0:
        schedule = schedule.scaled(severity)
    return schedule


__all__ = ["FAULT_SCENARIOS", "fault_scenario"]
