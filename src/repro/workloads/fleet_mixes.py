"""Named multi-region scenarios for fleet serving studies.

The fleet runtime (:mod:`repro.core.fleet`) takes arbitrary region and
tenant sets; studies, examples, and tests want *named, reproducible*
ones — the fleet sibling of :mod:`repro.workloads.cluster_mixes`.
Each scenario is a pure function of ``(name, rate_rps, num_requests,
seed)``: the same arguments always build the same tenants, regions,
RTT matrix, and per-region arrival traces, so fleet sweeps and the
hypothesis suite stay bit-reproducible.

The scenarios cover the axes the fleet layer exists for:

* ``follow-the-sun`` — three regions with phase-shifted diurnal peaks
  (each region's crest lands a third of a period after the previous
  one) under latency-weighted routing: offload flows westward around
  the planet as each region peaks;
* ``regional-outage`` — two regions under geo-affinity where a severe
  mid-run TIA-droop fault degrades the primary past the failover
  threshold, diverting its users to the survivor until the fault
  clears;
* ``burst-overflow`` — two active regions carrying bursty MMPP
  traffic plus an idle standby pool, with an SLO-burn autoscaler that
  commissions the standby when the burst pushes burn over threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.cluster import ClusterTenant
from repro.core.faults import FaultEvent, FaultSchedule
from repro.core.fleet import (
    FleetAutoscaler,
    GlobalRoutingPolicy,
    RegionSpec,
    estimate_region_capacity_rps,
    uniform_rtt,
)
from repro.core.simkernel import BatchingPolicy
from repro.workloads.serving import serving_network
from repro.workloads.traffic import (
    diurnal_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
)

FLEET_MIXES: tuple[str, ...] = (
    "follow-the-sun",
    "regional-outage",
    "burst-overflow",
)
"""Names accepted by :func:`fleet_mix`."""

_RTT_S = 0.01
"""Uniform inter-region round trip for the named scenarios (10 ms)."""


@dataclass(frozen=True)
class FleetScenario:
    """One named multi-region scenario, ready for the fleet runtime.

    Every field maps directly onto a
    :func:`~repro.core.fleet.simulate_fleet_serving` argument.

    Attributes:
        name: the scenario's name.
        tenants: the globally replicated tenant set.
        regions: the regional pools, in preference order.
        arrival_s: per-region, per-tenant offered arrival traces.
        rtt_s: the inter-region RTT matrix.
        routing: the global routing policy.
        autoscaler: the pool autoscaler, or ``None``.
    """

    name: str
    tenants: tuple[ClusterTenant, ...]
    regions: tuple[RegionSpec, ...]
    arrival_s: Mapping[str, Mapping[str, np.ndarray]]
    rtt_s: np.ndarray
    routing: GlobalRoutingPolicy
    autoscaler: FleetAutoscaler | None


def fleet_mix(
    name: str,
    rate_rps: float,
    num_requests: int,
    seed: int = 0,
    scale: float = 0.05,
) -> FleetScenario:
    """Build one of the named multi-region scenarios.

    ``rate_rps`` is the *total* offered load; each scenario splits it
    over its regions, and each region's trace length is its share of
    ``num_requests``.  Per-region trace seeds derive from ``seed`` plus
    the region's position, so traces are independent but reproducible.
    Fault onsets and autoscaler epochs scale with the simulated horizon
    (``num_requests / rate_rps``), so the scenarios behave the same at
    any size.

    Args:
        name: one of :data:`FLEET_MIXES`.
        rate_rps: total offered load across the regions.
        num_requests: total requests across the regions.
        seed: base RNG seed.
        scale: channel-count multiplier for the scalable networks.

    Returns:
        The assembled :class:`FleetScenario`.

    Raises:
        KeyError: on an unknown scenario name.
        ValueError: on a non-positive rate or request count.
    """
    if rate_rps <= 0.0:
        raise ValueError(f"total rate must be positive, got {rate_rps!r}")
    if num_requests <= 0:
        raise ValueError(
            f"request count must be positive, got {num_requests!r}"
        )
    horizon_s = num_requests / rate_rps
    interactive = ClusterTenant.from_network(
        "interactive",
        serving_network("lenet5", seed=seed),
        BatchingPolicy.dynamic(4, 1e-4),
        weight=2.0,
    )
    batch = ClusterTenant.from_network(
        "batch",
        serving_network("googlenet-stem", scale=scale, seed=seed),
        BatchingPolicy.fixed(8),
        weight=1.0,
    )
    tenants = (interactive, batch)

    if name == "follow-the-sun":
        region_names = ("americas", "emea", "apac")
        share = rate_rps / 3.0
        per_region = max(1, num_requests // 3)
        period_s = 3.0 * per_region / share
        arrival_s = {}
        for position, region_name in enumerate(region_names):
            # Each region's diurnal crest lands a third of a period
            # after the previous region's — the sun moving west.
            phase = position * period_s / 3.0
            interactive_n = max(1, int(round(0.7 * per_region)))
            batch_n = max(1, per_region - interactive_n)
            arrival_s[region_name] = {
                "interactive": phase
                + diurnal_arrivals(
                    0.7 * share / 3.0,
                    0.7 * share * 5.0 / 3.0,
                    interactive_n,
                    period_s,
                    seed=seed + 1000 * (position + 1),
                ),
                "batch": phase
                + diurnal_arrivals(
                    0.3 * share / 3.0,
                    0.3 * share * 5.0 / 3.0,
                    batch_n,
                    period_s,
                    seed=seed + 1000 * (position + 1) + 500,
                ),
            }
        return FleetScenario(
            name=name,
            tenants=tenants,
            regions=(
                RegionSpec("americas", 8),
                RegionSpec("emea", 6),
                RegionSpec("apac", 6),
            ),
            arrival_s=arrival_s,
            rtt_s=uniform_rtt(3, _RTT_S),
            routing=GlobalRoutingPolicy.latency_weighted(),
            autoscaler=None,
        )

    if name == "regional-outage":
        half = rate_rps / 2.0
        per_region = max(1, num_requests // 2)
        outage = FaultSchedule(
            name="primary-outage",
            events=tuple(
                FaultEvent(
                    kind="tia_droop",
                    core=core,
                    onset_s=0.3 * horizon_s,
                    magnitude=0.9,
                    duration_s=0.3 * horizon_s,
                )
                for core in range(8)
            ),
        )
        arrival_s = {}
        for position, region_name in enumerate(("primary", "fallback")):
            interactive_n = max(1, int(round(0.7 * per_region)))
            batch_n = max(1, per_region - interactive_n)
            arrival_s[region_name] = {
                "interactive": poisson_arrivals(
                    0.7 * half,
                    interactive_n,
                    seed=seed + 1000 * (position + 1),
                ),
                "batch": poisson_arrivals(
                    0.3 * half,
                    batch_n,
                    seed=seed + 1000 * (position + 11),
                ),
            }
        return FleetScenario(
            name=name,
            tenants=tenants,
            regions=(
                RegionSpec("primary", 8, schedule=outage),
                RegionSpec("fallback", 8),
            ),
            arrival_s=arrival_s,
            rtt_s=uniform_rtt(2, _RTT_S),
            routing=GlobalRoutingPolicy.geo_affinity(),
            autoscaler=None,
        )

    if name == "burst-overflow":
        half = rate_rps / 2.0
        per_region = max(1, num_requests // 2)
        arrival_s = {"standby": {}}
        for position, region_name in enumerate(("east", "west")):
            interactive_n = max(1, int(round(0.7 * per_region)))
            batch_n = max(1, per_region - interactive_n)
            arrival_s[region_name] = {
                "interactive": mmpp_arrivals(
                    0.7 * half / 3.0,
                    0.7 * half * 5.0 / 3.0,
                    interactive_n,
                    mean_dwell_s=horizon_s / 10.0,
                    seed=seed + 1000 * (position + 1),
                ),
                "batch": mmpp_arrivals(
                    0.3 * half / 3.0,
                    0.3 * half * 5.0 / 3.0,
                    batch_n,
                    mean_dwell_s=horizon_s / 10.0,
                    seed=seed + 1000 * (position + 1) + 500,
                ),
            }
        regions = (
            RegionSpec("east", 6),
            RegionSpec("west", 6),
            RegionSpec("standby", 8),
        )
        # SLO-burn thresholds sit relative to the *mean* burn of the
        # two home pools, so the MMPP burst state (5/3 of the mean
        # rate) reliably trips commissioning at any absolute rate.
        mean_burn = rate_rps / (
            estimate_region_capacity_rps(tenants, regions[0])
            + estimate_region_capacity_rps(tenants, regions[1])
        )
        return FleetScenario(
            name=name,
            tenants=tenants,
            regions=regions,
            arrival_s=arrival_s,
            rtt_s=uniform_rtt(3, _RTT_S),
            routing=GlobalRoutingPolicy.least_loaded(),
            autoscaler=FleetAutoscaler(
                epoch_s=horizon_s / 10.0,
                burn_up=1.2 * mean_burn,
                burn_down=0.7 * mean_burn,
                warmup_s=horizon_s / 20.0,
                min_pools=2,
                max_pools=3,
            ),
        )

    raise KeyError(f"unknown fleet mix {name!r}; have {FLEET_MIXES}")


__all__ = ["FLEET_MIXES", "FleetScenario", "fleet_mix"]
