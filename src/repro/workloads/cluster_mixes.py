"""Named multi-tenant traffic mixes for cluster serving studies.

The cluster runtime (:mod:`repro.core.cluster`) takes arbitrary tenant
sets; studies, examples, and tests want *named, reproducible* ones.
Each mix here is a pure function of ``(name, rate_rps, num_requests,
seed)`` — the same arguments always build the same tenants and the same
per-tenant arrival traces — so cluster sweeps and the hypothesis suite
stay bit-reproducible.

The mixes cover the scenario axes the cluster layer exists for:

* ``interactive-batch`` — a latency-sensitive LeNet-5 front end
  (small dynamic batches, tight queue cap) sharing the pool with a
  throughput-oriented GoogLeNet-stem back end (full fixed batches,
  deep queue);
* ``model-zoo`` — four architectures (LeNet-5, AlexNet, GoogLeNet
  stem, VGG-16) co-served with equal weights, the heterogeneous
  "many models, one pool" deployment;
* ``minority-majority`` — two tenants of the same model where the
  majority offers 10x the minority's load, the canonical fairness
  stress (weighted-fair routing must keep the minority's latency
  bounded while the majority saturates the pool).
"""

from __future__ import annotations

import numpy as np

from repro.core.cluster import ClusterTenant
from repro.core.simkernel import BatchingPolicy
from repro.nn.models import build_vgg16
from repro.workloads.serving import serving_network
from repro.workloads.traffic import poisson_arrivals

CLUSTER_MIXES: tuple[str, ...] = (
    "interactive-batch",
    "model-zoo",
    "minority-majority",
)
"""Names accepted by :func:`cluster_mix`."""

_VGG_SCALE = 0.02
"""Channel scale for the VGG-16 tenant (tractable spec sizes)."""


def cluster_mix(
    name: str,
    rate_rps: float,
    num_requests: int,
    seed: int = 0,
    scale: float = 0.05,
) -> tuple[tuple[ClusterTenant, ...], dict[str, np.ndarray]]:
    """Build one of the named tenant mixes and its arrival traces.

    ``rate_rps`` is the *total* offered load; each mix splits it over
    its tenants in fixed proportions, and each tenant's trace length is
    its share of ``num_requests``.  Per-tenant trace seeds derive from
    ``seed`` plus the tenant's position, so traces are independent but
    reproducible.

    Args:
        name: one of :data:`CLUSTER_MIXES`.
        rate_rps: total offered load across the tenants.
        num_requests: total requests across the tenants.
        seed: base RNG seed.
        scale: channel-count multiplier for the scalable networks.

    Returns:
        The tenants (in order) and a per-tenant arrival-trace dict.

    Raises:
        KeyError: on an unknown mix name.
        ValueError: on a non-positive rate or request count.
    """
    if rate_rps <= 0.0:
        raise ValueError(f"total rate must be positive, got {rate_rps!r}")
    if num_requests <= 0:
        raise ValueError(
            f"request count must be positive, got {num_requests!r}"
        )
    if name == "interactive-batch":
        plan = [
            (
                ClusterTenant.from_network(
                    "interactive",
                    serving_network("lenet5", seed=seed),
                    BatchingPolicy.dynamic(4, 1e-4),
                    weight=2.0,
                    priority=1,
                    queue_cap=64,
                ),
                0.7,
            ),
            (
                ClusterTenant.from_network(
                    "batch",
                    serving_network("googlenet-stem", scale=scale, seed=seed),
                    BatchingPolicy.fixed(16),
                    weight=1.0,
                    priority=0,
                ),
                0.3,
            ),
        ]
    elif name == "model-zoo":
        networks = [
            ("lenet5", serving_network("lenet5", seed=seed)),
            ("alexnet", serving_network("alexnet", scale=scale, seed=seed)),
            (
                "googlenet-stem",
                serving_network("googlenet-stem", scale=scale, seed=seed),
            ),
            ("vgg16", build_vgg16(scale=_VGG_SCALE, seed=seed)),
        ]
        plan = [
            (
                ClusterTenant.from_network(
                    net_name,
                    network,
                    BatchingPolicy.dynamic(8, 1e-3),
                ),
                0.25,
            )
            for net_name, network in networks
        ]
    elif name == "minority-majority":
        network = serving_network("lenet5", seed=seed)
        plan = [
            (
                ClusterTenant.from_network(
                    "majority",
                    network,
                    BatchingPolicy.dynamic(16, 1e-3),
                    weight=1.0,
                    queue_cap=128,
                ),
                10.0 / 11.0,
            ),
            (
                ClusterTenant.from_network(
                    "minority",
                    network,
                    BatchingPolicy.dynamic(4, 1e-4),
                    weight=1.0,
                ),
                1.0 / 11.0,
            ),
        ]
    else:
        raise KeyError(f"unknown cluster mix {name!r}; have {CLUSTER_MIXES}")

    tenants = tuple(tenant for tenant, _ in plan)
    arrivals = {}
    for position, (tenant, share) in enumerate(plan):
        requests = max(1, int(round(share * num_requests)))
        arrivals[tenant.name] = poisson_arrivals(
            share * rate_rps, requests, seed=seed + 1000 * (position + 1)
        )
    return tenants, arrivals


__all__ = ["CLUSTER_MIXES", "cluster_mix"]
