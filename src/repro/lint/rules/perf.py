"""PERF001: kernel hot-path classes must declare ``__slots__``.

Objects constructed per batch or per event inside the kernel loop
(millions of them in a 10M-request soak) pay for an instance
``__dict__`` they never use.  Modules declare their hot-path classes in
a module-level ``__hot_path__`` tuple; every listed class must carry
``__slots__`` — either an explicit class-body assignment or
``@dataclass(..., slots=True)``.  The registry below pins the classes
the kernel modules are required to declare, so the declaration cannot
be quietly dropped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.walker import ModuleInfo, Project

#: Hot-path classes each kernel module must declare in ``__hot_path__``.
REQUIRED_HOT_PATH = {
    "repro/core/simkernel.py": frozenset(
        {"BatchRecord", "BatchTable", "DispatchContext"}
    ),
    "repro/core/cluster.py": frozenset({"_TenantLane"}),
    "repro/core/faults.py": frozenset({"CoreHealthState"}),
}


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots" and isinstance(
                    keyword.value, ast.Constant
                ):
                    if keyword.value.value is True:
                        return True
    return False


@register
class HotPathSlots(Rule):
    code = "PERF001"
    title = "hot-path class without __slots__"
    rationale = (
        "per-event objects with instance dicts dominate allocation in "
        "reference-mode soaks; __slots__ keeps the per-batch cost flat"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        required = frozenset()
        for suffix, names in sorted(REQUIRED_HOT_PATH.items()):
            if module.relpath.endswith(suffix):
                required = names
                break
        for name in sorted(required - set(module.hot_path)):
            yield Finding(
                code=self.code,
                path=module.relpath,
                line=1,
                col=0,
                message=(
                    f"hot-path class {name!r} must be declared in this "
                    "module's `__hot_path__` tuple (the declaration scopes "
                    "this rule and must not be removed)"
                ),
            )
        if not module.hot_path:
            return
        classes = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        }
        for name in module.hot_path:
            node = classes.get(name)
            if node is None:
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=1,
                    col=0,
                    message=(
                        f"`__hot_path__` names {name!r} but the module "
                        "defines no such class; the registry is stale"
                    ),
                )
                continue
            if not _declares_slots(node):
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"hot-path class `{name}` does not declare "
                        "`__slots__` (use an explicit tuple or "
                        "`@dataclass(slots=True)`)"
                    ),
                    symbol=name,
                )


__all__ = ["HotPathSlots", "REQUIRED_HOT_PATH"]
