"""PLUG001: KernelPlugin subclasses may only override real hooks.

The event-loop kernel dispatches plugin hooks by name
(``on_run_start``, ``on_dispatch_planned``, ``on_batch_complete``,
``on_run_end``).  A typo'd override — ``on_batch_completed`` — defines
a perfectly valid method that the kernel simply never calls, so the
plugin silently no-ops.  This rule derives the hook vocabulary from the
``KernelPlugin`` base class itself when it is part of the linted
project (so adding a hook to the kernel updates the rule for free) and
falls back to the pinned default set otherwise.
"""

from __future__ import annotations

import ast
import difflib
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.walker import ModuleInfo, Project

#: The kernel's hook vocabulary, used when ``KernelPlugin`` itself is
#: not among the linted modules (e.g. single-file runs).
DEFAULT_HOOKS = frozenset(
    {"on_run_start", "on_dispatch_planned", "on_batch_complete", "on_run_end"}
)

_BASE_CLASS = "KernelPlugin"


def _bases_include_kernel_plugin(node: ast.ClassDef) -> bool:
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id == _BASE_CLASS:
            return True
        if isinstance(base, ast.Attribute) and base.attr == _BASE_CLASS:
            return True
    return False


def _project_hooks(project: Project) -> frozenset[str]:
    """Hook names read off the project's own KernelPlugin definition."""
    for module in project.modules:
        if module.parse_error is not None:
            continue
        for node in module.tree.body:
            if (
                isinstance(node, ast.ClassDef)
                and node.name == _BASE_CLASS
                and not _bases_include_kernel_plugin(node)
            ):
                hooks = {
                    member.name
                    for member in node.body
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and member.name.startswith("on_")
                }
                if hooks:
                    return frozenset(hooks)
    return DEFAULT_HOOKS


@register
class PluginHookNames(Rule):
    code = "PLUG001"
    title = "KernelPlugin override is not a known hook"
    rationale = (
        "the kernel calls hooks by name; a typo'd override silently "
        "never runs, which is the worst possible failure mode for "
        "fault bookkeeping"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        hooks = None  # resolved lazily: most modules define no plugins
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _bases_include_kernel_plugin(node):
                continue
            if hooks is None:
                hooks = _project_hooks(project)
            for member in node.body:
                if not isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if not member.name.startswith("on_"):
                    continue
                if member.name in hooks:
                    continue
                close = difflib.get_close_matches(
                    member.name, sorted(hooks), n=1
                )
                hint = f"; did you mean `{close[0]}`?" if close else ""
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=member.lineno,
                    col=member.col_offset,
                    message=(
                        f"`{node.name}.{member.name}` is not a kernel hook "
                        f"(known: {', '.join(sorted(hooks))}) and will "
                        f"silently never be called{hint}"
                    ),
                    symbol=node.name,
                )


__all__ = ["DEFAULT_HOOKS", "PluginHookNames"]
