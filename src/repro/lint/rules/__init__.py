"""The rule modules; importing this package registers every rule."""

from repro.lint.rules import api, bitident, determinism, perf, plugins

__all__ = ["api", "bitident", "determinism", "perf", "plugins"]
