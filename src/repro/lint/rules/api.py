"""API rules: export surface and seed-threading contracts.

API001 makes the manual ``__all__`` audits of PRs 5–6 mechanical: every
``__all__`` is a literal of names actually bound in the module, package
``__init__``s declare every public binding, and a re-exported name
(``traffic.py`` re-exporting ``plan_dispatch`` from ``simkernel.py``)
is provably exported by its source module too.

API002 enforces the repo's determinism-injection convention: a public
``simulate_*``/``sweep_*`` entry point must take its randomness from
the caller — either a ``seed``/``rng`` parameter that the body actually
threads, or a pre-generated arrival/trace array (the shared-trace sweep
pattern).  Closed-form analytical models with no stochastic inputs are
waived with a justified pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.walker import ModuleInfo, Project

#: Parameter names that inject a seedable randomness source.
_SEED_PARAM_SUFFIXES = ("seed", "rng")

#: Parameter names that inject a pre-seeded event trace instead.
_TRACE_PARAM_MARKERS = ("arrival", "trace")


@register
class ExportAudit(Rule):
    code = "API001"
    title = "__all__ export audit"
    rationale = (
        "PR 5's manual export audit drifted the moment PR 6 added "
        "KERNEL_MODES/BatchTable; declared and actual export surfaces "
        "must be provably equal"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        if module.all_names is None:
            if not module.all_is_literal:
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=module.all_line,
                    col=0,
                    message=(
                        "`__all__` must be a literal list of string names "
                        "so the export surface is statically auditable"
                    ),
                )
            elif module.is_package_init and module.bindings:
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=1,
                    col=0,
                    message=(
                        "package __init__ defines no `__all__`; declare "
                        "the public export surface explicitly"
                    ),
                )
            return
        seen: set[str] = set()
        for name in module.all_names:
            if name in seen:
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=module.all_line,
                    col=0,
                    message=f"duplicate `__all__` entry {name!r}",
                )
                continue
            seen.add(name)
            if name not in module.bindings:
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=module.all_line,
                    col=0,
                    message=(
                        f"`__all__` exports {name!r} but the module never "
                        "binds it"
                    ),
                )
                continue
            yield from self._check_reexport(name, module, project)
        if module.is_package_init:
            for name, line in sorted(module.bindings.items()):
                if name.startswith("_") or name in seen:
                    continue
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=line,
                    col=0,
                    message=(
                        f"public name {name!r} is importable from the "
                        "package but missing from `__all__`"
                    ),
                )

    def _check_reexport(
        self, name: str, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        """A re-exported name must be exported by its source module."""
        if name not in module.import_map:
            return
        source_module, original = module.import_map[name]
        source = project.by_name.get(source_module)
        if source is None or source.parse_error is not None:
            return
        if source.all_names is not None:
            consistent = original in source.all_names
        else:
            consistent = original in source.bindings
        if not consistent:
            yield Finding(
                code=self.code,
                path=module.relpath,
                line=module.bindings[name],
                col=0,
                message=(
                    f"re-export {name!r} is not consistent with its source: "
                    f"`{source_module}` does not export {original!r}"
                ),
            )


def _parameter_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    every = (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    )
    return [arg.arg for arg in every]


def _is_seed_param(name: str) -> bool:
    lowered = name.lower()
    return any(
        lowered == suffix or lowered.endswith("_" + suffix)
        for suffix in _SEED_PARAM_SUFFIXES
    )


def _is_trace_param(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _TRACE_PARAM_MARKERS)


def _threads_param(
    node: ast.FunctionDef | ast.AsyncFunctionDef, param: str
) -> bool:
    """Whether the body ever reads ``param``."""
    for statement in node.body:
        for child in ast.walk(statement):
            if (
                isinstance(child, ast.Name)
                and child.id == param
                and isinstance(child.ctx, ast.Load)
            ):
                return True
    return False


@register
class SeedThreading(Rule):
    code = "API002"
    title = "simulate_*/sweep_* seed threading"
    rationale = (
        "an entry point that makes its own randomness (or ignores the "
        "seed it accepts) cannot be replayed; determinism is injected "
        "by the caller, never manufactured inside"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        for node, owner in self._public_entry_points(module.tree):
            symbol = f"{owner}.{node.name}" if owner else node.name
            params = _parameter_names(node)
            seed_params = [p for p in params if _is_seed_param(p)]
            trace_params = [p for p in params if _is_trace_param(p)]
            if not seed_params and not trace_params:
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"public entry point `{symbol}` accepts neither a "
                        "`seed`/`rng` parameter nor a pre-seeded arrival/"
                        "trace input; its caller cannot control determinism"
                    ),
                    symbol=node.name,
                )
                continue
            for param in seed_params:
                if not _threads_param(node, param):
                    yield Finding(
                        code=self.code,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"`{symbol}` accepts `{param}` but never "
                            "threads it; the parameter is decorative"
                        ),
                        symbol=node.name,
                    )

    @staticmethod
    def _public_entry_points(tree: ast.Module):
        """Public simulate_*/sweep_* defs: module level and methods."""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith(("simulate_", "sweep_")):
                    yield node, ""
            elif isinstance(node, ast.ClassDef) and not node.name.startswith(
                "_"
            ):
                for member in node.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and member.name.startswith(("simulate_", "sweep_")):
                        yield member, node.name


__all__ = ["ExportAudit", "SeedThreading"]
