"""BIT001: order-sensitive float folds in bit-identity-pinned modules.

The vectorized kernel's exactness rests on every float accumulation
being a *strict sequential left fold* — ``np.sum`` uses pairwise
summation, which rounds differently and broke ``_maxplus_scan`` until
PR 6 replaced it with a segmented cumsum fold.  In modules whose
results are pinned bit-identical (golden fixtures, reference-mode
equality, zero-magnitude fault differentials), every ``sum``-shaped
fold must therefore be individually justified with a pragma: either it
is a strict left fold over a fixed order, or it is computed by the
identical recipe in every mode.

Membership is declared in the module itself (``__bit_identity__ =
True``) and pinned here: the modules in :data:`REQUIRED_BIT_IDENTITY`
must carry the declaration, so deleting the marker is itself a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.walker import (
    ModuleInfo,
    Project,
    dotted_call_name,
    enclosing_symbols,
)

#: Modules whose outputs carry bit-identity pins; each must declare
#: ``__bit_identity__ = True`` at module level.
REQUIRED_BIT_IDENTITY = (
    "repro/core/simkernel.py",
    "repro/core/traffic.py",
    "repro/core/faults.py",
    "repro/core/cluster.py",
    "repro/core/fleet.py",
    "repro/core/adaptive.py",
)

#: Order-sensitive fold entry points (``math.fsum`` is exempt: it is
#: exactly rounded regardless of order).
_FOLD_FUNCTIONS = frozenset({"numpy.sum", "numpy.nansum"})
_FOLD_METHODS = frozenset({"sum", "nansum"})


@register
class OrderSensitiveFloatFold(Rule):
    code = "BIT001"
    title = "unjustified float fold in a bit-identity module"
    rationale = (
        "np.sum's pairwise summation rounds differently from a "
        "sequential fold; one unreviewed sum in a pinned module is how "
        "the PR 6 _maxplus_scan trap happens again"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        registered = any(
            module.relpath.endswith(suffix)
            for suffix in REQUIRED_BIT_IDENTITY
        )
        if registered and not module.bit_identity:
            yield Finding(
                code=self.code,
                path=module.relpath,
                line=1,
                col=0,
                message=(
                    "module carries bit-identity pins but does not declare "
                    "`__bit_identity__ = True`; the declaration scopes this "
                    "rule and must not be removed"
                ),
            )
            return
        if not module.bit_identity:
            return
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            described = None
            name = dotted_call_name(module, node.func)
            if name in _FOLD_FUNCTIONS:
                described = f"`{name}` (pairwise summation)"
            elif isinstance(node.func, ast.Name) and node.func.id == "sum":
                described = "builtin `sum`"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FOLD_METHODS
                and name is None
            ):
                described = f"`.{node.func.attr}()` (ndarray pairwise fold)"
            if described is None:
                continue
            yield Finding(
                code=self.code,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{described} in a bit-identity module; every fold here "
                    "must state its order contract — justify with "
                    "`# repro: allow[BIT001] <why the rounding is pinned>`"
                ),
                symbol=symbols.get(node.lineno, ""),
            )


__all__ = ["OrderSensitiveFloatFold", "REQUIRED_BIT_IDENTITY"]
