"""DET rules: every source of nondeterminism the repo has banned.

The reproduction's guarantees (golden fixtures byte-identical across
PRs, vectorized == reference bit-equality, zero-magnitude fault
schedules == fault-free runs) only hold because randomness is always
seeded, the simulated clock is the only clock, and nothing iterates a
hash-ordered container into a float fold.  These rules make the three
conventions machine-checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.walker import (
    ModuleInfo,
    Project,
    dotted_call_name,
    enclosing_symbols,
)

#: numpy.random attributes that construct seedable generators — the
#: only sanctioned entry points into numpy randomness.
_NUMPY_RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Wall-clock entry points; the event loop's simulated clock is the
#: only clock simulation code may read.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Consumers whose result depends on iteration order: feeding them a
#: set leaks hash order into float accumulation or event ordering.
_ORDER_SENSITIVE_CONSUMERS = frozenset(
    {"sum", "list", "tuple", "iter", "enumerate"}
)


def _is_unseeded(call: ast.Call) -> bool:
    """No positional seed and no seed= keyword (or an explicit None)."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return isinstance(
                keyword.value, ast.Constant
            ) and keyword.value.value is None
    return True


@register
class UnseededRandomness(Rule):
    code = "DET001"
    title = "unseeded or global-state randomness"
    rationale = (
        "module-level RNGs and unseeded generators make runs "
        "irreproducible; every simulate_* result must be a pure "
        "function of its seed"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_call_name(module, node.func)
            if name is None:
                continue
            message = None
            if name.startswith("numpy.random."):
                attr = name.rsplit(".", 1)[1]
                if attr not in _NUMPY_RNG_CONSTRUCTORS:
                    message = (
                        f"call to numpy's module-level RNG `{name}` uses "
                        "hidden global state; construct "
                        "`np.random.default_rng(seed)` and thread it"
                    )
                elif attr == "default_rng" and _is_unseeded(node):
                    message = (
                        "`default_rng()` without a seed draws entropy from "
                        "the OS; pass an explicit seed"
                    )
            elif name == "random.Random":
                if _is_unseeded(node):
                    message = (
                        "`random.Random()` without a seed is "
                        "irreproducible; pass an explicit seed (or use "
                        "`np.random.default_rng(seed)`)"
                    )
            elif name.startswith("random."):
                message = (
                    f"stdlib `{name}` uses the process-global RNG; use a "
                    "seeded `np.random.default_rng(seed)` instead"
                )
            if message is not None:
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                    symbol=symbols.get(node.lineno, ""),
                )


@register
class WallClockRead(Rule):
    code = "DET002"
    title = "wall-clock read outside benchmarks/"
    rationale = (
        "the simulated clock is the only clock; wall-clock reads made "
        "PR 3's latency numbers machine-dependent until they were "
        "quarantined to benchmarks/"
    )

    #: Path components where wall-clock reads are the point.
    exempt_parts = frozenset({"benchmarks"})

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        if self.exempt_parts.intersection(module.relpath.split("/")):
            return
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_call_name(module, node.func)
            if name in _WALL_CLOCK:
                yield Finding(
                    code=self.code,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"wall-clock read `{name}()`; simulation code must "
                        "use the kernel's simulated clock (wall timing "
                        "belongs in benchmarks/)"
                    ),
                    symbol=symbols.get(node.lineno, ""),
                )


class _SetValueTracker(ast.NodeVisitor):
    """Collects names bound to set-valued expressions, scope-insensitively.

    A deliberately simple local inference: a name assigned a set
    literal, a set/frozenset call, a set comprehension, or a set-algebra
    combination of known set names is treated as set-valued everywhere
    in the module.  False negatives (sets smuggled through functions)
    are accepted; false positives require rebinding the same name to a
    non-set, which the codebase's style avoids.
    """

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    def _is_setish(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_setish(node.left) or self._is_setish(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_setish(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
        self.generic_visit(node)


@register
class SetIterationOrder(Rule):
    code = "DET003"
    title = "hash-ordered set iteration feeds accumulation/ordering"
    rationale = (
        "set iteration order depends on PYTHONHASHSEED for str keys; "
        "folding or sequencing over it breaks cross-run bit-identity — "
        "sort first (`sorted(s)`)"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        tracker = _SetValueTracker()
        tracker.visit(module.tree)
        symbols = enclosing_symbols(module.tree)

        def finding(node: ast.AST, what: str) -> Finding:
            return Finding(
                code=self.code,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{what} iterates a set in hash order; wrap it in "
                    "`sorted(...)` to fix the order"
                ),
                symbol=symbols.get(node.lineno, ""),
            )

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if tracker._is_setish(node.iter):
                    yield finding(node.iter, "`for` loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if tracker._is_setish(generator.iter):
                        yield finding(generator.iter, "comprehension")
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_CONSUMERS
                    and node.args
                    and tracker._is_setish(node.args[0])
                ):
                    yield finding(node, f"`{node.func.id}(...)`")


__all__ = ["SetIterationOrder", "UnseededRandomness", "WallClockRead"]
