"""File discovery and per-module AST indexing.

The walker turns a set of paths into a :class:`Project`: one parsed
:class:`ModuleInfo` per python file, carrying everything the rules need
— the AST, top-level bindings, the ``__all__`` literal, an import map
for resolving dotted calls back to canonical module paths, the
determinism pragmas, and the repo's contract markers
(``__bit_identity__``, ``__hot_path__``).

Rules never re-parse or re-read files; they interrogate this index, so
adding a rule costs one AST walk, not another pass over the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.pragmas import Pragma, scan_pragmas

#: Directories never linted.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


@dataclass(slots=True)
class ModuleInfo:
    """Everything the rules need to know about one python file.

    Attributes:
        path: absolute path of the file.
        relpath: path relative to the lint root, ``/``-separated.
        name: best-effort dotted module name (``repro.core.traffic``),
            derived from the ``__init__.py`` chain above the file.
        tree: the parsed AST (a bare ``ast.Module`` when parsing failed).
        lines: the source split into lines.
        pragmas: parsed ``# repro: allow[...]`` pragmas.
        parse_error: ``(line, message)`` when the file did not parse;
            such modules get a LINT000 finding and are skipped by rules.
        bindings: top-level name -> line it was bound at.
        all_names: the ``__all__`` literal, or None when absent.
        all_line: line of the ``__all__`` assignment (0 when absent).
        all_is_literal: False when ``__all__`` exists but is not a
            literal list/tuple of strings.
        import_map: local name -> (source module, original name) for
            ``from M import x [as y]`` bindings.
        module_aliases: local alias -> module for ``import M [as A]``.
        bit_identity: the module declares ``__bit_identity__ = True``.
        hot_path: class names the module declares in ``__hot_path__``.
        is_package_init: whether the file is an ``__init__.py``.
    """

    path: Path
    relpath: str
    name: str
    tree: ast.Module
    lines: list[str]
    pragmas: list[Pragma]
    parse_error: tuple[int, str] | None = None
    bindings: dict[str, int] = field(default_factory=dict)
    all_names: list[str] | None = None
    all_line: int = 0
    all_is_literal: bool = True
    import_map: dict[str, tuple[str, str]] = field(default_factory=dict)
    module_aliases: dict[str, str] = field(default_factory=dict)
    bit_identity: bool = False
    hot_path: tuple[str, ...] = ()
    is_package_init: bool = False


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, sorted, deduplicated.

    Raises:
        FileNotFoundError: when a requested path does not exist.
    """
    found = []
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                found.append(path.resolve())
            continue
        for candidate in path.rglob("*.py"):
            if any(part in SKIP_DIRS for part in candidate.parts):
                continue
            found.append(candidate.resolve())
    return sorted(set(found))


def module_dotted_name(path: Path, root: Path) -> str:
    """Dotted import name from the ``__init__.py`` chain above ``path``.

    Walks up from the file while each parent directory is a package
    (contains ``__init__.py``), so ``src/repro/core/traffic.py`` maps to
    ``repro.core.traffic`` regardless of where the lint root sits.  A
    file outside any package is just its stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists() and parent != parent.parent:
        parts.insert(0, parent.name)
        if parent == root:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _top_level_statements(tree: ast.Module):
    """Top-level statements, descending into top-level if/try blocks.

    ``if TYPE_CHECKING:`` imports and try/except import fallbacks bind
    module-level names, so the binding index must see inside them.
    """
    stack = list(tree.body)
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, ast.If):
            stack = node.body + node.orelse + stack
        elif isinstance(node, ast.Try):
            handler_bodies = []
            for handler in node.handlers:
                handler_bodies.extend(handler.body)
            stack = node.body + handler_bodies + node.orelse + stack


def _literal_str_list(node: ast.expr) -> list[str] | None:
    """The value of a list/tuple-of-strings literal, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        values.append(element.value)
    return values


def _index_module(info: ModuleInfo) -> None:
    """Populate bindings, ``__all__``, import maps, and markers."""
    for node in _top_level_statements(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.bindings[local] = node.lineno
                info.module_aliases[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            source = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.bindings[local] = node.lineno
                info.import_map[local] = (source, alias.name)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            info.bindings[node.name] = node.lineno
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                info.bindings[target.id] = node.lineno
                if target.id == "__all__" and value is not None:
                    info.all_line = node.lineno
                    literal = _literal_str_list(value)
                    if literal is None:
                        info.all_is_literal = False
                    else:
                        info.all_names = literal
                elif target.id == "__bit_identity__" and value is not None:
                    info.bit_identity = bool(
                        isinstance(value, ast.Constant) and value.value is True
                    )
                elif target.id == "__hot_path__" and value is not None:
                    literal = _literal_str_list(value)
                    if literal is not None:
                        info.hot_path = tuple(literal)


def load_module(path: Path, root: Path) -> ModuleInfo:
    """Parse and index one python file (never raises on bad syntax)."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        relpath = path.relative_to(root).as_posix()
    except ValueError:
        relpath = path.as_posix()
    info = ModuleInfo(
        path=path,
        relpath=relpath,
        name=module_dotted_name(path, root),
        tree=ast.Module(body=[], type_ignores=[]),
        lines=lines,
        pragmas=scan_pragmas(source),
        is_package_init=path.name == "__init__.py",
    )
    try:
        info.tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        info.parse_error = (error.lineno or 1, error.msg or "syntax error")
        return info
    _index_module(info)
    return info


@dataclass(slots=True)
class Project:
    """The indexed set of modules one lint run covers.

    Attributes:
        root: directory findings are reported relative to.
        modules: every module, in sorted path order.
        by_name: dotted module name -> module (cross-module rules
            resolve re-export chains through this).
    """

    root: Path
    modules: list[ModuleInfo]
    by_name: dict[str, ModuleInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for module in self.modules:
            self.by_name[module.name] = module

    @classmethod
    def load(cls, paths: list[Path], root: Path) -> "Project":
        files = iter_python_files(paths)
        return cls(
            root=root, modules=[load_module(path, root) for path in files]
        )

    def module_by_suffix(self, suffix: str) -> ModuleInfo | None:
        """The module whose relpath ends with ``suffix``, if any."""
        for module in self.modules:
            if module.relpath.endswith(suffix):
                return module
        return None


def dotted_call_name(module: ModuleInfo, func: ast.expr) -> str | None:
    """Canonical dotted name of a call target, resolved via imports.

    ``np.random.default_rng`` resolves to
    ``numpy.random.default_rng`` when the module did ``import numpy as
    np``; a bare ``default_rng`` resolves through ``from numpy.random
    import default_rng``.  Locally defined names resolve to ``None``.
    """
    chain = []
    node = func
    while isinstance(node, ast.Attribute):
        chain.insert(0, node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = node.id
    if head in module.module_aliases:
        chain.insert(0, module.module_aliases[head])
    elif head in module.import_map:
        source, original = module.import_map[head]
        chain = source.split(".") + [original] + chain
    else:
        return None
    return ".".join(chain)


def enclosing_symbols(tree: ast.Module) -> dict[int, str]:
    """Map every AST line to its nearest enclosing def/class name."""
    symbol_at: dict[int, str] = {}

    def visit(node: ast.AST, symbol: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_symbol = symbol
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_symbol = child.name
            lineno = getattr(child, "lineno", None)
            if lineno is not None and child_symbol:
                end = getattr(child, "end_lineno", lineno) or lineno
                # Parent ranges are written before the recursion, so
                # deeper symbols overwrite: the map ends up innermost.
                for line in range(lineno, end + 1):
                    symbol_at[line] = child_symbol
            visit(child, child_symbol)

    visit(tree, "")
    return symbol_at


__all__ = [
    "ModuleInfo",
    "Project",
    "SKIP_DIRS",
    "dotted_call_name",
    "enclosing_symbols",
    "iter_python_files",
    "load_module",
    "module_dotted_name",
]
