"""Rule registry: every check the pass runs, keyed by its code.

A rule is a class with a ``code``, a one-line ``title``, a
``rationale`` naming the bug class it guards against, and a ``check``
that yields :class:`~repro.lint.findings.Finding` objects for one
module.  Registration is declarative::

    @register
    class MyRule(Rule):
        code = "XYZ001"
        ...

Engine-level codes (LINT000 syntax error, LINT001 malformed pragma,
LINT002 unused pragma) are registered here too so ``--list-rules``,
pragma validation, and the fixture meta-test see one namespace, but
their findings are emitted by the engine, not by ``check``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Type

from repro.lint.findings import Finding
from repro.lint.walker import ModuleInfo, Project


class Rule:
    """Base class for lint rules; subclass and override :meth:`check`."""

    #: Unique rule code, e.g. ``"DET001"``.
    code: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: The bug class this rule guards against (docs table).
    rationale: str = ""
    #: Findings of this rule cannot be waived with a pragma.
    engine_level: bool = False

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        """Yield findings for one module (default: none)."""
        return iter(())


_RULES: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule instance to the registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    _RULES[cls.code] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in code order."""
    return [_RULES[code] for code in sorted(_RULES)]


def rule_codes() -> frozenset[str]:
    """The set of registered rule codes."""
    return frozenset(_RULES)


def checkable_rules() -> Iterable[Rule]:
    """Rules whose findings come from :meth:`Rule.check`."""
    return [rule for rule in all_rules() if not rule.engine_level]


@register
class SyntaxErrorRule(Rule):
    """Engine-level: the file failed to parse."""

    code = "LINT000"
    title = "file does not parse"
    rationale = (
        "an unparsable file is invisible to every other contract check"
    )
    engine_level = True


@register
class MalformedPragmaRule(Rule):
    """Engine-level: a pragma with no justification or unknown code."""

    code = "LINT001"
    title = "malformed allow pragma"
    rationale = (
        "a waiver without a written justification is indistinguishable "
        "from a silenced bug"
    )
    engine_level = True


@register
class UnusedPragmaRule(Rule):
    """Engine-level: a pragma that suppresses no finding."""

    code = "LINT002"
    title = "unused allow pragma"
    rationale = (
        "stale waivers accumulate until a real violation hides under one"
    )
    engine_level = True


__all__ = [
    "MalformedPragmaRule",
    "Rule",
    "SyntaxErrorRule",
    "UnusedPragmaRule",
    "all_rules",
    "checkable_rules",
    "register",
    "rule_codes",
]
