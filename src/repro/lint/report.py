"""Rendering: human text for terminals, JSON for CI artifacts."""

from __future__ import annotations

import json

from repro.lint.findings import Finding
from repro.lint.registry import all_rules
from repro.lint.runner import LintResult

#: Schema version of the JSON report (bump on breaking changes).
JSON_REPORT_VERSION = 1


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The terminal report: one ``path:line: CODE message`` per finding."""
    lines = []
    for finding in result.findings:
        where = f" (in {finding.symbol})" if finding.symbol else ""
        lines.append(
            f"{finding.location()}: {finding.code} {finding.message}{where}"
        )
    if verbose:
        for finding, pragma in result.suppressed:
            lines.append(
                f"{finding.location()}: {finding.code} suppressed by pragma: "
                f"{pragma.justification}"
            )
        for finding, entry in result.baselined:
            lines.append(
                f"{finding.location()}: {finding.code} baselined: "
                f"{entry.reason}"
            )
    for entry in result.stale_baseline:
        lines.append(
            f"warning: stale baseline entry {entry.code} at {entry.path} "
            "matches no finding; delete it"
        )
    lines.append(
        f"{len(result.findings)} finding(s) "
        f"({len(result.suppressed)} suppressed by pragma, "
        f"{len(result.baselined)} baselined) "
        f"across {result.files_checked} file(s)"
    )
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> dict:
    return {
        "code": finding.code,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "symbol": finding.symbol,
    }


def render_json(result: LintResult) -> dict:
    """The machine report uploaded as a CI artifact."""
    per_rule: dict[str, int] = {}
    for finding in result.findings:
        per_rule[finding.code] = per_rule.get(finding.code, 0) + 1
    return {
        "version": JSON_REPORT_VERSION,
        "tool": "repro.lint",
        "ok": result.ok,
        "summary": {
            "files": result.files_checked,
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
            "by_rule": dict(sorted(per_rule.items())),
        },
        "findings": [_finding_dict(f) for f in result.findings],
        "suppressed": [
            {**_finding_dict(f), "justification": p.justification}
            for f, p in result.suppressed
        ],
        "baselined": [
            {**_finding_dict(f), "reason": e.reason}
            for f, e in result.baselined
        ],
    }


def render_json_text(result: LintResult) -> str:
    """:func:`render_json`, serialized with stable key order."""
    return json.dumps(render_json(result), indent=2, sort_keys=True)


def render_rule_table() -> str:
    """``--list-rules``: code, title, and rationale for every rule."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.title}")
        lines.append(f"        why: {rule.rationale}")
    return "\n".join(lines)


__all__ = [
    "JSON_REPORT_VERSION",
    "render_json",
    "render_json_text",
    "render_rule_table",
    "render_text",
]
