"""The unit of lint output: one finding at one source location.

A :class:`Finding` is what every rule yields and what the pragma and
baseline layers consume.  Findings are plain frozen data so the engine
can sort, deduplicate, suppress, and serialize them without knowing
anything about the rule that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        code: rule code, e.g. ``"DET001"``.
        path: path of the offending file, relative to the lint root,
            always with ``/`` separators.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: human-readable description of the violation, including
            the expected remedy.
        symbol: the nearest enclosing symbol (function or class name)
            when the rule knows it, else ``""``.
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable report order: by file, then location, then code."""
        return (self.path, self.line, self.col, self.code)

    def location(self) -> str:
        """``path:line`` — the clickable half of a report line."""
        return f"{self.path}:{self.line}"


__all__ = ["Finding"]
