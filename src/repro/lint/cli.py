"""``python -m repro.lint`` — the determinism & contract checker CLI.

Exit codes: 0 clean, 1 findings, 2 usage or configuration errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import BaselineError, format_baseline
from repro.lint.report import (
    render_json,
    render_json_text,
    render_rule_table,
    render_text,
)
from repro.lint.runner import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & bit-identity contract checker for "
            "the PCNNA reproduction (see docs/architecture.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default="auto",
        help="baseline file (default: ./lint_baseline.toml when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="directory findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list pragma-suppressed and baselined findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_table())
        return 0
    baseline = None if args.no_baseline else args.baseline
    try:
        result = run_lint(args.paths, root=args.root, baseline=baseline)
    except (FileNotFoundError, BaselineError) as error:
        print(f"repro.lint: error: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        Path(args.write_baseline).write_text(
            format_baseline(
                result.findings, reason="inherited at baseline creation"
            ),
            encoding="utf-8",
        )
        print(
            f"wrote {len(result.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    if args.output:
        Path(args.output).write_text(
            json.dumps(render_json(result), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(render_json_text(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


__all__ = ["build_parser", "main"]
