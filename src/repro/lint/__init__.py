"""repro.lint: the repo's determinism & bit-identity contract checker.

A standalone static-analysis pass (stdlib ``ast`` only) over the repo's
own source, enforcing by machine the conventions every guarantee rests
on: seeded RNG only (DET001), the simulated clock only (DET002), no
hash-ordered set iteration into folds (DET003), justified float folds
in bit-identity modules (BIT001), audited export surfaces (API001),
seed threading through every public entry point (API002), real kernel
hook names only (PLUG001), and ``__slots__`` on hot-path classes
(PERF001).

Deliberate exceptions are waived inline with a justification::

    total = sum(ts)  # repro: allow[BIT001] strict left fold, fixed order

Run it: ``python -m repro.lint src`` (or ``repro-lint`` once installed
with the ``lint`` extra).  The tier-1 gate in
``tests/test_static_analysis.py`` runs the same pass over ``src/``.
"""

from repro.lint.baseline import (
    BASELINE_NAME,
    Baseline,
    BaselineEntry,
    BaselineError,
    format_baseline,
    load_baseline,
)
from repro.lint.findings import Finding
from repro.lint.pragmas import Pragma, scan_pragmas
from repro.lint.registry import Rule, all_rules, register, rule_codes
from repro.lint.report import (
    JSON_REPORT_VERSION,
    render_json,
    render_json_text,
    render_rule_table,
    render_text,
)
from repro.lint.runner import LintResult, run_lint
from repro.lint.walker import ModuleInfo, Project, load_module

__all__ = [
    "BASELINE_NAME",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "JSON_REPORT_VERSION",
    "LintResult",
    "ModuleInfo",
    "Pragma",
    "Project",
    "Rule",
    "all_rules",
    "format_baseline",
    "load_baseline",
    "load_module",
    "register",
    "render_json",
    "render_json_text",
    "render_rule_table",
    "render_text",
    "rule_codes",
    "run_lint",
    "scan_pragmas",
]
