"""``lint_baseline.toml``: file-level suppression for inherited debt.

Pragmas waive a single line; the baseline waives findings wholesale —
the escape hatch for adopting a new rule over a codebase with existing
violations.  This repo's policy is to *fix* violations in the same PR
that surfaces them, so the shipped baseline stays empty; the machinery
exists for rule rollout and is exercised by the test suite.

Format (a small TOML subset, parsed by stdlib ``tomllib`` on 3.11+ and
by the built-in fallback parser on 3.10, where ``tomllib`` does not
exist and new dependencies are off the table)::

    version = 1

    [[suppress]]
    code = "BIT001"
    path = "src/repro/core/example.py"
    line = 12          # optional: any line when omitted
    reason = "inherited from rule rollout; tracked in #123"

Every entry must carry a non-empty ``reason``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

try:  # pragma: no cover - exercised on 3.11+; the fallback has its own tests
    import tomllib
except ImportError:  # pragma: no cover - the 3.10 path
    tomllib = None

BASELINE_NAME = "lint_baseline.toml"


class BaselineError(ValueError):
    """The baseline file is malformed."""


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One suppressed finding pattern.

    Attributes:
        code: rule code the entry suppresses.
        path: relpath the entry applies to (``/`` separators).
        reason: why the violation is tolerated (required).
        line: exact line to match; ``None`` matches any line.
    """

    code: str
    path: str
    reason: str
    line: int | None = None

    def matches(self, finding: Finding) -> bool:
        return (
            finding.code == self.code
            and finding.path == self.path
            and (self.line is None or finding.line == self.line)
        )


@dataclass(slots=True)
class Baseline:
    """The parsed baseline: entries plus bookkeeping for staleness."""

    entries: list[BaselineEntry] = field(default_factory=list)

    def apply(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[tuple[Finding, BaselineEntry]], list[BaselineEntry]]:
        """Split findings into (kept, baselined, stale entries)."""
        used: set[BaselineEntry] = set()
        kept = []
        baselined = []
        for finding in findings:
            entry = next(
                (e for e in self.entries if e.matches(finding)), None
            )
            if entry is None:
                kept.append(finding)
            else:
                used.add(entry)
                baselined.append((finding, entry))
        stale = [e for e in self.entries if e not in used]
        return kept, baselined, stale


_KEY_VALUE_RE = re.compile(
    r"""^(?P<key>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*
        (?:"(?P<string>[^"]*)"|(?P<int>-?\d+))\s*$""",
    re.VERBOSE,
)


def _parse_toml_subset(text: str) -> dict:
    """Parse the baseline's TOML subset without ``tomllib`` (py3.10).

    Supports comments, ``key = "string"``, ``key = int``, and
    ``[[suppress]]`` array-of-tables headers — exactly the grammar the
    baseline writer emits.
    """
    data: dict = {"suppress": []}
    current: dict | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip() if '"' not in raw else raw.strip()
        if '"' in raw:
            # Strip trailing comments only outside the quoted value.
            closing = raw.rfind('"')
            tail = raw[closing + 1 :]
            line = (raw[: closing + 1] + tail.split("#", 1)[0]).strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[suppress]]":
            current = {}
            data["suppress"].append(current)
            continue
        match = _KEY_VALUE_RE.match(line)
        if match is None:
            raise BaselineError(
                f"baseline line {lineno}: cannot parse {raw!r} "
                "(the no-tomllib fallback accepts only the subset the "
                "baseline writer emits)"
            )
        value = (
            match.group("string")
            if match.group("string") is not None
            else int(match.group("int"))
        )
        target = data if current is None else current
        target[match.group("key")] = value
    if not data["suppress"]:
        data.pop("suppress")
    return data


def _entries_from_data(data: dict, origin: str) -> Baseline:
    version = data.get("version", 1)
    if version != 1:
        raise BaselineError(f"{origin}: unsupported baseline version {version!r}")
    entries = []
    for index, raw in enumerate(data.get("suppress", [])):
        code = raw.get("code")
        path = raw.get("path")
        reason = raw.get("reason", "")
        if not code or not path:
            raise BaselineError(
                f"{origin}: suppress entry #{index + 1} needs `code` and `path`"
            )
        if not str(reason).strip():
            raise BaselineError(
                f"{origin}: suppress entry #{index + 1} ({code} at {path}) "
                "has no `reason`; baseline entries must be justified"
            )
        line = raw.get("line")
        entries.append(
            BaselineEntry(
                code=str(code),
                path=str(path),
                reason=str(reason),
                line=int(line) if line is not None else None,
            )
        )
    return Baseline(entries=entries)


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file (empty baseline when the file is absent)."""
    if not path.exists():
        return Baseline()
    text = path.read_text(encoding="utf-8")
    if tomllib is not None:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise BaselineError(f"{path}: {error}") from error
    else:  # pragma: no cover - py3.10; the subset parser is tested directly
        data = _parse_toml_subset(text)
    return _entries_from_data(data, str(path))


def format_baseline(findings: list[Finding], reason: str) -> str:
    """Serialize findings as a baseline file (``--write-baseline``)."""
    lines = [
        "# repro.lint baseline - inherited findings tolerated during rollout.",
        "# Policy: fix violations in the PR that surfaces them; keep this",
        "# file empty.  Every entry must carry a `reason`.",
        "version = 1",
    ]
    for finding in sorted(findings, key=Finding.sort_key):
        lines += [
            "",
            "[[suppress]]",
            f'code = "{finding.code}"',
            f'path = "{finding.path}"',
            f"line = {finding.line}",
            f'reason = "{reason}"',
        ]
    return "\n".join(lines) + "\n"


__all__ = [
    "BASELINE_NAME",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "format_baseline",
    "load_baseline",
]
