"""The lint engine: walk, check, waive, baseline, and collect.

:func:`run_lint` is the one entry point both the CLI and the tier-1
gate (``tests/test_static_analysis.py``) call, so the command line and
the test suite can never disagree about what a violation is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import repro.lint.rules  # noqa: F401  (importing registers every rule)
from repro.lint.baseline import (
    BASELINE_NAME,
    Baseline,
    BaselineEntry,
    load_baseline,
)
from repro.lint.findings import Finding
from repro.lint.pragmas import (
    Pragma,
    unused_pragma_findings,
    validate_pragmas,
)
from repro.lint.registry import checkable_rules, rule_codes
from repro.lint.walker import ModuleInfo, Project


@dataclass(slots=True)
class LintResult:
    """Everything one lint run produced.

    Attributes:
        findings: unsuppressed violations, in report order (a clean run
            has none).
        suppressed: findings waived by a justified pragma, paired with
            the pragma that waived them.
        baselined: findings absorbed by the baseline file, paired with
            the entry that matched.
        stale_baseline: baseline entries that matched nothing (reported
            as warnings so the file shrinks over time).
        files_checked: number of python files examined.
        rule_codes: every registered rule code, for reporting.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Pragma]] = field(default_factory=list)
    baselined: list[tuple[Finding, BaselineEntry]] = field(
        default_factory=list
    )
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    rule_codes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the run is clean (exit code 0)."""
        return not self.findings


def _module_findings(module: ModuleInfo, project: Project) -> list[Finding]:
    """Raw rule findings for one module, before waivers."""
    if module.parse_error is not None:
        line, message = module.parse_error
        return [
            Finding(
                code="LINT000",
                path=module.relpath,
                line=line,
                col=0,
                message=f"file does not parse: {message}",
            )
        ]
    findings = []
    for rule in checkable_rules():
        findings.extend(rule.check(module, project))
    return findings


def _apply_pragmas(
    module: ModuleInfo, findings: list[Finding]
) -> tuple[list[Finding], list[tuple[Finding, Pragma]]]:
    """Waive findings covered by a justified pragma; flag bad pragmas.

    Engine-level findings (LINT00x) cannot be waived by pragma — a
    waiver that silences the waiver checker is no contract at all.
    """
    kept = []
    suppressed = []
    for finding in findings:
        pragma = None
        if not finding.code.startswith("LINT"):
            pragma = next(
                (
                    p
                    for p in module.pragmas
                    if p.justification
                    and p.covers(finding.code, finding.line)
                ),
                None,
            )
        if pragma is None:
            kept.append(finding)
        else:
            pragma.used = True
            suppressed.append((finding, pragma))
    kept.extend(validate_pragmas(module.relpath, module.pragmas, rule_codes()))
    kept.extend(unused_pragma_findings(module.relpath, module.pragmas))
    return kept, suppressed


def run_lint(
    paths: list[str | Path],
    root: str | Path | None = None,
    baseline: str | Path | None = "auto",
) -> LintResult:
    """Run the full pass over ``paths`` and return the result.

    Args:
        paths: files and/or directories to lint.
        root: directory findings are reported relative to (default:
            the current working directory).
        baseline: baseline file path; the default ``"auto"`` uses
            ``<root>/lint_baseline.toml`` when present, and ``None``
            disables the baseline entirely.

    Raises:
        FileNotFoundError: when a requested path does not exist.
        BaselineError: when the baseline file is malformed.
    """
    root_path = Path(root).resolve() if root is not None else Path.cwd()
    project = Project.load([Path(p) for p in paths], root_path)
    if baseline == "auto":
        loaded = load_baseline(root_path / BASELINE_NAME)
    elif baseline is None:
        loaded = Baseline()
    else:
        loaded = load_baseline(Path(baseline))
    result = LintResult(
        files_checked=len(project.modules),
        rule_codes=tuple(sorted(rule_codes())),
    )
    for module in project.modules:
        raw = _module_findings(module, project)
        kept, suppressed = _apply_pragmas(module, raw)
        result.findings.extend(kept)
        result.suppressed.extend(suppressed)
    result.findings, baselined, stale = loaded.apply(result.findings)
    result.baselined = baselined
    result.stale_baseline = stale
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=lambda pair: pair[0].sort_key())
    return result


__all__ = ["LintResult", "run_lint"]
