"""``# repro: allow[RULE]`` pragmas: narrowly scoped, justified waivers.

A pragma waives one rule on one line, and must carry a justification —
the reviewer-facing sentence explaining why the violation is deliberate:

    total = sum(times)  # repro: allow[BIT001] strict left fold over a
                        #   fixed core order

Syntax: ``# repro: allow[CODE] justification`` or
``# repro: allow[CODE1,CODE2] justification``.  A pragma suppresses
findings of the named rule(s) on its own line or, when the pragma is a
comment-only line, on the line directly below it.

The pragma layer is itself linted: a pragma with no justification or an
unknown rule code is a ``LINT001`` finding, and a pragma that suppresses
nothing is a ``LINT002`` finding — so stale waivers rot loudly, not
silently.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

#: Matches the waiver comment grammar (codes may be a comma list).
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Za-z0-9_,\s]+)\]\s*(?P<why>.*)$"
)


@dataclass(slots=True)
class Pragma:
    """One parsed ``# repro: allow[...]`` comment.

    Attributes:
        line: 1-based line the pragma comment sits on.
        codes: rule codes the pragma waives, in written order.
        justification: the free-text reason after the bracket.
        target_line: the statement line the pragma covers besides its
            own — for a comment-only pragma, the first non-comment line
            below it (justifications may span several comment lines);
            for a trailing pragma, the pragma's own line.
        used: set by the engine when the pragma suppresses a finding.
    """

    line: int
    codes: tuple[str, ...]
    justification: str
    target_line: int
    used: bool = field(default=False)

    def covers(self, code: str, line: int) -> bool:
        """Whether this pragma waives ``code`` at ``line``."""
        return code in self.codes and line in (self.line, self.target_line)


def scan_pragmas(source: str) -> list[Pragma]:
    """Extract every pragma from a module's *real* comments.

    Tokenizes rather than regex-scanning lines, so pragma examples
    inside docstrings and string literals are not mistaken for live
    waivers.  An untokenizable file yields no pragmas (it will carry a
    LINT000 parse finding anyway).
    """
    pragmas = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        lineno, col = token.start
        codes = tuple(
            part.strip().upper()
            for part in match.group("codes").split(",")
            if part.strip()
        )
        target = lineno
        if not token.line[:col].strip():
            # Comment-only pragma: cover the first statement below the
            # comment block (the justification may wrap onto more
            # comment lines).
            target = lineno + 1
            while target <= len(lines) and lines[target - 1].lstrip().startswith("#"):
                target += 1
        pragmas.append(
            Pragma(
                line=lineno,
                codes=codes,
                justification=match.group("why").strip(),
                target_line=target,
            )
        )
    return pragmas


def validate_pragmas(
    path: str, pragmas: list[Pragma], known_codes: frozenset[str]
) -> list[Finding]:
    """LINT001 findings for malformed pragmas (no reason / unknown code)."""
    findings = []
    for pragma in pragmas:
        if not pragma.justification:
            findings.append(
                Finding(
                    code="LINT001",
                    path=path,
                    line=pragma.line,
                    col=0,
                    message=(
                        "pragma waives "
                        f"[{','.join(pragma.codes)}] without a justification; "
                        "write `# repro: allow[CODE] <why this is deliberate>`"
                    ),
                )
            )
        unknown = [c for c in pragma.codes if c not in known_codes]
        if unknown:
            findings.append(
                Finding(
                    code="LINT001",
                    path=path,
                    line=pragma.line,
                    col=0,
                    message=(
                        f"pragma names unknown rule code(s) {unknown}; "
                        "run `python -m repro.lint --list-rules`"
                    ),
                )
            )
    return findings


def unused_pragma_findings(path: str, pragmas: list[Pragma]) -> list[Finding]:
    """LINT002 findings for pragmas that suppressed nothing.

    Malformed pragmas (no justification) are skipped — they already
    carry a LINT001 and fixing that comes first.
    """
    findings = []
    for pragma in pragmas:
        if pragma.used or not pragma.justification:
            continue
        findings.append(
            Finding(
                code="LINT002",
                path=path,
                line=pragma.line,
                col=0,
                message=(
                    f"pragma allow[{','.join(pragma.codes)}] suppresses no "
                    "finding; the violation it waived is gone — delete the "
                    "pragma"
                ),
            )
        )
    return findings


__all__ = [
    "Pragma",
    "scan_pragmas",
    "unused_pragma_findings",
    "validate_pragmas",
]
