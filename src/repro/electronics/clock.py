"""Clock-domain models.

PCNNA runs on two clock domains (paper section IV): a fast 5 GHz domain
driving the optical core and its immediate electronics, and a slower main
domain interfacing with the outside world.  :class:`ClockDomain` converts
between cycles and seconds; :class:`DualClockSystem` bundles the pair and
performs domain-crossing rounding (an event taking ``t`` seconds occupies
``ceil(t * f)`` whole cycles of a domain).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

PCNNA_FAST_CLOCK_HZ = 5e9
"""The paper's fast (optical-core) clock."""

PCNNA_MAIN_CLOCK_HZ = 1e9
"""Default main (interface) clock; the paper leaves it unspecified."""


@dataclass(frozen=True)
class ClockDomain:
    """A clock domain with a fixed frequency.

    Attributes:
        name: human-readable domain name.
        frequency_hz: clock frequency.
    """

    name: str
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(
                f"clock frequency must be positive, got {self.frequency_hz!r}"
            )

    @property
    def period_s(self) -> float:
        """Clock period (s)."""
        return 1.0 / self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Duration of ``cycles`` clock cycles (s).

        Raises:
            ValueError: if ``cycles`` is negative.
        """
        if cycles < 0:
            raise ValueError(f"cycle count must be non-negative, got {cycles!r}")
        return cycles * self.period_s

    def seconds_to_cycles(self, seconds: float) -> int:
        """Whole cycles needed to cover ``seconds`` (ceiling).

        Raises:
            ValueError: if ``seconds`` is negative.
        """
        if seconds < 0:
            raise ValueError(f"duration must be non-negative, got {seconds!r}")
        return math.ceil(seconds * self.frequency_hz - 1e-12)


@dataclass(frozen=True)
class DualClockSystem:
    """The PCNNA fast/main clock pair.

    Attributes:
        fast: the optical-core domain (default 5 GHz).
        main: the external-interface domain.
    """

    fast: ClockDomain = ClockDomain("fast", PCNNA_FAST_CLOCK_HZ)
    main: ClockDomain = ClockDomain("main", PCNNA_MAIN_CLOCK_HZ)

    def __post_init__(self) -> None:
        if self.fast.frequency_hz < self.main.frequency_hz:
            raise ValueError(
                "fast domain must be at least as fast as the main domain: "
                f"{self.fast.frequency_hz} < {self.main.frequency_hz}"
            )

    @property
    def ratio(self) -> float:
        """Fast-to-main frequency ratio."""
        return self.fast.frequency_hz / self.main.frequency_hz

    def crossing_latency_s(self, synchronizer_stages: int = 2) -> float:
        """Latency of a signal crossing into the main domain (s).

        A standard ``n``-flop synchronizer costs ``n`` destination-domain
        cycles.

        Raises:
            ValueError: if ``synchronizer_stages`` is not positive.
        """
        if synchronizer_stages <= 0:
            raise ValueError(
                f"synchronizer needs at least one stage, got {synchronizer_stages!r}"
            )
        return synchronizer_stages * self.main.period_s
