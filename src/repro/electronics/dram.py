"""Off-chip DRAM model.

PCNNA keeps kernel weights, input feature maps, and convolution results in
off-chip DRAM (paper Fig. 4).  The model is a bandwidth/latency pipe with
traffic accounting: transfers pay a fixed row-activation latency plus a
size-proportional streaming term, and every byte moved is tallied so the
benchmarks can report memory traffic per layer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramSpec:
    """Static DRAM channel parameters (DDR3-1600-class defaults).

    Attributes:
        bandwidth_bytes_per_s: sustained streaming bandwidth.
        access_latency_s: fixed latency per transfer (row activate + CAS).
        energy_per_byte_j: access energy per byte moved.
    """

    bandwidth_bytes_per_s: float = 12.8e9
    access_latency_s: float = 50e-9
    energy_per_byte_j: float = 70e-12

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_bytes_per_s!r}"
            )
        if self.access_latency_s < 0:
            raise ValueError(
                f"latency must be non-negative, got {self.access_latency_s!r}"
            )
        if self.energy_per_byte_j < 0:
            raise ValueError(
                f"energy must be non-negative, got {self.energy_per_byte_j!r}"
            )


@dataclass
class DramStats:
    """Mutable traffic counters for one DRAM channel.

    Attributes:
        bytes_read: total bytes streamed out of DRAM.
        bytes_written: total bytes streamed into DRAM.
        transfers: number of discrete transfers issued.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    transfers: int = 0

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in either direction."""
        return self.bytes_read + self.bytes_written


class Dram:
    """An off-chip DRAM channel with timing, energy, and traffic stats."""

    def __init__(self, spec: DramSpec | None = None) -> None:
        self.spec = spec if spec is not None else DramSpec()
        self.stats = DramStats()

    def transfer_time_s(self, num_bytes: int) -> float:
        """Latency of one transfer of ``num_bytes`` (s).

        Raises:
            ValueError: if ``num_bytes`` is negative.
        """
        if num_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {num_bytes!r}")
        if num_bytes == 0:
            return 0.0
        return self.spec.access_latency_s + num_bytes / self.spec.bandwidth_bytes_per_s

    def read(self, num_bytes: int) -> float:
        """Account a read transfer; returns its latency (s)."""
        time_s = self.transfer_time_s(num_bytes)
        self.stats.bytes_read += num_bytes
        self.stats.transfers += 1
        return time_s

    def write(self, num_bytes: int) -> float:
        """Account a write transfer; returns its latency (s)."""
        time_s = self.transfer_time_s(num_bytes)
        self.stats.bytes_written += num_bytes
        self.stats.transfers += 1
        return time_s

    def stream_time_s(self, num_bytes: int) -> float:
        """Bandwidth-only streaming time, no fixed latency (s).

        Used for per-location burst transfers inside an open row, where
        the row-activation latency is paid once per burst sequence rather
        than per transfer.

        Raises:
            ValueError: if ``num_bytes`` is negative.
        """
        if num_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {num_bytes!r}")
        return num_bytes / self.spec.bandwidth_bytes_per_s

    def stream_read(self, num_bytes: int) -> float:
        """Account a streaming read; returns bandwidth-only latency (s)."""
        time_s = self.stream_time_s(num_bytes)
        self.stats.bytes_read += num_bytes
        self.stats.transfers += 1
        return time_s

    def stream_write(self, num_bytes: int) -> float:
        """Account a streaming write; returns bandwidth-only latency (s)."""
        time_s = self.stream_time_s(num_bytes)
        self.stats.bytes_written += num_bytes
        self.stats.transfers += 1
        return time_s

    def energy_j(self) -> float:
        """Total access energy for all traffic so far (J)."""
        return self.stats.total_bytes * self.spec.energy_per_byte_j

    def reset_stats(self) -> None:
        """Zero the traffic counters."""
        self.stats = DramStats()
