"""On-chip SRAM cache model.

PCNNA caches receptive-field values "in small but fast cache memory"
before digital-to-analog conversion.  The paper adopts a 128 kb SRAM
macro (Fukuda et al., ISSCC 2014): 8 K 16-bit words, 7 ns access time,
0.443 mm^2, 25 uW/MHz.  :class:`SramCache` models capacity, access
latency, and hit/miss + energy accounting for the scheduler's
stride-reuse working set.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SramSpec:
    """Static SRAM macro parameters.

    Attributes:
        capacity_bits: total storage (bits).
        word_bits: word width (bits) — PCNNA stores 16-bit values.
        access_time_s: read/write latency.
        area_mm2: macro area.
        power_per_mhz_w: active power per MHz of access rate.
    """

    capacity_bits: int = 128 * 1024
    word_bits: int = 16
    access_time_s: float = 7e-9
    area_mm2: float = 0.443
    power_per_mhz_w: float = 25e-6

    def __post_init__(self) -> None:
        if self.capacity_bits <= 0:
            raise ValueError(
                f"capacity must be positive, got {self.capacity_bits!r}"
            )
        if self.word_bits <= 0:
            raise ValueError(f"word width must be positive, got {self.word_bits!r}")
        if self.access_time_s <= 0:
            raise ValueError(
                f"access time must be positive, got {self.access_time_s!r}"
            )

    @property
    def capacity_words(self) -> int:
        """Number of words the macro can hold (8192 for the default)."""
        return self.capacity_bits // self.word_bits


@dataclass
class SramStats:
    """Mutable access counters for one cache instance.

    Attributes:
        reads: completed read accesses.
        writes: completed write accesses.
        hits: reads that found their key resident.
        misses: reads that did not.
        evictions: entries displaced by capacity pressure.
    """

    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of reads that hit; 0.0 when no reads occurred."""
        if self.reads == 0:
            return 0.0
        return self.hits / self.reads


class SramCache:
    """A word-addressed SRAM with FIFO replacement and access accounting.

    Keys are arbitrary hashables (the scheduler uses input-tensor flat
    indices); each key occupies one word.  FIFO replacement matches the
    streaming receptive-field access pattern, where the oldest stride
    column is exactly the one that will never be touched again.
    """

    def __init__(self, spec: SramSpec | None = None) -> None:
        self.spec = spec if spec is not None else SramSpec()
        self.stats = SramStats()
        self._resident: dict[object, None] = {}

    @property
    def capacity_words(self) -> int:
        """Capacity in words."""
        return self.spec.capacity_words

    @property
    def occupancy(self) -> int:
        """Words currently resident."""
        return len(self._resident)

    def contains(self, key: object) -> bool:
        """Whether ``key`` is resident (no counter side effects)."""
        return key in self._resident

    def read(self, key: object) -> bool:
        """Read ``key``; returns True on hit, False on miss."""
        self.stats.reads += 1
        if key in self._resident:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def write(self, key: object) -> None:
        """Install ``key``, evicting the oldest entry if at capacity."""
        self.stats.writes += 1
        if key in self._resident:
            return
        if len(self._resident) >= self.capacity_words:
            oldest = next(iter(self._resident))
            del self._resident[oldest]
            self.stats.evictions += 1
        self._resident[key] = None

    def invalidate(self) -> None:
        """Drop all resident entries (e.g. at a layer boundary)."""
        self._resident.clear()

    def access_time_s(self, num_accesses: int = 1) -> float:
        """Latency of ``num_accesses`` sequential accesses (s).

        Raises:
            ValueError: if ``num_accesses`` is negative.
        """
        if num_accesses < 0:
            raise ValueError(
                f"access count must be non-negative, got {num_accesses!r}"
            )
        return num_accesses * self.spec.access_time_s

    def active_power_w(self, access_rate_hz: float) -> float:
        """Active power at a sustained access rate (W)."""
        if access_rate_hz < 0:
            raise ValueError(
                f"access rate must be non-negative, got {access_rate_hz!r}"
            )
        return self.spec.power_per_mhz_w * (access_rate_hz / 1e6)
