"""Data-converter models shared by the DAC and ADC.

Both converters quantize to a fixed number of bits over a configurable
full-scale range and convert at a fixed sample rate.  PCNNA's defaults
come from the parts the paper cites:

* DAC — 16-bit, 6 GSa/s, 0.52 mm^2 (Lin et al., ISSCC 2018);
* ADC — 2.8 GSa/s time-interleaved, 44.6 mW (Stepanovic & Nikolic, JSSC
  2013).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConverterSpec:
    """Static parameters of a data converter.

    Attributes:
        resolution_bits: quantizer resolution.
        sample_rate_hz: conversions per second.
        full_scale_min: smallest representable analog value.
        full_scale_max: largest representable analog value.
        area_mm2: silicon area of one converter instance.
        power_w: active power of one converter instance.
    """

    resolution_bits: int
    sample_rate_hz: float
    full_scale_min: float = 0.0
    full_scale_max: float = 1.0
    area_mm2: float = 0.0
    power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.resolution_bits <= 0:
            raise ValueError(
                f"resolution must be positive bits, got {self.resolution_bits!r}"
            )
        if self.sample_rate_hz <= 0:
            raise ValueError(
                f"sample rate must be positive, got {self.sample_rate_hz!r}"
            )
        if self.full_scale_max <= self.full_scale_min:
            raise ValueError(
                "full-scale range must be non-empty: "
                f"[{self.full_scale_min!r}, {self.full_scale_max!r}]"
            )
        if self.area_mm2 < 0:
            raise ValueError(f"area must be non-negative, got {self.area_mm2!r}")
        if self.power_w < 0:
            raise ValueError(f"power must be non-negative, got {self.power_w!r}")

    @property
    def num_levels(self) -> int:
        """Number of quantization levels (2**bits)."""
        return 1 << self.resolution_bits

    @property
    def full_scale_span(self) -> float:
        """Width of the representable analog range."""
        return self.full_scale_max - self.full_scale_min

    @property
    def lsb(self) -> float:
        """Analog step per code (least significant bit)."""
        return self.full_scale_span / (self.num_levels - 1)

    @property
    def sample_period_s(self) -> float:
        """Time per conversion (s)."""
        return 1.0 / self.sample_rate_hz

    def conversion_time_s(self, num_samples: int) -> float:
        """Time to convert ``num_samples`` values sequentially (s).

        Raises:
            ValueError: if ``num_samples`` is negative.
        """
        if num_samples < 0:
            raise ValueError(
                f"sample count must be non-negative, got {num_samples!r}"
            )
        return num_samples * self.sample_period_s

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Clip to full scale and snap to the nearest code's analog value."""
        array = np.asarray(values, dtype=float)
        clipped = np.clip(array, self.full_scale_min, self.full_scale_max)
        codes = np.round((clipped - self.full_scale_min) / self.lsb)
        return self.full_scale_min + codes * self.lsb

    def encode(self, values: np.ndarray | float) -> np.ndarray:
        """Clip to full scale and return integer codes in [0, 2**bits - 1]."""
        array = np.asarray(values, dtype=float)
        clipped = np.clip(array, self.full_scale_min, self.full_scale_max)
        return np.round((clipped - self.full_scale_min) / self.lsb).astype(np.int64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map integer codes back to analog values.

        Raises:
            ValueError: if any code is out of range.
        """
        array = np.asarray(codes)
        if np.any(array < 0) or np.any(array >= self.num_levels):
            raise ValueError(
                f"codes must be in [0, {self.num_levels}), got range "
                f"[{array.min()}, {array.max()}]"
            )
        return self.full_scale_min + array.astype(float) * self.lsb


PCNNA_INPUT_DAC = ConverterSpec(
    resolution_bits=16,
    sample_rate_hz=6e9,
    full_scale_min=0.0,
    full_scale_max=1.0,
    area_mm2=0.52,
    power_w=0.330,
)
"""The 16 b / 6 GSa/s input DAC the paper adopts (Lin et al. 2018)."""

PCNNA_WEIGHT_DAC = ConverterSpec(
    resolution_bits=16,
    sample_rate_hz=6e9,
    full_scale_min=-1.0,
    full_scale_max=1.0,
    area_mm2=0.52,
    power_w=0.330,
)
"""Kernel-weight DAC: same part, bipolar full scale for signed weights."""

PCNNA_OUTPUT_ADC = ConverterSpec(
    resolution_bits=12,
    sample_rate_hz=2.8e9,
    full_scale_min=-1.0,
    full_scale_max=1.0,
    area_mm2=0.44,
    power_w=0.0446,
)
"""The 2.8 GSa/s output ADC the paper adopts (Stepanovic & Nikolic 2013)."""
