"""Electronic substrate for the PCNNA reproduction.

Models the paper's electronic periphery: DAC/ADC arrays (the full-system
bottleneck), the 128 kb / 7 ns SRAM cache, off-chip DRAM, clock-domain
crossing buffers, and the dual fast/main clock system.
"""

from repro.electronics.adc import AdcArray, AdcConversion
from repro.electronics.buffers import (
    BufferOverflowError,
    BufferUnderflowError,
    Fifo,
    InputBuffer,
    KernelWeightsBuffer,
    OutputBuffer,
)
from repro.electronics.clock import (
    PCNNA_FAST_CLOCK_HZ,
    PCNNA_MAIN_CLOCK_HZ,
    ClockDomain,
    DualClockSystem,
)
from repro.electronics.converters import (
    PCNNA_INPUT_DAC,
    PCNNA_OUTPUT_ADC,
    PCNNA_WEIGHT_DAC,
    ConverterSpec,
)
from repro.electronics.dac import DacArray, DacConversion
from repro.electronics.dram import Dram, DramSpec, DramStats
from repro.electronics.sram import SramCache, SramSpec, SramStats

__all__ = [
    "AdcArray",
    "AdcConversion",
    "BufferOverflowError",
    "BufferUnderflowError",
    "Fifo",
    "InputBuffer",
    "KernelWeightsBuffer",
    "OutputBuffer",
    "PCNNA_FAST_CLOCK_HZ",
    "PCNNA_MAIN_CLOCK_HZ",
    "ClockDomain",
    "DualClockSystem",
    "PCNNA_INPUT_DAC",
    "PCNNA_OUTPUT_ADC",
    "PCNNA_WEIGHT_DAC",
    "ConverterSpec",
    "DacArray",
    "DacConversion",
    "Dram",
    "DramSpec",
    "DramStats",
    "SramCache",
    "SramSpec",
    "SramStats",
]
