"""Digital-to-analog converter array: the PCNNA front-end bottleneck.

The paper identifies the input DACs as the full-system speed limit
(section V-B): for every kernel location, the newly required receptive-
field values must each pass through one of ``num_dacs`` converters at the
DAC sample rate.  :class:`DacArray` models that array, including the
round-robin scheduling that divides ``n`` conversions over ``num_dacs``
parallel converters — reproducing equation (8)'s
``n_updated / num_dacs`` serialization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.electronics.converters import PCNNA_INPUT_DAC, ConverterSpec


@dataclass(frozen=True)
class DacConversion:
    """Result of scheduling a batch of conversions on a DAC array.

    Attributes:
        num_values: values converted.
        per_dac_values: worst-case values handled by a single DAC.
        time_s: wall-clock time for the batch (set by the busiest DAC).
    """

    num_values: int
    per_dac_values: int
    time_s: float


class DacArray:
    """``num_dacs`` identical DACs converting values in parallel.

    Args:
        num_dacs: number of parallel converters (paper default: 10 input
            DACs + 1 weight DAC modeled as separate arrays).
        spec: converter electrical/timing parameters.
    """

    def __init__(self, num_dacs: int, spec: ConverterSpec | None = None) -> None:
        if num_dacs <= 0:
            raise ValueError(f"need at least one DAC, got {num_dacs!r}")
        self.num_dacs = num_dacs
        self.spec = spec if spec is not None else PCNNA_INPUT_DAC

    def schedule(self, num_values: int) -> DacConversion:
        """Schedule ``num_values`` conversions round-robin over the array.

        The batch time is the busiest converter's sequential time:
        ``ceil(num_values / num_dacs) * sample_period``.

        Raises:
            ValueError: if ``num_values`` is negative.
        """
        if num_values < 0:
            raise ValueError(f"value count must be non-negative, got {num_values!r}")
        per_dac = math.ceil(num_values / self.num_dacs)
        return DacConversion(
            num_values=num_values,
            per_dac_values=per_dac,
            time_s=per_dac * self.spec.sample_period_s,
        )

    def convert(self, values: np.ndarray) -> np.ndarray:
        """Quantize a batch of digital values to their analog levels."""
        return self.spec.quantize(values)

    def average_conversion_time_s(self, num_values: int) -> float:
        """Idealized (non-integer) batch time ``num_values / (rate * dacs)``.

        This is the formula the paper uses in equation (8), which divides
        exactly rather than taking the per-DAC ceiling; both are exposed so
        the analytical model can match the paper and the cycle simulator
        can be exact.
        """
        if num_values < 0:
            raise ValueError(f"value count must be non-negative, got {num_values!r}")
        return num_values / (self.spec.sample_rate_hz * self.num_dacs)

    @property
    def total_area_mm2(self) -> float:
        """Total silicon area of the array (mm^2)."""
        return self.num_dacs * self.spec.area_mm2

    @property
    def total_power_w(self) -> float:
        """Total active power of the array (W)."""
        return self.num_dacs * self.spec.power_w

    @property
    def aggregate_rate_hz(self) -> float:
        """Aggregate conversion throughput (samples/s)."""
        return self.num_dacs * self.spec.sample_rate_hz
