"""Analog-to-digital converter array: the PCNNA back-end.

Convolution results leave the optical core as analog photocurrents and
are digitized by ADCs before being written back to DRAM (paper section
IV).  The array model mirrors :class:`repro.electronics.dac.DacArray`:
round-robin scheduling of ``K`` kernel outputs per location over
``num_adcs`` converters at the ADC sample rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.electronics.converters import PCNNA_OUTPUT_ADC, ConverterSpec


@dataclass(frozen=True)
class AdcConversion:
    """Result of scheduling a batch of digitizations on an ADC array.

    Attributes:
        num_values: values digitized.
        per_adc_values: worst-case values handled by a single ADC.
        time_s: wall-clock time for the batch.
    """

    num_values: int
    per_adc_values: int
    time_s: float


class AdcArray:
    """``num_adcs`` identical ADCs digitizing values in parallel."""

    def __init__(self, num_adcs: int, spec: ConverterSpec | None = None) -> None:
        if num_adcs <= 0:
            raise ValueError(f"need at least one ADC, got {num_adcs!r}")
        self.num_adcs = num_adcs
        self.spec = spec if spec is not None else PCNNA_OUTPUT_ADC

    def schedule(self, num_values: int) -> AdcConversion:
        """Schedule ``num_values`` digitizations round-robin over the array.

        Raises:
            ValueError: if ``num_values`` is negative.
        """
        if num_values < 0:
            raise ValueError(f"value count must be non-negative, got {num_values!r}")
        per_adc = math.ceil(num_values / self.num_adcs)
        return AdcConversion(
            num_values=num_values,
            per_adc_values=per_adc,
            time_s=per_adc * self.spec.sample_period_s,
        )

    def digitize(self, values: np.ndarray) -> np.ndarray:
        """Quantize analog values to the ADC's representable levels."""
        return self.spec.quantize(values)

    @property
    def total_area_mm2(self) -> float:
        """Total silicon area of the array (mm^2)."""
        return self.num_adcs * self.spec.area_mm2

    @property
    def total_power_w(self) -> float:
        """Total active power of the array (W)."""
        return self.num_adcs * self.spec.power_w

    @property
    def aggregate_rate_hz(self) -> float:
        """Aggregate digitization throughput (samples/s)."""
        return self.num_adcs * self.spec.sample_rate_hz
