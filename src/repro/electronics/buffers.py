"""Clock-domain-crossing buffers.

The paper's Fig. 4 shows three buffers isolating the fast optical core
from the slow external environment: the Kernel Weights Buffer, the Input
Buffer, and the Output Buffer.  :class:`Fifo` is a capacity-bounded FIFO
with occupancy accounting; the named subclasses exist so architecture
code reads like the block diagram.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


class BufferOverflowError(RuntimeError):
    """Raised when a push would exceed the buffer capacity."""


class BufferUnderflowError(RuntimeError):
    """Raised when a pop finds the buffer empty."""


@dataclass
class FifoStats:
    """Mutable occupancy counters for one FIFO.

    Attributes:
        pushes: total items pushed.
        pops: total items popped.
        max_occupancy: high-water mark of resident items.
    """

    pushes: int = 0
    pops: int = 0
    max_occupancy: int = 0


class Fifo:
    """A bounded first-in-first-out buffer of opaque items.

    Args:
        capacity: maximum resident items.
        name: label used in error messages and reports.
    """

    def __init__(self, capacity: int, name: str = "fifo") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.name = name
        self.stats = FifoStats()
        self._items: deque[object] = deque()

    @property
    def occupancy(self) -> int:
        """Items currently resident."""
        return len(self._items)

    @property
    def free_space(self) -> int:
        """Slots currently available."""
        return self.capacity - len(self._items)

    @property
    def is_empty(self) -> bool:
        """Whether the buffer holds no items."""
        return not self._items

    @property
    def is_full(self) -> bool:
        """Whether the buffer is at capacity."""
        return len(self._items) >= self.capacity

    def push(self, item: object) -> None:
        """Append one item.

        Raises:
            BufferOverflowError: if the buffer is full.
        """
        if self.is_full:
            raise BufferOverflowError(
                f"{self.name}: push into full buffer (capacity {self.capacity})"
            )
        self._items.append(item)
        self.stats.pushes += 1
        self.stats.max_occupancy = max(self.stats.max_occupancy, len(self._items))

    def push_many(self, items: list[object]) -> None:
        """Append several items atomically.

        Raises:
            BufferOverflowError: if the batch does not fit; nothing is
                pushed in that case.
        """
        if len(items) > self.free_space:
            raise BufferOverflowError(
                f"{self.name}: batch of {len(items)} exceeds free space "
                f"{self.free_space}"
            )
        for item in items:
            self.push(item)

    def pop(self) -> object:
        """Remove and return the oldest item.

        Raises:
            BufferUnderflowError: if the buffer is empty.
        """
        if self.is_empty:
            raise BufferUnderflowError(f"{self.name}: pop from empty buffer")
        self.stats.pops += 1
        return self._items.popleft()

    def drain(self) -> list[object]:
        """Remove and return all items, oldest first."""
        items = list(self._items)
        self.stats.pops += len(items)
        self._items.clear()
        return items

    def clear(self) -> None:
        """Discard all items without counting them as pops."""
        self._items.clear()


class KernelWeightsBuffer(Fifo):
    """Buffer staging kernel weights loaded from DRAM (Fig. 4)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, name="kernel-weights-buffer")


class InputBuffer(Fifo):
    """Buffer staging receptive-field input values (Fig. 4)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, name="input-buffer")


class OutputBuffer(Fifo):
    """Buffer staging digitized convolution results for DRAM (Fig. 4)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, name="output-buffer")
