"""PCNNA: A Photonic Convolutional Neural Network Accelerator — reproduction.

A full Python reproduction of Mehrabian, Al-Kabani, Sorger & El-Ghazawi,
"PCNNA: A Photonic Convolutional Neural Network Accelerator" (SOCC 2018,
arXiv:1807.08792), including:

* :mod:`repro.photonics` — microring resonators, WDM weight banks, and
  the broadcast-and-weight protocol the design rests on;
* :mod:`repro.electronics` — the DAC/ADC/SRAM/DRAM periphery and the
  dual-clock architecture;
* :mod:`repro.nn` — a from-scratch NumPy CNN inference engine;
* :mod:`repro.core` — the paper's contribution: receptive-field-filtered
  MRR mapping, the analytical framework (ring counts, area, execution
  time), a cycle-level timing simulator, and a functional photonic
  convolution engine validated against the NumPy reference;
* :mod:`repro.baselines` — Eyeriss and YodaNN comparison models;
* :mod:`repro.workloads` / :mod:`repro.analysis` — the paper's AlexNet
  table, extension suites, and reporting utilities.

Quickstart::

    from repro import PCNNA
    from repro.workloads import alexnet_conv_specs

    accelerator = PCNNA()
    for spec in alexnet_conv_specs():
        analysis = accelerator.analyze_layer(spec)
        print(spec.name, analysis.rings_filtered, analysis.optical_time_s)
"""

from repro.core import PAPER_CONFIG, PCNNA, PCNNAConfig, PhotonicConvolution

__version__ = "1.0.0"

__all__ = [
    "PAPER_CONFIG",
    "PCNNA",
    "PCNNAConfig",
    "PhotonicConvolution",
    "__version__",
]
