"""Perf benchmark: dynamic batching vs batch=1 FIFO under real traffic.

The request-level simulator quantifies what the batching scheduler is
*for*: at an offered load several times the single-request capacity
(where a batch=1 FIFO server saturates — each dispatch pays the full
once-per-layer weight-programming cost for one image), dynamic batching
amortizes the weight loads over every batch and sustains the offered
rate with per-request p99 latency bounded by the policy's ``max_wait``
plus one full-batch pipeline traversal.

All numbers are *simulated* time from the paper-calibrated analytical
model — deterministic under the fixed trace seed, so the asserted
floors hold on any machine (no ``PCNNA_PERF_GATE`` needed).  Run with
``-s`` to see the comparison table.

The soak test streams a 900k-request bursty trace through every policy.
It lost its ``slow`` mark when PR 6 vectorized the pluginless kernel
(trace *generation* now dominates its wall time), so it runs on every
benchmark invocation; see ``benchmarks/test_perf_kernel_vectorized.py``
for the reference-vs-vectorized trajectory that justified the change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import SERVING_SWEEP_HEADER, format_table, sweep_serving_policies
from repro.core.traffic import (
    BatchingPolicy,
    PipelineServiceModel,
    ServingSimulator,
)
from repro.workloads import alexnet_conv_specs, make_arrivals, poisson_arrivals
from conftest import emit

NUM_CORES = 4
MAX_BATCH = 32
MAX_WAIT_S = 2e-3
NUM_REQUESTS = 20_000
MIN_THROUGHPUT_RATIO = 3.0


def test_dynamic_batching_sustains_3x_fifo_throughput(alexnet_specs):
    model = PipelineServiceModel.from_specs(alexnet_specs, NUM_CORES)
    # Offer 4x the single-request capacity: FIFO saturates at its
    # capacity, the batching scheduler must absorb the full rate.
    offered = 4.0 * model.capacity_rps(1)
    arrivals = poisson_arrivals(offered, NUM_REQUESTS, seed=7)

    policy = BatchingPolicy.dynamic(MAX_BATCH, MAX_WAIT_S)
    fifo = ServingSimulator(model, BatchingPolicy.fifo()).run(arrivals)
    dynamic = ServingSimulator(model, policy).run(arrivals)

    ratio = dynamic.throughput_rps / fifo.throughput_rps
    p99_bound = MAX_WAIT_S + model.batch_makespan_s(MAX_BATCH)
    emit(
        format_table(
            ["policy", "req/s", "p50 (us)", "p99 (us)", "mean batch"],
            [
                [
                    report.policy.name,
                    f"{report.throughput_rps:,.0f}",
                    f"{report.p50_s * 1e6:.0f}",
                    f"{report.p99_s * 1e6:.0f}",
                    f"{report.mean_batch_size:.1f}",
                ]
                for report in (fifo, dynamic)
            ],
            title=(
                f"AlexNet, {NUM_CORES} cores, offered {offered:,.0f} req/s "
                f"(4x single-request capacity): dynamic batching sustains "
                f"{ratio:.1f}x FIFO throughput; p99 bound "
                f"{p99_bound * 1e6:.0f} us"
            ),
        )
    )

    # FIFO is pinned at its single-request capacity...
    assert fifo.throughput_rps == pytest.approx(
        model.capacity_rps(1), rel=0.05
    )
    # ...while dynamic batching sustains the full offered load.
    assert dynamic.throughput_rps == pytest.approx(offered, rel=0.05)
    assert ratio >= MIN_THROUGHPUT_RATIO
    # The max-wait policy bounds the latency tail: no request waits
    # longer than max_wait for batch-mates plus one full-batch pipeline
    # traversal.
    assert dynamic.p99_s <= p99_bound
    assert dynamic.latencies_s.max() <= p99_bound + model.batch_makespan_s(
        MAX_BATCH
    )


def test_simulation_is_deterministic(alexnet_specs):
    """Identical seeds produce bit-identical percentile latencies."""
    model = PipelineServiceModel.from_specs(alexnet_specs, NUM_CORES)
    policy = BatchingPolicy.dynamic(MAX_BATCH, MAX_WAIT_S)
    runs = [
        ServingSimulator(model, policy).run(
            poisson_arrivals(5000.0, 5000, seed=42)
        )
        for _ in range(2)
    ]
    assert runs[0].p50_s == runs[1].p50_s
    assert runs[0].p95_s == runs[1].p95_s
    assert runs[0].p99_s == runs[1].p99_s
    assert np.array_equal(runs[0].completion_s, runs[1].completion_s)


def test_soak_long_bursty_traces_stay_conservative():
    """Discrete-event soak: 900k requests of every traffic shape through
    every policy — the scheduler must conserve requests, respect
    causality, and keep utilization physical over long horizons.

    Ran slow-marked at 300k requests until PR 6; the vectorized kernel
    brought 900k into the default benchmark tier."""
    specs = alexnet_conv_specs()
    model = PipelineServiceModel.from_specs(specs, NUM_CORES)
    offered = 0.6 * model.capacity_rps(MAX_BATCH)
    policies = [
        BatchingPolicy.fifo(),
        BatchingPolicy.dynamic(MAX_BATCH, MAX_WAIT_S),
        BatchingPolicy.fixed(MAX_BATCH),
    ]
    rows = []
    for pattern in ("poisson", "mmpp", "diurnal"):
        arrivals = make_arrivals(pattern, offered, 900_000, seed=13)
        for policy in policies:
            report = ServingSimulator(model, policy).run(arrivals)
            assert report.num_requests == 900_000
            assert sum(b.size for b in report.batches) == 900_000
            assert np.all(report.dispatch_s >= report.arrival_s)
            assert np.all(report.completion_s > report.dispatch_s)
            assert all(0.0 < u <= 1.0 for u in report.core_utilization)
            assert np.isfinite(report.latencies_s).all()
            rows.append(
                [
                    pattern,
                    policy.name,
                    f"{report.throughput_rps:,.0f}",
                    f"{report.p99_s * 1e6:.0f}",
                    f"{max(report.core_utilization):.0%}",
                ]
            )
    emit(
        format_table(
            ["traffic", "policy", "req/s", "p99 (us)", "peak util"],
            rows,
            title="900k-request soak, AlexNet over 4 cores",
        )
    )


def test_policy_sweep_smoke(alexnet_specs):
    """The sweep entry point stays functional at benchmark scale."""
    arrivals = poisson_arrivals(5000.0, 2000, seed=3)
    points = sweep_serving_policies(
        alexnet_specs,
        [BatchingPolicy.fifo(), BatchingPolicy.dynamic(MAX_BATCH, MAX_WAIT_S)],
        [1, 2, 4],
        arrivals,
    )
    assert len(points) == 6
    emit(
        format_table(
            SERVING_SWEEP_HEADER,
            [point.row() for point in points],
            title="policy x cores sweep, shared 2k-request Poisson trace",
        )
    )
