"""Shared helpers for the benchmark harness.

Every benchmark prints the paper artifact it regenerates (run pytest with
``-s`` to see the tables/charts) and asserts the paper's qualitative
conclusions, so a green benchmark run *is* a successful reproduction.
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a reproduced table/figure with surrounding whitespace."""
    print()
    print(text)
    print()


@pytest.fixture
def alexnet_specs():
    """The paper's AlexNet conv-layer table."""
    from repro.workloads import alexnet_conv_specs

    return alexnet_conv_specs()
