"""Perf benchmark: the planet-scale fleet runtime.

PR 8 layered a global router, failover, and autoscaling on top of the
regional cluster runtime; this file measures what that layer costs and
writes its perf trajectory to ``BENCH_fleet.json`` at the repository
root: the single-region fleet-vs-cluster overhead (on the same trace,
asserted bit-identical first — a fast wrong fleet benchmarks nothing)
and a ≥1M-request multi-region geo-affinity soak.

Wall-clock gates are machine-dependent, so they follow the repo's
``PCNNA_PERF_GATE`` convention: enforced in local runs (the overhead
ceiling on the differential scenario, the seconds-scale soak bound),
relaxed to a functional smoke with ``PCNNA_PERF_GATE=0`` on shared CI
runners — the JSON artifact is written either way, and the bit-identity
check between the timed runs is asserted unconditionally.

Run with ``-s`` to see the trajectory table.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.cluster import ClusterTenant, simulate_cluster_serving
from repro.core.fleet import (
    RegionSpec,
    simulate_fleet_serving,
    uniform_rtt,
)
from repro.core.traffic import BatchingPolicy
from repro.workloads import lenet5_conv_specs, poisson_arrivals
from conftest import emit

PERF_GATED = os.environ.get("PCNNA_PERF_GATE", "1") != "0"
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

POOL_SIZE = 3
RATE_RPS = 2e6  # keeps every regional pool continuously busy
DIFFERENTIAL = 200_000  # single-region fleet-vs-cluster comparison
SOAK_REGIONS = 4
SOAK = 1_000_000  # total requests across the soak regions
OVERHEAD_CEILING = 2.0  # fleet wall time over cluster wall time
SOAK_CEILING_S = 60.0  # generous "completes in seconds" bound

TIMING_REPEATS = 3


def _tenants() -> tuple[ClusterTenant, ...]:
    # Single pluginless tenant: both the cluster and the per-region
    # fleet runs take the vectorized kernel, so the timings compare the
    # fleet layer itself, not two different kernels.
    return (
        ClusterTenant(
            "solo",
            tuple(lenet5_conv_specs()),
            BatchingPolicy.dynamic(8, 1e-4),
        ),
    )


def _best_of(function, repeats: int = TIMING_REPEATS):
    """Minimum wall time over repeats (noise-robust) plus the result.

    The first call doubles as warm-up: the vectorized path's first
    invocation pays one-off numpy dispatch costs that would otherwise
    overstate small-trace timings.
    """
    result = None
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - began)
    return best, result


def _merge(into: dict, update: dict) -> None:
    """Recursive dict merge: the two benchmarks share nested sections."""
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(into.get(key), dict):
            _merge(into[key], value)
        else:
            into[key] = value


def _record(update: dict) -> None:
    """Merge one benchmark's results into ``BENCH_fleet.json``."""
    payload: dict = {}
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    _merge(payload, update)
    payload["perf_gated"] = PERF_GATED
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_single_region_fleet_overhead_vs_cluster():
    """The differential scenario, timed: one healthy zero-RTT region.

    The fleet contract pins this run bit-identical to the plain cluster
    simulator; here the same scenario is also the overhead probe — the
    routing pre-pass, merge fast path, and back-mapping must stay a
    bounded multiplier on the cluster run they wrap.
    """
    tenants = _tenants()
    arrival = {"solo": poisson_arrivals(RATE_RPS, DIFFERENTIAL, seed=31)}
    cluster_s, cluster = _best_of(
        lambda: simulate_cluster_serving(tenants, arrival, pool_size=POOL_SIZE)
    )
    fleet_s, fleet = _best_of(
        lambda: simulate_fleet_serving(
            tenants, (RegionSpec("solo", POOL_SIZE),), {"solo": arrival}
        )
    )
    # The timed runs must agree bit for bit.
    cluster_tenant = cluster.tenant("solo")
    fleet_tenant = fleet.regions[0].report.tenant("solo")
    assert np.array_equal(cluster_tenant.arrival_s, fleet_tenant.arrival_s)
    assert np.array_equal(cluster_tenant.dispatch_s, fleet_tenant.dispatch_s)
    assert np.array_equal(
        cluster_tenant.completion_s, fleet_tenant.completion_s
    )
    assert cluster_tenant.batches == fleet_tenant.batches

    overhead = fleet_s / cluster_s
    _record(
        {
            "scenario": {
                "network": "lenet5",
                "pool_size": POOL_SIZE,
                "policy": "dynamic(8, 1e-4)",
                "rate_rps": RATE_RPS,
                "arrival_seed": 31,
            },
            "differential_overhead": {
                "num_requests": DIFFERENTIAL,
                "cluster_wall_s": cluster_s,
                "fleet_wall_s": fleet_s,
                "overhead_x": overhead,
                "ceiling_x": OVERHEAD_CEILING,
            },
        }
    )
    emit(
        f"single-region differential ({DIFFERENTIAL:,} requests): "
        f"cluster {cluster_s:.3f} s, fleet {fleet_s:.3f} s "
        f"-> {overhead:.2f}x overhead"
        f"{'' if PERF_GATED else ' (ceiling not enforced: PCNNA_PERF_GATE=0)'}"
    )
    if PERF_GATED:
        assert overhead <= OVERHEAD_CEILING


def test_million_request_multi_region_soak():
    """The ≥1M-request multi-region soak the ISSUE targets.

    Four healthy regions under geo-affinity with a uniform 10 ms RTT:
    the router pre-pass, the per-region vectorized runs, and the
    back-mapping must together finish in seconds while conserving every
    request and keeping every served latency finite.
    """
    tenants = _tenants()
    per_region = SOAK // SOAK_REGIONS
    regions = tuple(
        RegionSpec(f"region-{index}", POOL_SIZE)
        for index in range(SOAK_REGIONS)
    )
    arrival = {
        region.name: {
            "solo": poisson_arrivals(
                RATE_RPS / SOAK_REGIONS, per_region, seed=41 + index
            )
        }
        for index, region in enumerate(regions)
    }
    began = time.perf_counter()
    report = simulate_fleet_serving(
        tenants,
        regions,
        arrival,
        rtt_s=uniform_rtt(SOAK_REGIONS, 0.01),
    )
    soak_s = time.perf_counter() - began

    assert report.num_offered == SOAK
    assert report.num_served + report.num_shed == SOAK
    assert report.num_remote == 0  # healthy geo-affinity never diverts
    assert np.all(np.isfinite(report.latencies_s))
    assert report.p99_s > 0.0

    _record(
        {
            "requests_per_second": {"fleet": {str(SOAK): SOAK / soak_s}},
            "soak_1m": {
                "num_regions": SOAK_REGIONS,
                "routing": "geo-affinity",
                "rtt_s": 0.01,
                "wall_s": soak_s,
                "ceiling_s": SOAK_CEILING_S,
                "global_p99_s": report.p99_s,
                "placement_efficiency": report.placement_efficiency,
            },
        }
    )
    emit(
        f"1M-request fleet soak ({SOAK_REGIONS} regions, geo-affinity): "
        f"{soak_s:.1f} s wall, {SOAK / soak_s:,.0f} req/s, "
        f"global p99 {report.p99_s:.3e} s"
        f"{'' if PERF_GATED else ' (ceiling not enforced: PCNNA_PERF_GATE=0)'}"
    )
    if PERF_GATED:
        assert soak_s <= SOAK_CEILING_S
