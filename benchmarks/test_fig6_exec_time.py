"""Fig. 6 — per-layer AlexNet execution time: PCNNA(O), PCNNA(O+E),
Eyeriss, YodaNN.

Regenerates all four series:

* PCNNA(O)   — eq. 7, the optical core at 5 GHz;
* PCNNA(O+E) — the DAC-bound full system (eq. 8), cross-checked against
  the cycle-level simulator;
* Eyeriss    — the published per-layer chip measurements (per image);
* YodaNN     — the binary-weight throughput model.

Asserts the paper's conclusions: the optical core reaches >= 5 orders of
magnitude over Eyeriss and the full system >= 3 orders, with the
orderings holding on every layer.
"""

import math

import pytest
from conftest import emit

from repro.analysis import (
    format_orders_of_magnitude,
    format_table,
    format_time,
    log_bar_chart,
)
from repro.baselines import YodaNNModel, published_layer_time_s
from repro.core.analytical import full_system_time_s, optical_core_time_s
from repro.core.config import paper_assumptions
from repro.core.timing import simulate_network


def test_fig6_execution_times(benchmark, alexnet_specs):
    """Regenerate Fig. 6's four series."""
    yodann = YodaNNModel()

    def compute_series():
        return {
            "PCNNA(O)": [optical_core_time_s(s) for s in alexnet_specs],
            "PCNNA(O+E)": [full_system_time_s(s) for s in alexnet_specs],
            "YodaNN": [yodann.layer_time_s(s) for s in alexnet_specs],
            "Eyeriss": [published_layer_time_s(s.name) for s in alexnet_specs],
        }

    series = benchmark(compute_series)
    names = [s.name for s in alexnet_specs]
    emit(
        log_bar_chart(
            series, names, title="Fig. 6: AlexNet conv execution time", unit="s"
        )
    )
    emit(
        format_table(
            ["layer"] + list(series),
            [
                [name] + [format_time(series[key][i]) for key in series]
                for i, name in enumerate(names)
            ],
            title="Fig. 6 data",
        )
    )

    for i, name in enumerate(names):
        # Ordering on every layer: PCNNA(O) < PCNNA(O+E) < YodaNN < Eyeriss.
        assert series["PCNNA(O)"][i] <= series["PCNNA(O+E)"][i], name
        assert series["PCNNA(O+E)"][i] < series["YodaNN"][i], name
        assert series["YodaNN"][i] < series["Eyeriss"][i], name


def test_fig6_headline_speedups(benchmark, alexnet_specs):
    """Paper: up to 5 orders (optical core), > 3 orders (full system)."""

    def compute_speedups():
        optical = max(
            published_layer_time_s(s.name) / optical_core_time_s(s)
            for s in alexnet_specs
        )
        full = max(
            published_layer_time_s(s.name) / full_system_time_s(s)
            for s in alexnet_specs
        )
        return optical, full

    optical, full = benchmark(compute_speedups)
    emit(
        "Peak speedup vs Eyeriss:\n"
        f"  optical core PCNNA(O):  {optical:,.0f}x "
        f"({format_orders_of_magnitude(optical)})\n"
        f"  full system PCNNA(O+E): {full:,.0f}x "
        f"({format_orders_of_magnitude(full)})"
    )
    assert optical >= 1e5
    assert full >= 1e3


def test_fig6_cycle_simulator_cross_check(benchmark, alexnet_specs):
    """The cycle-level simulator reproduces the PCNNA(O+E) series within
    the documented slack (row-start refills, per-DAC ceiling)."""
    results = benchmark.pedantic(
        simulate_network,
        args=(alexnet_specs, paper_assumptions()),
        kwargs={"include_adc": False},
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["layer", "analytical (paper)", "cycle simulator", "ratio"],
            [
                [
                    r.name,
                    format_time(r.analytical_full_s),
                    format_time(r.pipelined_time_s),
                    f"{r.analytical_agreement:.3f}",
                ]
                for r in results
            ],
            title="Fig. 6 cross-check: eq. 8 vs cycle-level simulation",
        )
    )
    for result in results:
        assert 1.0 <= result.analytical_agreement < 1.25, result.name


def test_fig6_optical_core_times_match_paper(benchmark, alexnet_specs):
    """Eq. 7 at 5 GHz: 605 / 145.8 / 33.8 / 33.8 / 33.8 ns."""
    expected_ns = [605.0, 145.8, 33.8, 33.8, 33.8]
    times = benchmark(
        lambda: [optical_core_time_s(s) * 1e9 for s in alexnet_specs]
    )
    for time_ns, expected in zip(times, expected_ns):
        assert time_ns == pytest.approx(expected, rel=1e-2)
