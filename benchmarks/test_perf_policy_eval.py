"""Perf benchmark: the adaptive control plane and its policy-eval grid.

PR 9 layered feedback controllers (EWMA recalibration, burn-rate
admission, pressure-scaled reallocation) on the serving kernel plus a
scenario × policy evaluation harness; this file measures what both
cost and writes the trajectory to ``BENCH_adaptive.json`` at the
repository root: the frozen-controller-vs-static overhead (on the same
trace, asserted bit-identical first — a fast wrong controller
benchmarks nothing) and the full default dominance grid with its
machine-checkable verdict.

Wall-clock gates follow the repo's ``PCNNA_PERF_GATE`` convention:
enforced in local runs, relaxed to a functional smoke with
``PCNNA_PERF_GATE=0`` on shared CI runners — the JSON artifact is
written either way, and the bit-identity and dominance checks are
asserted unconditionally.

Run with ``-s`` to see the tables.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import (
    POLICY_EVAL_HEADER,
    default_policy_grid,
    default_scenarios,
    evaluate_dominance,
    format_table,
)
from repro.core.adaptive import (
    AdaptiveRecalibration,
    simulate_adaptive_serving,
)
from repro.core.faults import RecalibrationPolicy, simulate_degraded_serving
from repro.core.traffic import BatchingPolicy
from repro.workloads import fault_scenario, poisson_arrivals, serving_network
from conftest import emit

PERF_GATED = os.environ.get("PCNNA_PERF_GATE", "1") != "0"
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"

CONTROLLER_REQUESTS = 20_000
CONTROLLER_RATE_RPS = 2e4
CONTROLLER_CORES = 2
OVERHEAD_CEILING = 3.0  # adaptive wall time over static wall time
GRID_CEILING_S = 60.0  # generous bound for the full default grid

TIMING_REPEATS = 3


def _best_of(function, repeats: int = TIMING_REPEATS):
    """Minimum wall time over repeats (noise-robust) plus the result."""
    result = None
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - began)
    return best, result


def _merge(into: dict, update: dict) -> None:
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(into.get(key), dict):
            _merge(into[key], value)
        else:
            into[key] = value


def _record(update: dict) -> None:
    """Merge one benchmark's results into ``BENCH_adaptive.json``."""
    payload: dict = {}
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    _merge(payload, update)
    payload["perf_gated"] = PERF_GATED
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_frozen_controller_overhead_vs_static():
    """The differential scenario, timed: frozen EWMA vs static recal.

    The adaptive contract pins the frozen controller bit-identical to
    the static policy; here the same scenario is also the overhead
    probe — per-batch observe/decide bookkeeping must stay a bounded
    multiplier on the plugin run it wraps.
    """
    network = serving_network("lenet5")
    arrivals = poisson_arrivals(
        CONTROLLER_RATE_RPS, CONTROLLER_REQUESTS, seed=17
    )
    policy = BatchingPolicy.dynamic(4, 1e-4)
    schedule = fault_scenario(
        "slow-drift", CONTROLLER_CORES, float(arrivals[-1])
    )
    recal = RecalibrationPolicy(error_threshold=0.05)
    static_s, static = _best_of(
        lambda: simulate_degraded_serving(
            network,
            arrivals,
            policy,
            schedule,
            CONTROLLER_CORES,
            recalibration=recal,
        )
    )
    adaptive_s, adaptive = _best_of(
        lambda: simulate_adaptive_serving(
            network,
            arrivals,
            policy,
            schedule,
            CONTROLLER_CORES,
            controller=AdaptiveRecalibration.frozen(recal),
        )
    )
    # The timed runs must agree bit for bit.
    assert np.array_equal(static.completion_s, adaptive.completion_s)
    assert np.array_equal(static.accuracy_proxy, adaptive.accuracy_proxy)
    assert static.recalibrations == adaptive.recalibrations

    overhead = adaptive_s / static_s
    _record(
        {
            "scenario": {
                "network": "lenet5",
                "num_cores": CONTROLLER_CORES,
                "policy": "dynamic(4, 1e-4)",
                "rate_rps": CONTROLLER_RATE_RPS,
                "fault": "slow-drift",
                "arrival_seed": 17,
            },
            "controller_overhead": {
                "num_requests": CONTROLLER_REQUESTS,
                "static_wall_s": static_s,
                "adaptive_wall_s": adaptive_s,
                "overhead_x": overhead,
                "ceiling_x": OVERHEAD_CEILING,
            },
        }
    )
    emit(
        f"frozen-controller differential ({CONTROLLER_REQUESTS:,} requests): "
        f"static {static_s:.3f} s, adaptive {adaptive_s:.3f} s "
        f"-> {overhead:.2f}x overhead"
        f"{'' if PERF_GATED else ' (ceiling not enforced: PCNNA_PERF_GATE=0)'}"
    )
    if PERF_GATED:
        assert overhead <= OVERHEAD_CEILING


def test_default_dominance_grid():
    """The full default scenario × policy grid, timed and verified.

    The grid is the PR's acceptance artifact: at least one adaptive
    policy must sit on the Pareto front and strictly dominate its
    static baseline on >= 2 named fault scenarios — asserted here
    unconditionally, with the wall time recorded as the harness's perf
    trajectory.
    """
    scenarios = default_scenarios()
    policies = default_policy_grid(scenarios)
    began = time.perf_counter()
    report = evaluate_dominance(scenarios, policies)
    grid_s = time.perf_counter() - began

    assert report.passes(min_scenarios=2), report.describe()
    winners = report.winning_policies(min_scenarios=2)
    assert "adaptive-recal" in winners

    cells = len(scenarios) * len(policies)
    _record(
        {
            "dominance_grid": {
                "num_scenarios": len(scenarios),
                "num_policies": len(policies),
                "num_cells": cells,
                "wall_s": grid_s,
                "cells_per_second": cells / grid_s,
                "ceiling_s": GRID_CEILING_S,
                "passes": report.passes(min_scenarios=2),
                "winning_policies": sorted(winners),
                "wins": [list(win) for win in report.wins],
            }
        }
    )
    emit(
        format_table(
            POLICY_EVAL_HEADER,
            [outcome.row() for outcome in report.outcomes],
            title=(
                f"policy-eval grid ({cells} cells, {grid_s:.1f} s wall, "
                f"winners: {', '.join(sorted(winners))})"
            ),
        )
    )
    if PERF_GATED:
        assert grid_s <= GRID_CEILING_S


def test_dominance_grid_workers_byte_identical():
    """``workers=2`` smoke for the parallel grid executor: a reduced
    dominance grid fanned over two processes must reproduce the serial
    run byte-for-byte — same outcomes, same wins, same Pareto fronts.
    Asserted unconditionally (determinism, not wall time)."""
    scenarios = default_scenarios(num_requests=150, rate_rps=2000.0)
    policies = default_policy_grid(scenarios)
    serial = evaluate_dominance(scenarios, policies)
    fanned = evaluate_dominance(scenarios, policies, workers=2)

    assert fanned.wins == serial.wins
    assert dict(fanned.fronts) == dict(serial.fronts)
    for a, b in zip(serial.outcomes, fanned.outcomes):
        assert a.scenario == b.scenario
        assert a.policy == b.policy
        assert a.availability == b.availability
        assert a.accuracy_error == b.accuracy_error
        assert a.p99_latency_s == b.p99_latency_s
        assert a.downtime_s == b.downtime_s
        assert (a.served, a.offered, a.shed) == (b.served, b.offered, b.shed)
        for r, v in zip(a.report.tenants, b.report.tenants):
            assert r.arrival_s.tobytes() == v.arrival_s.tobytes()
            assert r.completion_s.tobytes() == v.completion_s.tobytes()
            assert tuple(r.batches) == tuple(v.batches)
    emit(
        f"dominance grid workers=2: {len(serial.outcomes)} cells "
        f"byte-identical to serial"
    )
