"""Ablation — the paper's key scaling property (section V-B).

"Tconv ... is independent of the number of kernels.  This allows for
increasing the number of kernels without sacrificing execution time.
The only overhead ... is the allocation of more dedicated microrings per
kernel ... the number of microrings increase only linearly."
"""

import pytest
from conftest import emit

from repro.analysis import format_count, format_table, format_time, sweep_kernel_count
from repro.core.config import PCNNAConfig

KERNEL_COUNTS = [48, 96, 192, 384, 768, 1536]


def test_time_flat_rings_linear(benchmark, alexnet_specs):
    """Layer time flat in K; ring count exactly linear in K."""
    conv4 = alexnet_specs[3]
    points = benchmark(sweep_kernel_count, conv4, KERNEL_COUNTS)
    emit(
        format_table(
            ["K", "full-system time", "rings (eq. 5)"],
            [
                [int(p.parameter), format_time(p.full_system_time_s),
                 format_count(p.rings)]
                for p in points
            ],
            title="Ablation: kernel count, AlexNet conv4 geometry",
        )
    )
    times = {p.full_system_time_s for p in points}
    assert len(times) == 1  # Perfectly flat.
    for first, point in zip(points, points):
        pass
    base = points[0]
    for point in points[1:]:
        assert point.rings / base.rings == pytest.approx(
            point.parameter / base.parameter
        )


def test_bank_cap_breaks_flatness(benchmark, alexnet_specs):
    """With a finite bank budget the flat-K property degrades into
    ceil(K / banks) sequential passes — the real-hardware regime."""
    conv4 = alexnet_specs[3]
    config = PCNNAConfig(max_parallel_kernels=96)

    def sweep():
        return sweep_kernel_count(conv4, KERNEL_COUNTS, config)

    points = benchmark(sweep)
    emit(
        format_table(
            ["K", "full-system time (96 banks)"],
            [[int(p.parameter), format_time(p.full_system_time_s)] for p in points],
            title="Ablation: kernel count with a 96-bank budget",
        )
    )
    times = [p.full_system_time_s for p in points]
    # 48 and 96 kernels fit one pass; beyond that time scales with passes.
    assert times[0] == times[1]
    assert times[3] == pytest.approx(4 * times[1])
    assert times[5] == pytest.approx(16 * times[1])
