"""Table I — convolution-layer parameters, instantiated for AlexNet.

The paper's Table I defines the parameter nomenclature (n, m, p, s, nc,
Ninput, Noutput, Nkernel); this benchmark regenerates the table with the
actual values for every AlexNet conv layer and benchmarks the spec
computation itself.
"""

from conftest import emit

from repro.analysis import format_table
from repro.core.analytical import analyze_network
from repro.workloads import alexnet_conv_specs


def test_table1_parameter_table(benchmark, alexnet_specs):
    """Regenerate Table I's parameters for the AlexNet workload."""

    def build_rows():
        return [
            [
                spec.name,
                spec.n,
                spec.m,
                spec.p,
                spec.s,
                spec.nc,
                spec.num_kernels,
                spec.n_input,
                spec.n_kernel,
                spec.n_output,
                spec.n_locs,
            ]
            for spec in alexnet_specs
        ]

    rows = benchmark(build_rows)
    emit(
        format_table(
            [
                "layer", "n", "m", "p", "s", "nc", "K",
                "Ninput", "Nkernel", "Noutput", "Nlocs",
            ],
            rows,
            title="Table I (instantiated): AlexNet convolution-layer parameters",
        )
    )
    # The paper's worked values.
    by_name = {row[0]: row for row in rows}
    assert by_name["conv1"][7] == 150_528  # Ninput
    assert by_name["conv1"][8] == 363  # Nkernel
    assert by_name["conv4"][8] == 3456
    assert by_name["conv1"][10] == 3025  # Nlocs = 55^2


def test_table1_analysis_throughput(benchmark, alexnet_specs):
    """Benchmark the full analytical pipeline over the network."""
    analyses = benchmark(analyze_network, alexnet_specs)
    assert len(analyses) == 5
