"""Perf benchmark: batch-native electronic layers vs the per-image loop.

Times the electronic ops of each AlexNet block — max-pool, LRN, and the
whole ReLU→LRN→pool stage at the paper's feature-map shapes — at
batch=16, comparing the vectorized batch-native path
(``Layer.forward_batch``) against the pre-batching baseline: a per-image
Python loop whose pool iterates every output window and whose LRN
iterates every channel, exactly as the seed implementation did.

The asserted ≥5x floor gates *pooling*, the op the per-image loop made
the electronic bottleneck (thousands of per-window Python iterations per
minibatch).  The LRN baseline was already channel-blocked NumPy, so its
batched win is locality-dependent and reported ungated.  Outputs are
checked to agree before any timing is trusted.

Run with ``-s`` to see the recorded table.  Setting
``PCNNA_PERF_GATE=0`` keeps the run as a functional smoke test without
the speedup assertion (used by CI, whose shared runners have erratic
timing).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import LocalResponseNorm, MaxPool2D, ReLU
from conftest import emit

BATCH = 16
MIN_SPEEDUP = 5.0
PERF_GATED = os.environ.get("PCNNA_PERF_GATE", "1") != "0"

# AlexNet electronic stages: (name, feature-map shape the stage sees,
# whether the stage includes LRN).  relu/lrn/pool1 follows conv1
# (96 x 55 x 55), relu/lrn/pool2 follows conv2 (256 x 27 x 27),
# relu/pool5 follows conv5 (256 x 13 x 13).
ALEXNET_ELECTRONIC_STAGES = [
    ("stage1", (96, 55, 55), True),
    ("stage2", (256, 27, 27), True),
    ("stage5", (256, 13, 13), False),
]


def _max_pool2d_loop(feature_map: np.ndarray, pool: int, stride: int):
    """The seed per-window pooling loop (pre-batching baseline)."""
    channels, height, width = feature_map.shape
    out_h = (height - pool) // stride + 1
    out_w = (width - pool) // stride + 1
    output = np.empty((channels, out_h, out_w), dtype=feature_map.dtype)
    for oy in range(out_h):
        for ox in range(out_w):
            window = feature_map[
                :, oy * stride : oy * stride + pool, ox * stride : ox * stride + pool
            ]
            output[:, oy, ox] = window.max(axis=(1, 2))
    return output


def _lrn_loop(feature_map: np.ndarray, size=5, alpha=1e-4, beta=0.75, k=2.0):
    """The seed per-channel LRN loop (pre-batching baseline)."""
    channels = feature_map.shape[0]
    squared = feature_map.astype(float) ** 2
    half = size // 2
    denom = np.empty_like(squared)
    for channel in range(channels):
        lo = max(0, channel - half)
        hi = min(channels, channel + half + 1)
        denom[channel] = squared[lo:hi].sum(axis=0)
    return feature_map / (k + (alpha / size) * denom) ** beta


def _stage_loop(images: np.ndarray, with_lrn: bool) -> np.ndarray:
    """Per-image electronic stage, seed style."""
    outputs = []
    for image in images:
        current = np.maximum(image, 0.0)
        if with_lrn:
            current = _lrn_loop(current)
        outputs.append(_max_pool2d_loop(current, 3, 2))
    return np.stack(outputs)


def _stage_batched(images: np.ndarray, with_lrn: bool) -> np.ndarray:
    """Whole-minibatch electronic stage through the batch-native layers."""
    current = ReLU().forward_batch(images)
    if with_lrn:
        current = LocalResponseNorm().forward_batch(current)
    return MaxPool2D(3, stride=2).forward_batch(current)


def _time_best(fn, repeats: int) -> tuple[float, np.ndarray]:
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_batched_electronic_speedup_on_alexnet_batch16():
    rng = np.random.default_rng(0)
    rows = []
    pool_speedups = {}
    for name, shape, with_lrn in ALEXNET_ELECTRONIC_STAGES:
        images = rng.normal(size=(BATCH, *shape))

        F.max_pool2d(images, 3, 2)  # warm-up (allocator, code paths)
        pool_batched_s, pool_out = _time_best(
            lambda: F.max_pool2d(images, 3, 2), repeats=5
        )
        pool_loop_s, pool_loop_out = _time_best(
            lambda: np.stack([_max_pool2d_loop(i, 3, 2) for i in images]),
            repeats=2,
        )
        assert np.array_equal(pool_out, pool_loop_out), name
        pool_speedups[name] = pool_loop_s / pool_batched_s
        rows.append(
            (f"{name}/pool", shape, pool_loop_s, pool_batched_s)
        )

        if with_lrn:
            lrn_batched_s, lrn_out = _time_best(
                lambda: F.local_response_norm(images), repeats=5
            )
            lrn_loop_s, lrn_loop_out = _time_best(
                lambda: np.stack([_lrn_loop(i) for i in images]), repeats=2
            )
            assert np.allclose(
                lrn_out, lrn_loop_out, rtol=1e-12, atol=0.0
            ), name
            rows.append(
                (f"{name}/lrn", shape, lrn_loop_s, lrn_batched_s)
            )

        stage_batched_s, stage_out = _time_best(
            lambda: _stage_batched(images, with_lrn), repeats=3
        )
        stage_loop_s, stage_loop_out = _time_best(
            lambda: _stage_loop(images, with_lrn), repeats=1
        )
        assert np.allclose(
            stage_out, stage_loop_out, rtol=1e-12, atol=0.0
        ), name
        rows.append(
            (f"{name}/all", shape, stage_loop_s, stage_batched_s)
        )

    lines = [
        f"Batch-native electronic path, AlexNet stages, batch={BATCH}",
        f"{'op':<14}{'shape':<16}{'per-image (s)':>14}{'batched (s)':>13}"
        f"{'speedup':>9}",
    ]
    for name, shape, loop_s, batched_s in rows:
        lines.append(
            f"{name:<14}{str(shape):<16}{loop_s:>14.4f}{batched_s:>13.4f}"
            f"{loop_s / batched_s:>8.1f}x"
        )
    lines.append(
        f"(speedup floor {MIN_SPEEDUP}x gates pooling"
        f"{'' if PERF_GATED else '; not enforced: PCNNA_PERF_GATE=0'})"
    )
    emit("\n".join(lines))

    if PERF_GATED:
        for name, speedup in pool_speedups.items():
            assert speedup >= MIN_SPEEDUP, (
                f"{name}: batch-native pooling only {speedup:.1f}x faster "
                f"than the per-window loop (floor {MIN_SPEEDUP}x)"
            )


def test_functional_ops_match_loop_baselines_exactly():
    """The vectorized ops reproduce the seed loops on AlexNet shapes."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(96, 55, 55))
    assert np.array_equal(F.max_pool2d(x, 3, 2), _max_pool2d_loop(x, 3, 2))
    assert np.allclose(
        F.local_response_norm(x), _lrn_loop(x), rtol=1e-12, atol=0.0
    )
