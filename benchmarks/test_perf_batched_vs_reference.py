"""Perf benchmark: vectorized batched engine vs the reference wave loop.

Times both device-simulation engines on the LeNet-5 conv layers at
batch=16 — the minibatch serving scenario the vectorized engine exists
for — asserts the outputs stay bit-identical (ideal mode), and asserts
the vectorized engine is at least 5x faster.  Run with ``-s`` to see the
recorded table; future PRs extend it to track the perf trajectory.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.accelerator import PhotonicConvolution
from conftest import emit

BATCH = 16

# LeNet-5 conv layers: (name, input (C, H, W), kernels (K, C, m, m)).
LENET_CONV_LAYERS = [
    ("conv1", (1, 32, 32), (6, 1, 5, 5)),
    ("conv2", (6, 14, 14), (16, 6, 5, 5)),
]

MIN_SPEEDUP = 5.0


def _time_best(
    engine: PhotonicConvolution, x: np.ndarray, k: np.ndarray, repeats: int
):
    """Best-of-``repeats`` wall time; shields against cold-start noise."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = engine.convolve(x, k)
        best = min(best, time.perf_counter() - start)
    return best, out


def test_vectorized_speedup_on_lenet_batch16():
    rng = np.random.default_rng(0)
    vectorized = PhotonicConvolution(method="device", mode="vectorized")
    reference = PhotonicConvolution(method="device", mode="reference")

    rows = []
    for name, input_shape, kernel_shape in LENET_CONV_LAYERS:
        x = rng.normal(size=(BATCH, *input_shape))
        k = rng.normal(size=kernel_shape)
        # Warm-up pass keeps one-time NumPy/layer setup out of the timing.
        vectorized.convolve(x[:1], k)
        vec_time, vec_out = _time_best(vectorized, x, k, repeats=3)
        ref_time, ref_out = _time_best(reference, x, k, repeats=1)
        assert np.array_equal(vec_out, ref_out), name
        speedup = ref_time / vec_time
        rows.append((name, ref_time, vec_time, speedup))

    lines = [
        f"Batched photonic engine, LeNet-5 conv layers, batch={BATCH}",
        f"{'layer':<8}{'reference (s)':>15}{'vectorized (s)':>16}{'speedup':>10}",
    ]
    for name, ref_time, vec_time, speedup in rows:
        lines.append(
            f"{name:<8}{ref_time:>15.4f}{vec_time:>16.4f}{speedup:>9.1f}x"
        )
    total_ref = sum(row[1] for row in rows)
    total_vec = sum(row[2] for row in rows)
    lines.append(
        f"{'total':<8}{total_ref:>15.4f}{total_vec:>16.4f}"
        f"{total_ref / total_vec:>9.1f}x"
    )
    emit("\n".join(lines))

    for name, _, _, speedup in rows:
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: vectorized engine only {speedup:.1f}x faster than the "
            f"reference loop (floor {MIN_SPEEDUP}x)"
        )
