"""Fig. 5 — microrings per AlexNet conv layer, Filtered vs Not-Filtered.

Regenerates the figure's two series from equations (4) and (5), checks
the paper's worked examples (conv1: 5.2 B -> ~35 K, a >150 000x saving;
conv4 bank: 3456 rings = 2.2 mm^2), and prints the log-scale chart.
"""

import pytest
from conftest import emit

from repro.analysis import format_count, format_table, log_bar_chart
from repro.core.analytical import (
    bank_area_mm2,
    microrings_filtered,
    microrings_unfiltered,
    ring_savings_factor,
    rings_per_kernel_bank,
)


def test_fig5_ring_counts(benchmark, alexnet_specs):
    """Regenerate Fig. 5's Filtered / Not-Filtered series."""

    def compute_series():
        return {
            spec.name: (microrings_unfiltered(spec), microrings_filtered(spec))
            for spec in alexnet_specs
        }

    series = benchmark(compute_series)
    names = list(series)
    emit(
        log_bar_chart(
            {
                "Not-Filtered": [series[n][0] for n in names],
                "Filtered": [series[n][1] for n in names],
            },
            names,
            title="Fig. 5: microrings per AlexNet conv layer",
            unit="rings",
        )
    )
    emit(
        format_table(
            ["layer", "Not-Filtered (eq. 4)", "Filtered (eq. 5)", "savings"],
            [
                [
                    name,
                    format_count(series[name][0]),
                    format_count(series[name][1]),
                    f"{series[name][0] / series[name][1]:,.0f}x",
                ]
                for name in names
            ],
            title="Fig. 5 data",
        )
    )

    # Paper's worked numbers.
    assert series["conv1"][0] == pytest.approx(5.2e9, rel=1e-2)
    assert series["conv1"][1] == 34_848
    # Filtering always wins by the Ninput factor.
    for name in names:
        assert series[name][0] == series[name][1] * dict(
            (spec.name, spec.n_input) for spec in alexnet_specs
        )[name]


def test_fig5_conv1_savings_factor(benchmark, alexnet_specs):
    """Paper: 'a saving of more than 150k x' on conv1."""
    conv1 = alexnet_specs[0]
    savings = benchmark(ring_savings_factor, conv1)
    emit(f"conv1 ring saving from receptive-field filtering: {savings:,.0f}x")
    assert savings > 150_000


def test_fig5_conv4_bank_area(benchmark, alexnet_specs):
    """Paper: conv4's 3456-ring bank occupies ~2.2 mm^2."""
    conv4 = alexnet_specs[3]

    def bank_area():
        return bank_area_mm2(rings_per_kernel_bank(conv4))

    area = benchmark(bank_area)
    emit(f"conv4 single-bank area: {area:.2f} mm^2 (paper: 2.2 mm^2)")
    assert area == pytest.approx(2.2, rel=0.05)
