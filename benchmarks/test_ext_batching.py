"""Extension — batching and the weight-load amortization the paper omits.

The paper reports conv time only; loading a layer's K*Nkernel weights
through the single 6 GSa/s weight DAC takes hundreds of microseconds —
far more than the conv itself.  This benchmark quantifies the crossover
batch size and the sustained throughput.
"""

import pytest
from conftest import emit

from repro.analysis import format_table, format_time
from repro.core.batching import network_batch_timing, weight_stationary_crossover

BATCHES = [1, 4, 16, 64, 256, 1024]


def test_batch_sweep(benchmark, alexnet_specs):
    """Throughput vs batch size for the AlexNet conv stack."""

    def sweep():
        return [network_batch_timing(alexnet_specs, b) for b in BATCHES]

    timings = benchmark(sweep)
    emit(
        format_table(
            ["batch", "per-image latency", "throughput", "weight-load share"],
            [
                [
                    t.batch_size,
                    format_time(t.per_image_s),
                    f"{t.images_per_s:,.0f} img/s",
                    f"{t.weight_load_fraction:.1%}",
                ]
                for t in timings
            ],
            title="Extension: batching the AlexNet conv stack on PCNNA",
        )
    )
    # Weight-load share strictly decreases with batch size.
    shares = [t.weight_load_fraction for t in timings]
    assert all(a > b for a, b in zip(shares, shares[1:]))
    # Batch of 1 is dominated by weight loading.
    assert shares[0] > 0.9


def test_crossover_batch(benchmark, alexnet_specs):
    """Batch size where conv time first matches weight loading."""
    crossover = benchmark(weight_stationary_crossover, alexnet_specs)
    emit(
        f"weight-stationary crossover batch for AlexNet: {crossover} images\n"
        "(below this, the single weight DAC — not eq. 8 — limits PCNNA)"
    )
    assert 10 < crossover < 100


def test_amortized_latency_approaches_paper_numbers(benchmark, alexnet_specs):
    """At large batch, per-image latency converges to the Fig. 6 total."""
    from repro.core.analytical import full_system_time_s

    timing = benchmark(network_batch_timing, alexnet_specs, 4096)
    paper_total = sum(full_system_time_s(s) for s in alexnet_specs)
    emit(
        f"amortized per-image latency at batch 4096: "
        f"{format_time(timing.per_image_s)} "
        f"(paper's conv-only total: {format_time(paper_total)})"
    )
    assert timing.per_image_s == pytest.approx(paper_total, rel=0.02)
