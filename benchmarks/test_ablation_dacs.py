"""Ablation — input-DAC count (the paper's N_DAC = 10 design choice).

Eq. 8 makes the full-system time inversely proportional to the DAC count
until the 5 GHz optical clock becomes the floor; this sweep quantifies
where the knee sits for the largest AlexNet layer.
"""

import pytest
from conftest import emit

from repro.analysis import format_table, format_time, sweep_num_dacs
from repro.core.analytical import optical_core_time_s

DAC_COUNTS = [1, 2, 5, 10, 20, 50, 100, 576, 1000, 10_000]


def test_dac_count_sweep(benchmark, alexnet_specs):
    """Full-system time falls as 1/N_DAC, then hits the optical floor."""
    conv4 = alexnet_specs[3]
    points = benchmark(sweep_num_dacs, conv4, DAC_COUNTS)
    emit(
        format_table(
            ["N_DAC", "full-system time", "vs optical core"],
            [
                [
                    int(p.parameter),
                    format_time(p.full_system_time_s),
                    f"{p.full_system_time_s / p.optical_time_s:.1f}x",
                ]
                for p in points
            ],
            title="Ablation: input-DAC count, AlexNet conv4",
        )
    )

    times = [p.full_system_time_s for p in points]
    # Monotone non-increasing in the DAC count.
    assert all(a >= b for a, b in zip(times, times[1:]))
    # 1 -> 10 DACs is a ~10x gain (pure eq. 8 regime).
    assert times[0] / times[3] == pytest.approx(10.0, rel=1e-6)
    # With enough DACs the optical core is the floor.
    floor = optical_core_time_s(conv4)
    assert times[-1] == pytest.approx(floor)


def test_paper_choice_near_knee(benchmark, alexnet_specs):
    """With 10 DACs, conv4 is still ~100x off the optical floor — the
    paper's choice trades DAC area against the eq. 8 serialization."""
    conv4 = alexnet_specs[3]

    def gap_at_ten():
        point = sweep_num_dacs(conv4, [10])[0]
        return point.full_system_time_s / point.optical_time_s

    gap = benchmark(gap_at_ten)
    emit(f"conv4 at N_DAC=10: full system is {gap:.0f}x the optical core")
    assert 50 < gap < 150
