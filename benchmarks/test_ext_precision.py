"""Extension — analog precision of the optical MAC (link-budget / ENOB).

The paper pairs the optical core with 16-bit converters; this analysis
asks what precision the *analog optics* can actually deliver.  SNR falls
as the broadcast splits over more banks (K kernels), so effective bits
fall with K — the physical scalability limit behind the paper's
"allocation of more dedicated microrings per kernel" trade.
"""

import pytest
from conftest import emit

from repro.analysis import format_table
from repro.photonics.calibration import calibrate_bank
from repro.photonics.link_budget import LinkBudget, max_banks_for_bits

BANK_COUNTS = [1, 8, 32, 96, 384, 1536]


def test_enob_vs_bank_count(benchmark, alexnet_specs):
    """Effective bits vs K for the conv1-sized link (363 channels)."""
    conv1 = alexnet_specs[0]
    budget = LinkBudget(num_channels=conv1.n_kernel)

    def sweep():
        return [budget.scaled_to_banks(k).effective_bits for k in BANK_COUNTS]

    bits = benchmark(sweep)
    emit(
        format_table(
            ["banks (K)", "SNR (dB)", "effective bits"],
            [
                [
                    k,
                    f"{budget.scaled_to_banks(k).snr_db:.1f}",
                    f"{b:.2f}",
                ]
                for k, b in zip(BANK_COUNTS, bits)
            ],
            title="Extension: analog MAC precision vs parallel kernels "
            "(conv1 link, 363 channels, 0 dBm/channel)",
        )
    )
    assert all(a > b for a, b in zip(bits, bits[1:]))
    # At the paper's K = 96 the link still delivers > 6 bits.
    assert bits[3] > 6.0


def test_scalability_limits(benchmark, alexnet_specs):
    """Largest K per AlexNet layer at 4/6/8-bit targets."""
    rows = []

    def compute():
        rows.clear()
        for spec in alexnet_specs:
            budget = LinkBudget(num_channels=spec.n_kernel)
            limits = []
            for bits in (4.0, 6.0, 8.0):
                try:
                    limits.append(max_banks_for_bits(budget, bits))
                except ValueError:
                    limits.append(0)
            rows.append([spec.name, spec.num_kernels] + limits)
        return rows

    benchmark(compute)
    emit(
        format_table(
            ["layer", "paper K", "max K @4b", "max K @6b", "max K @8b"],
            rows,
            title="Extension: broadcast scalability limit per layer",
        )
    )
    for row in rows:
        # Every layer's paper-К is feasible at 4-bit analog precision.
        assert row[2] >= row[1], row[0]


def test_calibration_restores_precision(benchmark):
    """Closed-loop calibration removes static crosstalk error (~1e-2 ->
    ~1e-6), recovering ~13 bits of weight accuracy."""
    import numpy as np

    from repro.photonics.microring import MicroringDesign
    from repro.photonics.noise import NoiseConfig
    from repro.photonics.wdm import WdmGrid
    from repro.photonics.weight_bank import WeightBank

    def calibrate():
        noise = NoiseConfig(
            enabled=True, shot_noise=False, thermal_noise=False,
            crosstalk=True, seed=0,
        )
        bank = WeightBank(
            WdmGrid(16), MicroringDesign(quality_factor=20_000), noise
        )
        target = np.linspace(-0.8, 0.8, 16)
        return calibrate_bank(bank, target)

    result = benchmark.pedantic(calibrate, rounds=2, iterations=1)
    emit(
        "closed-loop bank calibration: "
        f"open-loop error {result.initial_residual:.2e} -> "
        f"{result.residual:.2e} in {result.iterations} iterations "
        f"({result.improvement:,.0f}x improvement)"
    )
    assert result.converged
    assert result.improvement > 1_000
