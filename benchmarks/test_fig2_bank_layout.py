"""Fig. 2 — MRR bank for a 16x16 input and five 3x3 kernels, with and
without receptive-field filtering.

The figure's point is visual: filtering shrinks each kernel's bank from
one-ring-per-input-value (256) to one-ring-per-receptive-field-value (9).
This benchmark regenerates the counts and the functional behaviour: the
filtered bank computes the same convolution output.
"""

import numpy as np
from conftest import emit

from repro.analysis import format_table
from repro.core.accelerator import PhotonicConvolution
from repro.core.mapping import fig2_ring_counts, map_layer
from repro.nn import functional as F
from repro.nn.shapes import ConvLayerSpec


def test_fig2_ring_counts(benchmark):
    """Regenerate the Fig. 2 ring-count comparison."""
    counts = benchmark(fig2_ring_counts)
    emit(
        format_table(
            ["variant", "rings per kernel", "total rings (5 kernels)"],
            [
                ["(a) not filtered", counts.rings_per_kernel_unfiltered,
                 counts.total_unfiltered],
                ["(b) filtered", counts.rings_per_kernel_filtered,
                 counts.total_filtered],
            ],
            title="Fig. 2: 16x16 input feature map, five 3x3 kernels",
        )
    )
    assert counts.rings_per_kernel_unfiltered == 256
    assert counts.rings_per_kernel_filtered == 9
    assert counts.total_filtered == 45


def test_fig2_mapping_objects(benchmark):
    """The layer mapping materializes the same counts."""
    spec = ConvLayerSpec("fig2", n=16, m=3, nc=1, num_kernels=5)
    mapping = benchmark(map_layer, spec)
    assert mapping.rings_per_bank == 9
    assert mapping.total_rings == 45
    assert len(mapping.banks) == 5


def test_fig2_filtered_bank_computes_the_convolution(benchmark):
    """Filtering loses nothing: the 9-ring banks produce the exact conv."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 16, 16))
    k = rng.normal(size=(5, 1, 3, 3))
    engine = PhotonicConvolution(method="device")

    photonic = benchmark.pedantic(
        engine.convolve, args=(x, k), rounds=1, iterations=1
    )
    reference = F.conv2d(x, k)
    max_err = float(np.max(np.abs(photonic - reference)))
    emit(f"Fig. 2 functional check: photonic vs reference max |error| = {max_err:.2e}")
    assert max_err < 1e-9
