"""Extension — validating the timing models against each other.

Three independent implementations of PCNNA's layer time exist in this
repository: the paper's closed form (eq. 7/8), the per-location max()
pipeline model, and an exact discrete-event simulation.  This benchmark
runs all three on every AlexNet layer and shows the error ladder —
evidence that the reproduction's numbers are not an artifact of one
model's assumptions.
"""

import pytest
from conftest import emit

from repro.analysis import format_table, format_time
from repro.core.analytical import full_system_time_s
from repro.core.config import paper_assumptions
from repro.core.pipeline import simulate_pipeline
from repro.core.timing import simulate_layer


def test_three_model_ladder(benchmark, alexnet_specs):
    """analytical <= discrete-event <= max-model, all within ~25 %."""
    config = paper_assumptions()

    def compute():
        rows = []
        for spec in alexnet_specs:
            analytical = full_system_time_s(spec, config)
            exact = simulate_pipeline(spec, config, include_adc=False).makespan_s
            approx = simulate_layer(
                spec, config, include_adc=False
            ).pipelined_time_s
            rows.append((spec.name, analytical, exact, approx))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        format_table(
            ["layer", "analytical (eq. 8)", "discrete-event", "max-model",
             "DE/analytical", "max/DE"],
            [
                [
                    name,
                    format_time(analytical),
                    format_time(exact),
                    format_time(approx),
                    f"{exact / analytical:.3f}",
                    f"{approx / exact:.3f}",
                ]
                for name, analytical, exact, approx in rows
            ],
            title="Timing-model validation ladder (paper memory assumptions)",
        )
    )
    for name, analytical, exact, approx in rows:
        assert analytical <= exact * 1.001, name       # closed form is a floor
        assert exact <= approx * 1.001, name           # max-model is a ceiling
        assert approx / analytical < 1.25, name        # all within 25 %


def test_pipeline_utilization(benchmark, alexnet_specs):
    """The bottleneck stage saturates; everything else idles."""
    config = paper_assumptions()
    conv4 = alexnet_specs[3]
    result = benchmark.pedantic(
        simulate_pipeline,
        args=(conv4, config),
        kwargs={"include_adc": False},
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["stage", "utilization"],
            [
                [name, f"{util:.1%}"]
                for name, util in zip(
                    ("fetch", "convert", "compute", "digitize"),
                    result.stage_utilization,
                )
            ],
            title="conv4 pipeline stage utilization (DAC-bound regime)",
        )
    )
    assert result.stage_utilization[1] > 0.95   # DACs saturated.
    assert result.stage_utilization[2] < 0.05   # Optics nearly idle.
