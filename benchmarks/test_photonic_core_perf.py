"""Microbenchmarks of the simulation engines themselves.

Not a paper artifact: these track the reproduction's own performance so
regressions in the device simulation or the functional conv engine are
visible (the device path simulates every ring, laser, and detector).
"""

import numpy as np

from repro.core.accelerator import PhotonicConvolution
from repro.core.scheduler import LayerSchedule
from repro.core.timing import simulate_layer
from repro.core.config import paper_assumptions
from repro.photonics.broadcast_weight import BroadcastAndWeightLayer
from repro.workloads import alexnet_layer


def test_perf_photonic_mac_wave(benchmark):
    """One optical MAC wave: 27-input receptive field, 8 kernels."""
    rng = np.random.default_rng(0)
    layer = BroadcastAndWeightLayer(27, 8)
    layer.set_weight_matrix(rng.uniform(-1, 1, (8, 27)))
    x = rng.uniform(0, 1, 27)
    result = benchmark(layer.compute, x)
    assert result.shape == (8,)


def test_perf_functional_conv_matrix(benchmark):
    """Matrix-mode photonic conv on a 32x32x8 input, 16 kernels."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(8, 32, 32))
    k = rng.normal(size=(16, 8, 3, 3))
    engine = PhotonicConvolution(method="matrix")
    out = benchmark(engine.convolve, x, k)
    assert out.shape == (16, 30, 30)


def test_perf_functional_conv_device(benchmark):
    """Device-mode photonic conv on a small layer (full device stack)."""
    rng = np.random.default_rng(2)
    x = rng.normal(size=(2, 10, 10))
    k = rng.normal(size=(4, 2, 3, 3))
    engine = PhotonicConvolution(method="device")
    out = benchmark.pedantic(engine.convolve, args=(x, k), rounds=2, iterations=1)
    assert out.shape == (4, 8, 8)


def test_perf_scheduler_conv1(benchmark):
    """Schedule generation for the largest-location AlexNet layer."""
    spec = alexnet_layer("conv1")

    def build_and_walk():
        schedule = LayerSchedule(spec)
        return schedule.total_values_loaded()

    total = benchmark.pedantic(build_and_walk, rounds=2, iterations=1)
    assert total > 0


def test_perf_cycle_sim_conv3(benchmark):
    """Cycle-level simulation of AlexNet conv3."""
    spec = alexnet_layer("conv3")
    result = benchmark.pedantic(
        simulate_layer,
        args=(spec, paper_assumptions()),
        rounds=2,
        iterations=1,
    )
    assert result.pipelined_time_s > 0
