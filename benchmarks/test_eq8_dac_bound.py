"""Equation (8) — the DAC bottleneck worked example.

Paper: for the largest AlexNet layer (conv4: nc=384, m=3, s=1) with 10
input DACs, each DAC converts ~116 values per kernel location, making the
16 b / 6 GSa/s DAC the full-system speed constraint.
"""

import pytest
from conftest import emit

from repro.analysis import format_table, format_time
from repro.core.analytical import (
    dac_updates_per_location,
    per_location_adc_time_s,
    per_location_dac_time_s,
)
from repro.core.config import PCNNAConfig
from repro.electronics.dac import DacArray


def test_eq8_conv4_updates(benchmark, alexnet_specs):
    """Reproduce the '384 * 3 * 1 / 10 ~ 116' worked example."""
    conv4 = alexnet_specs[3]
    updates = benchmark(dac_updates_per_location, conv4)
    emit(
        f"eq. 8 for conv4: nc*m*s / N_DAC = 384*3*1 / 10 = {updates:.1f} "
        "values per DAC per location (paper: ~116)"
    )
    assert updates == pytest.approx(115.2)


def test_eq8_per_location_times(benchmark, alexnet_specs):
    """Per-location stage times for every layer: the DAC dominates the
    optical cycle everywhere (the paper's bottleneck claim)."""
    config = PCNNAConfig()

    def compute_rows():
        rows = []
        for spec in alexnet_specs:
            dac = per_location_dac_time_s(spec, config)
            adc = per_location_adc_time_s(spec, config)
            rows.append([spec.name, dac, adc, config.fast_clock_period_s])
        return rows

    rows = benchmark(compute_rows)
    emit(
        format_table(
            ["layer", "DAC time/loc", "ADC time/loc", "optical cycle"],
            [
                [name, format_time(dac), format_time(adc), format_time(cycle)]
                for name, dac, adc, cycle in rows
            ],
            title="Per-location stage times (paper config)",
        )
    )
    for name, dac, adc, cycle in rows:
        assert dac > cycle, f"{name}: DAC must dominate the optical cycle"


def test_eq8_dac_array_scheduling(benchmark, alexnet_specs):
    """The discrete DAC array schedule matches eq. 8 within the ceiling."""
    conv4 = alexnet_specs[3]
    array = DacArray(10)
    conversion = benchmark(array.schedule, conv4.stride_update_values)
    assert conversion.per_dac_values == 116  # ceil(115.2)
    assert conversion.time_s == pytest.approx(116 / 6e9)
