"""Extension — energy per inference: PCNNA vs Eyeriss vs YodaNN.

The paper motivates photonics with "low power consumption" but reports
no energy numbers.  This benchmark rolls up PCNNA's component powers
(lasers, ring heaters, DACs/ADCs, SRAM, DRAM traffic) over the DAC-bound
layer times and compares against the electronic baselines'
energy-per-MAC models.
"""

import pytest
from conftest import emit

from repro.analysis import format_table
from repro.baselines import EyerissModel, YodaNNModel
from repro.core.power import estimate_layer_power, estimate_network_energy_j


def _format_energy(joules: float) -> str:
    for scale, unit in [(1.0, "J"), (1e-3, "mJ"), (1e-6, "uJ"), (1e-9, "nJ")]:
        if joules >= scale:
            return f"{joules / scale:.3g} {unit}"
    return f"{joules / 1e-12:.3g} pJ"


def test_energy_per_layer(benchmark, alexnet_specs):
    """Per-layer conv energy for all three accelerators."""
    eyeriss = EyerissModel()
    yodann = YodaNNModel()

    def compute_rows():
        rows = []
        for spec in alexnet_specs:
            pcnna = estimate_layer_power(spec)
            rows.append(
                [
                    spec.name,
                    pcnna.layer_energy_j,
                    yodann.layer_energy_j(spec),
                    eyeriss.layer_energy_j(spec),
                ]
            )
        return rows

    rows = benchmark(compute_rows)
    emit(
        format_table(
            ["layer", "PCNNA", "YodaNN", "Eyeriss"],
            [
                [name] + [_format_energy(e) for e in energies]
                for name, *energies in rows
            ],
            title="Extension: conv energy per inference",
        )
    )
    # Finding (recorded in EXPERIMENTS.md): PCNNA wins on latency but NOT
    # uniformly on energy — with all K banks live, ring heater power
    # (~1 mW x K x Nkernel rings) makes the ring-heavy layers (conv4:
    # 1.33 M rings = 1.3 kW) comparable to or worse than Eyeriss, while
    # the ring-light conv1 is ~4x cheaper.  The paper's "low power"
    # motivation holds only with bank-count caps or lower heater budgets.
    by_name = {row[0]: row for row in rows}
    assert by_name["conv1"][1] < by_name["conv1"][3]      # conv1: PCNNA wins
    assert by_name["conv4"][1] > by_name["conv4"][2]      # never beats YodaNN


def test_power_breakdown_conv4(benchmark, alexnet_specs):
    """Where PCNNA's power goes on its biggest layer."""
    conv4 = alexnet_specs[3]
    report = benchmark(estimate_layer_power, conv4)
    emit(
        format_table(
            ["component", "power"],
            [
                ["lasers", f"{report.laser_w:.2f} W"],
                ["ring heaters", f"{report.tuning_w:.2f} W"],
                ["DACs", f"{report.dac_w:.2f} W"],
                ["ADCs", f"{report.adc_w:.3f} W"],
                ["SRAM", f"{report.sram_w:.4f} W"],
                ["receivers", f"{report.receiver_w:.2f} W"],
                ["total", f"{report.total_power_w:.2f} W"],
            ],
            title="Extension: PCNNA power breakdown, conv4 (384 banks live)",
        )
    )
    # Ring thermal tuning dominates with 1.3 M live rings at ~1 mW each —
    # the hidden cost of the paper's full-parallel-K mapping.
    assert report.tuning_w > report.laser_w
    assert report.tuning_w > report.dac_w


def test_network_energy_totals(benchmark, alexnet_specs):
    """Whole conv stack energy, PCNNA vs baselines."""
    eyeriss = EyerissModel()
    yodann = YodaNNModel()

    def totals():
        pcnna = estimate_network_energy_j(alexnet_specs)
        eyeriss_total = sum(
            eyeriss.layer_energy_j(spec) for spec in alexnet_specs
        )
        yodann_total = sum(yodann.layer_energy_j(spec) for spec in alexnet_specs)
        return pcnna, yodann_total, eyeriss_total

    pcnna, yodann_total, eyeriss_total = benchmark(totals)
    emit(
        "AlexNet conv-stack energy per inference:\n"
        f"  PCNNA:   {_format_energy(pcnna)}\n"
        f"  YodaNN:  {_format_energy(yodann_total)}\n"
        f"  Eyeriss: {_format_energy(eyeriss_total)}"
    )
    assert pcnna < eyeriss_total
