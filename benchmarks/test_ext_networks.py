"""Extension — PCNNA analytics on networks beyond the paper's AlexNet.

The paper motivates PCNNA with "current CNNs comprise of tens ... of
layers"; this extension applies the full analytical pipeline to VGG-16
and LeNet-5 and checks the conclusions generalize: filtering savings of
Ninput on every layer, and multi-order speedups over the Eyeriss
analytical model.
"""

import pytest
from conftest import emit

from repro.analysis import format_count, format_table, format_time
from repro.baselines import EyerissModel
from repro.core.analytical import (
    analyze_network,
    full_system_time_s,
    network_totals,
)
from repro.workloads import lenet5_conv_specs, vgg16_conv_specs


def test_vgg16_analytics(benchmark):
    """Full analytical pipeline over VGG-16's thirteen conv layers."""
    specs = vgg16_conv_specs()
    analyses = benchmark(analyze_network, specs)
    eyeriss = EyerissModel()
    emit(
        format_table(
            ["layer", "rings (eq. 5)", "PCNNA(O+E)", "Eyeriss (model)", "speedup"],
            [
                [
                    a.name,
                    format_count(a.rings_filtered),
                    format_time(a.full_system_time_s),
                    format_time(eyeriss.layer_time_s(a.spec)),
                    f"{eyeriss.layer_time_s(a.spec) / a.full_system_time_s:,.0f}x",
                ]
                for a in analyses
            ],
            title="Extension: VGG-16 on PCNNA",
        )
    )
    for analysis in analyses:
        assert analysis.ring_savings == analysis.spec.n_input
        speedup = eyeriss.layer_time_s(analysis.spec) / analysis.full_system_time_s
        assert speedup > 100, analysis.name


def test_vgg16_network_totals(benchmark):
    """VGG-16's whole conv stack finishes in well under a millisecond."""
    totals = benchmark(lambda: network_totals(analyze_network(vgg16_conv_specs())))
    emit(
        f"VGG-16 conv stack on PCNNA(O+E): {format_time(totals['full_system_time_s'])} "
        f"({format_count(totals['macs'])} MACs)"
    )
    assert totals["full_system_time_s"] < 1e-3
    # VGG-16 convs are ~15.3 G MACs.
    assert totals["macs"] == pytest.approx(15.3e9, rel=0.05)


def test_lenet5_analytics(benchmark):
    """LeNet-5: small layers hit the optical-clock floor, not the DAC."""
    specs = lenet5_conv_specs()
    analyses = benchmark(analyze_network, specs)
    emit(
        format_table(
            ["layer", "rings", "PCNNA(O)", "PCNNA(O+E)"],
            [
                [
                    a.name,
                    format_count(a.rings_filtered),
                    format_time(a.optical_time_s),
                    format_time(a.full_system_time_s),
                ]
                for a in analyses
            ],
            title="Extension: LeNet-5 on PCNNA",
        )
    )
    # conv1 (nc=1, m=5): 5 values/step over 10 DACs -> optical floor.
    conv1 = analyses[0]
    assert conv1.full_system_time_s == pytest.approx(conv1.optical_time_s)


def test_googlenet_analytics(benchmark):
    """GoogLeNet's 58 convs (inception branches flattened) on PCNNA."""
    from repro.workloads import googlenet_conv_specs

    specs = googlenet_conv_specs()
    totals = benchmark(lambda: network_totals(analyze_network(specs)))
    emit(
        f"GoogLeNet: {len(specs)} conv layer requests, "
        f"{format_count(totals['macs'])} MACs, conv stack "
        f"{format_time(totals['full_system_time_s'])} on PCNNA(O+E)"
    )
    assert len(specs) == 3 + 9 * 6  # stem + inception branch convs
    assert totals["full_system_time_s"] < 200e-6


def test_largest_vgg_layer_ring_budget(benchmark):
    """The ring budget for VGG's widest mapping stays below AlexNet's
    worst case per bank but exceeds it in total banks."""
    specs = vgg16_conv_specs()

    def worst():
        analyses = analyze_network(specs)
        return max(analyses, key=lambda a: a.rings_filtered)

    worst_layer = benchmark(worst)
    emit(
        f"largest VGG-16 mapping: {worst_layer.name} with "
        f"{format_count(worst_layer.rings_filtered)} rings "
        f"({worst_layer.layer_rings_area_mm2:,.0f} mm^2 of rings)"
    )
    assert worst_layer.rings_filtered == 512 * 9 * 512
