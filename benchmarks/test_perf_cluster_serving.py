"""Perf gates for the unified kernel and the multi-tenant cluster.

Two kinds of guarantee:

* **Wall time** — the kernel extraction is indirection (contexts,
  plugin hooks) layered over the PR 3/PR 4 event loop, so this file
  pins its cost: the kernel-based simulator must stay within 1.1x of a
  verbatim inline copy of the pre-kernel loop on a soak-scale trace,
  and the two must agree bit-for-bit.  Wall-clock floors are enforced
  in local runs; ``PCNNA_PERF_GATE=0`` (CI) keeps the comparison as a
  bit-identity smoke test without the timing assertion.

* **Simulated time** — deterministic under the fixed trace seeds, so
  asserted on any machine: weighted-fair routing keeps the minority
  tenant's p99 *bit-identical to running alone* while a 10x-load
  neighbour saturates the pool and sheds its overload.

The ``slow``-marked soak streams every named tenant mix across pool
sizes; it is excluded from the default run (see ``pyproject.toml``)
and executed in CI's benchmark smoke step.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis import CLUSTER_SWEEP_HEADER, format_table, sweep_cluster_serving
from repro.core.cluster import (
    ClusterTenant,
    ElasticReallocation,
    simulate_cluster_serving,
)
from repro.core.simkernel import (
    BatchingPolicy,
    BatchRecord,
    plan_dispatch,
)
from repro.core.traffic import PipelineServiceModel, ServingSimulator
from repro.workloads import (
    CLUSTER_MIXES,
    cluster_mix,
    lenet5_conv_specs,
    poisson_arrivals,
)
from conftest import emit

PERF_GATED = os.environ.get("PCNNA_PERF_GATE", "1") != "0"
KERNEL_RATIO_CEILING = 1.1
SOAK_REQUESTS = 40_000
TIMING_REPEATS = 5


def _inline_pr3_loop(model, policy, arrivals):
    """A verbatim copy of the pre-kernel ServingSimulator event loop.

    The reference the wall-time gate compares against: same
    ``plan_dispatch``, same pipeline-walk floats, no context or hook
    indirection.
    """
    num_requests = arrivals.size
    num_cores = model.num_cores
    core_free = [0.0] * num_cores
    core_busy = [0.0] * num_cores
    dispatch_s = np.empty(num_requests)
    completion_s = np.empty(num_requests)
    batches = []
    head = 0
    while head < num_requests:
        dispatch, size = plan_dispatch(arrivals, head, policy, core_free[0])
        start = dispatch
        for core in range(num_cores):
            begun = max(start, core_free[core])
            busy = model.core_busy_s(core, size)
            start = begun + busy
            core_free[core] = start
            core_busy[core] += busy
        batches.append(
            BatchRecord(
                index=len(batches),
                first_request=head,
                size=size,
                dispatch_s=dispatch,
                completion_s=start,
            )
        )
        dispatch_s[head : head + size] = dispatch
        completion_s[head : head + size] = start
        head += size
    return completion_s, tuple(batches)


def _best_of(function, repeats=TIMING_REPEATS):
    """Minimum wall time over repeats (noise-robust) plus the result."""
    result = None
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - began)
    return best, result


def test_kernel_refactor_within_1p1x_of_inline_loop(alexnet_specs):
    """The PR 4-style soak through the kernel: bit-identical to the
    inline pre-kernel loop and (when gated) within 1.1x of its wall
    time.  FIFO at 4x capacity maximizes the per-batch loop overhead
    (one dispatch per request), the worst case for the refactor."""
    model = PipelineServiceModel.from_specs(alexnet_specs, 4)
    policy = BatchingPolicy.fifo()
    arrivals = poisson_arrivals(
        4.0 * model.capacity_rps(1), SOAK_REQUESTS, seed=13
    )

    inline_s, (inline_completions, inline_batches) = _best_of(
        lambda: _inline_pr3_loop(model, policy, arrivals)
    )
    kernel_s, report = _best_of(
        lambda: ServingSimulator(model, policy).run(arrivals)
    )

    assert np.array_equal(report.completion_s, inline_completions)
    assert report.batches == inline_batches

    ratio = kernel_s / inline_s
    emit(
        f"{SOAK_REQUESTS}-request FIFO soak: inline loop {inline_s:.3f} s, "
        f"unified kernel {kernel_s:.3f} s -> {ratio:.2f}x "
        f"(ceiling {KERNEL_RATIO_CEILING}x"
        f"{'' if PERF_GATED else '; not enforced: PCNNA_PERF_GATE=0'})"
    )
    if PERF_GATED:
        assert ratio <= KERNEL_RATIO_CEILING


def test_weighted_fair_bounds_minority_p99_under_10x_load():
    """The routing guarantee, in simulated time: while the majority
    tenant offers ~2x the pool's capacity and sheds the excess, the
    minority tenant's whole latency distribution is bit-identical to
    serving alone on its guaranteed share."""
    specs = tuple(lenet5_conv_specs())
    single = PipelineServiceModel.from_specs(list(specs), 1)
    majority_rate = 2.0 * single.capacity_rps(16)
    minority_rate = majority_rate / 10.0

    majority = ClusterTenant(
        "majority",
        specs,
        BatchingPolicy.dynamic(16, 1e-3),
        queue_cap=128,
    )
    minority = ClusterTenant(
        "minority", specs, BatchingPolicy.dynamic(4, 1e-4)
    )
    arrivals = {
        "majority": poisson_arrivals(majority_rate, 20_000, seed=11),
        "minority": poisson_arrivals(minority_rate, 2_000, seed=12),
    }
    report = simulate_cluster_serving(
        [majority, minority],
        arrivals,
        pool_size=2,
        elastic=ElasticReallocation(),
    )
    heavy = report.tenant("majority")
    light = report.tenant("minority")

    # The majority saturates its share and sheds the overload...
    assert heavy.shed_fraction > 0.3
    assert heavy.p99_s < 0.1  # bounded by admission control, not horizon
    # ...while weighted-fair keeps the minority's core untouched: its
    # run is bit-identical to having the share to itself.
    alone = simulate_cluster_serving(
        [minority], {"minority": arrivals["minority"]}, pool_size=1
    ).tenant("minority")
    assert np.array_equal(light.completion_s, alone.completion_s)
    assert light.p99_s == alone.p99_s
    assert light.num_shed == 0
    assert np.all(light.batch_num_cores == 1)

    emit(
        f"10x noisy neighbour on a 2-core pool: majority served "
        f"{heavy.num_requests}/{heavy.num_offered} "
        f"(shed {heavy.shed_fraction:.0%}, p99 "
        f"{heavy.p99_s * 1e6:.0f} us); minority p99 "
        f"{light.p99_s * 1e6:.0f} us, bit-identical to serving alone"
    )


@pytest.mark.slow
def test_soak_every_mix_across_pool_sizes():
    """Cluster soak: every named mix, three pool sizes, conservation
    and causality over long horizons."""
    rows = []
    for name in CLUSTER_MIXES:
        tenants, arrivals = cluster_mix(name, 50_000.0, 30_000, seed=13)
        pools = [len(tenants), len(tenants) + 2, len(tenants) * 3]
        points = sweep_cluster_serving(
            tenants, arrivals, pools, elastic=ElasticReallocation()
        )
        for point in points:
            for sub in point.report.tenants:
                assert sub.num_requests + sub.num_shed == sub.num_offered
                assert np.all(sub.dispatch_s >= sub.arrival_s)
                assert np.all(sub.completion_s > sub.dispatch_s)
                assert np.isfinite(sub.latencies_s).all()
            rows.extend(
                [name, *row] for row in point.rows()
            )
    emit(
        format_table(
            ["mix", *CLUSTER_SWEEP_HEADER],
            rows,
            title="cluster soak: tenant mix x pool size",
        )
    )
