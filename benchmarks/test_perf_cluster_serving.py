"""Perf gates for the unified kernel and the multi-tenant cluster.

Two kinds of guarantee:

* **Wall time** — the kernel extraction is indirection (contexts,
  plugin hooks) layered over the PR 3/PR 4 event loop, so this file
  pins its cost: the kernel-based simulator must stay within 1.1x of a
  verbatim inline copy of the pre-kernel loop on a soak-scale trace,
  and the two must agree bit-for-bit.  Wall-clock floors are enforced
  in local runs; ``PCNNA_PERF_GATE=0`` (CI) keeps the comparison as a
  bit-identity smoke test without the timing assertion.

* **Simulated time** — deterministic under the fixed trace seeds, so
  asserted on any machine: weighted-fair routing keeps the minority
  tenant's p99 *bit-identical to running alone* while a 10x-load
  neighbour saturates the pool and sheds its overload.

The mix x pool soak streams every named tenant mix across pool sizes;
since PR 10's frozen-allocation fast path it runs at CI speed and sits
in the default suite (it was ``slow``-marked while every cluster run
crawled through the per-event loop).  This file also writes the
``BENCH_cluster.json`` trajectory at the repository root: multi-tenant
soak req/s in reference vs vectorized mode (bit-identity asserted
unconditionally before timing), and policy-grid cells/s serial vs
process-parallel (byte-equality asserted unconditionally).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import (
    CLUSTER_SWEEP_HEADER,
    default_policy_grid,
    default_scenarios,
    evaluate_policy_grid,
    format_table,
    sweep_cluster_serving,
)
from repro.core.cluster import (
    ClusterTenant,
    ElasticReallocation,
    simulate_cluster_serving,
)
from repro.core.simkernel import (
    BatchingPolicy,
    BatchRecord,
    plan_dispatch,
)
from repro.core.traffic import PipelineServiceModel, ServingSimulator
from repro.workloads import (
    CLUSTER_MIXES,
    cluster_mix,
    lenet5_conv_specs,
    poisson_arrivals,
)
from conftest import emit

PERF_GATED = os.environ.get("PCNNA_PERF_GATE", "1") != "0"
KERNEL_RATIO_CEILING = 1.1
SOAK_REQUESTS = 40_000
TIMING_REPEATS = 5

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"
SOAK_RATE_RPS = 50_000.0
SOAK_MIX_REQUESTS = 30_000
VECTORIZED_SPEEDUP_FLOOR = 10.0  # aggregate req/s, vectorized over reference
GRID_WORKERS = 4
GRID_SPEEDUP_FLOOR = 2.0  # cells/s, workers=4 over serial
# Process parallelism cannot beat serial on a starved host; the cells/s
# floor is only meaningful with enough cores to fan out to.
PARALLEL_GATED = PERF_GATED and (os.cpu_count() or 1) >= GRID_WORKERS


def _merge(into: dict, update: dict) -> None:
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(into.get(key), dict):
            _merge(into[key], value)
        else:
            into[key] = value


def _record(update: dict) -> None:
    """Merge one benchmark's results into ``BENCH_cluster.json``."""
    payload: dict = {}
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    _merge(payload, update)
    payload["perf_gated"] = PERF_GATED
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _assert_reports_bit_identical(ref, vec) -> None:
    """Every stream of every tenant must agree bit for bit."""
    assert len(ref.tenants) == len(vec.tenants)
    for r, v in zip(ref.tenants, vec.tenants):
        assert r.tenant == v.tenant
        assert r.arrival_s.tobytes() == v.arrival_s.tobytes()
        assert r.dispatch_s.tobytes() == v.dispatch_s.tobytes()
        assert r.completion_s.tobytes() == v.completion_s.tobytes()
        assert r.offered_arrival_s.tobytes() == v.offered_arrival_s.tobytes()
        assert r.shed_arrival_s.tobytes() == v.shed_arrival_s.tobytes()
        assert tuple(r.batches) == tuple(v.batches)
        assert r.core_busy_s == v.core_busy_s
        assert np.array_equal(r.batch_num_cores, v.batch_num_cores)
        assert np.array_equal(r.accuracy_proxy, v.accuracy_proxy)
    assert ref.pool_size == vec.pool_size
    assert ref.routing == vec.routing
    assert ref.schedule_name == vec.schedule_name
    assert ref.recalibration_name == vec.recalibration_name
    assert ref.core_downtime_s == vec.core_downtime_s
    assert ref.final_core_errors == vec.final_core_errors
    assert ref.reallocations == vec.reallocations
    assert ref.recalibrations == vec.recalibrations


def _inline_pr3_loop(model, policy, arrivals):
    """A verbatim copy of the pre-kernel ServingSimulator event loop.

    The reference the wall-time gate compares against: same
    ``plan_dispatch``, same pipeline-walk floats, no context or hook
    indirection.
    """
    num_requests = arrivals.size
    num_cores = model.num_cores
    core_free = [0.0] * num_cores
    core_busy = [0.0] * num_cores
    dispatch_s = np.empty(num_requests)
    completion_s = np.empty(num_requests)
    batches = []
    head = 0
    while head < num_requests:
        dispatch, size = plan_dispatch(arrivals, head, policy, core_free[0])
        start = dispatch
        for core in range(num_cores):
            begun = max(start, core_free[core])
            busy = model.core_busy_s(core, size)
            start = begun + busy
            core_free[core] = start
            core_busy[core] += busy
        batches.append(
            BatchRecord(
                index=len(batches),
                first_request=head,
                size=size,
                dispatch_s=dispatch,
                completion_s=start,
            )
        )
        dispatch_s[head : head + size] = dispatch
        completion_s[head : head + size] = start
        head += size
    return completion_s, tuple(batches)


def _best_of(function, repeats=TIMING_REPEATS):
    """Minimum wall time over repeats (noise-robust) plus the result."""
    result = None
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - began)
    return best, result


def test_kernel_refactor_within_1p1x_of_inline_loop(alexnet_specs):
    """The PR 4-style soak through the kernel: bit-identical to the
    inline pre-kernel loop and (when gated) within 1.1x of its wall
    time.  FIFO at 4x capacity maximizes the per-batch loop overhead
    (one dispatch per request), the worst case for the refactor."""
    model = PipelineServiceModel.from_specs(alexnet_specs, 4)
    policy = BatchingPolicy.fifo()
    arrivals = poisson_arrivals(
        4.0 * model.capacity_rps(1), SOAK_REQUESTS, seed=13
    )

    inline_s, (inline_completions, inline_batches) = _best_of(
        lambda: _inline_pr3_loop(model, policy, arrivals)
    )
    kernel_s, report = _best_of(
        lambda: ServingSimulator(model, policy).run(arrivals)
    )

    assert np.array_equal(report.completion_s, inline_completions)
    assert report.batches == inline_batches

    ratio = kernel_s / inline_s
    emit(
        f"{SOAK_REQUESTS}-request FIFO soak: inline loop {inline_s:.3f} s, "
        f"unified kernel {kernel_s:.3f} s -> {ratio:.2f}x "
        f"(ceiling {KERNEL_RATIO_CEILING}x"
        f"{'' if PERF_GATED else '; not enforced: PCNNA_PERF_GATE=0'})"
    )
    if PERF_GATED:
        assert ratio <= KERNEL_RATIO_CEILING


def test_weighted_fair_bounds_minority_p99_under_10x_load():
    """The routing guarantee, in simulated time: while the majority
    tenant offers ~2x the pool's capacity and sheds the excess, the
    minority tenant's whole latency distribution is bit-identical to
    serving alone on its guaranteed share."""
    specs = tuple(lenet5_conv_specs())
    single = PipelineServiceModel.from_specs(list(specs), 1)
    majority_rate = 2.0 * single.capacity_rps(16)
    minority_rate = majority_rate / 10.0

    majority = ClusterTenant(
        "majority",
        specs,
        BatchingPolicy.dynamic(16, 1e-3),
        queue_cap=128,
    )
    minority = ClusterTenant(
        "minority", specs, BatchingPolicy.dynamic(4, 1e-4)
    )
    arrivals = {
        "majority": poisson_arrivals(majority_rate, 20_000, seed=11),
        "minority": poisson_arrivals(minority_rate, 2_000, seed=12),
    }
    report = simulate_cluster_serving(
        [majority, minority],
        arrivals,
        pool_size=2,
        elastic=ElasticReallocation(),
    )
    heavy = report.tenant("majority")
    light = report.tenant("minority")

    # The majority saturates its share and sheds the overload...
    assert heavy.shed_fraction > 0.3
    assert heavy.p99_s < 0.1  # bounded by admission control, not horizon
    # ...while weighted-fair keeps the minority's core untouched: its
    # run is bit-identical to having the share to itself.
    alone = simulate_cluster_serving(
        [minority], {"minority": arrivals["minority"]}, pool_size=1
    ).tenant("minority")
    assert np.array_equal(light.completion_s, alone.completion_s)
    assert light.p99_s == alone.p99_s
    assert light.num_shed == 0
    assert np.all(light.batch_num_cores == 1)

    emit(
        f"10x noisy neighbour on a 2-core pool: majority served "
        f"{heavy.num_requests}/{heavy.num_offered} "
        f"(shed {heavy.shed_fraction:.0%}, p99 "
        f"{heavy.p99_s * 1e6:.0f} us); minority p99 "
        f"{light.p99_s * 1e6:.0f} us, bit-identical to serving alone"
    )


def test_soak_every_mix_across_pool_sizes():
    """Cluster soak: every named mix, three pool sizes, conservation
    and causality over long horizons.

    Frozen allocations, so every lane rides the PR 10 vectorized fast
    path — this soak was ``slow``-marked when it crawled through the
    per-event reference loop; now it runs in the default suite.
    """
    rows = []
    for name in CLUSTER_MIXES:
        tenants, arrivals = cluster_mix(name, 50_000.0, 30_000, seed=13)
        pools = [len(tenants), len(tenants) + 2, len(tenants) * 3]
        points = sweep_cluster_serving(tenants, arrivals, pools)
        for point in points:
            for sub in point.report.tenants:
                assert sub.num_requests + sub.num_shed == sub.num_offered
                assert np.all(sub.dispatch_s >= sub.arrival_s)
                assert np.all(sub.completion_s > sub.dispatch_s)
                assert np.isfinite(sub.latencies_s).all()
            rows.extend(
                [name, *row] for row in point.rows()
            )
    emit(
        format_table(
            ["mix", *CLUSTER_SWEEP_HEADER],
            rows,
            title="cluster soak: tenant mix x pool size",
        )
    )


def test_multi_tenant_soak_vectorized_speedup():
    """The PR 10 tentpole gate: on every named frozen-allocation mix,
    the vectorized fast path must reproduce the reference event loop
    bit-for-bit (asserted unconditionally), and in aggregate serve
    requests at >= 10x the reference req/s (enforced when gated).
    Results land in ``BENCH_cluster.json``."""
    mixes: dict[str, dict] = {}
    ref_total_s = 0.0
    vec_total_s = 0.0
    total_requests = 0
    for name in CLUSTER_MIXES:
        tenants, arrivals = cluster_mix(
            name, SOAK_RATE_RPS, SOAK_MIX_REQUESTS, seed=13
        )
        pool = len(tenants) * 2
        ref_s, ref = _best_of(
            lambda: simulate_cluster_serving(
                tenants, arrivals, pool_size=pool, mode="reference"
            ),
            repeats=3,
        )
        vec_s, vec = _best_of(
            lambda: simulate_cluster_serving(
                tenants, arrivals, pool_size=pool, mode="vectorized"
            ),
            repeats=3,
        )
        _assert_reports_bit_identical(ref, vec)
        served = sum(sub.num_offered for sub in ref.tenants)
        mixes[name] = {
            "num_requests": served,
            "pool_size": pool,
            "reference_wall_s": round(ref_s, 6),
            "vectorized_wall_s": round(vec_s, 6),
            "reference_req_per_s": round(served / ref_s, 1),
            "vectorized_req_per_s": round(served / vec_s, 1),
            "speedup_x": round(ref_s / vec_s, 2),
        }
        ref_total_s += ref_s
        vec_total_s += vec_s
        total_requests += served
    speedup = ref_total_s / vec_total_s
    _record(
        {
            "multi_tenant_soak": {
                "mixes": mixes,
                "aggregate": {
                    "num_requests": total_requests,
                    "reference_req_per_s": round(
                        total_requests / ref_total_s, 1
                    ),
                    "vectorized_req_per_s": round(
                        total_requests / vec_total_s, 1
                    ),
                    "speedup_x": round(speedup, 2),
                    "floor_x": VECTORIZED_SPEEDUP_FLOOR,
                },
                "bit_identical": True,
            }
        }
    )
    emit(
        f"multi-tenant soak ({total_requests} requests over "
        f"{len(CLUSTER_MIXES)} mixes): reference {ref_total_s:.3f} s, "
        f"vectorized {vec_total_s:.3f} s -> {speedup:.1f}x, "
        f"bit-identical (floor {VECTORIZED_SPEEDUP_FLOOR}x"
        f"{'' if PERF_GATED else '; not enforced: PCNNA_PERF_GATE=0'})"
    )
    if PERF_GATED:
        assert speedup >= VECTORIZED_SPEEDUP_FLOOR


def test_policy_grid_parallel_cells_per_second():
    """Grid executor gate: ``workers=4`` over the default dominance
    grid is byte-identical to serial (asserted unconditionally) and,
    on a host with enough cores, delivers >= 2x cells/s.  Results land
    in ``BENCH_cluster.json``."""
    scenarios = default_scenarios(num_requests=200, rate_rps=2000.0)
    policies = default_policy_grid()
    cells = len(scenarios) * len(policies)

    serial_began = time.perf_counter()
    serial = evaluate_policy_grid(scenarios, policies)
    serial_s = time.perf_counter() - serial_began
    parallel_began = time.perf_counter()
    fanned = evaluate_policy_grid(scenarios, policies, workers=GRID_WORKERS)
    parallel_s = time.perf_counter() - parallel_began

    assert len(fanned) == len(serial) == cells
    for a, b in zip(serial, fanned):
        assert a.scenario == b.scenario
        assert a.policy == b.policy
        assert a.baseline == b.baseline
        assert a.availability == b.availability
        assert a.accuracy_error == b.accuracy_error
        assert a.p99_latency_s == b.p99_latency_s
        assert a.downtime_s == b.downtime_s
        assert (a.served, a.offered, a.shed) == (b.served, b.offered, b.shed)
        assert a.recalibrations == b.recalibrations
        _assert_reports_bit_identical(a.report, b.report)

    speedup = serial_s / parallel_s
    _record(
        {
            "policy_grid_parallel": {
                "num_cells": cells,
                "workers": GRID_WORKERS,
                "host_cpu_count": os.cpu_count() or 1,
                "serial_wall_s": round(serial_s, 6),
                "parallel_wall_s": round(parallel_s, 6),
                "serial_cells_per_s": round(cells / serial_s, 3),
                "parallel_cells_per_s": round(cells / parallel_s, 3),
                "speedup_x": round(speedup, 2),
                "floor_x": GRID_SPEEDUP_FLOOR,
                "byte_identical": True,
            }
        }
    )
    emit(
        f"policy grid ({cells} cells): serial {serial_s:.2f} s "
        f"({cells / serial_s:.1f} cells/s), workers={GRID_WORKERS} "
        f"{parallel_s:.2f} s ({cells / parallel_s:.1f} cells/s) -> "
        f"{speedup:.2f}x, byte-identical (floor {GRID_SPEEDUP_FLOOR}x"
        f"{'' if PARALLEL_GATED else '; not enforced: '}"
        f"{'' if PARALLEL_GATED else 'PCNNA_PERF_GATE=0 or too few cores'})"
    )
    if PARALLEL_GATED:
        assert speedup >= GRID_SPEEDUP_FLOOR
