"""Extension — inter-layer pipelining and sparsity-aware ring allocation.

Two directions the paper's introduction motivates but does not evaluate:

* "data dependencies across layers challenge any attempt of inter-layer
  parallelization" — modeled as a pipeline of PCNNA cores, each owning a
  balanced contiguous slice of layers;
* the paper exploits *connection* sparsity (receptive fields); magnitude
  pruning extends the same ring-saving logic to *weight* sparsity.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis import format_count, format_table, format_time
from repro.core.multicore import balanced_partition, pipeline_speedup
from repro.core.pruning import (
    pruned_conv_error,
    sparse_mapping_report,
    threshold_for_sparsity,
)


def test_pipeline_core_sweep(benchmark, alexnet_specs):
    """Throughput vs number of pipelined PCNNA cores."""

    def sweep():
        rows = []
        for cores in range(1, len(alexnet_specs) + 1):
            partition = balanced_partition(alexnet_specs, cores)
            rows.append(
                (
                    cores,
                    partition.bottleneck_s,
                    partition.images_per_s,
                    partition.balance,
                    pipeline_speedup(alexnet_specs, cores),
                )
            )
        return rows

    rows = benchmark(sweep)
    emit(
        format_table(
            ["cores", "initiation interval", "throughput", "balance", "speedup"],
            [
                [
                    cores,
                    format_time(interval),
                    f"{throughput:,.0f} img/s",
                    f"{balance:.2f}",
                    f"{speedup:.2f}x",
                ]
                for cores, interval, throughput, balance, speedup in rows
            ],
            title="Extension: inter-layer pipelining over PCNNA cores "
            "(AlexNet convs, weight-stationary)",
        )
    )
    speedups = [row[4] for row in rows]
    assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
    # conv1's 6.7 us bottleneck caps the 5-core speedup around 3.2x.
    assert 2.5 < speedups[-1] < 5.0


def test_pruning_ring_savings(benchmark):
    """Ring/heater savings vs conv error across pruning levels."""
    rng = np.random.default_rng(0)
    kernels = rng.normal(0.0, 0.1, size=(384, 384, 3, 3))  # conv4-shaped.
    feature = rng.normal(size=(384, 13, 13))
    levels = [0.25, 0.5, 0.75, 0.9]

    def sweep():
        rows = []
        for sparsity in levels:
            threshold = threshold_for_sparsity(kernels, sparsity)
            report = sparse_mapping_report(kernels, threshold)
            error = pruned_conv_error(feature, kernels, threshold)
            rows.append((sparsity, report, error))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["sparsity", "rings saved", "heater power saved", "energy kept",
             "conv error"],
            [
                [
                    f"{sparsity:.0%}",
                    format_count(report.pruned_rings),
                    f"{report.tuning_power_saved_w:,.0f} W",
                    f"{report.energy_retained:.1%}",
                    f"{error:.3f}",
                ]
                for sparsity, report, error in rows
            ],
            title="Extension: magnitude pruning of AlexNet conv4 on PCNNA",
        )
    )
    errors = [row[2] for row in rows]
    assert all(a < b for a, b in zip(errors, errors[1:]))
    # Gaussian (unpruned-trained) weights are the worst case: dropping
    # half the rings costs ~30 % output error, because a 3456-term sum
    # accumulates many small contributions.  Real pruned-then-finetuned
    # networks concentrate energy in the kept weights; the report's
    # energy_retained column shows what finetuning would preserve.
    mid = rows[1]
    assert mid[1].sparsity == pytest.approx(0.5, abs=0.01)
    assert mid[2] < 0.5
    assert mid[1].energy_retained > 0.85
