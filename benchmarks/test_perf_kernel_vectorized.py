"""Perf benchmark: the vectorized kernel vs the reference event loop.

PR 6 rebuilt the pluginless serving hot path on array ops; this file
measures what that bought and writes the repo's first ``BENCH_*.json``
perf trajectory (``BENCH_kernel.json`` at the repository root):
requests/sec for the reference and vectorized modes at 10k and 900k
requests, plus the vectorized-only 10M-request soak the reference loop
cannot reach in reasonable wall time.

Wall-clock gates are machine-dependent, so they follow the repo's
``PCNNA_PERF_GATE`` convention: enforced in local runs (the ≥10x floor
on the 900k pluginless FIFO soak, the seconds-scale 10M soak), relaxed
to a functional smoke with ``PCNNA_PERF_GATE=0`` on shared CI runners —
the JSON artifact is written either way, and the bit-identity check
between the timed runs is asserted unconditionally.

Run with ``-s`` to see the trajectory table.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.traffic import (
    BatchingPolicy,
    PipelineServiceModel,
    ServingSimulator,
)
from repro.workloads import lenet5_conv_specs, poisson_arrivals
from conftest import emit

PERF_GATED = os.environ.get("PCNNA_PERF_GATE", "1") != "0"
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

NUM_CORES = 3
LOAD_FACTOR = 4.0  # offered load over single-request capacity
SPEEDUP_FLOOR = 10.0  # vectorized vs reference, 900k FIFO
SOAK_CEILING_S = 60.0  # generous "completes in seconds" bound for 10M
SMALL = 10_000
LARGE = 900_000
SOAK = 10_000_000
SOAK_POLICY = BatchingPolicy.dynamic(8, 1e-4)

TIMING_REPEATS = 3


def _model() -> PipelineServiceModel:
    return PipelineServiceModel.from_specs(lenet5_conv_specs(), NUM_CORES)


def _trace(model: PipelineServiceModel, num_requests: int) -> np.ndarray:
    offered = LOAD_FACTOR * model.capacity_rps(1)
    return poisson_arrivals(offered, num_requests, seed=29)


def _best_of(function, repeats: int = TIMING_REPEATS):
    """Minimum wall time over repeats (noise-robust) plus the result.

    The first call doubles as warm-up: the vectorized path's first
    invocation pays one-off numpy dispatch costs that would otherwise
    overstate small-trace timings.
    """
    result = None
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - began)
    return best, result


def _merge(into: dict, update: dict) -> None:
    """Recursive dict merge: the two benchmarks share nested sections."""
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(into.get(key), dict):
            _merge(into[key], value)
        else:
            into[key] = value


def _record(update: dict) -> None:
    """Merge one benchmark's results into ``BENCH_kernel.json``."""
    payload: dict = {}
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    _merge(payload, update)
    payload["perf_gated"] = PERF_GATED
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_vectorized_speedup_trajectory_vs_reference():
    """Reference vs vectorized requests/sec at 10k and 900k requests.

    FIFO at 4x single-request capacity is the reference loop's worst
    case (one Python dispatch iteration per request) and the scenario
    the acceptance floor names: the vectorized kernel must clear ≥10x
    on the 900k pluginless soak.
    """
    model = _model()
    rows = []
    results: dict[str, dict[str, float]] = {"reference": {}, "vectorized": {}}
    speedups: dict[str, float] = {}
    for num_requests in (SMALL, LARGE):
        arrivals = _trace(model, num_requests)
        # The reference loop is O(requests) Python; at 900k one timed
        # pass (~10s) is long enough that repeat noise is negligible.
        ref_repeats = TIMING_REPEATS if num_requests <= SMALL else 1
        ref_s, ref = _best_of(
            lambda: ServingSimulator(
                model, BatchingPolicy.fifo(), mode="reference"
            ).run(arrivals),
            repeats=ref_repeats,
        )
        vec_s, vec = _best_of(
            lambda: ServingSimulator(
                model, BatchingPolicy.fifo(), mode="vectorized"
            ).run(arrivals)
        )
        # The timed runs must agree bit for bit — a fast wrong kernel
        # benchmarks nothing.
        assert ref.completion_s.tobytes() == vec.completion_s.tobytes()
        assert ref.batches == vec.batches
        results["reference"][str(num_requests)] = num_requests / ref_s
        results["vectorized"][str(num_requests)] = num_requests / vec_s
        speedups[str(num_requests)] = ref_s / vec_s
        rows.append(
            f"  {num_requests:>10,} requests: reference {ref_s:8.3f} s, "
            f"vectorized {vec_s:8.3f} s -> {ref_s / vec_s:6.1f}x"
        )
    _record(
        {
            "scenario": {
                "network": "lenet5",
                "num_cores": NUM_CORES,
                "policy": "fifo",
                "load_factor_vs_single_request_capacity": LOAD_FACTOR,
                "arrival_seed": 29,
            },
            "requests_per_second": results,
            "speedup_vs_reference": speedups,
            "speedup_floor_900k": SPEEDUP_FLOOR,
        }
    )
    emit(
        "vectorized kernel trajectory (FIFO, LeNet-5, 3 cores, 4x load)\n"
        + "\n".join(rows)
        + (
            ""
            if PERF_GATED
            else "\n  (floor not enforced: PCNNA_PERF_GATE=0)"
        )
    )
    if PERF_GATED:
        assert speedups[str(LARGE)] >= SPEEDUP_FLOOR


def test_ten_million_request_soak_completes_in_seconds():
    """The 10M-request dynamic-batching soak the ISSUE targets.

    Reference-mode extrapolation puts this run at minutes of Python
    bookkeeping; the vectorized kernel must finish it in seconds while
    conserving every request and keeping the streams causal.  Runs
    un-slow-marked so CI's benchmark smoke step exercises it on every
    push.
    """
    model = _model()
    arrivals = _trace(model, SOAK)
    began = time.perf_counter()
    report = ServingSimulator(model, SOAK_POLICY, mode="vectorized").run(
        arrivals
    )
    soak_s = time.perf_counter() - began

    assert report.num_requests == SOAK
    assert sum(int(b.size) for b in report.batches) == SOAK
    assert np.all(report.dispatch_s >= report.arrival_s)
    assert np.all(report.completion_s > report.dispatch_s)
    assert all(0.0 < u <= 1.0 for u in report.core_utilization)

    _record(
        {
            "requests_per_second": {"vectorized": {str(SOAK): SOAK / soak_s}},
            "soak_10m": {
                "policy": "dynamic(8, 1e-4)",
                "wall_s": soak_s,
                "ceiling_s": SOAK_CEILING_S,
                "num_batches": len(report.batches),
                "p99_s": report.p99_s,
            },
        }
    )
    emit(
        f"10M-request soak (dynamic(8, 1e-4)): {soak_s:.1f} s wall, "
        f"{SOAK / soak_s:,.0f} req/s, {len(report.batches):,} batches"
        f"{'' if PERF_GATED else ' (ceiling not enforced: PCNNA_PERF_GATE=0)'}"
    )
    if PERF_GATED:
        assert soak_s <= SOAK_CEILING_S
