"""Ablation — photonic non-idealities vs. convolution accuracy.

The paper cites device non-idealities qualitatively; this ablation
quantifies them on a representative convolution through the full device
simulation: ring-tuning error, DAC/ADC quantization, and inter-channel
crosstalk (as a function of ring quality factor).
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis import format_table
from repro.core.config import PCNNAConfig
from repro.core.validation import compare_photonic_reference
from repro.photonics.microring import MicroringDesign
from repro.photonics.noise import NoiseConfig


def _case(seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(2, 8, 8)), rng.normal(size=(4, 2, 3, 3))


def test_tuning_error_sweep(benchmark):
    """Relative conv error grows monotonically with ring-tuning sigma."""
    x, k = _case()
    sigmas = [0.0, 1e-4, 1e-3, 1e-2, 5e-2]

    def sweep():
        errors = []
        for sigma in sigmas:
            config = PCNNAConfig(
                noise=NoiseConfig(
                    enabled=True,
                    shot_noise=False,
                    thermal_noise=False,
                    ring_tuning_sigma=sigma,
                    seed=1,
                )
            )
            report = compare_photonic_reference(x, k, config=config)
            errors.append(report.max_rel_error)
        return errors

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["tuning sigma", "max relative error"],
            [[f"{s:g}", f"{e:.2e}"] for s, e in zip(sigmas, errors)],
            title="Ablation: ring-tuning error vs conv accuracy",
        )
    )
    assert errors[0] < 1e-10
    assert errors[1] < errors[3] < errors[4]


def test_quantization_error(benchmark):
    """16 b DAC + 12 b ADC keeps relative conv error below 1 %."""
    x, k = _case(1)
    report = benchmark.pedantic(
        compare_photonic_reference,
        args=(x, k),
        kwargs={"quantize": True},
        rounds=1,
        iterations=1,
    )
    emit(
        f"DAC/ADC quantization: max relative error = {report.max_rel_error:.2e}"
    )
    assert 0.0 < report.max_rel_error < 1e-2


def test_crosstalk_vs_quality_factor(benchmark):
    """Crosstalk error shrinks as ring Q rises (narrower linewidths)."""
    x, k = _case(2)
    q_factors = [2_000, 8_000, 32_000, 128_000]

    def sweep():
        errors = []
        for q in q_factors:
            config = PCNNAConfig(
                ring_design=MicroringDesign(quality_factor=q),
                noise=NoiseConfig(
                    enabled=True,
                    shot_noise=False,
                    thermal_noise=False,
                    crosstalk=True,
                    seed=3,
                ),
            )
            report = compare_photonic_reference(x, k, config=config)
            errors.append(report.max_rel_error)
        return errors

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["quality factor", "max relative error"],
            [[q, f"{e:.2e}"] for q, e in zip(q_factors, errors)],
            title="Ablation: ring Q vs crosstalk error (100 GHz grid)",
        )
    )
    assert all(a > b for a, b in zip(errors, errors[1:]))


def test_shot_thermal_noise_floor(benchmark):
    """Receiver noise alone leaves a small random error floor."""
    x, k = _case(3)
    config = PCNNAConfig(
        noise=NoiseConfig(
            enabled=True, shot_noise=True, thermal_noise=True, seed=4
        )
    )
    report = benchmark.pedantic(
        compare_photonic_reference,
        args=(x, k),
        kwargs={"config": config},
        rounds=1,
        iterations=1,
    )
    emit(f"shot+thermal receiver noise: max relative error = {report.max_rel_error:.2e}")
    assert 0.0 < report.max_rel_error < 0.1
