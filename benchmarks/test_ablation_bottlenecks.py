"""Ablation — bottlenecks the paper's model abstracts away.

The paper's full-system model serializes only the input DACs.  The
cycle-level simulator exposes two further constraints:

* **ADC serialization** — digitizing K = 384 outputs per location through
  one 2.8 GSa/s ADC takes 137 ns, 7x the DAC's 19 ns;
* **DRAM bandwidth** — at DDR3 rates the per-location input stream
  (~2.3 KB) takes 180 ns, making the system memory-bound.

Both are recorded as extension findings in EXPERIMENTS.md.
"""

from dataclasses import replace

import pytest
from conftest import emit

from repro.analysis import format_table, format_time
from repro.core.config import PCNNAConfig, paper_assumptions
from repro.core.timing import simulate_layer


def test_adc_serialization(benchmark, alexnet_specs):
    """One ADC is the true bottleneck for K=384; ~64 ADCs restore the
    paper's DAC-bound regime."""
    conv4 = alexnet_specs[3]
    config = paper_assumptions()

    def simulate_variants():
        one_adc = simulate_layer(conv4, config, include_adc=True)
        many_adc = simulate_layer(
            conv4, replace(config, num_adcs=64), include_adc=True
        )
        paper_model = simulate_layer(conv4, config, include_adc=False)
        return one_adc, many_adc, paper_model

    one_adc, many_adc, paper_model = benchmark.pedantic(
        simulate_variants, rounds=1, iterations=1
    )
    emit(
        format_table(
            ["variant", "layer time", "bottleneck"],
            [
                ["paper model (ADC ignored)", format_time(paper_model.pipelined_time_s),
                 paper_model.bottleneck],
                ["1 ADC (cycle sim)", format_time(one_adc.pipelined_time_s),
                 one_adc.bottleneck],
                ["64 ADCs (cycle sim)", format_time(many_adc.pipelined_time_s),
                 many_adc.bottleneck],
            ],
            title="Ablation: ADC serialization, AlexNet conv4",
        )
    )
    assert one_adc.bottleneck == "digitize"
    assert many_adc.bottleneck == "convert"
    assert one_adc.pipelined_time_s > paper_model.pipelined_time_s


def test_dram_bandwidth(benchmark, alexnet_specs):
    """DDR3-class bandwidth makes the system memory-bound; the paper's
    timing implicitly assumes memory keeps up."""
    conv4 = alexnet_specs[3]

    def simulate_variants():
        ddr3 = simulate_layer(conv4, PCNNAConfig(), include_adc=False)
        unbounded = simulate_layer(conv4, paper_assumptions(), include_adc=False)
        return ddr3, unbounded

    ddr3, unbounded = benchmark.pedantic(simulate_variants, rounds=1, iterations=1)
    emit(
        format_table(
            ["memory model", "layer time", "bottleneck", "vs paper model"],
            [
                ["DDR3 12.8 GB/s", format_time(ddr3.pipelined_time_s),
                 ddr3.bottleneck,
                 f"{ddr3.pipelined_time_s / ddr3.analytical_full_s:.1f}x"],
                ["unbounded", format_time(unbounded.pipelined_time_s),
                 unbounded.bottleneck,
                 f"{unbounded.pipelined_time_s / unbounded.analytical_full_s:.1f}x"],
            ],
            title="Ablation: DRAM bandwidth, AlexNet conv4",
        )
    )
    assert ddr3.bottleneck == "fetch"
    assert unbounded.bottleneck == "convert"
    # Even memory-bound, PCNNA stays ~2 orders ahead of Eyeriss (4.6 ms).
    assert ddr3.pipelined_time_s < 4.6e-3 / 100


def test_sram_capacity(benchmark, alexnet_specs):
    """A larger SRAM enables first-touch-only DRAM fetching on layers
    whose m-row working set exceeds the paper's 8 K words."""
    from repro.electronics.sram import SramSpec

    conv4 = alexnet_specs[3]

    def simulate_variants():
        small = simulate_layer(conv4, paper_assumptions(), include_adc=False)
        big = simulate_layer(
            conv4,
            replace(paper_assumptions(), sram=SramSpec(capacity_bits=1024 * 1024)),
            include_adc=False,
        )
        return small, big

    small, big = benchmark.pedantic(simulate_variants, rounds=1, iterations=1)
    emit(
        format_table(
            ["SRAM", "DRAM traffic", "layer time"],
            [
                ["128 kb (paper)", f"{small.dram_bytes / 1024:.0f} KiB",
                 format_time(small.pipelined_time_s)],
                ["1 Mb", f"{big.dram_bytes / 1024:.0f} KiB",
                 format_time(big.pipelined_time_s)],
            ],
            title="Ablation: SRAM capacity, AlexNet conv4",
        )
    )
    assert big.dram_bytes < small.dram_bytes
