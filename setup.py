"""Package metadata for the PCNNA reproduction.

Installs the ``repro`` package from ``src/`` so examples, tests, and
benchmarks run without ``PYTHONPATH=src``:

    pip install -e .
"""

from pathlib import Path

from setuptools import find_packages, setup

readme = Path(__file__).parent / "README.md"

setup(
    name="pcnna-repro",
    version="1.0.0",
    description=(
        "Reproduction of PCNNA: A Photonic Convolutional Neural Network "
        "Accelerator (Mehrabian et al., SOCC 2018), with a vectorized "
        "batched photonic execution engine"
    ),
    long_description=readme.read_text(encoding="utf-8") if readme.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark", "pytest-cov"],
        # repro.lint is stdlib-only; the extra exists so tooling that
        # installs linters by extra name has something to point at.
        "lint": [],
    },
    entry_points={
        "console_scripts": [
            "repro-lint=repro.lint.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: Scientific/Engineering :: Physics",
    ],
)
