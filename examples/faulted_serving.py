#!/usr/bin/env python
"""Degraded-mode serving under hardware faults and drift.

The traffic demo assumes every photonic core stays perfectly calibrated;
this one breaks them on purpose.  It

1. tours the named fault scenarios (slow thermal drift, a runaway core,
   a crosstalk storm, dead microrings, TIA aging, and a mix) over one
   shared AlexNet trace, with online recalibration watching each core's
   measured weight error and the fault-aware scheduler draining cores
   that recalibration cannot restore;
2. sweeps drift rate x recalibration policy to show what the closed
   calibration loop buys (and what its downtime costs);
3. replays a drifting LeNet-5 schedule on the *real* photonic engine
   with each core's conv weights pushed through the measured drift
   transfer, reporting golden-output divergence per batch — and checks
   that the zero-magnitude schedule is bit-identical to the fault-free
   simulator and replay.

Run:  python examples/faulted_serving.py
"""

import numpy as np

from repro.analysis import (
    FAULT_SWEEP_HEADER,
    format_table,
    sweep_fault_tolerance,
)
from repro.core import (
    BatchingPolicy,
    DegradedServingSimulator,
    PipelineServiceModel,
    RecalibrationPolicy,
    replay_on_engine,
    replay_on_engine_degraded,
    simulate_degraded_serving,
    simulate_serving,
)
from repro.workloads import (
    FAULT_SCENARIOS,
    alexnet_conv_specs,
    fault_scenario,
    poisson_arrivals,
    serving_batch,
    serving_network,
)

NUM_REQUESTS = 4_000
MAX_BATCH = 16
MAX_WAIT_S = 1e-3
NUM_CORES = 4


def scenario_tour() -> None:
    """Every named scenario over one shared AlexNet trace."""
    specs = alexnet_conv_specs()
    model = PipelineServiceModel.from_specs(specs, NUM_CORES)
    offered = 0.5 * model.capacity_rps(MAX_BATCH)
    arrivals = poisson_arrivals(offered, NUM_REQUESTS, seed=7)
    policy = BatchingPolicy.dynamic(MAX_BATCH, MAX_WAIT_S)
    horizon = float(arrivals[-1])
    for name in FAULT_SCENARIOS:
        schedule = fault_scenario(name, NUM_CORES, horizon)
        simulator = DegradedServingSimulator(
            model,
            policy,
            schedule,
            recalibration=RecalibrationPolicy(),
            specs=specs,
        )
        print(simulator.run(arrivals).describe())
        print()


def drift_sweep() -> None:
    """Drift rate x recalibration policy over one shared trace."""
    specs = alexnet_conv_specs()
    model = PipelineServiceModel.from_specs(specs, NUM_CORES)
    offered = 0.5 * model.capacity_rps(MAX_BATCH)
    arrivals = poisson_arrivals(offered, NUM_REQUESTS, seed=7)
    horizon = float(arrivals[-1])
    # Rates chosen against the trace horizon: the slowest stays within
    # the recalibration headroom throughout, the fastest exhausts it.
    rates = [0.02 / horizon, 0.06 / horizon, 0.3 / horizon]
    points = sweep_fault_tolerance(
        specs,
        BatchingPolicy.dynamic(MAX_BATCH, MAX_WAIT_S),
        rates,
        [None, RecalibrationPolicy()],
        arrivals,
        NUM_CORES,
    )
    print(
        format_table(
            FAULT_SWEEP_HEADER,
            [point.row() for point in points],
            title=(
                f"AlexNet drift tolerance, {NUM_REQUESTS} requests over "
                f"{horizon * 1e3:.0f} ms"
            ),
        )
    )
    print()


def degraded_replay_demo() -> None:
    """Execute a drifting LeNet schedule on the real photonic engine."""
    network = serving_network("lenet5")
    requests = 12
    inputs = serving_batch(network, requests, seed=3)
    arrivals = poisson_arrivals(2e4, requests, seed=1)
    policy = BatchingPolicy.dynamic(4, 1e-4)
    horizon = float(arrivals[-1])
    schedule = fault_scenario("slow-drift", 2, horizon, severity=20.0)

    report = simulate_degraded_serving(
        network, arrivals, policy, schedule, num_cores=2, repartition=False
    )
    replay = replay_on_engine_degraded(network, report, inputs)
    print(
        f"degraded replay of {requests} LeNet-5 requests "
        f"[{schedule.name}]: accuracy proxy per batch "
        f"{np.round(report.accuracy_proxy, 4)}, golden-output divergence "
        f"per batch {np.round(replay.divergence_per_batch, 4)}"
    )

    # Differential check: the zero-magnitude schedule is bit-identical
    # to the fault-free simulator, simulation and engine replay alike.
    zero = simulate_degraded_serving(
        network,
        arrivals,
        policy,
        schedule.scaled(0.0),
        num_cores=2,
        repartition=False,
    )
    base = simulate_serving(network, arrivals, policy, num_cores=2)
    identical = bool(
        np.array_equal(zero.completion_s, base.completion_s)
        and zero.batches == base.batches
    )
    zero_replay = replay_on_engine_degraded(network, zero, inputs)
    replay_identical = bool(
        np.array_equal(
            zero_replay.outputs, replay_on_engine(network, base, inputs)
        )
    )
    print(
        f"zero-magnitude schedule bit-identical to fault-free run: "
        f"simulator {identical}, engine replay {replay_identical}"
    )


def main() -> None:
    scenario_tour()
    drift_sweep()
    degraded_replay_demo()


if __name__ == "__main__":
    main()
