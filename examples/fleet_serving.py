#!/usr/bin/env python
"""Planet-scale fleet serving across regional photonic pools.

The cluster demo shares one pool between tenants; this one shares the
*planet* between regional pools.  It

1. runs the named fleet mixes — follow-the-sun diurnal peaks, a severe
   regional outage, and a bursty overflow onto a standby pool — and
   prints each fleet report;
2. sweeps the three global routing policies (geo-affinity,
   least-loaded, latency-weighted) over one two-region trace to show
   what each trades between locality and load spreading;
3. walks a failover end to end: a mid-run outage degrades the primary
   region past the failover threshold, new arrivals divert to the
   survivor (paying the RTT), and service snaps home when the fault
   clears;
4. shows SLO-burn autoscaling commissioning a standby pool under an
   MMPP burst and draining it again when the burst passes.

Run:  python examples/fleet_serving.py
"""

from repro.analysis import (
    FLEET_SWEEP_HEADER,
    format_table,
    sweep_fleet_serving,
)
from repro.core import (
    GlobalRoutingPolicy,
    RegionSpec,
    simulate_fleet_serving,
    uniform_rtt,
)
from repro.core.fleet import FLEET_ROUTING_KINDS
from repro.workloads import FLEET_MIXES, fleet_mix


def mix_tour() -> None:
    """Every named fleet mix, run once and described."""
    for name in FLEET_MIXES:
        scenario = fleet_mix(name, rate_rps=6_000.0, num_requests=900, seed=7)
        report = simulate_fleet_serving(
            scenario.tenants,
            scenario.regions,
            scenario.arrival_s,
            rtt_s=scenario.rtt_s,
            routing=scenario.routing,
            autoscaler=scenario.autoscaler,
        )
        print(f"mix '{name}':")
        print(report.describe())
        print()


def routing_sweep() -> None:
    """All three global routing policies over one two-region trace."""
    scenario = fleet_mix(
        "regional-outage", rate_rps=6_000.0, num_requests=800, seed=3
    )
    points = sweep_fleet_serving(
        scenario.tenants,
        scenario.regions,
        scenario.arrival_s,
        [GlobalRoutingPolicy(kind=kind) for kind in FLEET_ROUTING_KINDS],
        rtt_s=scenario.rtt_s,
    )
    print(
        format_table(
            FLEET_SWEEP_HEADER,
            [row for point in points for row in point.rows()],
            title="routing-policy sweep over one outage trace",
        )
    )
    print()


def failover_walkthrough() -> None:
    """One failover, narrated from the report's records."""
    scenario = fleet_mix(
        "regional-outage", rate_rps=6_000.0, num_requests=800, seed=11
    )
    report = simulate_fleet_serving(
        scenario.tenants,
        scenario.regions,
        scenario.arrival_s,
        rtt_s=scenario.rtt_s,
        routing=scenario.routing,
    )
    record = report.failovers[0]
    trace = report.trace("primary", "interactive")
    diverted = trace.server_region != trace.home_index
    print(
        f"failover: region '{record.region}' degraded at "
        f"{record.onset_s * 1e3:.1f} ms, diverted {record.rerouted} new "
        f"arrivals to '{record.survivor}' until "
        f"{record.until_s * 1e3:.1f} ms "
        f"(first diverted request served {record.failover_latency_s * 1e3:.2f}"
        f" ms after onset)"
    )
    print(
        f"  'interactive' stream: {int(diverted.sum())} of "
        f"{trace.num_offered} requests served remotely, each paying the "
        f"{0.01 * 1e3:.0f} ms round trip on top of service"
    )
    print()


def autoscaling_demo() -> None:
    """An MMPP burst commissions the standby pool, then drains it."""
    scenario = fleet_mix(
        "burst-overflow", rate_rps=6_000.0, num_requests=1_200, seed=5
    )
    report = simulate_fleet_serving(
        scenario.tenants,
        scenario.regions,
        scenario.arrival_s,
        rtt_s=scenario.rtt_s,
        routing=scenario.routing,
        autoscaler=scenario.autoscaler,
    )
    for event in report.autoscale_events:
        print(
            f"autoscale: {event.action:>10} '{event.region}' at "
            f"{event.time_s * 1e3:7.1f} ms (burn {event.burn:.2f}, "
            f"{event.active_after} pools active)"
        )
    standby = report.region("standby")
    print(
        f"standby pool: routed {standby.routed_in}, served "
        f"{standby.num_served}; fleet placement efficiency "
        f"{report.placement_efficiency:.2f}"
    )
    print()


def single_region_contract() -> None:
    """The load-bearing pin, demonstrated: one healthy zero-RTT region
    is exactly the cluster simulator, so every cluster result carries
    over to the fleet unchanged."""
    scenario = fleet_mix(
        "regional-outage", rate_rps=4_000.0, num_requests=300, seed=2
    )
    arrival = scenario.arrival_s["fallback"]
    fleet = simulate_fleet_serving(
        scenario.tenants,
        (RegionSpec("solo", 8),),
        {"solo": {name: trace for name, trace in arrival.items()}},
    )
    print(
        f"single-region fleet == cluster (bit-identical by contract): "
        f"{fleet.num_served} served, p99 {fleet.p99_s * 1e6:.0f} us, "
        f"0 remote, 0 failovers"
    )


def main() -> None:
    mix_tour()
    routing_sweep()
    failover_walkthrough()
    autoscaling_demo()
    single_region_contract()


if __name__ == "__main__":
    main()
