#!/usr/bin/env python
"""Adaptive control plane: feedback-steered serving under drift.

The faulted demo recovers with *static* trip-wire policies; this one
closes the loop.  It

1. serves a drifting LeNet-5 under the EWMA recalibration controller
   and narrates every decision the controller logged — when it fired,
   what it projected, and what each firing cost;
2. demonstrates the load-bearing contract: the controller at its
   frozen setting is *bit-identical* to the static policy it subsumes,
   so every static result carries over unchanged;
3. sweeps controller settings (none, static, frozen, tracking,
   anticipating) over one drift trace and tabulates the
   proxy/availability/downtime trade each buys;
4. runs the default scenario × policy grid and prints the dominance
   report — the machine-checkable verdict that at least one adaptive
   policy strictly beats its static baseline on the Pareto front.

Run:  python examples/adaptive_serving.py
"""

import numpy as np

from repro.analysis import (
    ADAPTIVE_SWEEP_HEADER,
    default_policy_grid,
    default_scenarios,
    evaluate_dominance,
    format_table,
    sweep_adaptive_recalibration,
)
from repro.core import (
    AdaptiveRecalibration,
    BatchingPolicy,
    RecalibrationPolicy,
    simulate_adaptive_serving,
    simulate_degraded_serving,
)
from repro.workloads import fault_scenario, poisson_arrivals, serving_network


NETWORK = serving_network("lenet5")
POLICY = BatchingPolicy.dynamic(4, 1e-4)
RECAL = RecalibrationPolicy(error_threshold=0.05)
NUM_CORES = 2


def controlled_run() -> None:
    """One EWMA-controlled run over an aging trace, narrated."""
    arrivals = poisson_arrivals(2e4, 400, seed=11)
    horizon_s = float(arrivals[-1])
    controller = AdaptiveRecalibration(
        base=RECAL, smoothing=0.45, lead_time_s=0.08 * horizon_s
    )
    report = simulate_adaptive_serving(
        NETWORK,
        arrivals,
        POLICY,
        fault_scenario("tia-aging", NUM_CORES, horizon_s),
        NUM_CORES,
        controller=controller,
    )
    print(report.describe())
    for decision in report.decisions:
        print(
            f"  t={decision.time_s * 1e3:7.2f} ms core {decision.core}: "
            f"{decision.action:<14} error {decision.error:.4f} "
            f"-> smoothed {decision.smoothed:.4f} "
            f"-> projected {decision.projected:.4f}"
        )
    print()


def frozen_contract() -> None:
    """The load-bearing pin, demonstrated: frozen == static, bit for bit."""
    arrivals = poisson_arrivals(2e4, 300, seed=3)
    schedule = fault_scenario("slow-drift", NUM_CORES, float(arrivals[-1]))
    static = simulate_degraded_serving(
        NETWORK, arrivals, POLICY, schedule, NUM_CORES, recalibration=RECAL
    )
    frozen = simulate_adaptive_serving(
        NETWORK,
        arrivals,
        POLICY,
        schedule,
        NUM_CORES,
        controller=AdaptiveRecalibration.frozen(RECAL),
    )
    identical = (
        np.array_equal(static.completion_s, frozen.completion_s)
        and np.array_equal(static.accuracy_proxy, frozen.accuracy_proxy)
        and static.recalibrations == frozen.recalibrations
    )
    print(
        f"frozen controller == static policy (bit-identical by contract): "
        f"{identical}, {len(static.recalibrations)} recals either way"
    )
    print()


def controller_sweep() -> None:
    """Controller settings over one drift trace, tabulated."""
    arrivals = poisson_arrivals(2e4, 300, seed=5)
    horizon_s = float(arrivals[-1])
    schedule = fault_scenario("tia-aging", NUM_CORES, horizon_s)
    points = sweep_adaptive_recalibration(
        NETWORK,
        POLICY,
        schedule,
        [
            None,
            RECAL,
            AdaptiveRecalibration.frozen(RECAL),
            AdaptiveRecalibration(base=RECAL, smoothing=0.45, name="tracking"),
            AdaptiveRecalibration(
                base=RECAL,
                smoothing=0.45,
                lead_time_s=0.08 * horizon_s,
                name="anticipating",
            ),
        ],
        arrivals,
        NUM_CORES,
    )
    print(
        format_table(
            ADAPTIVE_SWEEP_HEADER,
            [point.row() for point in points],
            title="controller sweep over one tia-aging trace",
        )
    )
    print()


def dominance_grid() -> None:
    """The default grid's machine-checkable dominance verdict."""
    scenarios = default_scenarios()
    report = evaluate_dominance(scenarios, default_policy_grid(scenarios))
    print(report.describe())


def main() -> None:
    controlled_run()
    frozen_contract()
    controller_sweep()
    dominance_grid()


if __name__ == "__main__":
    main()
