#!/usr/bin/env python
"""Request-level traffic serving with dynamic batching.

The pipelined minibatch runner answers "how fast is one pre-formed
batch"; this demo answers the serving question: requests from many users
arrive over time, queue, and are formed into batches by a scheduler
before hitting the multi-core photonic pipeline.  It

1. compares batch=1 FIFO, dynamic batching, and fixed-size batching
   across pipeline widths under one shared Poisson trace (same seed,
   directly comparable percentiles);
2. shows how bursty (MMPP) and diurnal traffic stress the same policy;
3. replays a simulated schedule's batches on the *real* batched
   photonic engine and checks the outputs are bit-identical to running
   every request alone — batching never changes anyone's answer;
4. cross-checks the vectorized kernel (the default since PR 6) against
   the retained per-event ``reference`` mode, timing both on a long
   trace — bit-identical reports, order-of-magnitude faster.

Run:  python examples/traffic_serving.py
"""

import time

import numpy as np

from repro.analysis import SERVING_SWEEP_HEADER, format_table, sweep_serving_policies
from repro.core import (
    PCNNA,
    BatchingPolicy,
    PipelineServiceModel,
    ServingSimulator,
    replay_on_engine,
    simulate_serving,
)
from repro.workloads import (
    alexnet_conv_specs,
    make_arrivals,
    poisson_arrivals,
    serving_batch,
    serving_network,
)

NUM_REQUESTS = 20_000
MAX_BATCH = 32
MAX_WAIT_S = 2e-3


def policy_comparison() -> None:
    """Policy x core-count sweep over one shared AlexNet trace."""
    specs = alexnet_conv_specs()
    # Offer 4x the single-request capacity of the 4-core pipeline: FIFO
    # saturates, batching policies must absorb the excess.
    reference = PipelineServiceModel.from_specs(specs, 4)
    offered = 4.0 * reference.capacity_rps(1)
    arrivals = poisson_arrivals(offered, NUM_REQUESTS, seed=7)

    points = sweep_serving_policies(
        specs,
        policies=[
            BatchingPolicy.fifo(),
            BatchingPolicy.dynamic(MAX_BATCH, MAX_WAIT_S),
            BatchingPolicy.fixed(MAX_BATCH),
        ],
        core_counts=[1, 2, 4],
        arrival_s=arrivals,
    )
    print(
        format_table(
            SERVING_SWEEP_HEADER,
            [point.row() for point in points],
            title=(
                f"AlexNet serving, {NUM_REQUESTS} Poisson requests at "
                f"{offered:,.0f} req/s offered"
            ),
        )
    )
    print()


def traffic_shapes() -> None:
    """One policy under Poisson, bursty, and diurnal traffic."""
    specs = alexnet_conv_specs()
    model = PipelineServiceModel.from_specs(specs, 4)
    offered = 0.5 * model.capacity_rps(MAX_BATCH)
    policy = BatchingPolicy.dynamic(MAX_BATCH, MAX_WAIT_S)
    for pattern in ("poisson", "mmpp", "diurnal"):
        arrivals = make_arrivals(pattern, offered, NUM_REQUESTS, seed=11)
        report = ServingSimulator(model, policy).run(arrivals)
        print(f"[{pattern}]")
        print(report.describe())
    print()


def replay_demo() -> None:
    """Execute a simulated LeNet schedule on the real photonic engine."""
    network = serving_network("lenet5")
    requests = 12
    inputs = serving_batch(network, requests, seed=3)
    report = simulate_serving(
        network,
        poisson_arrivals(2e4, requests, seed=1),
        BatchingPolicy.dynamic(4, 1e-4),
        num_cores=2,
    )
    outputs = replay_on_engine(network, report, inputs)
    alone = PCNNA().run_network(network, inputs)
    sizes = [batch.size for batch in report.batches]
    print(
        f"replayed {requests} LeNet-5 requests as batches {sizes} on the "
        f"real engine; outputs bit-identical to per-request execution: "
        f"{bool(np.array_equal(outputs, alone))}"
    )


def kernel_mode_demo() -> None:
    """Vectorized vs reference mode: same numbers, a fraction of the time."""
    model = PipelineServiceModel.from_specs(alexnet_conv_specs(), 4)
    offered = 4.0 * model.capacity_rps(1)
    arrivals = poisson_arrivals(offered, 200_000, seed=5)
    policy = BatchingPolicy.fifo()

    timings = {}
    reports = {}
    for mode in ("reference", "vectorized"):
        began = time.perf_counter()
        reports[mode] = ServingSimulator(model, policy, mode=mode).run(
            arrivals
        )
        timings[mode] = time.perf_counter() - began

    identical = bool(
        np.array_equal(
            reports["reference"].completion_s,
            reports["vectorized"].completion_s,
        )
        and reports["reference"].batches == reports["vectorized"].batches
    )
    print(
        f"200k-request FIFO trace: reference {timings['reference']:.2f} s, "
        f"vectorized {timings['vectorized']:.3f} s "
        f"({timings['reference'] / timings['vectorized']:.0f}x); "
        f"reports bit-identical: {identical}"
    )


def main() -> None:
    policy_comparison()
    traffic_shapes()
    replay_demo()
    kernel_mode_demo()


if __name__ == "__main__":
    main()
