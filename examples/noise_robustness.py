#!/usr/bin/env python
"""Photonic non-idealities vs. convolution accuracy.

The paper treats the optical MAC as exact; this example quantifies how
far that holds by running the same convolution through the full device
simulation under each non-ideality:

* ring-tuning error (heater DAC resolution / thermal drift),
* inter-channel crosstalk as a function of ring quality factor,
* receiver shot + thermal noise,
* DAC/ADC quantization,
* everything together ("realistic" configuration).

Run:  python examples/noise_robustness.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core.config import PCNNAConfig
from repro.core.validation import compare_photonic_reference
from repro.photonics.microring import MicroringDesign
from repro.photonics.noise import NoiseConfig, realistic


def main() -> None:
    rng = np.random.default_rng(0)
    feature_map = rng.normal(size=(2, 10, 10))
    kernels = rng.normal(size=(4, 2, 3, 3))

    rows = []

    # Ideal baseline.
    report = compare_photonic_reference(feature_map, kernels, method="device")
    rows.append(["ideal device path", f"{report.max_rel_error:.2e}"])

    # Ring-tuning error sweep.
    for sigma in (1e-4, 1e-3, 1e-2):
        config = PCNNAConfig(
            noise=NoiseConfig(
                enabled=True, shot_noise=False, thermal_noise=False,
                ring_tuning_sigma=sigma, seed=1,
            )
        )
        report = compare_photonic_reference(feature_map, kernels, config=config)
        rows.append([f"tuning error sigma={sigma:g}", f"{report.max_rel_error:.2e}"])

    # Crosstalk vs quality factor.
    for q in (4_000, 16_000, 64_000):
        config = PCNNAConfig(
            ring_design=MicroringDesign(quality_factor=q),
            noise=NoiseConfig(
                enabled=True, shot_noise=False, thermal_noise=False,
                crosstalk=True, seed=2,
            ),
        )
        report = compare_photonic_reference(feature_map, kernels, config=config)
        rows.append([f"crosstalk, Q={q}", f"{report.max_rel_error:.2e}"])

    # Receiver noise.
    config = PCNNAConfig(noise=NoiseConfig(enabled=True, seed=3))
    report = compare_photonic_reference(feature_map, kernels, config=config)
    rows.append(["shot + thermal noise", f"{report.max_rel_error:.2e}"])

    # Converter quantization.
    report = compare_photonic_reference(feature_map, kernels, quantize=True)
    rows.append(["16b DAC + 12b ADC", f"{report.max_rel_error:.2e}"])

    # Everything at once.
    config = PCNNAConfig(noise=realistic(seed=4))
    report = compare_photonic_reference(
        feature_map, kernels, config=config, quantize=True
    )
    rows.append(["realistic (all effects)", f"{report.max_rel_error:.2e}"])

    print(
        format_table(
            ["configuration", "max relative conv error"],
            rows,
            title="Photonic non-idealities vs convolution accuracy "
            "(2x10x10 input, 4 kernels 3x3)",
        )
    )
    print(
        "\nTakeaways: tuning error and crosstalk dominate; crosstalk falls"
        "\nwith ring Q (narrower linewidth on the 100 GHz grid); converter"
        "\nquantization is negligible at the paper's 16-bit resolution."
    )


if __name__ == "__main__":
    main()
