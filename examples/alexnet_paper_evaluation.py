#!/usr/bin/env python
"""Regenerate the paper's full evaluation section on AlexNet.

Prints Fig. 5 (microring counts, filtered vs not), Fig. 6 (execution time
vs Eyeriss and YodaNN), the eq. 8 worked example, and the headline
speedup claims — everything a reader needs to compare this reproduction
against the paper side by side.

Run:  python examples/alexnet_paper_evaluation.py
"""

from repro.analysis import (
    format_count,
    format_orders_of_magnitude,
    format_table,
    format_time,
    log_bar_chart,
)
from repro.baselines import YodaNNModel, published_layer_time_s
from repro.core.analytical import analyze_network, network_totals
from repro.workloads import alexnet_conv_specs


def main() -> None:
    specs = alexnet_conv_specs()
    analyses = analyze_network(specs)
    yodann = YodaNNModel()

    # --- Fig. 5: microring counts -------------------------------------
    print(
        log_bar_chart(
            {
                "Not-Filtered": [a.rings_unfiltered for a in analyses],
                "Filtered": [a.rings_filtered for a in analyses],
            },
            [a.name for a in analyses],
            title="Fig. 5: microrings per AlexNet conv layer",
            unit="rings",
        )
    )

    conv1 = analyses[0]
    print(
        f"\nconv1 example: {format_count(conv1.rings_unfiltered)} rings unfiltered"
        f" -> {format_count(conv1.rings_filtered)} filtered"
        f" ({conv1.ring_savings:,.0f}x saving; paper: >150k x)"
    )
    conv4 = analyses[3]
    print(
        f"conv4 example: one bank = {conv4.rings_per_bank} rings"
        f" = {conv4.bank_area_mm2:.2f} mm^2 (paper: 2.2 mm^2)\n"
    )

    # --- eq. 8 worked example ------------------------------------------
    print(
        f"eq. 8 (conv4): {conv4.dac_updates_per_location:.1f} conversions per"
        " DAC per location (paper: ~116)\n"
    )

    # --- Fig. 6: execution time ----------------------------------------
    series = {
        "PCNNA(O)": [a.optical_time_s for a in analyses],
        "PCNNA(O+E)": [a.full_system_time_s for a in analyses],
        "YodaNN": [yodann.layer_time_s(a.spec) for a in analyses],
        "Eyeriss": [published_layer_time_s(a.name) for a in analyses],
    }
    print(
        log_bar_chart(
            series,
            [a.name for a in analyses],
            title="Fig. 6: AlexNet conv execution time",
            unit="s",
        )
    )
    print()
    print(
        format_table(
            ["layer"] + list(series),
            [
                [a.name] + [format_time(series[key][i]) for key in series]
                for i, a in enumerate(analyses)
            ],
            title="Fig. 6 data",
        )
    )

    # --- headline claims -------------------------------------------------
    optical_best = max(
        published_layer_time_s(a.name) / a.optical_time_s for a in analyses
    )
    full_best = max(
        published_layer_time_s(a.name) / a.full_system_time_s for a in analyses
    )
    totals = network_totals(analyses)
    print("\nHeadline claims:")
    print(
        f"  optical core peak speedup vs Eyeriss: {optical_best:,.0f}x "
        f"({format_orders_of_magnitude(optical_best)}; paper: up to 5 orders)"
    )
    print(
        f"  full system peak speedup vs Eyeriss:  {full_best:,.0f}x "
        f"({format_orders_of_magnitude(full_best)}; paper: >3 orders)"
    )
    print(
        f"  whole conv stack on PCNNA(O+E): "
        f"{format_time(totals['full_system_time_s'])} per image"
    )


if __name__ == "__main__":
    main()
