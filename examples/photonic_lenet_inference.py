#!/usr/bin/env python
"""End-to-end CNN inference with every convolution computed in light.

Runs LeNet-5 on a synthetic digit through the PCNNA functional engine:
each conv layer's receptive fields are encoded onto WDM wavelengths,
weighted by simulated microring banks, and summed on balanced
photodiodes; pooling/activation/dense layers run electronically, exactly
as the PCNNA system partitioning prescribes.  The photonic and
all-electronic outputs are compared class by class, first in ideal mode
and then with DAC/ADC quantization enabled.

Run:  python examples/photonic_lenet_inference.py
"""

import numpy as np

from repro import PCNNA, PCNNAConfig
from repro.core.accelerator import PhotonicConvolution
from repro.nn import build_lenet5
from repro.nn.layers import Conv2D


def synthetic_digit(seed: int = 0) -> np.ndarray:
    """A 32x32 'digit': a bright ring on a noisy background."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:32, 0:32]
    radius = np.sqrt((yy - 16.0) ** 2 + (xx - 16.0) ** 2)
    ring = np.exp(-((radius - 9.0) ** 2) / 6.0)
    return (ring + 0.05 * rng.normal(size=(32, 32)))[None, :, :]


def run_variant(name: str, accelerator: PCNNA, net, digit) -> np.ndarray:
    """Run one photonic variant and print its class distribution."""
    probs = accelerator.run_network(net, digit)
    top = int(np.argmax(probs))
    print(f"{name:<28} -> class {top}  (p = {probs[top]:.4f})")
    return probs


def main() -> None:
    net = build_lenet5(seed=0)
    digit = synthetic_digit()

    electronic = net.forward(digit)
    top = int(np.argmax(electronic))
    print(f"{'electronic reference':<28} -> class {top}  (p = {electronic[top]:.4f})")

    # Ideal photonic inference: must match exactly.
    ideal = run_variant("photonic (ideal)", PCNNA(), net, digit)
    max_err = float(np.max(np.abs(ideal - electronic)))
    print(f"  max class-probability error vs electronic: {max_err:.2e}")
    assert max_err < 1e-9

    # Quantized converters (16 b DAC / 12 b ADC).
    quantized_acc = PCNNA()
    quantized_acc.engine = PhotonicConvolution(PCNNAConfig(), quantize=True)
    quantized = run_variant("photonic (quantized IO)", quantized_acc, net, digit)
    print(
        "  max class-probability error vs electronic: "
        f"{float(np.max(np.abs(quantized - electronic))):.2e}"
    )
    assert int(np.argmax(quantized)) == top, "quantization must not flip the class"

    # Layer-by-layer conv workload summary.
    print("\nconv layers executed photonically:")
    side = net.input_shape[1]
    for layer, in_shape in zip(net.layers, net.layer_shapes[:-1]):
        if isinstance(layer, Conv2D):
            spec = layer.conv_spec(input_side=in_shape[1])
            print(
                f"  {spec.name}: {spec.n_locs} MAC waves x {spec.num_kernels} "
                f"kernels, {spec.n_kernel} wavelengths per wave"
            )


if __name__ == "__main__":
    main()
