#!/usr/bin/env python
"""Minibatch serving through the batch-native execution path.

PR 1 made the *photonic* conv substrate batched; the electronic side
(pool / activation / norm / dense) now matches it: every layer pushes
the whole minibatch through single array operations, and
``PCNNA.run_network`` never loops over images.  This example serves
AlexNet- and GoogLeNet-style stacks end-to-end batched, checks the
batched outputs are bit-identical to per-image execution, and runs the
same minibatch through the executable multi-core pipeline.

Run:  python examples/batched_serving.py
"""

import time

import numpy as np

from repro.core import PCNNA, run_network_pipelined
from repro.workloads import serving_batch, serving_network

BATCH = 4
SCALE = 0.05  # channel scale: faithful topology at tractable size


def main() -> None:
    accelerator = PCNNA()

    for name in ("alexnet", "googlenet-stem"):
        network = serving_network(name, scale=SCALE)
        images = serving_batch(network, BATCH)

        began = time.perf_counter()
        batched = accelerator.run_network(network, images)
        batched_s = time.perf_counter() - began

        per_image = np.stack(
            [accelerator.run_network(network, image) for image in images]
        )
        exact = bool(np.array_equal(batched, per_image))

        print(f"{network.name}: batch={BATCH} -> outputs {batched.shape}")
        print(
            f"  whole-batch run: {batched_s:.2f} s; bit-identical to "
            f"per-image execution: {exact}"
        )

        result = run_network_pipelined(network, images, num_cores=3)
        print("  " + result.describe().replace("\n", "\n  "))
        print()


if __name__ == "__main__":
    main()
