#!/usr/bin/env python
"""Deployment study: from the paper's single core to a serving system.

The paper evaluates one PCNNA core on one image.  A deployment cares
about sustained throughput; this example walks the three levers the
library models:

1. **batching** on one core — amortizes the once-per-layer weight load
   (which dominates single-image latency);
2. **inter-layer pipelining** over several cores — weight-stationary,
   bounded by the slowest layer slice;
3. **pruning** — trades conv accuracy for rings, heater power, and area;
4. **executing** the pipeline: the same balanced partition drives a real
   minibatch through the functional photonic engine, stage by stage.

Run:  python examples/pipelined_deployment.py
"""

import numpy as np

from repro.analysis import format_count, format_table, format_time
from repro.core.batching import network_batch_timing, weight_stationary_crossover
from repro.core.multicore import balanced_partition, pipeline_speedup
from repro.core.pruning import sparse_mapping_report, threshold_for_sparsity
from repro.core.serving import run_network_pipelined
from repro.nn import build_lenet5
from repro.workloads import alexnet_conv_specs


def main() -> None:
    specs = alexnet_conv_specs()

    # --- lever 1: batching on one core ---------------------------------
    crossover = weight_stationary_crossover(specs)
    rows = []
    for batch in (1, crossover, 256):
        timing = network_batch_timing(specs, batch)
        rows.append(
            [
                batch,
                format_time(timing.per_image_s),
                f"{timing.images_per_s:,.0f} img/s",
                f"{timing.weight_load_fraction:.0%}",
            ]
        )
    print(
        format_table(
            ["batch", "per-image latency", "throughput", "weight-load share"],
            rows,
            title=f"1) single core + batching (crossover batch = {crossover})",
        )
    )

    # --- lever 2: pipeline over cores ------------------------------------
    rows = []
    for cores in range(1, len(specs) + 1):
        partition = balanced_partition(specs, cores)
        layer_names = [
            "+".join(spec.name for spec in specs[start:end])
            for start, end in partition.slices
        ]
        rows.append(
            [
                cores,
                f"{partition.images_per_s:,.0f} img/s",
                f"{pipeline_speedup(specs, cores):.2f}x",
                " | ".join(layer_names),
            ]
        )
    print()
    print(
        format_table(
            ["cores", "throughput", "speedup", "layer assignment"],
            rows,
            title="2) weight-stationary pipeline over PCNNA cores",
        )
    )
    print(
        "   conv1's DAC-bound 6.7 us slice caps the speedup — the paper's\n"
        "   flat-in-K scaling does not help an imbalanced pipeline."
    )

    # --- lever 3: pruning ----------------------------------------------
    rng = np.random.default_rng(0)
    conv4_weights = rng.normal(0.0, 0.1, size=(384, 384, 3, 3))
    rows = []
    for sparsity in (0.0, 0.5, 0.9):
        threshold = threshold_for_sparsity(conv4_weights, sparsity)
        report = sparse_mapping_report(conv4_weights, threshold)
        rows.append(
            [
                f"{sparsity:.0%}",
                format_count(report.active_rings),
                f"{report.tuning_power_saved_w:,.0f} W",
                f"{report.rings_area_saved_mm2:,.0f} mm^2",
                f"{report.energy_retained:.1%}",
            ]
        )
    print()
    print(
        format_table(
            ["pruned", "rings live", "heater power saved", "area saved",
             "weight energy kept"],
            rows,
            title="3) magnitude pruning of conv4's 1.33 M rings",
        )
    )
    print(
        "   At 90 % sparsity conv4 fits in ~133 K rings (83 mm^2 of rings\n"
        "   instead of 829 mm^2) and sheds ~1.2 kW of heater power."
    )

    # --- lever 4: execute the pipeline ----------------------------------
    network = build_lenet5(seed=0)
    images = np.random.default_rng(1).normal(size=(8, 1, 32, 32))
    result = run_network_pipelined(network, images, num_cores=3)
    print()
    print("4) executable pipeline (LeNet-5, real photonic engine, batch=8)")
    print("   " + result.describe().replace("\n", "\n   "))
    print(
        "   Outputs are bit-identical to the single-core run: pipelining\n"
        "   moves *when* a core sees an image, never *what* it computes."
    )


if __name__ == "__main__":
    main()
