#!/usr/bin/env python
"""Multi-tenant cluster serving on a shared photonic core pool.

The traffic and fault demos serve one model; this one co-serves many.
It

1. runs the named tenant mixes (interactive+batch, a four-model zoo,
   and a 10x minority/majority split) over a shared pool, sweeping the
   pool size to show when shedding stops and tails settle;
2. contrasts weighted-fair and priority routing under the same
   overload: weighted-fair guarantees the minority tenant its share,
   priority strips low-priority tenants down to one core;
3. shows elastic reallocation — a bursty tenant finishes, its cores
   drain back to the pool, and the pressured tenant's pipeline widens
   mid-run;
4. replays one tenant's simulated batches on the *real* photonic
   engine at the per-batch pipeline widths and checks the outputs are
   bit-identical to running every served request alone.

Run:  python examples/cluster_serving.py
"""

import numpy as np

from repro.analysis import (
    CLUSTER_SWEEP_HEADER,
    format_table,
    sweep_cluster_serving,
)
from repro.core import (
    PCNNA,
    BatchingPolicy,
    ClusterTenant,
    ElasticReallocation,
    RoutingPolicy,
    replay_tenant_on_engine,
    simulate_cluster_serving,
)
from repro.workloads import (
    CLUSTER_MIXES,
    cluster_mix,
    poisson_arrivals,
    serving_batch,
    serving_network,
)


def mix_tour() -> None:
    """Every named mix, swept over pool sizes."""
    for name in CLUSTER_MIXES:
        tenants, arrivals = cluster_mix(name, 20_000.0, 2_000, seed=7)
        points = sweep_cluster_serving(
            tenants,
            arrivals,
            pool_sizes=[len(tenants), len(tenants) * 2],
            elastic=ElasticReallocation(),
        )
        print(
            format_table(
                CLUSTER_SWEEP_HEADER,
                [row for point in points for row in point.rows()],
                title=f"mix '{name}': pool-size sweep over one shared trace",
            )
        )
        print()


def routing_comparison() -> None:
    """Weighted-fair vs priority under a 10x noisy neighbour.

    The total rate is chosen so the majority tenant offers about twice
    its share of the pool's capacity: admission control sheds the
    excess while the minority tenant's tail stays flat.
    """
    tenants, arrivals = cluster_mix("minority-majority", 3e6, 4_000, 3)
    for routing in (RoutingPolicy.weighted_fair(), RoutingPolicy.priority()):
        report = simulate_cluster_serving(
            tenants,
            arrivals,
            pool_size=2,
            routing=routing,
            elastic=ElasticReallocation(),
        )
        minority = report.tenant("minority")
        print(
            f"[{routing.kind}] minority p99 "
            f"{minority.p99_s * 1e6:.0f} us over cores "
            f"{sorted(set(int(w) for w in minority.batch_num_cores))}, "
            f"majority shed {report.tenant('majority').shed_fraction:.0%}"
        )
    print()


def elastic_demo() -> None:
    """A finished tenant's cores drain to the pressured one."""
    network = serving_network("lenet5")
    heavy = ClusterTenant.from_network(
        "steady", network, BatchingPolicy.dynamic(8, 1e-3)
    )
    burst = ClusterTenant.from_network(
        "burst", network, BatchingPolicy.dynamic(4, 1e-4)
    )
    arrivals = {
        "steady": poisson_arrivals(1.5e6, 4_000, seed=1),
        "burst": poisson_arrivals(2e6, 150, seed=2),
    }
    report = simulate_cluster_serving(
        [heavy, burst], arrivals, pool_size=3, elastic=ElasticReallocation()
    )
    widths = report.tenant("steady").batch_num_cores
    print(
        f"elastic reallocation: steady tenant went from {widths[0]} to "
        f"{widths.max()} cores after the burst tenant finished "
        f"({len(report.reallocations)} moves)"
    )
    print(report.describe())
    print()


def replay_demo() -> None:
    """Execute one tenant's cluster schedule on the real engine."""
    network = serving_network("lenet5")
    requests = 12
    inputs = serving_batch(network, requests, seed=3)
    policy = BatchingPolicy.dynamic(4, 1e-4)
    report = simulate_cluster_serving(
        [ClusterTenant.from_network("lenet", network, policy)],
        {"lenet": poisson_arrivals(2e4, requests, seed=1)},
        pool_size=2,
    ).tenant("lenet")
    outputs = replay_tenant_on_engine(network, report, inputs)
    alone = PCNNA().run_network(network, inputs)
    sizes = [batch.size for batch in report.batches]
    print(
        f"replayed {requests} requests of tenant 'lenet' as batches "
        f"{sizes} at widths {report.batch_num_cores.tolist()} on the real "
        f"engine; outputs bit-identical to per-request execution: "
        f"{bool(np.array_equal(outputs, alone))}"
    )


def main() -> None:
    mix_tour()
    routing_comparison()
    elastic_demo()
    replay_demo()


if __name__ == "__main__":
    main()
