#!/usr/bin/env python
"""Weight-bank spectroscopy: look at the optics behind the math.

Programs a small MRR weight bank with a weight vector, sweeps a virtual
tunable laser across the WDM grid, and plots the aggregate drop-bus
spectrum — the measurement a photonics lab would do to verify the bank.
Then it quantifies adjacent-channel isolation as a function of ring
quality factor, the device-level origin of the crosstalk ablation.

Run:  python examples/bank_spectroscopy.py
"""

import numpy as np

from repro.analysis import ascii_line_plot, format_table
from repro.photonics import (
    MicroringDesign,
    WdmGrid,
    WeightBank,
    channel_isolation_db,
    ideal,
    sweep_bank_spectrum,
)


def main() -> None:
    weights = np.array([1.0, 0.25, -0.5, 0.75])
    grid = WdmGrid(num_channels=4)
    bank = WeightBank(grid, MicroringDesign(quality_factor=20_000), ideal())
    bank.set_weights(weights)

    print(f"programmed weights: {weights.tolist()}")
    print(
        "ring drop fractions (d = (1+w)/2):",
        [f"{(1 + w) / 2:.3f}" for w in weights],
    )

    spectrum = sweep_bank_spectrum(bank, span_factor=1.4, num_points=800)
    offsets_ghz = (spectrum.frequencies_hz - grid.center_frequency_hz) / 1e9
    print()
    print(
        ascii_line_plot(
            offsets_ghz.tolist(),
            spectrum.drop.tolist(),
            title="aggregate drop-bus spectrum (4-ring bank, Q = 20k, "
            "100 GHz grid)",
            x_label="offset from grid center (GHz)",
            y_label="drop fraction",
        )
    )
    print(
        "\nEach Lorentzian is one ring; the weight is set by how far the"
        "\nring's resonance is parked from its channel (the grid points at"
        "\n-150/-50/+50/+150 GHz), not by the peak height: weight +1 sits"
        "\nexactly on channel, weight -1 far off channel."
    )

    rows = []
    for q in (2_000, 8_000, 32_000, 128_000):
        test_bank = WeightBank(grid, MicroringDesign(quality_factor=q), ideal())
        rows.append([q, f"{channel_isolation_db(test_bank):.1f} dB"])
    print()
    print(
        format_table(
            ["quality factor", "adjacent-channel isolation"],
            rows,
            title="why crosstalk falls with Q (fully-on bank, 100 GHz spacing)",
        )
    )


if __name__ == "__main__":
    main()
