#!/usr/bin/env python
"""Quickstart: analyze a CNN layer on PCNNA and run a photonic convolution.

Covers the library's three entry points in under a minute:

1. the analytical framework — ring counts, area, and execution time for
   an AlexNet layer (the paper's section V);
2. the cycle-level timing simulator — the same layer walked location by
   location through the Fig. 4 pipeline;
3. the functional photonic engine — a real convolution computed through
   simulated lasers, modulators, microring banks and photodiodes, checked
   against the NumPy reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PCNNA
from repro.analysis import format_count, format_time
from repro.core.config import paper_assumptions
from repro.nn import functional as F
from repro.workloads import alexnet_layer


def main() -> None:
    accelerator = PCNNA()
    spec = alexnet_layer("conv4")

    # 1. Analytical framework (paper section V).
    analysis = accelerator.analyze_layer(spec)
    print("== analytical model:", spec.describe())
    print(f"   rings, filtered (eq. 5):    {format_count(analysis.rings_filtered)}")
    print(f"   rings, not filtered (eq. 4): {format_count(analysis.rings_unfiltered)}")
    print(f"   one-bank area:               {analysis.bank_area_mm2:.2f} mm^2")
    print(f"   optical-core time (eq. 7):   {format_time(analysis.optical_time_s)}")
    print(f"   full-system time (eq. 8):    {format_time(analysis.full_system_time_s)}")

    # 2. Cycle-level simulation (under the paper's memory assumptions).
    timing = PCNNA(paper_assumptions()).simulate_layer(spec, include_adc=False)
    print("\n== cycle-level simulation")
    print(f"   pipelined layer time: {format_time(timing.pipelined_time_s)}")
    print(f"   bottleneck stage:     {timing.bottleneck}")
    print(f"   vs analytical model:  {timing.analytical_agreement:.3f}x")

    # 3. Functional photonic convolution.
    rng = np.random.default_rng(0)
    feature_map = rng.normal(size=(3, 16, 16))
    kernels = rng.normal(size=(8, 3, 3, 3))
    photonic = accelerator.convolve(feature_map, kernels, stride=1, padding=1)
    reference = F.conv2d(feature_map, kernels, stride=1, padding=1)
    error = float(np.max(np.abs(photonic - reference)))
    print("\n== functional photonic convolution")
    print(f"   output shape: {photonic.shape}")
    print(f"   max |photonic - reference| = {error:.2e}")
    assert error < 1e-9, "ideal-mode photonic conv must match the reference"
    print("   photonic output matches the NumPy reference exactly.")


if __name__ == "__main__":
    main()
