#!/usr/bin/env python
"""Design-space exploration with the PCNNA analytical framework.

The paper fixes N_DAC = 10, a 5 GHz optical clock, and one bank per
kernel; this example sweeps each choice on AlexNet conv4 and prints where
the knees are:

* DAC count — eq. 8 serialization vs the optical-clock floor;
* optical clock — eq. 7 scaling (and when it stops mattering);
* kernel count — the flat-time / linear-rings headline property;
* bank budget — how a finite chip breaks the flat-time property;
* stride — front-end load vs output resolution.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import (
    format_count,
    format_table,
    format_time,
    sweep_fast_clock,
    sweep_kernel_count,
    sweep_num_dacs,
    sweep_stride,
)
from repro.core.config import PCNNAConfig
from repro.workloads import alexnet_layer


def show(title: str, headers, rows) -> None:
    print()
    print(format_table(headers, rows, title=title))


def main() -> None:
    conv4 = alexnet_layer("conv4")
    print(f"workload: AlexNet {conv4.describe()}")

    # --- DAC count -----------------------------------------------------
    points = sweep_num_dacs(conv4, [1, 2, 5, 10, 20, 50, 100, 576, 2000])
    show(
        "sweep: input-DAC count (paper picks 10)",
        ["N_DAC", "full-system time", "gap to optical floor"],
        [
            [
                int(p.parameter),
                format_time(p.full_system_time_s),
                f"{p.full_system_time_s / p.optical_time_s:.1f}x",
            ]
            for p in points
        ],
    )

    # --- optical clock ---------------------------------------------------
    points = sweep_fast_clock(conv4, [1e9, 2e9, 5e9, 10e9, 20e9, 50e9])
    show(
        "sweep: optical-core clock (paper picks 5 GHz)",
        ["clock", "PCNNA(O)", "PCNNA(O+E)"],
        [
            [
                f"{p.parameter / 1e9:g} GHz",
                format_time(p.optical_time_s),
                format_time(p.full_system_time_s),
            ]
            for p in points
        ],
    )
    print(
        "  note: past ~5 GHz the DAC bound hides further optical gains —"
        " the paper's clock choice is already IO-matched."
    )

    # --- kernel count ----------------------------------------------------
    points = sweep_kernel_count(conv4, [48, 96, 192, 384, 768, 1536])
    show(
        "sweep: kernel count K (unlimited banks)",
        ["K", "full-system time", "rings (eq. 5)"],
        [
            [int(p.parameter), format_time(p.full_system_time_s),
             format_count(p.rings)]
            for p in points
        ],
    )

    capped = PCNNAConfig(max_parallel_kernels=96)
    points = sweep_kernel_count(conv4, [48, 96, 192, 384, 768, 1536], capped)
    show(
        "sweep: kernel count K (96-bank chip)",
        ["K", "full-system time"],
        [[int(p.parameter), format_time(p.full_system_time_s)] for p in points],
    )

    # --- stride ----------------------------------------------------------
    points = sweep_stride(conv4, [1, 2, 3])
    show(
        "sweep: stride s",
        ["s", "locations", "PCNNA(O)", "PCNNA(O+E)"],
        [
            [
                int(p.parameter),
                int(round(p.optical_time_s * 5e9)),
                format_time(p.optical_time_s),
                format_time(p.full_system_time_s),
            ]
            for p in points
        ],
    )
    print(
        "  note: larger strides shrink Nlocs quadratically but also raise"
        " eq. 8's per-location update load linearly — and lose output"
        " resolution, which is why the paper prefers s = 1."
    )


if __name__ == "__main__":
    main()
