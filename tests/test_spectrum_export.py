"""Tests for bank spectrum sweeps and result export."""

import json

import numpy as np
import pytest

from repro.analysis.export import results_to_json, series_to_csv, write_text
from repro.photonics.microring import MicroringDesign
from repro.photonics.noise import ideal
from repro.photonics.spectrum import channel_isolation_db, sweep_bank_spectrum
from repro.photonics.wdm import WdmGrid
from repro.photonics.weight_bank import WeightBank


def make_bank(num_rings=4, **design_kwargs) -> WeightBank:
    return WeightBank(
        WdmGrid(num_rings), MicroringDesign(**design_kwargs), ideal()
    )


class TestSpectrum:
    def test_energy_conservation(self):
        bank = make_bank()
        bank.set_weights(np.array([1.0, 0.5, -0.5, 0.0]))
        spectrum = sweep_bank_spectrum(bank)
        total = spectrum.drop + spectrum.through
        assert np.all(total <= 1.0 + 1e-9)
        assert np.all(spectrum.drop >= -1e-12)
        assert np.all(spectrum.through >= -1e-12)

    def test_drop_peaks_near_channels(self):
        bank = make_bank()
        bank.set_weights(np.ones(4))
        spectrum = sweep_bank_spectrum(bank, num_points=4001)
        for channel in range(4):
            frequency = bank.grid.frequency_of(channel)
            index = int(np.argmin(np.abs(spectrum.frequencies_hz - frequency)))
            assert spectrum.drop[index] > 0.9

    def test_through_high_between_channels(self):
        bank = make_bank(quality_factor=50_000)
        bank.set_weights(np.ones(4))
        spectrum = sweep_bank_spectrum(bank, num_points=4001)
        # Midpoint between channels 0 and 1.
        mid = (bank.grid.frequency_of(0) + bank.grid.frequency_of(1)) / 2
        index = int(np.argmin(np.abs(spectrum.frequencies_hz - mid)))
        assert spectrum.through[index] > 0.9

    def test_sweep_rejects_bad_parameters(self):
        bank = make_bank()
        with pytest.raises(ValueError):
            sweep_bank_spectrum(bank, span_factor=0.0)
        with pytest.raises(ValueError):
            sweep_bank_spectrum(bank, num_points=1)

    def test_isolation_improves_with_q(self):
        low = channel_isolation_db(make_bank(quality_factor=4_000))
        high = channel_isolation_db(make_bank(quality_factor=40_000))
        assert high > low
        assert low > 0.0

    def test_isolation_single_ring_infinite(self):
        assert channel_isolation_db(make_bank(num_rings=1)) == float("inf")


class TestExport:
    def test_csv_roundtrip(self):
        csv_text = series_to_csv(
            {"a": [1.0, 2.0], "b": [3.0, 4.0]}, ["x", "y"]
        )
        lines = csv_text.strip().splitlines()
        assert lines[0] == "layer,a,b"
        assert lines[1].startswith("x,")
        assert len(lines) == 3

    def test_csv_length_mismatch(self):
        with pytest.raises(ValueError):
            series_to_csv({"a": [1.0]}, ["x", "y"])

    def test_json_dataclasses(self):
        from repro.core.analytical import analyze_layer
        from repro.workloads import alexnet_layer

        analysis = analyze_layer(alexnet_layer("conv4"))
        decoded = json.loads(results_to_json([analysis]))
        assert decoded[0]["rings_per_bank"] == 3456
        assert decoded[0]["spec"]["name"] == "conv4"

    def test_json_plain_dicts(self):
        decoded = json.loads(results_to_json([{"k": 1, "v": [1, 2]}]))
        assert decoded[0]["v"] == [1, 2]

    def test_json_numpy_scalars(self):
        decoded = json.loads(results_to_json([{"x": np.float64(1.5)}]))
        assert decoded[0]["x"] == 1.5

    def test_write_text(self, tmp_path):
        target = write_text(tmp_path / "sub" / "out.csv", "hello")
        assert target.read_text() == "hello"
