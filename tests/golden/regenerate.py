#!/usr/bin/env python
"""Regenerate the golden regression fixtures.

Run from the repository root (only when an *intentional* numeric change
ships — the diff in the fixtures is the reviewable artifact):

    PYTHONPATH=src python tests/golden/regenerate.py

Each fixture is a compressed ``.npz`` holding a fixed-seed end-to-end
trace of the full accelerator stack: the minibatch outputs and the first
conv layer's photonic feature maps, for LeNet-5 and the GoogLeNet stem,
in ideal and DAC/ADC-quantized modes.  ``tests/test_golden_regression.py``
recomputes the traces and fails loudly on any bit of drift.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.core.accelerator import PCNNA, PhotonicConvolution
from repro.core.adaptive import (
    DECISION_ACTIONS,
    AdaptiveRecalibration,
    simulate_adaptive_serving,
)
from repro.core.faults import (
    FaultEvent,
    FaultSchedule,
    RecalibrationPolicy,
    replay_on_engine_degraded,
    simulate_degraded_serving,
)
from repro.core.cluster import ClusterTenant, simulate_cluster_serving
from repro.core.fleet import (
    RegionSpec,
    simulate_fleet_serving,
    uniform_rtt,
)
from repro.core.traffic import (
    BatchingPolicy,
    PipelineServiceModel,
    ServingSimulator,
)
from repro.nn.layers import Conv2D
from repro.workloads import (
    cluster_mix,
    fault_scenario,
    lenet5_conv_specs,
    poisson_arrivals,
    serving_batch,
    serving_network,
)

GOLDEN_DIR = Path(__file__).resolve().parent
BATCH = 2
INPUT_SEED = 1234
WEIGHT_SEED = 7
SCALE = 0.02  # GoogLeNet-stem channel scale (tractable, fixed forever)

CASES: tuple[tuple[str, str], ...] = (
    ("lenet5", "ideal"),
    ("lenet5", "quantized"),
    ("googlenet-stem", "ideal"),
    ("googlenet-stem", "quantized"),
)

# -- canonical faulted LeNet-5 serving trace (PR 4) -----------------------
FAULTED_REQUESTS = 10
FAULTED_ARRIVAL_SEED = 21
FAULTED_ARRIVAL_RATE_RPS = 2e4
FAULTED_CORES = 2
FAULTED_DRIFT_TOTAL_K = 0.08  # ambient accumulated over the trace
FAULTED_DEAD_RING_AT = 0.6  # fraction of the horizon


def faulted_schedule(horizon_s: float) -> FaultSchedule:
    """The canonical fault schedule: both cores drift, core 1 loses a
    ring late in the trace (severe, unrecalibratable degradation)."""
    rate = FAULTED_DRIFT_TOTAL_K / horizon_s
    return FaultSchedule(
        name="golden-faulted",
        events=(
            FaultEvent("thermal_ramp", 0, 0.0, rate),
            FaultEvent("thermal_ramp", 1, 0.0, rate),
            FaultEvent(
                "dead_rings",
                1,
                FAULTED_DEAD_RING_AT * horizon_s,
                1.0,
                rings=(7,),
            ),
        ),
    )


def compute_faulted_trace() -> dict[str, np.ndarray]:
    """One deterministic degraded-mode serving trace end to end.

    Covers the whole PR 4 surface in one fixture: drift state machines,
    the online recalibration policy (downtime accounting), the per-batch
    photodiode-level accuracy proxy, and the degraded engine replay with
    its golden-output divergence.
    """
    network = serving_network("lenet5", seed=WEIGHT_SEED)
    inputs = serving_batch(network, FAULTED_REQUESTS, seed=INPUT_SEED)
    arrivals = poisson_arrivals(
        FAULTED_ARRIVAL_RATE_RPS, FAULTED_REQUESTS, seed=FAULTED_ARRIVAL_SEED
    )
    report = simulate_degraded_serving(
        network,
        arrivals,
        BatchingPolicy.dynamic(4, 1e-4),
        faulted_schedule(float(arrivals[-1])),
        num_cores=FAULTED_CORES,
        recalibration=RecalibrationPolicy(),
        repartition=False,
    )
    replay = replay_on_engine_degraded(network, report, inputs)
    return {
        "inputs_sha256": input_digest(inputs),
        "arrival_s": report.arrival_s,
        "dispatch_s": report.dispatch_s,
        "completion_s": report.completion_s,
        "batch_sizes": np.array([b.size for b in report.batches]),
        "accuracy_proxy": report.accuracy_proxy,
        "core_downtime_s": np.array(report.core_downtime_s),
        "outputs": replay.outputs,
        "reference_outputs": replay.reference_outputs,
        "divergence_per_batch": replay.divergence_per_batch,
        "meta_requests": np.array(FAULTED_REQUESTS),
        "meta_input_seed": np.array(INPUT_SEED),
        "meta_weight_seed": np.array(WEIGHT_SEED),
        "meta_arrival_seed": np.array(FAULTED_ARRIVAL_SEED),
        "meta_drift_total_k": np.array(FAULTED_DRIFT_TOTAL_K),
    }


# -- canonical vectorized dynamic-batching serving trace (PR 6) -----------
TRAFFIC_REQUESTS = 2000
TRAFFIC_ARRIVAL_SEED = 37
TRAFFIC_CORES = 3
TRAFFIC_MAX_BATCH = 8
TRAFFIC_MAX_WAIT_S = 1e-4
TRAFFIC_LOAD_FACTOR = 2.0  # offered load over full-batch capacity


def compute_traffic_trace() -> dict[str, np.ndarray]:
    """One deterministic vectorized serving trace end to end.

    The fixture pins the PR 6 vectorized kernel's complete observable
    surface on the canonical dynamic-batching scenario: the per-batch
    plan (heads, widths, dispatches), the per-request streams, the busy
    accounting, and the latency percentiles.  Because the vectorized
    and reference modes are pinned bit-identical elsewhere, this one
    fixture guards both.
    """
    model = PipelineServiceModel.from_specs(lenet5_conv_specs(), TRAFFIC_CORES)
    rate = TRAFFIC_LOAD_FACTOR * model.capacity_rps(TRAFFIC_MAX_BATCH)
    arrivals = poisson_arrivals(
        rate, TRAFFIC_REQUESTS, seed=TRAFFIC_ARRIVAL_SEED
    )
    policy = BatchingPolicy.dynamic(TRAFFIC_MAX_BATCH, TRAFFIC_MAX_WAIT_S)
    report = ServingSimulator(model, policy, mode="vectorized").run(arrivals)
    return {
        "arrivals_sha256": input_digest(arrivals),
        "dispatch_s": report.dispatch_s,
        "completion_s": report.completion_s,
        "batch_first_request": np.array(
            [b.first_request for b in report.batches]
        ),
        "batch_sizes": np.array([b.size for b in report.batches]),
        "batch_dispatch_s": np.array([b.dispatch_s for b in report.batches]),
        "batch_completion_s": np.array(
            [b.completion_s for b in report.batches]
        ),
        "core_busy_s": np.array(report.core_busy_s),
        "percentiles_s": np.array([report.p50_s, report.p95_s, report.p99_s]),
        "meta_requests": np.array(TRAFFIC_REQUESTS),
        "meta_arrival_seed": np.array(TRAFFIC_ARRIVAL_SEED),
        "meta_cores": np.array(TRAFFIC_CORES),
        "meta_max_batch": np.array(TRAFFIC_MAX_BATCH),
        "meta_max_wait_s": np.array(TRAFFIC_MAX_WAIT_S),
        "meta_load_factor": np.array(TRAFFIC_LOAD_FACTOR),
    }


# -- canonical two-region failover trace (PR 8) ---------------------------
FLEET_REQUESTS_PER_STREAM = 300
FLEET_ARRIVAL_SEED = 53
FLEET_RATE_RPS = 6e3  # per (region, tenant) stream
FLEET_POOL_SIZE = 4
FLEET_RTT_S = 0.01
FLEET_OUTAGE_ONSET = 0.4  # fraction of the horizon
FLEET_OUTAGE_SPAN = 0.3  # fraction of the horizon
FLEET_STREAMS: tuple[tuple[str, str], ...] = (
    ("east", "interactive"),
    ("east", "batch"),
    ("west", "interactive"),
    ("west", "batch"),
)


def compute_fleet_failover_trace() -> dict[str, np.ndarray]:
    """One deterministic two-region failover trace end to end.

    The fixture pins the PR 8 fleet runtime's complete observable
    surface on the canonical failover scenario — a severe mid-run
    TIA-droop outage in the east region under geo-affinity routing:
    every routing decision, the failover window and its measured
    recovery latency, the per-stream latency arrays (RTT legs
    included), and the global and per-region percentiles.
    """
    tenants = (
        ClusterTenant(
            "interactive",
            tuple(lenet5_conv_specs()),
            BatchingPolicy.dynamic(4, 1e-4),
            weight=2.0,
        ),
        ClusterTenant(
            "batch",
            tuple(lenet5_conv_specs()),
            BatchingPolicy.fixed(8),
        ),
    )
    arrival_s: dict[str, dict[str, np.ndarray]] = {"east": {}, "west": {}}
    for position, (region, tenant) in enumerate(FLEET_STREAMS):
        arrival_s[region][tenant] = poisson_arrivals(
            FLEET_RATE_RPS,
            FLEET_REQUESTS_PER_STREAM,
            seed=FLEET_ARRIVAL_SEED + position,
        )
    horizon_s = max(
        float(arrival_s[region][tenant][-1])
        for region, tenant in FLEET_STREAMS
    )
    outage = FaultSchedule(
        name="golden-fleet-outage",
        events=tuple(
            FaultEvent(
                "tia_droop",
                core,
                FLEET_OUTAGE_ONSET * horizon_s,
                0.9,
                duration_s=FLEET_OUTAGE_SPAN * horizon_s,
            )
            for core in range(FLEET_POOL_SIZE)
        ),
    )
    report = simulate_fleet_serving(
        tenants,
        (
            RegionSpec("east", FLEET_POOL_SIZE, schedule=outage),
            RegionSpec("west", FLEET_POOL_SIZE),
        ),
        arrival_s,
        rtt_s=uniform_rtt(2, FLEET_RTT_S),
    )
    assert report.failovers, "the golden scenario must actually fail over"
    record = report.failovers[0]
    fixture: dict[str, np.ndarray] = {
        "arrivals_sha256": input_digest(
            np.concatenate(
                [arrival_s[region][tenant] for region, tenant in FLEET_STREAMS]
            )
        ),
        "failover_window_s": np.array([record.onset_s, record.until_s]),
        "failover_latency_s": np.array(record.failover_latency_s),
        "failover_rerouted": np.array(record.rerouted),
        "global_percentiles_s": np.array(
            [report.p50_s, report.p95_s, report.p99_s]
        ),
        "region_percentiles_s": np.array(
            [
                [outcome.p50_s, outcome.p95_s, outcome.p99_s]
                for outcome in report.regions
            ]
        ),
        "placement_efficiency": np.array(report.placement_efficiency),
        "meta_requests_per_stream": np.array(FLEET_REQUESTS_PER_STREAM),
        "meta_arrival_seed": np.array(FLEET_ARRIVAL_SEED),
        "meta_rtt_s": np.array(FLEET_RTT_S),
        "meta_pool_size": np.array(FLEET_POOL_SIZE),
    }
    for region, tenant in FLEET_STREAMS:
        trace = report.trace(region, tenant)
        prefix = f"{region}_{tenant}"
        fixture[f"{prefix}_server_region"] = trace.server_region
        fixture[f"{prefix}_served"] = trace.served
        fixture[f"{prefix}_latency_s"] = trace.latency_s
    return fixture


# -- canonical adaptive-recalibration trace (PR 9) ------------------------
ADAPTIVE_REQUESTS = 96
ADAPTIVE_ARRIVAL_SEED = 11
ADAPTIVE_ARRIVAL_RATE_RPS = 2e4
ADAPTIVE_CORES = 2
ADAPTIVE_FAULT = "tia-aging"
ADAPTIVE_SMOOTHING = 0.45
ADAPTIVE_LEAD_FRACTION = 0.08  # lead time as a fraction of the horizon
ADAPTIVE_ERROR_THRESHOLD = 0.05


def compute_adaptive_recal_trace() -> dict[str, np.ndarray]:
    """One deterministic EWMA-controlled serving trace end to end.

    The fixture pins the PR 9 adaptive control plane's observable
    surface on the canonical drifting-LeNet scenario: the controller's
    complete decision log (instants, cores, actions, raw/smoothed/
    projected errors), the per-batch accuracy proxy it steered, the
    downtime it spent, and the latency percentiles of the run it shaped.
    """
    network = serving_network("lenet5", seed=WEIGHT_SEED)
    arrivals = poisson_arrivals(
        ADAPTIVE_ARRIVAL_RATE_RPS, ADAPTIVE_REQUESTS, seed=ADAPTIVE_ARRIVAL_SEED
    )
    horizon_s = float(arrivals[-1])
    controller = AdaptiveRecalibration(
        base=RecalibrationPolicy(error_threshold=ADAPTIVE_ERROR_THRESHOLD),
        smoothing=ADAPTIVE_SMOOTHING,
        lead_time_s=ADAPTIVE_LEAD_FRACTION * horizon_s,
    )
    report = simulate_adaptive_serving(
        network,
        arrivals,
        BatchingPolicy.dynamic(4, 1e-4),
        fault_scenario(ADAPTIVE_FAULT, ADAPTIVE_CORES, horizon_s),
        ADAPTIVE_CORES,
        controller=controller,
    )
    decisions = report.decisions
    return {
        "arrivals_sha256": input_digest(arrivals),
        "dispatch_s": report.dispatch_s,
        "completion_s": report.completion_s,
        "batch_sizes": np.array([b.size for b in report.batches]),
        "accuracy_proxy": report.accuracy_proxy,
        "core_downtime_s": np.array(report.core_downtime_s),
        "decision_time_s": np.array([d.time_s for d in decisions]),
        "decision_core": np.array([d.core for d in decisions]),
        "decision_action": np.array(
            [DECISION_ACTIONS.index(d.action) for d in decisions]
        ),
        "decision_error": np.array([d.error for d in decisions]),
        "decision_smoothed": np.array([d.smoothed for d in decisions]),
        "decision_projected": np.array([d.projected for d in decisions]),
        "num_recalibrations": np.array(len(report.recalibrations)),
        "percentiles_s": np.array([report.p50_s, report.p95_s, report.p99_s]),
        "meta_requests": np.array(ADAPTIVE_REQUESTS),
        "meta_arrival_seed": np.array(ADAPTIVE_ARRIVAL_SEED),
        "meta_weight_seed": np.array(WEIGHT_SEED),
        "meta_cores": np.array(ADAPTIVE_CORES),
        "meta_smoothing": np.array(ADAPTIVE_SMOOTHING),
        "meta_lead_fraction": np.array(ADAPTIVE_LEAD_FRACTION),
        "meta_error_threshold": np.array(ADAPTIVE_ERROR_THRESHOLD),
    }


# -- canonical capped multi-tenant cluster trace (PR 10) ------------------
CLUSTER_MIX = "interactive-batch"
CLUSTER_REQUESTS = 1500  # split 70/30 across the mix's two tenants
CLUSTER_ARRIVAL_SEED = 17
CLUSTER_RATE_RPS = 8e5  # deep overload: the occupancy cap genuinely bites
CLUSTER_POOL_SIZE = 3


def compute_cluster_vectorized_trace() -> dict[str, np.ndarray]:
    """One deterministic capped multi-tenant cluster trace end to end.

    The fixture pins the PR 10 frozen-allocation fast path's complete
    observable surface on the canonical two-tenant capped mix — the
    per-lane batch plans, the per-request streams, the occupancy-cap
    shed sets, the busy ledgers, and the latency percentiles — so any
    change to the lane decomposition, the closed-form admission walk,
    or its verification tiers shows up as a bit difference.  Because
    the vectorized and reference modes are pinned bit-identical
    elsewhere, this one fixture guards both.
    """
    tenants, arrival_s = cluster_mix(
        CLUSTER_MIX, CLUSTER_RATE_RPS, CLUSTER_REQUESTS, seed=CLUSTER_ARRIVAL_SEED
    )
    report = simulate_cluster_serving(
        tenants, arrival_s, CLUSTER_POOL_SIZE, mode="vectorized"
    )
    assert report.num_shed > 0, "the golden scenario must actually shed"
    fixture: dict[str, np.ndarray] = {
        "arrivals_sha256": input_digest(
            np.concatenate([arrival_s[t.name] for t in tenants])
        ),
        "meta_requests": np.array(CLUSTER_REQUESTS),
        "meta_arrival_seed": np.array(CLUSTER_ARRIVAL_SEED),
        "meta_rate_rps": np.array(CLUSTER_RATE_RPS),
        "meta_pool_size": np.array(CLUSTER_POOL_SIZE),
    }
    for sub in report.tenants:
        prefix = sub.tenant
        fixture[f"{prefix}_dispatch_s"] = sub.dispatch_s
        fixture[f"{prefix}_completion_s"] = sub.completion_s
        fixture[f"{prefix}_shed_arrival_s"] = sub.shed_arrival_s
        fixture[f"{prefix}_batch_first_request"] = np.array(
            [b.first_request for b in sub.batches]
        )
        fixture[f"{prefix}_batch_sizes"] = np.array(
            [b.size for b in sub.batches]
        )
        fixture[f"{prefix}_batch_dispatch_s"] = np.array(
            [b.dispatch_s for b in sub.batches]
        )
        fixture[f"{prefix}_batch_completion_s"] = np.array(
            [b.completion_s for b in sub.batches]
        )
        fixture[f"{prefix}_core_busy_s"] = np.array(sub.core_busy_s)
        fixture[f"{prefix}_percentiles_s"] = np.array(
            [sub.p50_s, sub.p95_s, sub.p99_s]
        )
    return fixture


def build_accelerator(mode: str) -> PCNNA:
    """The accelerator under golden test for one mode."""
    accelerator = PCNNA()
    if mode == "quantized":
        accelerator.engine = PhotonicConvolution(
            accelerator.config, method="device", quantize=True
        )
    elif mode != "ideal":
        raise ValueError(f"unknown golden mode {mode!r}")
    return accelerator


def compute_trace(network_name: str, mode: str) -> dict[str, np.ndarray]:
    """One deterministic end-to-end trace (outputs + first conv maps)."""
    network = serving_network(network_name, scale=SCALE, seed=WEIGHT_SEED)
    inputs = serving_batch(network, BATCH, seed=INPUT_SEED)
    accelerator = build_accelerator(mode)
    outputs = accelerator.run_network(network, inputs)

    first_conv = next(
        layer for layer in network.layers if isinstance(layer, Conv2D)
    )
    conv_maps = accelerator.convolve(
        inputs, first_conv.weights, first_conv.stride, first_conv.padding
    )
    return {
        # The raw inputs would dominate the fixture size (megabytes for
        # 224x224 stacks); a digest guards the seeded generators just as
        # strictly.
        "inputs_sha256": input_digest(inputs),
        "outputs": outputs,
        "first_conv_maps": conv_maps,
        "meta_batch": np.array(BATCH),
        "meta_input_seed": np.array(INPUT_SEED),
        "meta_weight_seed": np.array(WEIGHT_SEED),
        "meta_scale": np.array(SCALE),
    }


def input_digest(inputs: np.ndarray) -> np.ndarray:
    """SHA-256 of the input batch's exact bytes, as a uint8 array."""
    digest = hashlib.sha256(np.ascontiguousarray(inputs).tobytes()).digest()
    return np.frombuffer(digest, dtype=np.uint8)


def fixture_path(network_name: str, mode: str) -> Path:
    """Location of one golden fixture."""
    return GOLDEN_DIR / f"{network_name}_{mode}.npz"


def main() -> None:
    for network_name, mode in CASES:
        trace = compute_trace(network_name, mode)
        path = fixture_path(network_name, mode)
        np.savez_compressed(path, **trace)
        print(
            f"wrote {path.relative_to(GOLDEN_DIR.parent.parent)} "
            f"(outputs {trace['outputs'].shape}, "
            f"conv {trace['first_conv_maps'].shape})"
        )
    faulted = compute_faulted_trace()
    faulted_path = fixture_path("lenet5", "faulted")
    np.savez_compressed(faulted_path, **faulted)
    print(
        f"wrote {faulted_path.relative_to(GOLDEN_DIR.parent.parent)} "
        f"({len(faulted['batch_sizes'])} batches, max divergence "
        f"{faulted['divergence_per_batch'].max():.4f})"
    )
    traffic = compute_traffic_trace()
    traffic_path = fixture_path("traffic", "vectorized")
    np.savez_compressed(traffic_path, **traffic)
    print(
        f"wrote {traffic_path.relative_to(GOLDEN_DIR.parent.parent)} "
        f"({len(traffic['batch_sizes'])} batches, p99 "
        f"{traffic['percentiles_s'][2]:.3e} s)"
    )
    fleet = compute_fleet_failover_trace()
    fleet_path = fixture_path("fleet", "failover")
    np.savez_compressed(fleet_path, **fleet)
    print(
        f"wrote {fleet_path.relative_to(GOLDEN_DIR.parent.parent)} "
        f"({int(fleet['failover_rerouted'])} rerouted, global p99 "
        f"{fleet['global_percentiles_s'][2]:.3e} s)"
    )
    adaptive = compute_adaptive_recal_trace()
    adaptive_path = fixture_path("adaptive", "recal")
    np.savez_compressed(adaptive_path, **adaptive)
    print(
        f"wrote {adaptive_path.relative_to(GOLDEN_DIR.parent.parent)} "
        f"({len(adaptive['decision_time_s'])} decisions, "
        f"{int(adaptive['num_recalibrations'])} recals)"
    )
    cluster = compute_cluster_vectorized_trace()
    cluster_path = fixture_path("cluster", "vectorized")
    np.savez_compressed(cluster_path, **cluster)
    print(
        f"wrote {cluster_path.relative_to(GOLDEN_DIR.parent.parent)} "
        f"({len(cluster['interactive_shed_arrival_s'])} shed, "
        f"interactive p99 {cluster['interactive_percentiles_s'][2]:.3e} s)"
    )


if __name__ == "__main__":
    main()
